"""Tests for occupancy, coalescing and transfer analyses."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clsim import (
    AccessPattern,
    INTEL_XEON_E5_2670_X2 as CPU,
    INTEL_XEON_PHI_31SP as MIC,
    NVIDIA_TESLA_K20C as GPU,
    batched_column_pattern,
    efficiency_for,
    flat_smat_pattern,
    occupancy,
    training_transfer_cost,
    transactions_for,
)
from repro.clsim.transfer import PCIE_BANDWIDTH_GBS


class TestCoalescing:
    def test_flat_pattern_one_transaction_per_lane(self):
        """§III-B: neighbouring flat threads sit (k+1)·k elements apart, so
        every lane pays its own transaction."""
        pattern = flat_smat_pattern(GPU, k=10)
        assert transactions_for(pattern, GPU) == GPU.hw_width
        assert efficiency_for(pattern, GPU) == pytest.approx(
            4 / GPU.cacheline_bytes
        )

    def test_batched_column_coalesces(self):
        """A k=10 column strip spans at most 2 GPU transactions."""
        pattern = batched_column_pattern(base_element=12345, k=10)
        assert transactions_for(pattern, GPU) <= 2
        assert efficiency_for(pattern, GPU) > 0.15

    def test_batched_beats_flat_on_every_device(self):
        for device in (CPU, GPU, MIC):
            flat = efficiency_for(flat_smat_pattern(device, k=10), device)
            batched = efficiency_for(batched_column_pattern(0, 10), device)
            assert batched > 3 * flat, device.name

    def test_aligned_full_line_is_perfect(self):
        line = GPU.cacheline_bytes
        pattern = AccessPattern(np.arange(line // 4) * 4)
        assert efficiency_for(pattern, GPU) == pytest.approx(1.0)

    def test_duplicate_addresses_broadcast(self):
        # All lanes reading one address = one transaction (broadcast).
        pattern = AccessPattern(np.zeros(32, dtype=np.int64))
        assert transactions_for(pattern, GPU) == 1

    def test_invalid_patterns_rejected(self):
        with pytest.raises(ValueError):
            AccessPattern(np.array([]))
        with pytest.raises(ValueError):
            AccessPattern(np.array([-4]))
        with pytest.raises(ValueError):
            AccessPattern(np.array([0]), element_bytes=0)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        lanes=st.integers(1, 64),
    )
    def test_property_efficiency_bounded(self, seed, lanes):
        rng = np.random.default_rng(seed)
        pattern = AccessPattern(rng.integers(0, 1 << 20, size=lanes) * 4)
        eff = efficiency_for(pattern, GPU)
        assert 0 < eff <= 1.0 + 1e-12


class TestOccupancy:
    def test_gpu_limited_by_group_slots_at_small_ws(self):
        report = occupancy(GPU, ws=32, k=10)
        assert report.limiting_resource == "group slots"
        assert report.groups_per_cu == 16

    def test_gpu_thread_slots_bind_at_large_ws(self):
        report = occupancy(GPU, ws=2048, k=10)
        assert report.groups_per_cu == 1

    def test_gpu_scratchpad_can_limit(self):
        report = occupancy(GPU, ws=32, k=10, local_bytes_per_group=24 * 1024)
        assert report.limiting_resource == "scratchpad"
        assert report.groups_per_cu == 2

    def test_gpu_registers_can_limit(self):
        report = occupancy(GPU, ws=256, k=10, registers_per_item=128)
        assert report.limiting_resource == "registers"

    def test_lane_utilization_drops_with_oversized_groups(self):
        """§V-E: ws=64 at k=10 leaves idle warps."""
        small = occupancy(GPU, ws=16, k=10)
        big = occupancy(GPU, ws=64, k=10)
        assert small.lane_utilization > big.lane_utilization

    def test_cpu_bound_by_thread_contexts(self):
        report = occupancy(CPU, ws=32, k=10)
        assert report.limiting_resource == "thread contexts"
        assert report.groups_per_cu == CPU.threads_per_unit

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            occupancy(GPU, ws=0, k=10)
        with pytest.raises(ValueError):
            occupancy(GPU, ws=32, k=10, registers_per_item=0)
        with pytest.raises(ValueError):
            occupancy(GPU, ws=32, k=10, local_bytes_per_group=-1)

    def test_str(self):
        assert "groups/CU" in str(occupancy(GPU, ws=32, k=10))


class TestTransfer:
    def test_cpu_transfers_nothing(self):
        cost = training_transfer_cost(CPU, m=100, n=50, nnz=1000, k=10)
        assert cost.seconds == 0.0
        assert cost.transfers == 0

    def test_gpu_traffic_scales_with_nnz(self):
        small = training_transfer_cost(GPU, m=100, n=50, nnz=1_000, k=10)
        big = training_transfer_cost(GPU, m=100, n=50, nnz=1_000_000, k=10)
        assert big.host_to_device_bytes > 100 * small.host_to_device_bytes / 2
        assert big.seconds > small.seconds

    def test_bytes_accounting(self):
        cost = training_transfer_cost(GPU, m=10, n=5, nnz=20, k=2)
        # CSR: 20*8 + 11*4 ; CSC: 20*8 + 6*4 ; Y down: 5*2*4
        assert cost.host_to_device_bytes == (20 * 8 + 11 * 4) + (20 * 8 + 6 * 4) + 40
        # up: (10+5)*2*4
        assert cost.device_to_host_bytes == 120

    def test_seconds_formula(self):
        cost = training_transfer_cost(GPU, m=10, n=5, nnz=20, k=2)
        expect = (
            cost.host_to_device_bytes + cost.device_to_host_bytes
        ) / (PCIE_BANDWIDTH_GBS * 1e9) + cost.transfers * 20e-6
        assert cost.seconds == pytest.approx(expect)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            training_transfer_cost(GPU, m=0, n=5, nnz=20, k=2)

    def test_mic_also_pays(self):
        assert training_transfer_cost(MIC, m=10, n=5, nnz=20, k=2).seconds > 0
