"""Tests for NDRange indexing and simulated memory objects."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clsim import Buffer, LocalMemory, NDRange


class TestNDRange:
    def test_paper_default(self):
        nd = NDRange.paper_default()
        assert (nd.global_size, nd.local_size) == (8192 * 32, 32)
        assert nd.num_groups == 8192

    def test_group_items_enumeration(self):
        nd = NDRange(12, 4)
        items = list(nd.group_items(2))
        assert [it.global_id for it in items] == [8, 9, 10, 11]
        assert [it.local_id for it in items] == [0, 1, 2, 3]
        assert all(it.group_id == 2 for it in items)
        assert all(it.num_groups == 3 for it in items)
        assert items[0].global_size == 12

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            NDRange(10, 4)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            NDRange(0, 4)
        with pytest.raises(ValueError):
            NDRange(8, 0)

    def test_group_out_of_range(self):
        with pytest.raises(IndexError):
            list(NDRange(8, 4).group_items(2))

    def test_iteration_yields_group_ids(self):
        assert list(NDRange(16, 4)) == [0, 1, 2, 3]

    @settings(max_examples=30, deadline=None)
    @given(groups=st.integers(1, 50), ws=st.integers(1, 64))
    def test_property_ids_partition_global_range(self, groups, ws):
        nd = NDRange(groups * ws, ws)
        seen = sorted(
            it.global_id for g in nd for it in nd.group_items(g)
        )
        assert seen == list(range(groups * ws))


class TestBuffer:
    def test_load_store_and_counting(self):
        buf = Buffer(np.zeros(4, dtype=np.float32), "b")
        buf.store(1, 2.5)
        assert buf.load(1) == 2.5
        assert buf.counter.writes == 1
        assert buf.counter.reads == 1

    def test_slice_load_counts_elements(self):
        buf = Buffer(np.arange(10.0))
        out = buf.load(slice(2, 7))
        np.testing.assert_array_equal(out, [2, 3, 4, 5, 6])
        assert buf.counter.reads == 5

    def test_counter_reset(self):
        buf = Buffer(np.zeros(3))
        buf.load(0)
        buf.counter.reset()
        assert buf.counter.total == 0

    def test_len_and_nbytes(self):
        buf = Buffer(np.zeros(6, dtype=np.float32))
        assert len(buf) == 6
        assert buf.nbytes == 24


class TestLocalMemory:
    def test_zero_initialized(self):
        lm = LocalMemory((3, 2))
        np.testing.assert_array_equal(lm.array, np.zeros((3, 2), dtype=np.float32))

    def test_capacity_enforced(self):
        with pytest.raises(MemoryError):
            LocalMemory((1024,), dtype=np.float64, capacity_bytes=1024)

    def test_capacity_ok_at_limit(self):
        lm = LocalMemory((256,), dtype=np.float32, capacity_bytes=1024)
        assert lm.nbytes == 1024

    def test_load_store(self):
        lm = LocalMemory((2, 2))
        lm.store((1, 0), 7.0)
        assert lm.load((1, 0)) == 7.0
        assert lm.counter.writes == 1
