"""Tests for the Chrome-trace timeline export."""

from __future__ import annotations

import json

import pytest

from repro.clsim import CommandQueue, LaunchCost, NVIDIA_TESLA_K20C
from repro.clsim.tracing import queue_to_chrome_trace, write_chrome_trace


@pytest.fixture
def queue():
    q = CommandQueue(NVIDIA_TESLA_K20C)
    q.enqueue("s1", LaunchCost(0.002, 0.001, 0.0005))
    q.enqueue("s2", LaunchCost(0.0001, 0.003, 0.0005))
    q.enqueue("s3", LaunchCost(0.001, 0.0002, 0.0005))
    return q


def test_events_are_contiguous(queue):
    events = queue_to_chrome_trace(queue)
    assert len(events) == 3
    cursor = 0.0
    for event in events:
        assert event["ts"] == pytest.approx(cursor)
        cursor += event["dur"]
    assert cursor == pytest.approx(queue.total_seconds * 1e6)


def test_event_payload(queue):
    event = queue_to_chrome_trace(queue)[1]
    assert event["name"] == "s2"
    assert event["ph"] == "X"
    assert event["args"]["bound"] == "memory"
    assert event["args"]["memory_s"] == 0.003


def test_empty_queue():
    assert queue_to_chrome_trace(CommandQueue(NVIDIA_TESLA_K20C)) == []


def test_write_roundtrip(queue, tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(queue, path)
    payload = json.loads(path.read_text())
    assert payload["otherData"]["device"] == NVIDIA_TESLA_K20C.name
    assert len(payload["traceEvents"]) == 3


def test_trace_of_real_solver_run(tmp_path):
    """A PortableALS simulation yields a well-formed timeline."""
    import numpy as np

    from repro.solvers import PortableALS

    solver = PortableALS(NVIDIA_TESLA_K20C)
    lengths = np.full(2000, 40)
    solver.simulate(lengths, lengths, iterations=2)
    # simulate() uses a fresh queue internally; rebuild one for tracing.
    queue = solver.context.create_queue()
    cm = solver.context.cost_model
    costs = cm.batched_half_sweep(lengths, 10, 32, solver.variant.flags)
    queue.enqueue("s1", costs.s1)
    queue.enqueue("s2", costs.s2)
    queue.enqueue("s3", costs.s3)
    path = tmp_path / "run.json"
    write_chrome_trace(queue, path)
    events = json.loads(path.read_text())["traceEvents"]
    assert [e["name"] for e in events] == ["s1", "s2", "s3"]
    assert all(e["dur"] > 0 for e in events)
