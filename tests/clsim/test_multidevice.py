"""Tests for the data-parallel multi-device model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clsim import NVIDIA_TESLA_K20C as GPU
from repro.clsim.multidevice import MultiDeviceRun, simulate_multi_device
from repro.datasets import NETFLIX, YAHOO_R4, degree_sequences


@pytest.fixture(scope="module")
def netflix():
    return degree_sequences(NETFLIX, seed=7)


@pytest.fixture(scope="module")
def ymr4():
    return degree_sequences(YAHOO_R4, seed=7)


class TestScaling:
    def test_two_gpus_faster_than_one(self, netflix):
        one = simulate_multi_device(GPU, 1, *netflix)
        two = simulate_multi_device(GPU, 2, *netflix)
        assert two.seconds < one.seconds

    def test_speedup_sublinear(self, netflix):
        one = simulate_multi_device(GPU, 1, *netflix)
        four = simulate_multi_device(GPU, 4, *netflix)
        speedup = four.speedup_over(one)
        assert 1.5 < speedup < 4.0

    def test_speedup_monotone_up_to_four(self, netflix):
        runs = [simulate_multi_device(GPU, d, *netflix) for d in (1, 2, 4)]
        times = [r.seconds for r in runs]
        assert times == sorted(times, reverse=True)

    def test_small_dataset_scales_worse(self, netflix, ymr4):
        """Communication and imbalance dominate tiny problems."""
        big = simulate_multi_device(GPU, 4, *netflix).speedup_over(
            simulate_multi_device(GPU, 1, *netflix)
        )
        small = simulate_multi_device(GPU, 4, *ymr4).speedup_over(
            simulate_multi_device(GPU, 1, *ymr4)
        )
        assert big > small

    def test_comm_grows_with_devices_and_k(self, netflix):
        rows, cols = netflix
        two = simulate_multi_device(GPU, 2, rows, cols, k=10)
        four = simulate_multi_device(GPU, 4, rows, cols, k=10)
        assert four.comm_seconds > two.comm_seconds
        k40 = simulate_multi_device(GPU, 2, rows, cols, k=40)
        assert k40.comm_seconds > two.comm_seconds

    def test_single_device_has_no_comm(self, ymr4):
        assert simulate_multi_device(GPU, 1, *ymr4).comm_seconds == 0.0

    def test_single_device_matches_portable_solver(self, ymr4):
        from repro.solvers import PortableALS

        rows, cols = ymr4
        multi = simulate_multi_device(GPU, 1, rows, cols)
        single = PortableALS(GPU).simulate(rows, cols)
        # PortableALS additionally counts the host→device setup transfer.
        assert multi.seconds == pytest.approx(single.seconds, rel=0.3)

    def test_invalid_devices(self, ymr4):
        with pytest.raises(ValueError):
            simulate_multi_device(GPU, 0, *ymr4)

    def test_run_fields(self, ymr4):
        run = simulate_multi_device(GPU, 2, *ymr4, iterations=3)
        assert isinstance(run, MultiDeviceRun)
        assert run.n_devices == 2
        assert run.iterations == 3
        assert run.seconds == pytest.approx(
            run.compute_seconds + run.comm_seconds
        )
