"""Tests for device specs."""

from __future__ import annotations

import dataclasses

import pytest

from repro.clsim import (
    ALL_DEVICES,
    INTEL_XEON_E5_2670_X2,
    INTEL_XEON_PHI_31SP,
    NVIDIA_TESLA_K20C,
    DeviceKind,
    device_by_name,
)


class TestPresets:
    def test_paper_cpu_parameters(self):
        cpu = INTEL_XEON_E5_2670_X2
        assert cpu.kind is DeviceKind.CPU
        assert cpu.compute_units == 16  # dual-socket, 8 cores each (§IV-A)
        assert cpu.clock_ghz == pytest.approx(2.6)
        assert not cpu.has_scratchpad

    def test_paper_gpu_parameters(self):
        gpu = NVIDIA_TESLA_K20C
        assert gpu.kind is DeviceKind.GPU
        assert gpu.compute_units == 13  # 13 SMX (§IV-A)
        assert gpu.hw_width == 32  # warp (§V-E)
        assert gpu.registers_per_thread == 255  # §III-C1
        assert gpu.has_scratchpad
        assert gpu.scratchpad_bytes == 48 * 1024

    def test_paper_mic_parameters(self):
        mic = INTEL_XEON_PHI_31SP
        assert mic.kind is DeviceKind.MIC
        assert mic.compute_units == 57  # §IV-A
        assert mic.hw_width == 16  # 512-bit SIMD

    def test_all_devices_unique_kinds(self):
        kinds = [d.kind for d in ALL_DEVICES]
        assert len(set(kinds)) == 3

    def test_warps_per_group(self):
        assert NVIDIA_TESLA_K20C.warps_per_group(32) == 1
        assert NVIDIA_TESLA_K20C.warps_per_group(33) == 2
        assert NVIDIA_TESLA_K20C.warps_per_group(8) == 1
        assert INTEL_XEON_E5_2670_X2.warps_per_group(32) == 4

    def test_warps_per_group_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            NVIDIA_TESLA_K20C.warps_per_group(0)

    def test_peak_strips_positive(self):
        for d in ALL_DEVICES:
            assert d.peak_strips_per_second > 0
            assert d.concurrent_groups_hint > 0

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(NVIDIA_TESLA_K20C, compute_units=0)
        with pytest.raises(ValueError):
            dataclasses.replace(NVIDIA_TESLA_K20C, clock_ghz=-1.0)


class TestLookup:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("cpu", INTEL_XEON_E5_2670_X2),
            ("GPU", NVIDIA_TESLA_K20C),
            ("k20c", NVIDIA_TESLA_K20C),
            ("  mic ", INTEL_XEON_PHI_31SP),
            ("xeon-phi", INTEL_XEON_PHI_31SP),
        ],
    )
    def test_lookup(self, name, expected):
        assert device_by_name(name) is expected

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown device"):
            device_by_name("fpga")

    def test_str(self):
        assert "K20c" in str(NVIDIA_TESLA_K20C)
        assert "[gpu]" in str(NVIDIA_TESLA_K20C)
