"""Tests for the performance model's mechanistic properties.

These assert *mechanisms*, not calibrated magnitudes: monotonicities,
orderings and interactions that must hold for any reasonable constants.
Paper-shape anchor checks live in tests/bench/.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clsim import ALL_DEVICES, CostModel, OptFlags
from repro.clsim.device import (
    INTEL_XEON_E5_2670_X2 as CPU,
    INTEL_XEON_PHI_31SP as MIC,
    NVIDIA_TESLA_K20C as GPU,
)

K = 10


@pytest.fixture(scope="module")
def lengths(  # skewed row population with a realistic mean (ω ≈ 56)
) -> np.ndarray:
    rng = np.random.default_rng(3)
    return (rng.zipf(1.7, size=20_000).clip(max=250) * 20).astype(np.int64)


def _time(device, lengths, flags, ws=32, k=K):
    return CostModel(device).batched_half_sweep(lengths, k, ws, flags).seconds


class TestBasicSanity:
    def test_positive_times(self, lengths):
        for device in ALL_DEVICES:
            costs = CostModel(device).batched_half_sweep(lengths, K, 32, OptFlags())
            assert costs.s1.seconds > 0
            assert costs.s2.seconds > 0
            assert costs.s3.seconds > 0

    def test_invalid_args_rejected(self, lengths):
        cm = CostModel(GPU)
        with pytest.raises(ValueError):
            cm.batched_half_sweep(lengths, 0, 32, OptFlags())
        with pytest.raises(ValueError):
            cm.batched_half_sweep(lengths, K, 0, OptFlags())
        with pytest.raises(ValueError):
            cm.training_time(lengths, lengths, K, 32, OptFlags(), 0)

    def test_more_nnz_costs_more(self, lengths):
        for device in ALL_DEVICES:
            small = _time(device, lengths, OptFlags())
            big = _time(device, np.concatenate([lengths, lengths]), OptFlags())
            assert big > small

    def test_training_time_linear_in_iterations(self, lengths):
        cm = CostModel(GPU)
        one = cm.training_time(lengths, lengths, K, 32, OptFlags(), 1)
        five = cm.training_time(lengths, lengths, K, 32, OptFlags(), 5)
        assert five == pytest.approx(5 * one, rel=1e-9)

    def test_shares_sum_to_one(self, lengths):
        costs = CostModel(GPU).batched_half_sweep(lengths, K, 32, OptFlags())
        assert sum(costs.shares()) == pytest.approx(1.0)

    def test_launchcost_bound_label(self, lengths):
        costs = CostModel(GPU).batched_half_sweep(lengths, K, 32, OptFlags())
        for step in (costs.s1, costs.s2, costs.s3):
            assert step.bound in ("compute", "memory")


class TestOptimizationMechanisms:
    """§III-C effects, device by device."""

    def test_registers_help_on_gpu(self, lengths):
        # Removing the spill of the k×k private array speeds up S1.
        plain = CostModel(GPU).batched_half_sweep(lengths, K, 32, OptFlags(local_mem=True))
        reg = CostModel(GPU).batched_half_sweep(
            lengths, K, 32, OptFlags(local_mem=True, registers=True)
        )
        assert reg.s1.seconds < plain.s1.seconds

    def test_local_memory_helps_everywhere(self, lengths):
        for device in ALL_DEVICES:
            plain = _time(device, lengths, OptFlags())
            staged = _time(device, lengths, OptFlags(local_mem=True))
            assert staged < plain, device.name

    def test_registers_plus_local_degrade_on_cache_devices(self, lengths):
        # §V-B: "it is not recommended to combine these two optimization
        # techniques on MIC or CPU."
        for device in (CPU, MIC):
            staged = _time(device, lengths, OptFlags(local_mem=True))
            both = _time(device, lengths, OptFlags(local_mem=True, registers=True))
            assert both > staged, device.name

    def test_registers_plus_local_do_not_degrade_on_gpu(self, lengths):
        staged = _time(GPU, lengths, OptFlags(local_mem=True))
        both = _time(GPU, lengths, OptFlags(local_mem=True, registers=True))
        assert both < staged

    def test_vectors_neutral_on_gpu(self, lengths):
        base = _time(GPU, lengths, OptFlags(local_mem=True, registers=True))
        vec = _time(GPU, lengths, OptFlags(local_mem=True, registers=True, vector=True))
        assert vec == pytest.approx(base, rel=1e-6)

    def test_vectors_help_slightly_on_cpu_mic(self, lengths):
        for device in (CPU, MIC):
            base = _time(device, lengths, OptFlags(local_mem=True))
            vec = _time(device, lengths, OptFlags(local_mem=True, vector=True))
            assert base * 0.8 < vec < base, device.name

    def test_cholesky_faster_than_elimination(self, lengths):
        # §V-C: the Cholesky method reduces S3 time.
        for device in ALL_DEVICES:
            chol = CostModel(device).batched_half_sweep(
                lengths, K, 32, OptFlags(cholesky=True)
            )
            gauss = CostModel(device).batched_half_sweep(
                lengths, K, 32, OptFlags(cholesky=False)
            )
            assert chol.s3.seconds < gauss.s3.seconds, device.name


class TestFlatBaselineMechanisms:
    """§III-B's diagnosis of the flat mapping."""

    def test_batching_beats_flat_on_cpu_and_gpu(self, lengths):
        # Fig. 1 / Fig. 7 territory.  (The paper never runs the flat code
        # on the MIC — §II-C: it cannot even be offloaded there — so the
        # MIC ordering is only asserted for the optimized variant below.)
        for device in (CPU, GPU):
            cm = CostModel(device)
            flat = cm.flat_half_sweep(lengths, K).seconds
            batched = cm.batched_half_sweep(lengths, K, 32, OptFlags()).seconds
            assert batched < flat, device.name

    def test_optimized_batching_beats_flat_on_mic(self, lengths):
        cm = CostModel(MIC)
        flat = cm.flat_half_sweep(lengths, K).seconds
        best = cm.batched_half_sweep(
            lengths, K, 16, OptFlags(local_mem=True, vector=True)
        ).seconds
        assert best < flat

    def test_skew_hurts_flat_more_than_batched(self):
        """Divergence: the flat mapping pays for imbalanced windows."""
        rng = np.random.default_rng(0)
        nnz = 400_000
        uniform = np.full(20_000, nnz // 20_000, dtype=np.int64)
        skewed = rng.zipf(1.5, size=20_000)
        skewed = (skewed * (nnz / skewed.sum())).astype(np.int64)
        cm = CostModel(GPU)
        flat_ratio = (
            cm.flat_half_sweep(skewed, K).seconds
            / cm.flat_half_sweep(uniform, K).seconds
        )
        batched_ratio = (
            cm.batched_half_sweep(skewed, K, 32, OptFlags()).seconds
            / cm.batched_half_sweep(uniform, K, 32, OptFlags()).seconds
        )
        assert flat_ratio > 1.5 * batched_ratio

    def test_flat_split_covers_all_steps(self, lengths):
        costs = CostModel(GPU).flat_half_sweep(lengths, K)
        assert costs.s1.seconds > costs.s2.seconds > 0
        assert costs.s3.seconds > 0

    def test_half_sweep_dispatch(self, lengths):
        cm = CostModel(GPU)
        flat = cm.half_sweep(lengths, K, 32, OptFlags(batched=False))
        batched = cm.half_sweep(lengths, K, 32, OptFlags())
        assert flat.seconds == cm.flat_half_sweep(lengths, K, OptFlags(batched=False)).seconds
        assert batched.seconds == cm.batched_half_sweep(lengths, K, 32, OptFlags()).seconds


class TestBlockSizeMechanisms:
    """§V-E: warp under-utilization and idle warps."""

    def test_gpu_optimum_at_16_or_32(self, lengths):
        flags = OptFlags(local_mem=True, registers=True)
        sweep = {ws: _time(GPU, lengths, flags, ws=ws) for ws in (8, 16, 32, 64, 128)}
        best = min(sweep, key=sweep.get)
        assert best in (16, 32)
        assert sweep[8] > sweep[16]
        assert sweep[64] > sweep[32]
        assert sweep[128] > sweep[64]

    def test_gpu_16_equals_32(self, lengths):
        # Both fit one warp and need one pass at k=10 (§V-E).
        flags = OptFlags(local_mem=True, registers=True)
        assert _time(GPU, lengths, flags, ws=16) == pytest.approx(
            _time(GPU, lengths, flags, ws=32), rel=1e-9
        )

    def test_cpu_smaller_is_better(self, lengths):
        flags = OptFlags(local_mem=True, vector=True)
        sweep = [_time(CPU, lengths, flags, ws=ws) for ws in (8, 16, 32, 64, 128)]
        assert sweep == sorted(sweep)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    k=st.sampled_from([5, 10, 20, 50]),
    ws=st.sampled_from([8, 16, 32, 64]),
)
def test_property_costs_finite_and_positive(seed, k, ws):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(0, 300, size=500)
    for device in ALL_DEVICES:
        for flags in (OptFlags(), OptFlags(local_mem=True, registers=True, vector=True)):
            t = CostModel(device).batched_half_sweep(lengths, k, ws, flags).seconds
            assert np.isfinite(t) and t > 0
