"""Property-based invariants of the performance model.

These complement tests/clsim/test_costmodel.py with randomized checks of
the algebraic structure the cost model must have regardless of
calibration values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clsim import ALL_DEVICES, CostModel, OptFlags
from repro.clsim.device import NVIDIA_TESLA_K20C as GPU

K = 10


def _lengths(seed: int, n: int = 2000, scale: int = 10) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.zipf(1.6, n).clip(max=200) * scale).astype(np.int64)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_batched_cost_additive_in_rows(seed):
    """Splitting a row population across two launches costs what one
    launch costs, minus the duplicated fixed overheads."""
    lengths = _lengths(seed)
    half = len(lengths) // 2
    a, b = lengths[:half], lengths[half:]
    cm = CostModel(GPU)
    flags = OptFlags(registers=True, local_mem=True)
    whole = cm.batched_half_sweep(lengths, K, 32, flags)
    parts = cm.batched_half_sweep(a, K, 32, flags) + cm.batched_half_sweep(
        b, K, 32, flags
    )
    # component sums must match exactly up to the extra launch overheads
    assert parts.s1.compute_s == pytest.approx(whole.s1.compute_s, rel=1e-6)
    assert parts.s2.memory_s == pytest.approx(whole.s2.memory_s, rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_batched_invariant_under_permutation(seed):
    """The batched mapping has no window structure: shuffling rows must
    not change its cost (unlike the flat mapping)."""
    lengths = _lengths(seed)
    rng = np.random.default_rng(seed + 1)
    shuffled = rng.permutation(lengths)
    cm = CostModel(GPU)
    a = cm.batched_half_sweep(lengths, K, 32, OptFlags()).seconds
    b = cm.batched_half_sweep(shuffled, K, 32, OptFlags()).seconds
    assert a == pytest.approx(b, rel=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), k=st.sampled_from([5, 10, 20, 40]))
def test_cost_monotone_in_k(seed, k):
    lengths = _lengths(seed)
    for device in ALL_DEVICES:
        cm = CostModel(device)
        small = cm.batched_half_sweep(lengths, k, 32, OptFlags()).seconds
        large = cm.batched_half_sweep(lengths, 2 * k, 32, OptFlags()).seconds
        assert large > small


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), factor=st.integers(2, 5))
def test_cost_scales_superlinearly_never(seed, factor):
    """k fixed: duplicating the population `factor` times must scale the
    work terms exactly linearly (no hidden super-linear term).  The
    population must exceed the device's concurrency hint, else the
    parallel-slack term makes small launches intentionally sub-linear."""
    lengths = _lengths(seed, n=2000)
    tiled = np.tile(lengths, factor)
    cm = CostModel(GPU)
    one = cm.batched_half_sweep(lengths, K, 32, OptFlags())
    many = cm.batched_half_sweep(tiled, K, 32, OptFlags())
    assert many.s1.compute_s == pytest.approx(factor * one.s1.compute_s, rel=1e-9)
    assert many.s2.memory_s == pytest.approx(factor * one.s2.memory_s, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_flat_cost_at_least_balanced_lower_bound(seed):
    """The flat cost can never beat the same population with perfectly
    balanced windows (divergence only adds)."""
    lengths = _lengths(seed)
    mean = max(1, int(lengths.mean()))
    balanced = np.full_like(lengths, mean)
    # equalize total work
    balanced[-1] += int(lengths.sum() - balanced.sum())
    if balanced[-1] < 0:
        balanced[-1] = 0
    cm = CostModel(GPU)
    real = cm.flat_half_sweep(lengths, K).seconds
    ideal = cm.flat_half_sweep(np.sort(balanced), K).seconds
    assert real >= ideal * 0.95


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    ws=st.sampled_from([8, 16, 32, 64]),
    reg=st.booleans(),
    lm=st.booleans(),
    vec=st.booleans(),
)
def test_every_variant_orders_devices_consistently(seed, ws, reg, lm, vec):
    """MIC never beats the CPU at the paper's scale, whatever the variant
    (Fig. 9's ordering is variant-independent in the model)."""
    lengths = _lengths(seed, n=20_000)
    flags = OptFlags(registers=reg, local_mem=lm, vector=vec)
    from repro.clsim.device import INTEL_XEON_E5_2670_X2, INTEL_XEON_PHI_31SP

    cpu = CostModel(INTEL_XEON_E5_2670_X2).batched_half_sweep(
        lengths, K, ws, flags
    ).seconds
    mic = CostModel(INTEL_XEON_PHI_31SP).batched_half_sweep(
        lengths, K, ws, flags
    ).seconds
    assert mic > cpu
