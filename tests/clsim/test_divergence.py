"""Tests for the divergence analyzer and row-reordering mitigation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clsim import (
    NVIDIA_TESLA_K20C as GPU,
    analyze_divergence,
    sort_rows_by_length,
)


class TestAnalyzer:
    def test_uniform_rows_have_no_divergence(self):
        report = analyze_divergence(np.full(64, 9), 32)
        assert report.efficiency == pytest.approx(1.0)
        assert report.divergence_factor == pytest.approx(1.0)
        assert report.wall_iterations == 2 * 9

    def test_single_long_row_serializes_window(self):
        lengths = np.ones(32, dtype=np.int64)
        lengths[5] = 100
        report = analyze_divergence(lengths, 32)
        assert report.wall_iterations == 100
        assert report.efficiency == pytest.approx((31 + 100) / (100 * 32))

    def test_device_window_taken_from_spec(self):
        report = analyze_divergence(np.full(64, 3), GPU)
        assert report.window == GPU.hw_width

    def test_empty_sequence(self):
        report = analyze_divergence(np.array([], dtype=np.int64), 32)
        assert report.efficiency == 1.0
        assert report.n_windows == 0

    def test_padding_counts_as_waste(self):
        # 3 busy rows padded with 29 idle lanes.
        report = analyze_divergence(np.full(3, 10), 32)
        assert report.wall_iterations == 10
        assert report.efficiency == pytest.approx(30 / 320)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            analyze_divergence(np.array([1]), 0)
        with pytest.raises(ValueError):
            analyze_divergence(np.array([-1]), 8)

    def test_str(self):
        assert "divergence factor" in str(analyze_divergence(np.full(8, 2), 4))

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        window=st.sampled_from([4, 8, 16, 32]),
        n=st.integers(1, 300),
    )
    def test_property_bounds(self, seed, window, n):
        rng = np.random.default_rng(seed)
        lengths = rng.integers(0, 200, size=n)
        report = analyze_divergence(lengths, window)
        assert 0.0 <= report.efficiency <= 1.0 + 1e-12
        assert report.divergence_factor >= 1.0 - 1e-12
        assert report.wall_iterations >= (lengths.max() if n else 0)


class TestSorting:
    def test_sorting_improves_efficiency(self):
        rng = np.random.default_rng(1)
        lengths = rng.zipf(1.6, 4096).clip(max=10_000)
        before = analyze_divergence(lengths, 32)
        after = analyze_divergence(sort_rows_by_length(lengths), 32)
        assert after.efficiency > before.efficiency
        assert after.wall_iterations <= before.wall_iterations

    def test_sorting_preserves_work(self):
        rng = np.random.default_rng(2)
        lengths = rng.integers(0, 50, size=100)
        assert sort_rows_by_length(lengths).sum() == lengths.sum()

    def test_sorted_descending(self):
        out = sort_rows_by_length(np.array([3, 9, 1]))
        np.testing.assert_array_equal(out, [9, 3, 1])

    def test_flat_cost_model_rewards_sorting(self):
        """The reorder experiment's mechanism: the flat cost model must
        price sorted rows cheaper (it reads window maxima)."""
        from repro.clsim import CostModel

        rng = np.random.default_rng(3)
        lengths = (rng.zipf(1.6, 20_000).clip(max=400) * 10).astype(np.int64)
        cm = CostModel(GPU)
        flat = cm.flat_half_sweep(lengths, 10).seconds
        flat_sorted = cm.flat_half_sweep(sort_rows_by_length(lengths), 10).seconds
        assert flat_sorted < flat

    def test_batched_cost_indifferent_to_order(self):
        """Thread batching removes the order sensitivity entirely."""
        from repro.clsim import CostModel, OptFlags

        rng = np.random.default_rng(4)
        lengths = rng.integers(1, 300, size=5000)
        cm = CostModel(GPU)
        a = cm.batched_half_sweep(lengths, 10, 32, OptFlags()).seconds
        b = cm.batched_half_sweep(
            sort_rows_by_length(lengths), 10, 32, OptFlags()
        ).seconds
        assert a == pytest.approx(b, rel=1e-12)
