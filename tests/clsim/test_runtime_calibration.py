"""Tests for the runtime objects and calibration plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clsim import (
    Calibration,
    CommandQueue,
    Context,
    CostModel,
    LaunchCost,
    NVIDIA_TESLA_K20C,
    OptFlags,
    default_calibration,
)
from repro.clsim.device import DeviceKind


class TestRuntime:
    def test_queue_accumulates(self):
        q = CommandQueue(NVIDIA_TESLA_K20C)
        q.enqueue("a", LaunchCost(1.0, 0.5, 0.1))
        q.enqueue("b", LaunchCost(0.2, 0.8, 0.0))
        assert q.total_seconds == pytest.approx(1.1 + 0.8)

    def test_seconds_by_kernel(self):
        q = CommandQueue(NVIDIA_TESLA_K20C)
        q.enqueue("s1", LaunchCost(1.0, 0.0, 0.0))
        q.enqueue("s1", LaunchCost(2.0, 0.0, 0.0))
        q.enqueue("s2", LaunchCost(0.5, 0.0, 0.0))
        agg = q.seconds_by_kernel()
        assert agg["s1"] == pytest.approx(3.0)
        assert agg["s2"] == pytest.approx(0.5)

    def test_reset(self):
        q = CommandQueue(NVIDIA_TESLA_K20C)
        q.enqueue("x", LaunchCost(1.0, 1.0, 1.0))
        q.reset()
        assert q.total_seconds == 0.0
        assert q.events == []

    def test_context_builds_buffers_and_model(self):
        ctx = Context(NVIDIA_TESLA_K20C)
        buf = ctx.create_buffer(np.zeros(3), "z")
        assert buf.name == "z"
        assert isinstance(ctx.cost_model, CostModel)
        assert ctx.create_queue().device is NVIDIA_TESLA_K20C

    def test_launchcost_seconds_is_max_plus_overhead(self):
        c = LaunchCost(compute_s=2.0, memory_s=3.0, overhead_s=0.25)
        assert c.seconds == pytest.approx(3.25)
        assert c.bound == "memory"

    def test_launchcost_addition(self):
        a = LaunchCost(1.0, 2.0, 0.1) + LaunchCost(3.0, 1.0, 0.2)
        assert (a.compute_s, a.memory_s, a.overhead_s) == (4.0, 3.0, pytest.approx(0.3))


class TestCalibration:
    def test_for_kind_covers_all(self):
        cal = default_calibration()
        for kind in DeviceKind:
            assert cal.for_kind(kind).compute_eff > 0

    def test_with_kind_returns_modified_copy(self):
        cal = default_calibration()
        cal2 = cal.with_kind(DeviceKind.GPU, spill_mult=9.9)
        assert cal2.gpu.spill_mult == 9.9
        assert cal.gpu.spill_mult != 9.9  # original untouched
        assert cal2.cpu == cal.cpu

    def test_custom_calibration_changes_model_output(self):
        lengths = np.full(1000, 50)
        base = CostModel(NVIDIA_TESLA_K20C).batched_half_sweep(
            lengths, 10, 32, OptFlags()
        )
        slow = CostModel(
            NVIDIA_TESLA_K20C,
            default_calibration().with_kind(DeviceKind.GPU, compute_eff=1e-4),
        ).batched_half_sweep(lengths, 10, 32, OptFlags())
        assert slow.seconds > base.seconds

    def test_flags_label(self):
        assert OptFlags(batched=False).label() == "flat-baseline"
        assert OptFlags().label() == "batching"
        assert (
            OptFlags(registers=True, local_mem=True, vector=True).label()
            == "batching+local+reg+vec"
        )
