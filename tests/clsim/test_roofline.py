"""Tests for the roofline analyzer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clsim import (
    ALL_DEVICES,
    NVIDIA_TESLA_K20C as GPU,
    OptFlags,
    roofline_analysis,
)


@pytest.fixture(scope="module")
def lengths():
    rng = np.random.default_rng(5)
    return (rng.zipf(1.6, 30_000).clip(max=400) * 10).astype(np.int64)


class TestRoofline:
    def test_als_is_bandwidth_limited(self, lengths):
        """§III-C1: 'factorizing rating matrix is a typical
        bandwidth-limited kernel' — all steps below the ridge at k=10."""
        for device in ALL_DEVICES:
            report = roofline_analysis(device, lengths, k=10)
            assert all(p.bound == "memory" for p in report.points), device.name

    def test_intensity_grows_with_k(self, lengths):
        low = roofline_analysis(GPU, lengths, k=10)
        high = roofline_analysis(GPU, lengths, k=100)
        assert high.points[0].intensity > low.points[0].intensity

    def test_s1_crosses_the_ridge_at_large_k(self, lengths):
        """The Gram step's intensity ~ (k+1)/4 flop/B eventually exceeds
        the K20c ridge (~11.3) — compute-bound at k≈50+."""
        report = roofline_analysis(GPU, lengths, k=64)
        assert report.points[0].bound == "compute"

    def test_achieved_below_attainable(self, lengths):
        for device in ALL_DEVICES:
            report = roofline_analysis(device, lengths)
            for p in report.points:
                assert p.achieved_flops <= p.attainable_flops * 1.001, (
                    device.name,
                    p.name,
                )

    def test_attainable_is_roofline_min(self, lengths):
        report = roofline_analysis(GPU, lengths)
        for p in report.points:
            assert p.attainable_flops == pytest.approx(
                min(p.peak_flops, p.intensity * p.bandwidth)
            )

    def test_s1_has_highest_intensity(self, lengths):
        report = roofline_analysis(GPU, lengths, k=10)
        by_name = {p.name: p for p in report.points}
        assert by_name["s1_gram"].intensity > by_name["s2_rhs"].intensity

    def test_render(self, lengths):
        text = roofline_analysis(GPU, lengths).render()
        assert "flop/B" in text and "ridge" in text
