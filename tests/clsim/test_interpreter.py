"""Tests for the work-item interpreter's barrier semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clsim import BARRIER, Buffer, Kernel, NDRange, execute_ndrange
from repro.clsim.interpreter import BarrierDivergenceError
from repro.clsim.kernel import LocalDecl


def test_items_run_and_see_ids():
    out = Buffer(np.zeros(8, dtype=np.int64))

    def body(item, local, *, out):
        yield from ()
        out.store(item.global_id, item.group_id * 100 + item.local_id)

    execute_ndrange(Kernel("ids", body), NDRange(8, 4), {"out": out})
    np.testing.assert_array_equal(out.array, [0, 1, 2, 3, 100, 101, 102, 103])


def test_barrier_synchronizes_phases():
    """Writes before a barrier must be visible to all items after it."""
    out = Buffer(np.zeros(4, dtype=np.float64))

    def body(item, local, *, out):
        stage = local["stage"]
        # phase 1: each item writes its slot
        stage.store(item.local_id, float(item.local_id + 1))
        yield BARRIER
        # phase 2: each item sums everyone's slots
        total = sum(float(stage.load(i)) for i in range(item.local_size))
        out.store(item.global_id, total)

    kernel = Kernel("sum", body, (LocalDecl("stage", lambda **_: (4,)),))
    execute_ndrange(kernel, NDRange(4, 4), {"out": out})
    np.testing.assert_array_equal(out.array, [10.0] * 4)


def test_local_memory_is_per_group():
    """Group 1 must not see group 0's staged data."""
    out = Buffer(np.zeros(4, dtype=np.float64))

    def body(item, local, *, out):
        stage = local["stage"]
        if item.group_id == 0:
            stage.store(0, 99.0)
        yield BARRIER
        out.store(item.global_id, float(stage.load(0)))

    kernel = Kernel("leak", body, (LocalDecl("stage", lambda **_: (1,)),))
    execute_ndrange(kernel, NDRange(4, 2), {"out": out})
    np.testing.assert_array_equal(out.array, [99.0, 99.0, 0.0, 0.0])


def test_divergent_barrier_detected():
    def body(item, local):
        if item.local_id == 0:
            yield BARRIER

    with pytest.raises(BarrierDivergenceError, match="barrier"):
        execute_ndrange(Kernel("diverge", body), NDRange(4, 4), {})


def test_mismatched_barrier_counts_detected():
    def body(item, local):
        for _ in range(item.local_id + 1):
            yield BARRIER

    with pytest.raises(BarrierDivergenceError):
        execute_ndrange(Kernel("counts", body), NDRange(4, 4), {})


def test_only_barrier_tokens_allowed():
    def body(item, local):
        yield "not-a-barrier"

    with pytest.raises(TypeError, match="BARRIER"):
        execute_ndrange(Kernel("bad", body), NDRange(2, 2), {})


def test_scratchpad_capacity_enforced():
    def body(item, local):
        yield from ()

    kernel = Kernel(
        "big", body, (LocalDecl("huge", lambda **_: (10_000,)),)
    )
    with pytest.raises(MemoryError):
        execute_ndrange(kernel, NDRange(2, 2), {}, scratchpad_capacity=1024)


def test_negative_local_shape_rejected():
    kernel = Kernel(
        "neg", lambda item, local: iter(()), (LocalDecl("x", lambda **_: (-1,)),)
    )
    with pytest.raises(ValueError, match="negative"):
        execute_ndrange(kernel, NDRange(2, 2), {})


def test_uniform_early_return_is_fine():
    """All items of a group returning before any barrier is legal."""
    def body(item, local, *, flag):
        yield from ()
        if item.group_id == 0:
            return
        flag.store(item.global_id, 1.0)

    flag = Buffer(np.zeros(4))
    execute_ndrange(Kernel("early", body), NDRange(4, 2), {"flag": flag})
    np.testing.assert_array_equal(flag.array, [0, 0, 1, 1])
