"""Unit tests for the COO interchange format."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparse import COOMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = np.where(rng.random((7, 5)) < 0.4, rng.random((7, 5)), 0.0).astype(
            np.float32
        )
        coo = COOMatrix.from_dense(dense)
        np.testing.assert_array_equal(coo.to_dense(), dense)

    def test_empty(self):
        coo = COOMatrix.empty((3, 4))
        assert coo.nnz == 0
        assert coo.density == 0.0
        np.testing.assert_array_equal(coo.to_dense(), np.zeros((3, 4)))

    def test_zero_sized_shape(self):
        coo = COOMatrix.empty((0, 0))
        assert coo.nnz == 0
        assert coo.density == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))

    def test_row_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="row index"):
            COOMatrix((2, 2), np.array([2]), np.array([0]), np.array([1.0]))

    def test_col_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="col index"):
            COOMatrix((2, 2), np.array([0]), np.array([5]), np.array([1.0]))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), np.array([-1]), np.array([0]), np.array([1.0]))

    def test_nonfinite_value_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            COOMatrix((2, 2), np.array([0]), np.array([0]), np.array([np.nan]))

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            COOMatrix.empty((-1, 2))

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            COOMatrix((2, 2), np.zeros((1, 1)), np.zeros((1, 1)), np.zeros((1, 1)))

    def test_dtype_normalization(self):
        coo = COOMatrix((2, 2), [0], [1], [2.5])
        assert coo.row.dtype == np.int64
        assert coo.value.dtype == np.float32


class TestTransforms:
    def test_deduplicate_last_wins(self):
        coo = COOMatrix(
            (2, 2),
            np.array([0, 0, 1]),
            np.array([1, 1, 0]),
            np.array([3.0, 7.0, 2.0]),
        )
        deduped = coo.deduplicate()
        assert deduped.nnz == 2
        assert deduped.to_dense()[0, 1] == 7.0

    def test_deduplicate_noop_when_unique(self, paper_fig2_matrix):
        assert paper_fig2_matrix.deduplicate() == paper_fig2_matrix

    def test_transpose_involution(self, paper_fig2_matrix):
        assert paper_fig2_matrix.transpose().transpose() == paper_fig2_matrix

    def test_transpose_dense_agrees(self, paper_fig2_matrix):
        np.testing.assert_array_equal(
            paper_fig2_matrix.transpose().to_dense(), paper_fig2_matrix.to_dense().T
        )

    def test_sorted_by_row_preserves_content(self, rng):
        perm = rng.permutation(4)
        coo = COOMatrix(
            (4, 4), perm, np.arange(4)[perm], np.arange(1.0, 5.0)[perm]
        )
        assert coo.sorted_by_row() == coo
        assert np.all(np.diff(coo.sorted_by_row().row) >= 0)

    def test_eq_against_other_type(self, paper_fig2_matrix):
        assert (paper_fig2_matrix == 42) is False or paper_fig2_matrix.__eq__(42) is NotImplemented


@settings(max_examples=50, deadline=None)
@given(
    dense=hnp.arrays(
        np.float32,
        hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=12),
        elements=st.sampled_from([0.0, 1.0, 2.5, 5.0]),
    )
)
def test_property_dense_roundtrip(dense):
    coo = COOMatrix.from_dense(dense)
    np.testing.assert_array_equal(coo.to_dense(), dense)
    assert coo.nnz == int(np.count_nonzero(dense))
