"""Unit and property tests for CSR/CSC storage."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix


class TestPaperFig2:
    """CSR of the Fig. 2 example must match the paper's arrays."""

    def test_value_array(self, paper_fig2_matrix):
        csr = CSRMatrix.from_coo(paper_fig2_matrix)
        np.testing.assert_array_equal(csr.value, [1, 2, 3, 4, 5])

    def test_col_idx_array(self, paper_fig2_matrix):
        csr = CSRMatrix.from_coo(paper_fig2_matrix)
        np.testing.assert_array_equal(csr.col_idx, [0, 3, 1, 0, 2])

    def test_row_ptr_array(self, paper_fig2_matrix):
        csr = CSRMatrix.from_coo(paper_fig2_matrix)
        np.testing.assert_array_equal(csr.row_ptr, [0, 2, 3, 3, 5])

    def test_count_nonzeros_matches_algorithm2(self, paper_fig2_matrix):
        csr = CSRMatrix.from_coo(paper_fig2_matrix)
        assert [csr.count_nonzeros(u) for u in range(4)] == [2, 1, 0, 2]


class TestCSRValidation:
    def test_bad_row_ptr_length(self):
        with pytest.raises(ValueError, match="row_ptr"):
            CSRMatrix((2, 2), np.array([1.0]), np.array([0]), np.array([0, 1]))

    def test_row_ptr_not_ending_at_nnz(self):
        with pytest.raises(ValueError, match="row_ptr"):
            CSRMatrix((2, 2), np.array([1.0]), np.array([0]), np.array([0, 0, 2]))

    def test_decreasing_row_ptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix(
                (2, 2),
                np.array([1.0, 2.0]),
                np.array([0, 1]),
                np.array([0, 3, 2]),
            )

    def test_col_idx_out_of_range(self):
        with pytest.raises(ValueError, match="col_idx"):
            CSRMatrix((1, 2), np.array([1.0]), np.array([2]), np.array([0, 1]))

    def test_value_colidx_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            CSRMatrix((1, 2), np.array([1.0]), np.array([0, 1]), np.array([0, 1]))


class TestCSROperations:
    def test_dense_roundtrip(self, small_ratings):
        dense = small_ratings.to_dense()
        assert CSRMatrix.from_dense(dense) == small_ratings

    def test_row_slice_contents(self, paper_fig2_matrix):
        csr = CSRMatrix.from_coo(paper_fig2_matrix)
        cols, vals = csr.row_slice(3)
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_array_equal(vals, [4.0, 5.0])

    def test_row_slice_out_of_range(self, small_ratings):
        with pytest.raises(IndexError):
            small_ratings.row_slice(small_ratings.nrows)

    def test_row_lengths_sum_to_nnz(self, small_ratings):
        assert small_ratings.row_lengths().sum() == small_ratings.nnz

    def test_matvec_matches_dense(self, small_ratings, rng):
        x = rng.random(small_ratings.ncols)
        np.testing.assert_allclose(
            small_ratings.matvec(x), small_ratings.to_dense() @ x, rtol=1e-6
        )

    def test_matvec_shape_check(self, small_ratings):
        with pytest.raises(ValueError):
            small_ratings.matvec(np.zeros(small_ratings.ncols + 1))

    def test_matmat_matches_dense(self, small_ratings, rng):
        B = rng.random((small_ratings.ncols, 6))
        np.testing.assert_allclose(
            small_ratings.matmat(B), small_ratings.to_dense() @ B, rtol=1e-6
        )

    def test_matmat_shape_check(self, small_ratings):
        with pytest.raises(ValueError):
            small_ratings.matmat(np.zeros((small_ratings.ncols + 2, 3)))

    def test_transpose_to_csr(self, small_ratings):
        t = small_ratings.transpose_to_csr()
        np.testing.assert_array_equal(t.to_dense(), small_ratings.to_dense().T)

    def test_expanded_rows(self, paper_fig2_matrix):
        csr = CSRMatrix.from_coo(paper_fig2_matrix)
        np.testing.assert_array_equal(csr.expanded_rows(), [0, 0, 1, 3, 3])

    def test_from_coo_deduplicates(self):
        coo = COOMatrix((2, 2), [0, 0], [1, 1], [1.0, 9.0])
        csr = CSRMatrix.from_coo(coo)
        assert csr.nnz == 1
        assert csr.to_dense()[0, 1] == 9.0


class TestDerivedStructureCaches:
    """row_lengths/expanded_rows are computed once and can never go stale:
    the matrix is immutable and the caches are handed out read-only."""

    def test_row_lengths_cached(self, small_ratings):
        first = small_ratings.row_lengths()
        assert small_ratings.row_lengths() is first

    def test_expanded_rows_cached(self, small_ratings):
        first = small_ratings.expanded_rows()
        assert small_ratings.expanded_rows() is first

    def test_caches_are_read_only(self, small_ratings):
        with pytest.raises(ValueError):
            small_ratings.row_lengths()[0] = 99
        with pytest.raises(ValueError):
            small_ratings.expanded_rows()[0] = 99

    def test_cached_values_correct(self, small_ratings):
        np.testing.assert_array_equal(
            small_ratings.row_lengths(), np.diff(small_ratings.row_ptr)
        )
        np.testing.assert_array_equal(
            small_ratings.expanded_rows(),
            np.repeat(
                np.arange(small_ratings.nrows), np.diff(small_ratings.row_ptr)
            ),
        )

    def test_to_coo_arrays_stay_writable(self, small_ratings):
        """Conversions must hand out fresh arrays, not the frozen caches."""
        coo = small_ratings.to_coo()
        coo.row[0] = coo.row[0]  # would raise on a read-only view


class TestDegreeBins:
    def test_bins_partition_occupied_rows(self, small_ratings):
        bins = small_ratings.degree_bins()
        all_rows = np.concatenate([b.rows for b in bins]) if bins else np.array([])
        occupied = np.nonzero(small_ratings.row_lengths() > 0)[0]
        assert sorted(all_rows.tolist()) == sorted(occupied.tolist())

    def test_bin_invariants(self, small_ratings):
        growth = 1.25
        lengths = small_ratings.row_lengths()
        for b in small_ratings.degree_bins(growth):
            assert np.all(np.diff(b.lengths) >= 0)  # ascending degrees
            assert int(b.lengths[-1]) <= b.width  # grid edge covers the bin
            assert b.width <= max(int(b.lengths[0]), int(b.lengths[0] * growth))
            np.testing.assert_array_equal(b.lengths, lengths[b.rows])
            np.testing.assert_array_equal(b.starts, small_ratings.row_ptr[b.rows])
            assert b.nnz == int(b.lengths.sum())

    def test_exact_bins_with_growth_one(self, small_ratings):
        for b in small_ratings.degree_bins(growth=1.0):
            assert b.is_uniform
            assert np.all(b.lengths == b.width)

    def test_bins_cached_per_growth(self, small_ratings):
        assert small_ratings.degree_bins(1.25) is small_ratings.degree_bins(1.25)
        assert small_ratings.degree_bins(1.0) is not small_ratings.degree_bins(1.25)

    def test_empty_rows_excluded(self):
        dense = np.zeros((4, 3), dtype=np.float32)
        dense[1, 0] = 1.0
        dense[3, :] = 2.0
        csr = CSRMatrix.from_dense(dense)
        bins = csr.degree_bins()
        assert {int(r) for b in bins for r in b.rows} == {1, 3}

    def test_empty_matrix_has_no_bins(self):
        csr = CSRMatrix(
            (3, 2),
            np.array([], dtype=np.float32),
            np.array([], dtype=np.int64),
            np.zeros(4, dtype=np.int64),
        )
        assert csr.degree_bins() == ()

    def test_bad_growth_rejected(self, small_ratings):
        with pytest.raises(ValueError):
            small_ratings.degree_bins(growth=0.5)


class TestCSC:
    def test_paper_example_arrays(self, paper_fig2_matrix):
        csc = CSCMatrix.from_coo(paper_fig2_matrix)
        # column-major: col0 has rows 0,3; col1 row 1; col2 row 3; col3 row 0
        np.testing.assert_array_equal(csc.value, [1, 4, 3, 5, 2])
        np.testing.assert_array_equal(csc.row_idx, [0, 3, 1, 3, 0])
        np.testing.assert_array_equal(csc.col_ptr, [0, 2, 3, 4, 5])

    def test_dense_roundtrip(self, small_ratings):
        csc = CSCMatrix.from_csr(small_ratings)
        np.testing.assert_array_equal(csc.to_dense(), small_ratings.to_dense())

    def test_col_slice(self, paper_fig2_matrix):
        csc = CSCMatrix.from_coo(paper_fig2_matrix)
        rows, vals = csc.col_slice(0)
        np.testing.assert_array_equal(rows, [0, 3])
        np.testing.assert_array_equal(vals, [1.0, 4.0])

    def test_col_lengths_sum_to_nnz(self, small_ratings):
        csc = CSCMatrix.from_csr(small_ratings)
        assert csc.col_lengths().sum() == csc.nnz == small_ratings.nnz

    def test_transpose_as_csr_is_zero_copy_view(self, small_ratings):
        csc = CSCMatrix.from_csr(small_ratings)
        t = csc.transpose_as_csr()
        assert t.value is csc.value

    def test_to_coo_roundtrip(self, small_ratings):
        csc = CSCMatrix.from_csr(small_ratings)
        assert CSCMatrix.from_coo(csc.to_coo()) == csc

    def test_direct_constructor_validates(self):
        with pytest.raises(ValueError):
            CSCMatrix((2, 2), np.array([1.0]), np.array([0]), np.array([0, 2, 1]))

    def test_count_nonzeros(self, paper_fig2_matrix):
        csc = CSCMatrix.from_coo(paper_fig2_matrix)
        assert [csc.count_nonzeros(i) for i in range(4)] == [2, 1, 1, 1]


sparse_dense = hnp.arrays(
    np.float32,
    hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=15),
    elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, 3.5, 5.0]),
)


@settings(max_examples=40, deadline=None)
@given(dense=sparse_dense)
def test_property_csr_csc_consistent(dense):
    """CSR and CSC views of the same matrix must agree everywhere."""
    csr = CSRMatrix.from_dense(dense)
    csc = CSCMatrix.from_dense(dense)
    np.testing.assert_array_equal(csr.to_dense(), csc.to_dense())
    assert csr.nnz == csc.nnz
    # row lengths from CSC row_idx must match CSR row_ptr diffs
    np.testing.assert_array_equal(
        np.bincount(csc.row_idx, minlength=dense.shape[0]), csr.row_lengths()
    )


@settings(max_examples=40, deadline=None)
@given(dense=sparse_dense)
def test_property_transpose_roundtrip(dense):
    csr = CSRMatrix.from_dense(dense)
    assert csr.transpose_to_csr().transpose_to_csr() == csr
