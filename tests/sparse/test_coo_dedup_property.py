"""Property test: ``COOMatrix.deduplicate`` is last-write-wins.

The loaders rely on this contract — a rating file that restates a
(user, item) pair must end up with the *final* value, exactly as a dict
built by sequential assignment would.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import COOMatrix

_SHAPE = (7, 5)


@st.composite
def coo_entries(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    rows = draw(
        st.lists(
            st.integers(0, _SHAPE[0] - 1), min_size=n, max_size=n
        )
    )
    cols = draw(
        st.lists(
            st.integers(0, _SHAPE[1] - 1), min_size=n, max_size=n
        )
    )
    vals = draw(
        st.lists(
            st.floats(
                min_value=-100, max_value=100,
                allow_nan=False, allow_infinity=False, width=32,
            ),
            min_size=n, max_size=n,
        )
    )
    return rows, cols, vals


@settings(max_examples=150, deadline=None)
@given(coo_entries())
def test_deduplicate_is_last_write_wins(entries):
    rows, cols, vals = entries
    coo = COOMatrix(
        _SHAPE,
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals, dtype=np.float32),
    ).deduplicate()

    # The reference semantics: sequential assignment into a dict.
    expect: dict[tuple[int, int], np.float32] = {}
    for r, c, v in zip(rows, cols, vals):
        expect[(r, c)] = np.float32(v)

    got = {
        (int(r), int(c)): v
        for r, c, v in zip(coo.row, coo.col, coo.value)
    }
    assert got.keys() == expect.keys()
    for key in expect:
        assert got[key] == expect[key], key

    # Idempotent, and nnz equals the number of distinct coordinates.
    again = coo.deduplicate()
    assert again.nnz == coo.nnz == len(expect)
