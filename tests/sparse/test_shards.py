"""The on-disk shard store: format round-trip, budget planning, knobs.

The out-of-core trainers' correctness reduces to two properties tested
here: (1) a store round-trips any rating matrix exactly (both
orientations, any dtype, empty rows included), and (2) the cols
orientation stores within-column entries in the same order as
``CSCMatrix.from_csr`` — the invariant that makes the sharded Y
half-sweep bitwise-equal to the in-RAM one.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.shardio import build_shard_store
from repro.parallel.executor import solve_bytes_per_row
from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix
from repro.sparse.shards import (
    DEFAULT_SHARD_BYTES,
    MIN_SHARD_BYTES,
    ShardStore,
    ShardedCSR,
    configure_sharding,
    is_shard_store,
    resolve_shard_bytes,
)


def _random_coo(m, n, nnz, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    flat = rng.choice(m * n, size=min(nnz, m * n), replace=False)
    rows = (flat // n).astype(np.int64)
    cols = (flat % n).astype(np.int64)
    vals = rng.uniform(1.0, 5.0, size=flat.size).astype(dtype)
    return COOMatrix((m, n), rows, cols, vals)


class TestRoundTrip:
    def test_rows_orientation_matches_csr(self, tmp_path):
        coo = _random_coo(40, 17, 300, seed=1)
        store = build_shard_store(tmp_path / "s", coo)
        assert store.rows.to_csr() == CSRMatrix.from_coo(coo)

    def test_cols_orientation_is_bitwise_csc_transpose(self, tmp_path):
        coo = _random_coo(33, 21, 250, seed=2)
        R = CSRMatrix.from_coo(coo)
        expected = CSCMatrix.from_csr(R).transpose_as_csr()
        store = build_shard_store(tmp_path / "s", coo)
        got = store.cols.to_csr()
        assert np.array_equal(got.row_ptr, expected.row_ptr)
        assert np.array_equal(got.col_idx, expected.col_idx)
        assert np.array_equal(got.value, expected.value)

    def test_float64_values(self, tmp_path):
        coo = _random_coo(10, 8, 40, seed=3, dtype=np.float64)
        store = build_shard_store(tmp_path / "s", coo, value_dtype="float64")
        assert store.meta["value_dtype"] == "float64"
        assert store.rows._values.dtype == np.float64  # on-disk precision
        # Resident CSR shards follow the substrate's float32 value policy.
        assert store.rows.to_csr() == CSRMatrix.from_coo(coo)

    def test_empty_matrix(self, tmp_path):
        coo = COOMatrix(
            (5, 4),
            np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.float32),
        )
        store = build_shard_store(tmp_path / "s", coo)
        assert store.nnz == 0
        assert store.rows.to_csr().nnz == 0
        assert list(store.rows.iter_resident()) != []  # one empty span

    def test_csr_source_fast_path(self, tmp_path):
        R = CSRMatrix.from_coo(_random_coo(25, 12, 120, seed=4))
        store = build_shard_store(tmp_path / "s", R)
        assert store.rows.to_csr() == R

    def test_chunk_factory_source(self, tmp_path):
        coo = _random_coo(30, 14, 200, seed=5)
        order = np.argsort(coo.col, kind="stable")  # deliberately shuffled

        def chunks():
            for a in range(0, coo.nnz, 64):
                sl = order[a:a + 64]
                yield coo.row[sl], coo.col[sl], coo.value[sl]

        store = build_shard_store(tmp_path / "s", chunks, shape=(30, 14))
        assert store.rows.to_csr() == CSRMatrix.from_coo(coo)

    def test_duplicate_entries_rejected(self, tmp_path):
        def chunks():
            yield (
                np.array([2, 2], np.int64),
                np.array([3, 3], np.int64),
                np.array([1.0, 2.0], np.float32),
            )

        with pytest.raises(ValueError, match="duplicate rating"):
            build_shard_store(tmp_path / "s", chunks, shape=(5, 5))


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 12),
    n=st.integers(1, 9),
    density=st.floats(0.0, 1.0),
    dtype=st.sampled_from([np.float32, np.float64]),
    seed=st.integers(0, 99),
)
def test_roundtrip_property(tmp_path_factory, m, n, density, dtype, seed):
    """Any matrix survives store-and-reload in both orientations."""
    nnz = int(density * m * n)
    coo = _random_coo(m, n, nnz, seed=seed, dtype=dtype)
    dest = tmp_path_factory.mktemp("prop") / "s"
    store = build_shard_store(
        dest, coo, value_dtype=np.dtype(dtype).name
    )
    R = CSRMatrix.from_coo(coo)
    assert store.rows.to_csr() == R
    expected_cols = CSCMatrix.from_csr(R).transpose_as_csr()
    assert store.cols.to_csr() == expected_cols


class TestSpans:
    def test_spans_cover_all_rows_once(self, tmp_path):
        coo = _random_coo(200, 30, 2000, seed=6)
        store = build_shard_store(tmp_path / "s", coo)
        view = ShardStore.open(tmp_path / "s", shard_bytes=MIN_SHARD_BYTES).rows
        spans = view.shards(extra_row_bytes=32 << 10)  # force several
        assert len(spans) > 1
        assert spans[0].row_start == 0
        assert spans[-1].row_stop == view.nrows
        for a, b in zip(spans, spans[1:]):
            assert a.row_stop == b.row_start
        assert sum(sp.nnz for sp in spans) == view.nnz

    def test_single_span_when_budget_is_large(self, tmp_path):
        coo = _random_coo(20, 10, 80, seed=7)
        store = build_shard_store(tmp_path / "s", coo)
        assert len(store.rows.shards()) == 1

    def test_iter_resident_matches_row_ranges(self, tmp_path):
        coo = _random_coo(150, 25, 1500, seed=8)
        store = build_shard_store(tmp_path / "s", coo)
        view = ShardStore.open(tmp_path / "s", shard_bytes=MIN_SHARD_BYTES).rows
        R = CSRMatrix.from_coo(coo)
        extra = solve_bytes_per_row(64)
        for prefetch in (False, True):
            seen = 0
            for sp, mat in view.iter_resident(extra, prefetch=prefetch):
                expected = R.take_rows(np.arange(sp.row_start, sp.row_stop))
                assert mat == expected
                seen += mat.nnz
            assert seen == R.nnz

    def test_degree_bins_match_in_ram_grid(self, tmp_path):
        coo = _random_coo(60, 15, 400, seed=9)
        store = build_shard_store(tmp_path / "s", coo)
        R = CSRMatrix.from_coo(coo)
        got = store.rows.degree_bins()
        want = R.degree_bins()
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g.width == w.width
            assert np.array_equal(g.rows, w.rows)

    def test_matmat_and_min_value(self, tmp_path):
        coo = _random_coo(45, 12, 300, seed=10)
        store = build_shard_store(tmp_path / "s", coo)
        R = CSRMatrix.from_coo(coo)
        B = np.random.default_rng(0).standard_normal((12, 6))
        assert np.allclose(store.rows.matmat(B), R.matmat(B))
        assert store.rows.min_value() == float(R.value.min())


class TestStoreErrors:
    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardStore.open(tmp_path / "nope")

    def test_version_mismatch(self, tmp_path):
        coo = _random_coo(5, 5, 10, seed=11)
        build_shard_store(tmp_path / "s", coo)
        meta_path = tmp_path / "s" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format"):
            ShardStore.open(tmp_path / "s")

    def test_truncated_data_file(self, tmp_path):
        coo = _random_coo(8, 6, 20, seed=12)
        build_shard_store(tmp_path / "s", coo)
        data = tmp_path / "s" / "rows.values.bin"
        data.write_bytes(data.read_bytes()[:-4])
        with pytest.raises(ValueError):
            ShardStore.open(tmp_path / "s")

    def test_existing_dest_needs_overwrite(self, tmp_path):
        coo = _random_coo(5, 5, 10, seed=13)
        build_shard_store(tmp_path / "s", coo)
        with pytest.raises(FileExistsError):
            build_shard_store(tmp_path / "s", coo)
        build_shard_store(tmp_path / "s", coo, overwrite=True)

    def test_is_shard_store(self, tmp_path):
        coo = _random_coo(5, 5, 10, seed=14)
        build_shard_store(tmp_path / "s", coo)
        assert is_shard_store(tmp_path / "s")
        assert not is_shard_store(tmp_path)
        assert not is_shard_store(tmp_path / "absent")


class TestKnobs:
    def teardown_method(self):
        configure_sharding()  # restore out-of-the-box behavior

    def test_precedence(self, monkeypatch):
        assert resolve_shard_bytes() == DEFAULT_SHARD_BYTES
        monkeypatch.setenv("REPRO_SHARD_BYTES", str(4 << 20))
        assert resolve_shard_bytes() == 4 << 20
        configure_sharding(8 << 20)
        assert resolve_shard_bytes() == 8 << 20  # configured beats env
        assert resolve_shard_bytes(2 << 20) == 2 << 20  # explicit wins

    def test_floor_enforced(self):
        with pytest.raises(ValueError, match="shard_bytes"):
            resolve_shard_bytes(MIN_SHARD_BYTES - 1)
        with pytest.raises(ValueError, match="shard_bytes"):
            configure_sharding(1)

    def test_bad_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BYTES", "12")
        with pytest.raises(ValueError, match="REPRO_SHARD_BYTES"):
            resolve_shard_bytes()
