"""Tests for degree statistics and row partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    degree_stats,
    gini_coefficient,
    partition_rows_balanced,
    partition_rows_contiguous,
    window_imbalance,
)

degree_seqs = st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200)


class TestDegreeStats:
    def test_basic_fields(self):
        s = degree_stats(np.array([2, 1, 0, 2]))
        assert (s.count, s.nnz, s.max, s.min) == (4, 5, 2, 0)
        assert s.empty_fraction == 0.25
        assert s.mean == pytest.approx(1.25)

    def test_empty_sequence(self):
        s = degree_stats(np.array([], dtype=np.int64))
        assert s.count == 0 and s.nnz == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            degree_stats(np.array([1, -2]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            degree_stats(np.zeros((2, 2), dtype=int))

    def test_str_contains_key_numbers(self):
        assert "nnz=5" in str(degree_stats(np.array([2, 3])))


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(50, 7)) == pytest.approx(0.0, abs=1e-12)

    def test_single_owner_is_near_one(self):
        x = np.zeros(1000)
        x[0] = 1000
        assert gini_coefficient(x) > 0.99

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(10)) == 0.0

    def test_empty(self):
        assert gini_coefficient(np.array([])) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(seq=degree_seqs)
    def test_property_bounded(self, seq):
        g = gini_coefficient(np.array(seq))
        assert -1e-9 <= g < 1.0

    @settings(max_examples=30, deadline=None)
    @given(seq=degree_seqs, scale=st.integers(min_value=2, max_value=9))
    def test_property_scale_invariant(self, seq, scale):
        a = np.array(seq)
        assert gini_coefficient(a) == pytest.approx(
            gini_coefficient(a * scale), abs=1e-9
        )


class TestWindowImbalance:
    def test_uniform_is_one(self):
        assert window_imbalance(np.full(64, 5), 32) == pytest.approx(1.0)

    def test_skew_increases_imbalance(self):
        balanced = np.full(64, 10)
        skewed = balanced.copy()
        skewed[::8] = 80
        assert window_imbalance(skewed, 8) > window_imbalance(balanced, 8)

    def test_padding_of_partial_window(self):
        # 3 rows, window 4: padded zeros lower the mean, raising max/mean.
        v = window_imbalance(np.array([4, 4, 4]), 4)
        assert v == pytest.approx(4 / 3)

    def test_window_one_is_always_one(self):
        assert window_imbalance(np.array([1, 100, 3]), 1) == pytest.approx(1.0)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            window_imbalance(np.array([1]), 0)

    def test_empty_sequence(self):
        assert window_imbalance(np.array([]), 8) == 1.0

    def test_all_empty_rows(self):
        assert window_imbalance(np.zeros(16), 4) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(seq=degree_seqs, window=st.sampled_from([1, 2, 4, 8, 16, 32]))
    def test_property_at_least_one(self, seq, window):
        assert window_imbalance(np.array(seq), window) >= 1.0 - 1e-12


class TestPartition:
    def test_contiguous_covers_all_rows(self):
        lengths = np.arange(10)
        part = partition_rows_contiguous(lengths, 3)
        assert part.loads.sum() == lengths.sum()
        assert set(part.assignment) == {0, 1, 2}

    def test_contiguous_is_contiguous(self):
        part = partition_rows_contiguous(np.ones(10, dtype=int), 3)
        assert np.all(np.diff(part.assignment) >= 0)

    def test_balanced_beats_contiguous_on_skew(self, rng):
        lengths = rng.zipf(1.6, size=256).clip(max=10_000)
        cont = partition_rows_contiguous(lengths, 16)
        bal = partition_rows_balanced(lengths, 16)
        assert bal.imbalance <= cont.imbalance + 1e-9

    def test_balanced_lpt_bound(self, rng):
        lengths = rng.integers(1, 100, size=128)
        part = partition_rows_balanced(lengths, 8)
        # LPT ratio bound vs the trivial lower bound (mean load).
        assert part.loads.max() <= (4 / 3) * max(
            lengths.sum() / 8, lengths.max()
        ) + 1e-9

    def test_rows_of_inverse_of_assignment(self):
        part = partition_rows_balanced(np.array([5, 1, 3, 2]), 2)
        for p in range(2):
            for r in part.rows_of(p):
                assert part.assignment[r] == p

    def test_rows_of_out_of_range(self):
        part = partition_rows_contiguous(np.ones(4, dtype=int), 2)
        with pytest.raises(IndexError):
            part.rows_of(2)

    def test_zero_parts_rejected(self):
        for fn in (partition_rows_contiguous, partition_rows_balanced):
            with pytest.raises(ValueError):
                fn(np.ones(4, dtype=int), 0)

    def test_more_parts_than_rows(self):
        part = partition_rows_balanced(np.array([3, 1]), 5)
        assert part.loads.sum() == 4
        assert (part.loads > 0).sum() == 2

    @settings(max_examples=40, deadline=None)
    @given(seq=degree_seqs, nparts=st.integers(min_value=1, max_value=17))
    def test_property_loads_conserved(self, seq, nparts):
        lengths = np.array(seq)
        for fn in (partition_rows_contiguous, partition_rows_balanced):
            part = fn(lengths, nparts)
            assert part.loads.sum() == lengths.sum()
            np.testing.assert_array_equal(
                np.bincount(part.assignment, weights=lengths, minlength=nparts).astype(
                    np.int64
                ),
                part.loads,
            )
