"""Streaming rating ingestion: line-chunked files, chunked generators.

``load_ratings`` is now a thin consumer of ``iter_rating_file``, so the
property that matters is equivalence: the chunked reader must reproduce
the one-shot parse (IDs, values, dedup semantics) for any chunk size.
``generate_ratings_chunked`` feeds the shard-store builder without ever
materializing the full matrix; it must be deterministic, duplicate-free
and column-sorted within rows — the builder's fast-path contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loaders import iter_rating_file, load_ratings
from repro.datasets.shardio import (
    build_shard_store,
    build_store_from_rating_file,
)
from repro.datasets.catalog import DatasetSpec
from repro.datasets.synthetic import generate_ratings, generate_ratings_chunked
from repro.sparse import CSRMatrix


def _write_file(path, lines):
    path.write_text("\n".join(lines) + "\n")
    return path


class TestIterRatingFile:
    def test_chunks_concatenate_to_full_parse(self, tmp_path):
        lines = [f"{u} {i} {u + i}.5" for u in range(9) for i in range(7)]
        path = _write_file(tmp_path / "r.txt", lines)
        whole = load_ratings(path)
        for chunk_lines in (1, 4, 1000):
            users = np.concatenate(
                [u for u, _, _ in iter_rating_file(path, chunk_lines=chunk_lines)]
            )
            items = np.concatenate(
                [i for _, i, _ in iter_rating_file(path, chunk_lines=chunk_lines)]
            )
            vals = np.concatenate(
                [v for _, _, v in iter_rating_file(path, chunk_lines=chunk_lines)]
            )
            assert users.size == len(lines)
            # load_ratings compacts IDs; raw stream keeps originals.
            assert users.dtype == np.int64 and vals.dtype == np.float32
        assert whole.ratings.nnz == len(lines)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = _write_file(
            tmp_path / "r.txt",
            ["# header", "", "1,2,3.0", "  ", "2,3,4.0", "# trailing"],
        )
        chunks = list(iter_rating_file(path))
        assert sum(u.size for u, _, _ in chunks) == 2

    def test_delimiter_autodetect_matches_loader(self, tmp_path):
        path = _write_file(tmp_path / "r.csv", ["1,2,3.5", "4,5,2.0"])
        (u, i, v), = list(iter_rating_file(path))
        assert u.tolist() == [1, 4]
        assert v.tolist() == [3.5, 2.0]

    def test_bad_line_reports_position(self, tmp_path):
        path = _write_file(tmp_path / "r.txt", ["1 2 3.0", "garbage"])
        with pytest.raises(ValueError, match=r"r\.txt:2"):
            list(iter_rating_file(path))

    def test_loader_equivalence_on_messy_file(self, tmp_path):
        lines = ["# c", "3 1 2.0", "3 1 4.0", "0 2 1.0", "", "5 0 3.0"]
        path = _write_file(tmp_path / "r.txt", lines)
        rf = load_ratings(path)  # last-write-wins dedup, compacted IDs
        assert rf.ratings.nnz == 3
        u3 = rf.user_ids.tolist().index(3)
        entry = np.where(rf.ratings.row == u3)[0]
        assert rf.ratings.value[entry] == pytest.approx(4.0)


class TestGenerateRatingsChunked:
    _SPEC = DatasetSpec(
        name="chunked", abbr="CHNK", m=300, n=90, nnz=4000,
        row_alpha=0.9, col_alpha=0.9, rating_min=1.0, rating_max=5.0,
    )

    def test_deterministic(self):
        a = list(generate_ratings_chunked(self._SPEC, seed=3, chunk_nnz=512))
        b = list(generate_ratings_chunked(self._SPEC, seed=3, chunk_nnz=512))
        for (r1, c1, v1), (r2, c2, v2) in zip(a, b):
            assert np.array_equal(r1, r2)
            assert np.array_equal(c1, c2)
            assert np.array_equal(v1, v2)

    def test_sorted_and_duplicate_free(self):
        rows = np.concatenate(
            [r for r, _, _ in generate_ratings_chunked(self._SPEC, seed=3)]
        )
        cols = np.concatenate(
            [c for _, c, _ in generate_ratings_chunked(self._SPEC, seed=3)]
        )
        keys = rows.astype(np.int64) * self._SPEC.n + cols
        assert np.all(np.diff(keys) > 0)  # strictly ascending = sorted + unique

    def test_matches_spec_shape(self):
        total = sum(
            v.size for _, _, v in generate_ratings_chunked(self._SPEC, seed=3)
        )
        assert total == self._SPEC.nnz

    def test_degree_sequence_invariant_to_chunk_size(self):
        """Row degrees come from the seed alone; per-entry draws are
        consumed block-by-block, so columns/values legitimately differ
        between chunk sizes — but every stream must stay sorted, unique,
        and degree-identical."""
        streams = {}
        for chunk_nnz in (64, 1 << 22):
            parts = list(zip(*generate_ratings_chunked(
                self._SPEC, seed=9, chunk_nnz=chunk_nnz
            )))
            rows, cols, vals = (np.concatenate(p) for p in parts)
            keys = rows.astype(np.int64) * self._SPEC.n + cols
            assert np.all(np.diff(keys) > 0)
            assert vals.size == self._SPEC.nnz
            streams[chunk_nnz] = rows
        assert np.array_equal(streams[64], streams[1 << 22])

    def test_store_build_from_factory(self, tmp_path):
        store = build_shard_store(
            tmp_path / "s",
            lambda: generate_ratings_chunked(self._SPEC, seed=3),
            shape=(self._SPEC.m, self._SPEC.n),
            sorted_within_rows=True,
        )
        assert store.nnz == self._SPEC.nnz
        R = store.rows.to_csr()
        assert R.nnz == self._SPEC.nnz


class TestStoreFromRatingFile:
    def test_round_trip(self, tmp_path):
        spec = DatasetSpec(
            name="file", abbr="FILE", m=60, n=40, nnz=500,
            row_alpha=0.9, col_alpha=0.9, rating_min=1.0, rating_max=5.0,
        )
        coo = generate_ratings(spec, seed=4)
        lines = [
            f"{u * 7} {i * 3} {v:.3f}"  # sparse external IDs
            for u, i, v in zip(coo.row, coo.col, coo.value)
        ]
        path = _write_file(tmp_path / "r.txt", lines)
        store, user_ids, item_ids = build_store_from_rating_file(
            tmp_path / "s", path
        )
        rf = load_ratings(path)
        assert np.array_equal(user_ids, rf.user_ids)
        assert np.array_equal(item_ids, rf.item_ids)
        assert store.rows.to_csr() == CSRMatrix.from_coo(rf.ratings)
