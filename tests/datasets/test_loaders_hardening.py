"""Loader hardening: delimiter detection edge cases and ID round-trips.

Real rating dumps arrive with CRLF endings, column-aligned spaces and
comment headers; and IDs are sparse (MovieLens user 6040 is compact row
6039 only after compaction).  These tests pin the fixed behaviors:

* CRLF, repeated-space runs, and comment/blank first lines all parse;
* ``save_ratings`` can translate compact indices back through the
  :class:`RatingFile` ID maps, so load → save → load round-trips the
  original IDs bit-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loaders import load_ratings, save_ratings
from repro.sparse import COOMatrix


class TestDelimiterHardening:
    def test_crlf_line_endings(self, tmp_path):
        path = tmp_path / "crlf.dat"
        path.write_bytes(b"1::10::4.0\r\n2::20::3.0\r\n1::20::5.0\r\n")
        rf = load_ratings(path)
        assert rf.ratings.nnz == 3
        np.testing.assert_array_equal(rf.user_ids, [1, 2])
        np.testing.assert_array_equal(rf.item_ids, [10, 20])

    def test_repeated_spaces_between_fields(self, tmp_path):
        path = tmp_path / "aligned.dat"
        path.write_text("1   10    4.0\n2  20   3.0\n12 7  5.0\n")
        rf = load_ratings(path)
        assert rf.ratings.nnz == 3
        np.testing.assert_array_equal(rf.user_ids, [1, 2, 12])
        np.testing.assert_array_equal(rf.item_ids, [7, 10, 20])

    def test_mixed_tabs_in_space_delimited_file(self, tmp_path):
        path = tmp_path / "mixed.dat"
        path.write_text("1 10\t4.0\n2 20 \t 3.0\n")
        rf = load_ratings(path, delimiter=" ")
        assert rf.ratings.nnz == 2

    def test_comment_and_blank_first_lines(self, tmp_path):
        # The comment even contains a *different* delimiter — detection
        # must wait for the first data line.
        path = tmp_path / "commented.dat"
        path.write_text(
            "# user::item::rating dump\n"
            "\n"
            "1\t10\t4.0\n"
            "2\t20\t3.0\n"
        )
        rf = load_ratings(path)
        assert rf.ratings.nnz == 2
        np.testing.assert_array_equal(rf.user_ids, [1, 2])

    def test_crlf_with_comment_header(self, tmp_path):
        path = tmp_path / "both.dat"
        path.write_bytes(b"# header\r\n\r\n5,7,2.5\r\n6,8,1.5\r\n")
        rf = load_ratings(path)
        assert rf.ratings.nnz == 2
        np.testing.assert_array_equal(rf.ratings.value, [2.5, 1.5])


class TestSaveRoundTrip:
    def _sparse_id_file(self, tmp_path):
        path = tmp_path / "orig.dat"
        path.write_text(
            "6040\t100\t5\n"
            "6040\t2858\t4\n"
            "17\t100\t3\n"
            "999\t50\t1\n"
        )
        return path

    def test_round_trip_preserves_original_ids(self, tmp_path):
        rf = load_ratings(self._sparse_id_file(tmp_path))
        out = tmp_path / "resaved.dat"
        save_ratings(
            out, rf.ratings, user_ids=rf.user_ids, item_ids=rf.item_ids
        )
        rf2 = load_ratings(out)
        np.testing.assert_array_equal(rf2.user_ids, rf.user_ids)
        np.testing.assert_array_equal(rf2.item_ids, rf.item_ids)
        np.testing.assert_array_equal(rf2.ratings.row, rf.ratings.row)
        np.testing.assert_array_equal(rf2.ratings.col, rf.ratings.col)
        np.testing.assert_array_equal(rf2.ratings.value, rf.ratings.value)
        # And the file itself carries the *original* sparse IDs.
        text = out.read_text()
        assert "6040" in text and "2858" in text and "999" in text

    def test_without_maps_writes_compact_indices(self, tmp_path):
        rf = load_ratings(self._sparse_id_file(tmp_path))
        out = tmp_path / "compact.dat"
        save_ratings(out, rf.ratings)
        assert "6040" not in out.read_text()

    def test_rejects_wrong_length_maps(self, tmp_path):
        coo = COOMatrix((2, 3), [0, 1], [0, 2], [1.0, 2.0])
        with pytest.raises(ValueError, match="user_ids"):
            save_ratings(tmp_path / "x.dat", coo, user_ids=np.array([5]))
        with pytest.raises(ValueError, match="item_ids"):
            save_ratings(
                tmp_path / "x.dat", coo,
                user_ids=np.array([5, 9]), item_ids=np.array([1, 2]),
            )
