"""Tests for file loaders, train/test splits and planted problems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    load_ratings,
    planted_problem,
    save_ratings,
    train_test_split,
)
from repro.sparse import COOMatrix, CSRMatrix


class TestLoaders:
    def _roundtrip(self, tmp_path, text, name="r.dat", delimiter=None):
        path = tmp_path / name
        path.write_text(text)
        return load_ratings(path, delimiter=delimiter)

    def test_movielens_double_colon(self, tmp_path):
        rf = self._roundtrip(tmp_path, "1::10::4.0::978300760\n1::20::3.0::1\n7::10::5.0::2\n")
        assert rf.ratings.shape == (2, 2)
        assert rf.n_users == 2 and rf.n_items == 2
        np.testing.assert_array_equal(rf.user_ids, [1, 7])
        np.testing.assert_array_equal(rf.item_ids, [10, 20])
        assert rf.ratings.to_dense()[0, 0] == 4.0

    def test_tab_and_comma(self, tmp_path):
        a = self._roundtrip(tmp_path, "3\t5\t2.5\n", name="a.tsv")
        b = self._roundtrip(tmp_path, "3,5,2.5\n", name="b.csv")
        assert a.ratings.to_dense()[0, 0] == b.ratings.to_dense()[0, 0] == 2.5

    def test_comments_and_blanks_skipped(self, tmp_path):
        rf = self._roundtrip(tmp_path, "# header\n\n1 2 3.0\n")
        assert rf.ratings.nnz == 1

    def test_duplicate_last_wins(self, tmp_path):
        rf = self._roundtrip(tmp_path, "1,2,3.0\n1,2,5.0\n")
        assert rf.ratings.nnz == 1
        assert rf.ratings.value[0] == 5.0

    def test_bad_line_reported_with_position(self, tmp_path):
        with pytest.raises(ValueError, match=":2:"):
            self._roundtrip(tmp_path, "1,2,3.0\n1,2\n")

    def test_empty_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no ratings"):
            self._roundtrip(tmp_path, "# nothing\n")

    def test_undetectable_delimiter(self, tmp_path):
        with pytest.raises(ValueError, match="delimiter"):
            self._roundtrip(tmp_path, "123\n")

    def test_save_load_roundtrip(self, tmp_path, small_ratings):
        coo = small_ratings.to_coo()
        path = tmp_path / "out.tsv"
        save_ratings(path, coo)
        rf = load_ratings(path)
        # Compaction may renumber; compare dense content on occupied rows.
        dense = coo.to_dense()
        occupied_rows = np.unique(coo.row)
        occupied_cols = np.unique(coo.col)
        np.testing.assert_allclose(
            rf.ratings.to_dense(), dense[np.ix_(occupied_rows, occupied_cols)]
        )


class TestSplit:
    @pytest.fixture
    def ratings(self, rng):
        dense = np.where(
            rng.random((40, 25)) < 0.4,
            rng.integers(1, 6, (40, 25)).astype(np.float32),
            0.0,
        ).astype(np.float32)
        return COOMatrix.from_dense(dense)

    def test_partition_is_disjoint_and_complete(self, ratings):
        split = train_test_split(ratings, 0.25, seed=3)
        assert split.train.nnz + split.test.nnz == ratings.nnz
        train_keys = set(zip(split.train.row.tolist(), split.train.col.tolist()))
        test_keys = set(zip(split.test.row.tolist(), split.test.col.tolist()))
        assert not train_keys & test_keys

    def test_fraction_approximate(self, ratings):
        split = train_test_split(ratings, 0.25, seed=3)
        assert 0.1 < split.test_fraction < 0.4

    def test_row_coverage_kept(self, ratings):
        split = train_test_split(ratings, 0.9, seed=0, keep_row_coverage=True)
        occupied = np.unique(ratings.row)
        covered = np.unique(split.train.row)
        np.testing.assert_array_equal(occupied, covered)

    def test_row_coverage_can_be_disabled(self, ratings):
        split = train_test_split(ratings, 0.95, seed=0, keep_row_coverage=False)
        assert split.test.nnz > 0.8 * ratings.nnz

    def test_deterministic(self, ratings):
        a = train_test_split(ratings, 0.2, seed=5)
        b = train_test_split(ratings, 0.2, seed=5)
        assert a.train == b.train

    def test_invalid_fraction(self, ratings):
        with pytest.raises(ValueError):
            train_test_split(ratings, 1.0)
        with pytest.raises(ValueError):
            train_test_split(ratings, -0.1)

    def test_zero_fraction(self, ratings):
        split = train_test_split(ratings, 0.0)
        assert split.test.nnz == 0
        assert split.train.nnz == ratings.nnz


class TestPlanted:
    def test_observation_density(self):
        p = planted_problem(50, 40, rank=3, density=0.25, seed=1)
        assert p.ratings.nnz == pytest.approx(0.25 * 50 * 40, rel=0.25)
        assert p.rank == 3

    def test_noise_floor(self):
        p = planted_problem(30, 30, rank=2, density=0.5, noise_std=0.07, seed=1)
        assert p.ideal_rmse() == 0.07

    def test_observed_values_match_factors_up_to_noise(self):
        p = planted_problem(40, 30, rank=3, density=0.4, noise_std=0.01, seed=2)
        clean = np.einsum(
            "ij,ij->i",
            p.true_user_factors[p.ratings.row],
            p.true_item_factors[p.ratings.col],
        )
        resid = p.ratings.value - clean
        assert np.abs(resid).max() < 0.08  # a few noise sigmas

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            planted_problem(10, 10, rank=0, density=0.5)
        with pytest.raises(ValueError):
            planted_problem(10, 10, rank=3, density=0.0)
        with pytest.raises(ValueError):
            planted_problem(10, 10, rank=11, density=0.5)
