"""Tests for MatrixMarket coordinate IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_matrix_market, save_matrix_market
from repro.sparse import COOMatrix


@pytest.fixture
def sample(rng):
    dense = np.where(
        rng.random((6, 9)) < 0.4, rng.random((6, 9)).astype(np.float32) * 5, 0.0
    ).astype(np.float32)
    return COOMatrix.from_dense(dense)


class TestRoundTrip:
    def test_roundtrip_preserves_matrix(self, sample, tmp_path):
        path = tmp_path / "r.mtx"
        save_matrix_market(path, sample)
        loaded = load_matrix_market(path)
        assert loaded.shape == sample.shape
        np.testing.assert_allclose(loaded.to_dense(), sample.to_dense(), rtol=1e-5)

    def test_one_based_indices_on_disk(self, tmp_path):
        coo = COOMatrix((2, 3), [0], [2], [1.5])
        path = tmp_path / "r.mtx"
        save_matrix_market(path, coo)
        body = path.read_text().splitlines()
        assert body[0].startswith("%%MatrixMarket matrix coordinate real general")
        assert body[-1].split()[:2] == ["1", "3"]

    def test_empty_matrix(self, tmp_path):
        path = tmp_path / "e.mtx"
        save_matrix_market(path, COOMatrix.empty((4, 4)))
        loaded = load_matrix_market(path)
        assert loaded.nnz == 0
        assert loaded.shape == (4, 4)


class TestParsing:
    def _write(self, tmp_path, text):
        path = tmp_path / "x.mtx"
        path.write_text(text)
        return path

    def test_comments_allowed(self, tmp_path):
        path = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "2 2 1\n"
            "% another\n"
            "1 2 3.5\n",
        )
        loaded = load_matrix_market(path)
        assert loaded.to_dense()[0, 1] == pytest.approx(3.5)

    def test_wrong_header_rejected(self, tmp_path):
        path = self._write(tmp_path, "%%MatrixMarket matrix array real general\n1 1\n")
        with pytest.raises(ValueError, match="unsupported"):
            load_matrix_market(path)

    def test_missing_size_line(self, tmp_path):
        path = self._write(
            tmp_path, "%%MatrixMarket matrix coordinate real general\n% only\n"
        )
        with pytest.raises(ValueError, match="size line"):
            load_matrix_market(path)

    def test_entry_count_mismatch(self, tmp_path):
        path = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
        )
        with pytest.raises(ValueError, match="declared 2"):
            load_matrix_market(path)

    def test_too_many_entries(self, tmp_path):
        path = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n1 1 1.0\n2 2 2.0\n",
        )
        with pytest.raises(ValueError, match="more entries"):
            load_matrix_market(path)

    def test_bad_size_line(self, tmp_path):
        path = self._write(
            tmp_path, "%%MatrixMarket matrix coordinate real general\ntwo 2 1\n"
        )
        with pytest.raises(ValueError, match="bad size line"):
            load_matrix_market(path)
