"""Tests for the Table I catalog and synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    MOVIELENS10M,
    NETFLIX,
    TABLE_I,
    YAHOO_R1,
    YAHOO_R4,
    DatasetSpec,
    dataset_by_name,
    degree_sequences,
    generate_ratings,
    zipf_degrees,
)
from repro.sparse import CSRMatrix


class TestTableI:
    """The catalog must match Table I of the paper exactly."""

    @pytest.mark.parametrize(
        "spec,m,n,nnz",
        [
            (MOVIELENS10M, 71567, 65133, 8_000_044),
            (NETFLIX, 480189, 17770, 99_072_112),
            (YAHOO_R1, 1_948_882, 98212, 115_248_575),
            (YAHOO_R4, 7642, 11916, 211_231),
        ],
    )
    def test_shapes(self, spec, m, n, nnz):
        assert (spec.m, spec.n, spec.nnz) == (m, n, nnz)

    def test_order_matches_table(self):
        assert [s.abbr for s in TABLE_I] == ["MVLE", "NTFX", "YMR1", "YMR4"]

    def test_lookup_by_abbr_and_name(self):
        assert dataset_by_name("ntfx") is NETFLIX
        assert dataset_by_name("NetFlix") is NETFLIX
        assert dataset_by_name("movielens") is MOVIELENS10M

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset_by_name("lastfm")

    def test_derived_statistics(self):
        assert NETFLIX.mean_row_nnz == pytest.approx(206.3, abs=0.1)
        assert NETFLIX.mean_col_nnz == pytest.approx(5575.2, abs=0.1)
        assert 0 < NETFLIX.density < 0.02

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", "X", 2, 2, 10, 0.7, 0.9, 1.0, 5.0)  # nnz > m*n
        with pytest.raises(ValueError):
            DatasetSpec("x", "X", 0, 2, 1, 0.7, 0.9, 1.0, 5.0)
        with pytest.raises(ValueError):
            DatasetSpec("x", "X", 2, 2, 1, 0.7, 0.9, 5.0, 1.0)


class TestScaled:
    def test_preserves_density(self):
        small = NETFLIX.scaled(1 / 256)
        assert small.density == pytest.approx(NETFLIX.density, rel=0.15)

    def test_mean_row_length_shrinks_by_sqrt_scale(self):
        small = NETFLIX.scaled(1 / 256)
        assert small.mean_row_nnz == pytest.approx(
            NETFLIX.mean_row_nnz / 16, rel=0.15
        )

    def test_scale_one_is_identity(self):
        assert NETFLIX.scaled(1.0) is NETFLIX

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            NETFLIX.scaled(0.0)
        with pytest.raises(ValueError):
            NETFLIX.scaled(1.5)

    def test_nnz_fits(self):
        tiny = YAHOO_R4.scaled(1 / 1000)
        assert tiny.nnz <= tiny.m * tiny.n


class TestZipfDegrees:
    def test_exact_sum(self):
        deg = zipf_degrees(1000, 50_000, 0.8, max_degree=500, seed=1)
        assert deg.sum() == 50_000
        assert deg.max() <= 500
        assert deg.min() >= 0

    def test_deterministic(self):
        a = zipf_degrees(500, 10_000, 0.9, 400, seed=3)
        b = zipf_degrees(500, 10_000, 0.9, 400, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_arrangement_not_sum(self):
        a = zipf_degrees(500, 10_000, 0.9, 400, seed=3)
        b = zipf_degrees(500, 10_000, 0.9, 400, seed=4)
        assert a.sum() == b.sum()
        assert not np.array_equal(a, b)

    def test_skew_increases_with_alpha(self):
        flat = zipf_degrees(2000, 100_000, 0.2, 10_000, seed=5)
        steep = zipf_degrees(2000, 100_000, 1.2, 10_000, seed=5)
        assert steep.max() > flat.max()

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            zipf_degrees(10, 101, 0.8, max_degree=10, seed=0)

    def test_saturated_exact(self):
        deg = zipf_degrees(10, 100, 0.8, max_degree=10, seed=0)
        np.testing.assert_array_equal(deg, np.full(10, 10))

    @settings(max_examples=30, deadline=None)
    @given(
        count=st.integers(1, 500),
        mean=st.integers(1, 50),
        alpha=st.floats(0.1, 1.5),
        seed=st.integers(0, 2**31),
    )
    def test_property_sum_and_bounds(self, count, mean, alpha, seed):
        nnz = count * mean
        deg = zipf_degrees(count, nnz, alpha, max_degree=10 * mean + 10, seed=seed)
        assert deg.sum() == nnz
        assert deg.min() >= 0


class TestDegreeSequences:
    def test_both_sides_sum_to_nnz(self):
        rows, cols = degree_sequences(YAHOO_R4)
        assert rows.sum() == cols.sum() == YAHOO_R4.nnz
        assert rows.size == YAHOO_R4.m
        assert cols.size == YAHOO_R4.n

    def test_deterministic_per_seed(self):
        a = degree_sequences(YAHOO_R4, seed=5)
        b = degree_sequences(YAHOO_R4, seed=5)
        np.testing.assert_array_equal(a[0], b[0])


class TestGenerateRatings:
    @pytest.fixture(scope="class")
    def small(self):
        return MOVIELENS10M.scaled(1 / 512)

    def test_shape_and_nnz(self, small):
        coo = generate_ratings(small, seed=2)
        assert coo.shape == (small.m, small.n)
        assert coo.nnz == small.nnz

    def test_no_duplicates(self, small):
        coo = generate_ratings(small, seed=2)
        assert coo.deduplicate().nnz == coo.nnz

    def test_ratings_in_range(self, small):
        coo = generate_ratings(small, seed=2)
        assert coo.value.min() >= small.rating_min
        assert coo.value.max() <= small.rating_max

    def test_row_degrees_skewed(self, small):
        coo = generate_ratings(small, seed=2)
        lengths = CSRMatrix.from_coo(coo).row_lengths()
        assert lengths.max() > 4 * lengths.mean()

    def test_deterministic(self, small):
        assert generate_ratings(small, seed=9) == generate_ratings(small, seed=9)
