"""Determinism and plumbing tests for the multicore half-sweep executor.

The load-bearing property: a sharded sweep is *bitwise* identical to the
serial one, for any worker count.  Each row's normal equations depend
only on that row's own non-zeros, the degree-bin widths are a pure
function of each row's degree (fixed geometric grid), and scatter
assignment is order-independent — so thread scheduling cannot leak into
the numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.als import ALSConfig, train_als
from repro.core.alswr import train_als_wr
from repro.datasets.catalog import MOVIELENS1M
from repro.datasets.synthetic import generate_ratings
from repro.kernels.fastpath import fast_half_sweep
from repro.obs import metrics as obs_metrics
from repro.obs.spans import capture
from repro.parallel import (
    SweepExecutor,
    configure_workers,
    resolve_workers,
)
from repro.parallel.executor import _parse_workers
from repro.sparse.csr import CSRMatrix

from tests.conftest import random_rating_matrix


@pytest.fixture(autouse=True)
def _reset_configured_workers():
    yield
    configure_workers(None)


@pytest.fixture
def ratings_matrix(rng) -> CSRMatrix:
    # Includes empty rows (density 0.2 over 60 rows) so the sharded
    # scatter path must route around them, like a real cold-start corpus.
    return random_rating_matrix(rng, m=60, n=40, density=0.2)


class TestWorkerResolution:
    def test_parse_auto_is_at_least_one(self):
        assert _parse_workers("auto") >= 1

    def test_parse_accepts_strings_and_ints(self):
        assert _parse_workers("4") == 4
        assert _parse_workers(3) == 3

    @pytest.mark.parametrize("bad", ["0", "-2", "many", 0])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            _parse_workers(bad)

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3

    def test_configured_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        configure_workers(2)
        assert resolve_workers() == 2

    def test_explicit_beats_configured(self):
        configure_workers(2)
        assert resolve_workers(5) == 5

    def test_bad_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()


class TestBitwiseDeterminism:
    @pytest.mark.parametrize("workers", [2, 3, 4, 7])
    def test_sharded_sweep_is_bitwise_serial(self, ratings_matrix, rng, workers):
        Y = rng.standard_normal((ratings_matrix.ncols, 8))
        serial = fast_half_sweep(ratings_matrix, Y, 0.1)
        with SweepExecutor(workers) as executor:
            parallel = executor.half_sweep(ratings_matrix, Y, 0.1)
        assert np.array_equal(serial, parallel)

    def test_weighted_sweep_is_bitwise_serial(self, ratings_matrix, rng):
        Y = rng.standard_normal((ratings_matrix.ncols, 6))
        with SweepExecutor(1) as one, SweepExecutor(4) as four:
            serial = one.half_sweep(ratings_matrix, Y, 0.2, weighted=True)
            parallel = four.half_sweep(ratings_matrix, Y, 0.2, weighted=True)
        assert np.array_equal(serial, parallel)

    def test_lapack_solver_is_bitwise_serial(self, ratings_matrix, rng):
        Y = rng.standard_normal((ratings_matrix.ncols, 8))
        serial = fast_half_sweep(ratings_matrix, Y, 0.1, solver="lapack")
        with SweepExecutor(4) as executor:
            parallel = executor.half_sweep(ratings_matrix, Y, 0.1, solver="lapack")
        assert np.array_equal(serial, parallel)

    def test_empty_rows_keep_previous_value(self, ratings_matrix, rng):
        k = 5
        dense = ratings_matrix.to_dense()
        dense[::4] = 0.0  # force genuinely empty rows into the corpus
        R = CSRMatrix.from_dense(dense)
        X_prev = rng.standard_normal((R.nrows, k))
        Y = rng.standard_normal((R.ncols, k))
        with SweepExecutor(3) as executor:
            X = executor.half_sweep(R, Y, 0.1, X_prev=X_prev)
        empty = R.row_lengths() == 0
        assert empty.any()
        np.testing.assert_array_equal(X[empty], X_prev[empty])

    def test_training_run_is_bitwise_identical(self):
        spec = MOVIELENS1M.scaled(0.002)
        ratings = generate_ratings(spec, seed=3)
        base = dict(k=6, lam=0.1, iterations=3, seed=3)
        serial = train_als(ratings, ALSConfig(**base, workers=1))
        parallel = train_als(ratings, ALSConfig(**base, workers=4))
        assert np.array_equal(serial.X, parallel.X)
        assert np.array_equal(serial.Y, parallel.Y)
        assert [h.train_rmse for h in serial.history] == [
            h.train_rmse for h in parallel.history
        ]

    def test_alswr_training_run_is_bitwise_identical(self):
        spec = MOVIELENS1M.scaled(0.002)
        ratings = generate_ratings(spec, seed=5)
        base = dict(k=4, lam=0.05, iterations=2, seed=5)
        serial = train_als_wr(ratings, ALSConfig(**base, workers=1))
        parallel = train_als_wr(ratings, ALSConfig(**base, workers=3))
        assert np.array_equal(serial.X, parallel.X)
        assert np.array_equal(serial.Y, parallel.Y)


class TestExecutorMechanics:
    def test_serial_executor_never_builds_a_pool(self, ratings_matrix, rng):
        Y = rng.standard_normal((ratings_matrix.ncols, 4))
        with SweepExecutor(1) as executor:
            executor.half_sweep(ratings_matrix, Y, 0.1)
            assert executor._pool is None

    def test_pool_reused_across_sweeps(self, ratings_matrix, rng):
        Y = rng.standard_normal((ratings_matrix.ncols, 4))
        with SweepExecutor(2) as executor:
            executor.half_sweep(ratings_matrix, Y, 0.1)
            pool = executor._pool
            executor.half_sweep(ratings_matrix, Y, 0.1)
            assert executor._pool is pool
        assert executor._pool is None  # close() released it

    def test_more_workers_than_rows(self, rng):
        R = random_rating_matrix(rng, m=3, n=5, density=0.9)
        Y = rng.standard_normal((5, 4))
        with SweepExecutor(16) as executor:
            X = executor.half_sweep(R, Y, 0.1)
        assert np.array_equal(X, fast_half_sweep(R, Y, 0.1))

    def test_nonpositive_lam_rejected(self, ratings_matrix, rng):
        Y = rng.standard_normal((ratings_matrix.ncols, 4))
        with SweepExecutor(2) as executor:
            with pytest.raises(ValueError, match="lam"):
                executor.half_sweep(ratings_matrix, Y, 0.0)

    def test_x_prev_shape_validated(self, ratings_matrix, rng):
        Y = rng.standard_normal((ratings_matrix.ncols, 4))
        with SweepExecutor(2) as executor:
            with pytest.raises(ValueError, match="X_prev"):
                executor.half_sweep(
                    ratings_matrix, Y, 0.1, X_prev=np.zeros((2, 2))
                )

    def test_imbalance_gauges_recorded(self, ratings_matrix, rng):
        Y = rng.standard_normal((ratings_matrix.ncols, 4))
        obs_metrics.reset()
        with capture():
            with SweepExecutor(4) as executor:
                executor.half_sweep(ratings_matrix, Y, 0.1)
        snap = obs_metrics.snapshot()
        assert snap["gauges"]["sweep.workers"] == 4.0
        assert snap["gauges"]["sweep.shards"] >= 2.0
        assert snap["gauges"]["sweep.imbalance.planned"] >= 1.0
        assert snap["histograms"]["sweep.shard_seconds"]["count"] >= 2

    def test_per_shard_spans_emitted(self, ratings_matrix, rng):
        Y = rng.standard_normal((ratings_matrix.ncols, 4))
        with capture() as tracer:
            with SweepExecutor(3) as executor:
                executor.half_sweep(ratings_matrix, Y, 0.1)
        names = [r.name for r in tracer.records]
        assert "als.sweep.parallel" in names
        assert names.count("als.shard") >= 2


class TestConfigPlumbing:
    def test_config_accepts_auto(self):
        config = ALSConfig(k=2, lam=0.1, iterations=1, workers="auto")
        assert config.workers == "auto"

    def test_config_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ALSConfig(k=2, lam=0.1, iterations=1, workers=0)
        with pytest.raises(ValueError):
            ALSConfig(k=2, lam=0.1, iterations=1, workers="several")

    def test_config_rejects_bad_solver(self):
        with pytest.raises(ValueError):
            ALSConfig(k=2, lam=0.1, iterations=1, solver="qr")

    def test_config_solver_reaches_the_sweep(self):
        spec = MOVIELENS1M.scaled(0.001)
        ratings = generate_ratings(spec, seed=1)
        obs_metrics.reset()
        with capture():
            train_als(
                ratings,
                ALSConfig(k=3, lam=0.1, iterations=1, seed=1, solver="lapack"),
            )
        counters = obs_metrics.snapshot()["counters"]
        assert counters["solver.lapack.calls"] >= 2.0


class TestGenericMap:
    """SweepExecutor.map — the fan-out primitive under engine sharding."""

    def test_preserves_item_order(self):
        with SweepExecutor(3) as executor:
            out = executor.map(lambda x: x * x, range(17))
        assert out == [x * x for x in range(17)]

    def test_single_worker_is_a_plain_loop(self):
        import threading

        seen = []
        with SweepExecutor(1) as executor:
            executor.map(lambda x: seen.append(threading.current_thread()), [1, 2])
        assert all(t is threading.main_thread() for t in seen)

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError(f"item {x}")

        with SweepExecutor(2) as executor:
            with pytest.raises(RuntimeError, match="item"):
                executor.map(boom, [1, 2, 3])

    def test_side_effect_writes_land(self, rng):
        # The engine's run_block writes disjoint slices from worker
        # threads; emulate that contract here.
        out = np.zeros(24)
        blocks = [(lo, lo + 4) for lo in range(0, 24, 4)]

        def fill(bounds):
            lo, hi = bounds
            out[lo:hi] = np.arange(lo, hi)

        with SweepExecutor(4) as executor:
            executor.map(fill, blocks)
        assert np.array_equal(out, np.arange(24.0))
