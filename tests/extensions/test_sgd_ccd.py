"""Tests for the SGD and CCD++ solver extensions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALSConfig, rmse, train_als
from repro.datasets import planted_problem
from repro.extensions import CCDConfig, SGDConfig, train_ccd, train_sgd
from repro.extensions.sgd import conflict_free_batches
from repro.sparse import COOMatrix


@pytest.fixture(scope="module")
def problem():
    return planted_problem(m=80, n=60, rank=3, density=0.3, noise_std=0.05, seed=17)


class TestConflictFreeBatches:
    def test_batches_partition_the_order(self, rng):
        rows = rng.integers(0, 20, size=200)
        cols = rng.integers(0, 15, size=200)
        order = rng.permutation(200)
        batches = conflict_free_batches(rows, cols, order)
        merged = np.concatenate(batches)
        assert sorted(merged.tolist()) == list(range(200))

    def test_no_conflicts_within_batch(self, rng):
        rows = rng.integers(0, 10, size=300)
        cols = rng.integers(0, 10, size=300)
        order = rng.permutation(300)
        for batch in conflict_free_batches(rows, cols, order):
            assert len(np.unique(rows[batch])) == batch.size
            assert len(np.unique(cols[batch])) == batch.size

    def test_diagonal_is_one_batch(self):
        idx = np.arange(50)
        batches = conflict_free_batches(idx, idx, idx)
        assert len(batches) == 1

    def test_single_column_fully_serialized(self):
        rows = np.arange(10)
        cols = np.zeros(10, dtype=np.int64)
        batches = conflict_free_batches(rows, cols, np.arange(10))
        assert len(batches) == 10  # the hot item serializes everything


class TestSGD:
    def test_loss_decreases(self, problem):
        model = train_sgd(problem.ratings, SGDConfig(k=3, lr=0.05, epochs=10))
        assert model.history[-1] < model.history[0]

    def test_reaches_reasonable_rmse(self, problem):
        model = train_sgd(
            problem.ratings, SGDConfig(k=3, lam=0.02, lr=0.1, epochs=40)
        )
        assert rmse(problem.ratings, model.X, model.Y) < 0.3

    def test_comparable_to_als_given_budget(self, problem):
        als = train_als(problem.ratings, ALSConfig(k=3, lam=0.05, iterations=10))
        sgd = train_sgd(
            problem.ratings, SGDConfig(k=3, lam=0.05, lr=0.2, epochs=60)
        )
        als_rmse = rmse(problem.ratings, als.X, als.Y)
        sgd_rmse = rmse(problem.ratings, sgd.X, sgd.Y)
        # SGD converges slower per-pass than exact alternating solves; the
        # point is the same objective and comparable quality regime.
        assert sgd_rmse < 3.0 * als_rmse

    def test_deterministic(self, problem):
        cfg = SGDConfig(k=3, epochs=3, seed=5)
        a = train_sgd(problem.ratings, cfg)
        b = train_sgd(problem.ratings, cfg)
        np.testing.assert_array_equal(a.X, b.X)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SGDConfig(lr=0.0)
        with pytest.raises(ValueError):
            SGDConfig(lr_decay=0.0)
        with pytest.raises(ValueError):
            SGDConfig(epochs=0)
        with pytest.raises(ValueError):
            SGDConfig(lam=-1.0)

    def test_history_length(self, problem):
        model = train_sgd(problem.ratings, SGDConfig(k=3, epochs=4))
        assert len(model.history) == 4


class TestCCD:
    def test_monotone_descent(self, problem):
        """Every CCD++ coordinate update is an exact 1-D minimizer."""
        model = train_ccd(problem.ratings, CCDConfig(k=3, outer_iterations=6))
        losses = model.history
        assert all(a >= b - 1e-9 for a, b in zip(losses, losses[1:]))

    def test_reaches_als_quality(self, problem):
        als = train_als(problem.ratings, ALSConfig(k=3, lam=0.05, iterations=8))
        ccd = train_ccd(
            problem.ratings, CCDConfig(k=3, lam=0.05, outer_iterations=8)
        )
        assert rmse(problem.ratings, ccd.X, ccd.Y) < 1.5 * rmse(
            problem.ratings, als.X, als.Y
        )

    def test_residual_bookkeeping_is_exact(self, problem):
        """The maintained residual must match a from-scratch recompute."""
        model = train_ccd(problem.ratings, CCDConfig(k=3, outer_iterations=2))
        coo = problem.ratings.deduplicate()
        pred = np.einsum("bk,bk->b", model.X[coo.row], model.Y[coo.col])
        direct_loss = float(
            np.sum((coo.value - pred) ** 2)
            + model.config.lam * (np.sum(model.X**2) + np.sum(model.Y**2))
        )
        assert model.history[-1] == pytest.approx(direct_loss, rel=1e-9)

    def test_deterministic(self, problem):
        cfg = CCDConfig(k=3, outer_iterations=2, seed=9)
        a = train_ccd(problem.ratings, cfg)
        b = train_ccd(problem.ratings, cfg)
        np.testing.assert_array_equal(a.Y, b.Y)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CCDConfig(k=0)
        with pytest.raises(ValueError):
            CCDConfig(lam=0.0)
        with pytest.raises(ValueError):
            CCDConfig(inner_iterations=0)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_property_ccd_descends_on_random_problems(seed):
    problem = planted_problem(m=20, n=15, rank=2, density=0.4, seed=seed)
    model = train_ccd(problem.ratings, CCDConfig(k=2, outer_iterations=3))
    losses = model.history
    assert all(a >= b - 1e-7 * abs(a) for a, b in zip(losses, losses[1:]))
