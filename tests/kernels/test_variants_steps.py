"""Tests for the variant space and the hotspot step decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clsim import CostModel, NVIDIA_TESLA_K20C, OptFlags
from repro.clsim.device import ALL_DEVICES, DeviceKind
from repro.kernels.steps import FIG8_STAGES, mixed_step_costs, profile_steps
from repro.kernels.variants import (
    FIG6_BARS,
    Variant,
    all_variants,
    recommended_variant,
    variant_from_flags,
)


class TestVariantSpace:
    def test_eight_variants(self):
        variants = all_variants()
        assert len(variants) == 8  # §III-D: "8 versions of code variants"
        assert len({v.name for v in variants}) == 8
        assert all(v.flags.batched for v in variants)

    def test_nine_with_baseline(self):
        variants = all_variants(include_baseline=True)
        assert len(variants) == 9
        assert variants[0].is_baseline

    def test_recommended_per_architecture(self):
        # §V / Fig. 10 caption: GPU gets batching+local+registers,
        # CPU/MIC get batching+local(+vector).
        for device in ALL_DEVICES:
            v = recommended_variant(device)
            assert v.flags.local_mem
            if device.kind is DeviceKind.GPU:
                assert v.flags.registers and not v.flags.vector
            else:
                assert not v.flags.registers and v.flags.vector

    def test_fig6_bars_are_cumulative(self):
        labels = [label for label, _ in FIG6_BARS]
        assert labels[0] == "thread batching"
        assert FIG6_BARS[1][1].flags.local_mem
        assert FIG6_BARS[2][1].flags.registers
        assert FIG6_BARS[3][1].flags.vector

    def test_variant_str(self):
        assert str(variant_from_flags(local_mem=True)) == "batching+local"

    def test_baseline_not_batched(self):
        assert Variant(OptFlags(batched=False)).is_baseline


class TestStepProfiles:
    @pytest.fixture(scope="class")
    def seqs(self):
        rng = np.random.default_rng(11)
        rows = (rng.zipf(1.6, 30_000).clip(max=300) * 8).astype(np.int64)
        cols = (rng.zipf(1.6, 5_000).clip(max=300) * 48).astype(np.int64)
        return rows, cols

    def test_fig8_pipeline_monotone_total(self, seqs):
        """Each tuning stage must reduce the total time (§V-C)."""
        rows, cols = seqs
        cm = CostModel(NVIDIA_TESLA_K20C)
        totals = [
            profile_steps(cm, rows, cols, 10, 32, flags, label).total_seconds
            for label, flags in FIG8_STAGES
        ]
        assert all(a > b for a, b in zip(totals, totals[1:]))

    def test_hotspot_rotation(self, seqs):
        """§V-C's narrative: S1 dominates, optimizing S1 promotes S2,
        optimizing S2 makes S1 dominant again."""
        rows, cols = seqs
        cm = CostModel(NVIDIA_TESLA_K20C)
        profiles = {
            label: profile_steps(cm, rows, cols, 10, 32, flags, label)
            for label, flags in FIG8_STAGES
        }
        batching = profiles["thread batching"].shares
        s1opt = profiles["optimizing S1"].shares
        s2opt = profiles["optimizing S2"].shares
        assert batching[0] > 0.5  # S1 is the hotspot
        assert s1opt[1] > batching[1]  # S2's share rises after S1 opt
        assert s2opt[0] > s2opt[1]  # S1 dominates again after S2 opt

    def test_cholesky_stage_shrinks_s3(self, seqs):
        rows, cols = seqs
        cm = CostModel(NVIDIA_TESLA_K20C)
        profiles = {
            label: profile_steps(cm, rows, cols, 10, 32, flags, label)
            for label, flags in FIG8_STAGES
        }
        assert (
            profiles["optimizing S3 (Cholesky)"].s3_seconds
            < profiles["optimizing S2"].s3_seconds
        )

    def test_mixed_costs_compose_per_step(self, seqs):
        rows, _ = seqs
        cm = CostModel(NVIDIA_TESLA_K20C)
        plain = OptFlags(cholesky=False)
        opt = OptFlags(registers=True, local_mem=True, cholesky=False)
        mixed = mixed_step_costs(cm, rows, 10, 32, opt, plain, plain)
        assert mixed.s1.seconds == cm.half_sweep(rows, 10, 32, opt).s1.seconds
        assert mixed.s2.seconds == cm.half_sweep(rows, 10, 32, plain).s2.seconds

    def test_profile_shares_sum_to_one(self, seqs):
        rows, cols = seqs
        cm = CostModel(NVIDIA_TESLA_K20C)
        p = profile_steps(cm, rows, cols, 10, 32, FIG8_STAGES[1][1], "x")
        assert sum(p.shares) == pytest.approx(1.0)
        assert "S1" in str(p)

    def test_iterations_scale_profile(self, seqs):
        rows, cols = seqs
        cm = CostModel(NVIDIA_TESLA_K20C)
        one = profile_steps(cm, rows, cols, 10, 32, FIG8_STAGES[1][1], "x", 1)
        five = profile_steps(cm, rows, cols, 10, 32, FIG8_STAGES[1][1], "x", 5)
        assert five.total_seconds == pytest.approx(5 * one.total_seconds)
