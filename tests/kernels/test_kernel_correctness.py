"""Ground-truth validation: every code variant == dense reference.

This is the license for the solvers' vectorized fast path: each of the 8
thread-batched variants and the flat baseline, executed work-item by
work-item through the barrier-accurate interpreter, must reproduce the
reference normal-equation solution.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clsim.costmodel import OptFlags
from repro.kernels import fast_half_sweep, interpreted_half_sweep
from repro.kernels.variants import all_variants
from repro.sparse import CSRMatrix

LAM = 0.1


def _problem(seed: int, m: int = 13, n: int = 9, k: int = 5, density: float = 0.3):
    rng = np.random.default_rng(seed)
    dense = np.where(
        rng.random((m, n)) < density,
        rng.integers(1, 6, (m, n)).astype(np.float32),
        0.0,
    ).astype(np.float32)
    R = CSRMatrix.from_dense(dense)
    Y = rng.standard_normal((n, k)).astype(np.float32)
    return R, Y


def _reference(R: CSRMatrix, Y: np.ndarray) -> np.ndarray:
    """Row-by-row dense solve, independent of all library code paths."""
    k = Y.shape[1]
    X = np.zeros((R.nrows, k))
    for u in range(R.nrows):
        cols, vals = R.row_slice(u)
        if cols.size == 0:
            continue
        sub = Y[cols].astype(np.float64)
        X[u] = np.linalg.solve(
            sub.T @ sub + LAM * np.eye(k), sub.T @ vals.astype(np.float64)
        )
    return X


@pytest.mark.parametrize("variant", all_variants(), ids=lambda v: v.name)
class TestBatchedVariants:
    def test_matches_reference(self, variant):
        R, Y = _problem(seed=1)
        ref = _reference(R, Y)
        X = interpreted_half_sweep(R, Y, LAM, variant.flags, ws=4, tile=3)
        np.testing.assert_allclose(X, ref, rtol=5e-4, atol=5e-4)

    def test_ws_larger_than_k(self, variant):
        R, Y = _problem(seed=2, k=3)
        ref = _reference(R, Y)
        X = interpreted_half_sweep(R, Y, LAM, variant.flags, ws=8, tile=4)
        np.testing.assert_allclose(X, ref, rtol=5e-4, atol=5e-4)

    def test_single_lane_group(self, variant):
        R, Y = _problem(seed=3, m=6, n=5, k=4)
        ref = _reference(R, Y)
        X = interpreted_half_sweep(R, Y, LAM, variant.flags, ws=1, tile=2)
        np.testing.assert_allclose(X, ref, rtol=5e-4, atol=5e-4)

    def test_empty_rows_keep_previous_value(self, variant):
        dense = np.zeros((4, 3), dtype=np.float32)
        dense[0, 1] = 3.0
        dense[2, 0] = 2.0
        R = CSRMatrix.from_dense(dense)
        Y = np.ones((3, 2), dtype=np.float32)
        prev = np.full((4, 2), 7.0, dtype=np.float32)
        X = interpreted_half_sweep(R, Y, LAM, variant.flags, ws=2, X_prev=prev)
        np.testing.assert_array_equal(X[1], [7.0, 7.0])
        np.testing.assert_array_equal(X[3], [7.0, 7.0])
        assert not np.allclose(X[0], 7.0)


class TestFlatBaseline:
    def test_matches_reference(self):
        R, Y = _problem(seed=4)
        ref = _reference(R, Y)
        X = interpreted_half_sweep(R, Y, LAM, OptFlags(batched=False), ws=4)
        np.testing.assert_allclose(X, ref, rtol=5e-4, atol=5e-4)

    def test_gaussian_s3_matches_too(self):
        R, Y = _problem(seed=5)
        ref = _reference(R, Y)
        X = interpreted_half_sweep(
            R, Y, LAM, OptFlags(batched=False, cholesky=False), ws=4
        )
        np.testing.assert_allclose(X, ref, rtol=5e-4, atol=5e-4)

    def test_row_count_not_multiple_of_ws(self):
        # m=13 with ws=4 needs a padded launch; the guard must hold.
        R, Y = _problem(seed=6, m=13)
        X = interpreted_half_sweep(R, Y, LAM, OptFlags(batched=False), ws=4)
        np.testing.assert_allclose(X, _reference(R, Y), rtol=5e-4, atol=5e-4)


class TestFastPath:
    def test_matches_reference(self):
        R, Y = _problem(seed=7, m=30, n=20, k=6)
        np.testing.assert_allclose(
            fast_half_sweep(R, Y, LAM), _reference(R, Y), rtol=1e-8, atol=1e-10
        )

    def test_gaussian_matches_cholesky(self):
        R, Y = _problem(seed=8)
        np.testing.assert_allclose(
            fast_half_sweep(R, Y, LAM, cholesky=False),
            fast_half_sweep(R, Y, LAM, cholesky=True),
            rtol=1e-8,
            atol=1e-10,
        )

    def test_rejects_nonpositive_lambda(self):
        R, Y = _problem(seed=9)
        with pytest.raises(ValueError):
            fast_half_sweep(R, Y, 0.0)

    def test_xprev_shape_checked(self):
        R, Y = _problem(seed=10)
        with pytest.raises(ValueError):
            fast_half_sweep(R, Y, LAM, X_prev=np.zeros((2, 2)))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    ws=st.sampled_from([1, 2, 4, 8]),
    tile=st.sampled_from([2, 5, 16]),
)
def test_property_all_variants_agree(seed, ws, tile):
    """All 8 variants compute the same half-sweep on random problems."""
    R, Y = _problem(seed=seed, m=8, n=7, k=4, density=0.35)
    results = [
        interpreted_half_sweep(R, Y, LAM, v.flags, ws=ws, tile=tile)
        for v in all_variants()
    ]
    for other in results[1:]:
        np.testing.assert_allclose(other, results[0], rtol=5e-4, atol=5e-4)
