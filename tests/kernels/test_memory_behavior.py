"""Access-pattern tests: the optimizations must change *how* memory is
touched, not just produce correct numbers (that is their entire point).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clsim.costmodel import OptFlags
from repro.kernels import interpreted_half_sweep
from repro.sparse import CSRMatrix


@pytest.fixture
def problem(rng):
    dense = np.where(
        rng.random((10, 8)) < 0.4, rng.integers(1, 6, (10, 8)).astype(np.float32), 0.0
    ).astype(np.float32)
    return CSRMatrix.from_dense(dense), rng.standard_normal((8, 5)).astype(np.float32)


def _reads(R, Y, flags, ws=4, tile=64):
    _, counts = interpreted_half_sweep(R, Y, 0.1, flags, ws=ws, tile=tile, count_access=True)
    return counts


class TestStagingReducesGlobalTraffic:
    def test_s2_yreads_drop_with_local_memory(self, problem):
        """§III-C2: staging Y columns removes the per-c re-walk of Y."""
        R, Y = problem
        unstaged = _reads(R, Y, OptFlags())
        staged = _reads(R, Y, OptFlags(local_mem=True))
        assert staged["Y_reads"] < unstaged["Y_reads"]

    def test_staged_y_reads_scale_with_nnz_times_k(self, problem):
        """With staging, each needed Y element is fetched once per kernel
        (S1 and S2 each stage once → 2·nnz·k global reads)."""
        R, Y = problem
        k = Y.shape[1]
        staged = _reads(R, Y, OptFlags(local_mem=True, registers=True))
        assert staged["Y_reads"] == 2 * R.nnz * k

    def test_r_values_read_once_per_tile_pass_when_staged(self, problem):
        R, Y = problem
        staged = _reads(R, Y, OptFlags(local_mem=True))
        # S2 stages each rating exactly once.
        assert staged["value_reads"] == R.nnz

    def test_unstaged_s2_rereads_r_per_latent_dim(self, problem):
        R, Y = problem
        k = Y.shape[1]
        unstaged = _reads(R, Y, OptFlags())
        # Algorithm 2 lines 8–15: the c-loop re-walks the row's values.
        assert unstaged["value_reads"] == R.nnz * k

    def test_multi_tile_staging_still_reads_each_element_once(self, problem):
        R, Y = problem
        k = Y.shape[1]
        small_tile = _reads(R, Y, OptFlags(local_mem=True, registers=True), tile=2)
        assert small_tile["Y_reads"] == 2 * R.nnz * k


class TestRegisterRewrite:
    def test_registers_do_not_change_global_traffic_class(self, problem):
        """Fig. 3's rewrite targets private memory; the staged global reads
        stay identical with and without it."""
        R, Y = problem
        with_reg = _reads(R, Y, OptFlags(local_mem=True, registers=True))
        without = _reads(R, Y, OptFlags(local_mem=True))
        assert with_reg["Y_reads"] == without["Y_reads"]

    def test_unstaged_register_variant_reads_more_y_than_staged(self, problem):
        R, Y = problem
        unstaged = _reads(R, Y, OptFlags(registers=True))
        staged = _reads(R, Y, OptFlags(registers=True, local_mem=True))
        assert unstaged["Y_reads"] > staged["Y_reads"]
