"""Tests for the persistent-group launch mode (the paper's 8192×32).

With fewer groups than rows, each group strides over the rows it owns;
results must be identical to the one-group-per-row launch for every
variant, including the staged ones whose barriers now repeat per row.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clsim.costmodel import OptFlags
from repro.kernels import fast_half_sweep, interpreted_half_sweep
from repro.kernels.variants import all_variants
from repro.sparse import CSRMatrix

LAM = 0.1


def _problem(seed: int, m: int = 17, n: int = 9, k: int = 5):
    rng = np.random.default_rng(seed)
    dense = np.where(
        rng.random((m, n)) < 0.35,
        rng.integers(1, 6, (m, n)).astype(np.float32),
        0.0,
    ).astype(np.float32)
    return CSRMatrix.from_dense(dense), rng.standard_normal((n, k)).astype(np.float32)


@pytest.mark.parametrize("variant", all_variants(), ids=lambda v: v.name)
@pytest.mark.parametrize("n_groups", [1, 3, 5])
def test_persistent_equals_per_row(variant, n_groups):
    R, Y = _problem(seed=31)
    full = interpreted_half_sweep(R, Y, LAM, variant.flags, ws=4, tile=3)
    strided = interpreted_half_sweep(
        R, Y, LAM, variant.flags, ws=4, tile=3, n_groups=n_groups
    )
    np.testing.assert_allclose(strided, full, rtol=1e-6, atol=1e-6)


def test_persistent_matches_reference():
    R, Y = _problem(seed=32)
    X = interpreted_half_sweep(R, Y, LAM, OptFlags(local_mem=True), ws=4, n_groups=4)
    np.testing.assert_allclose(
        X, fast_half_sweep(R, Y, LAM), rtol=5e-4, atol=5e-4
    )


def test_more_groups_than_rows_clamped():
    R, Y = _problem(seed=33, m=5)
    X = interpreted_half_sweep(R, Y, LAM, OptFlags(), ws=4, n_groups=64)
    np.testing.assert_allclose(
        X, fast_half_sweep(R, Y, LAM), rtol=5e-4, atol=5e-4
    )


def test_invalid_group_count():
    R, Y = _problem(seed=34)
    with pytest.raises(ValueError):
        interpreted_half_sweep(R, Y, LAM, OptFlags(), ws=4, n_groups=0)


def test_row_ownership_is_disjoint_and_complete():
    """Every occupied row is written by exactly one group."""
    R, Y = _problem(seed=35, m=23)
    X = interpreted_half_sweep(R, Y, LAM, OptFlags(), ws=4, n_groups=6)
    occupied = R.row_lengths() > 0
    assert (np.abs(X[occupied]).sum(axis=1) > 0).all()
    assert not np.abs(X[~occupied]).any()
