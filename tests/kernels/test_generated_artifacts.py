"""Golden-file test: the checked-in .cl artifacts match the generator.

``examples/generated_kernels/`` ships the OpenCL source for each device's
recommended variant (what a release of the paper's system would contain);
this test keeps them in sync with the generator.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.clsim.device import ALL_DEVICES
from repro.kernels.opencl_source import generate_program
from repro.kernels.variants import recommended_variant

ARTIFACTS = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "generated_kernels"
)


@pytest.mark.parametrize("device", ALL_DEVICES, ids=lambda d: d.kind.value)
def test_artifact_is_current(device):
    variant = recommended_variant(device)
    expected = generate_program(variant.flags, k=10, ws=32, tile=256) + "\n"
    path = ARTIFACTS / (
        f"als_{device.kind.value}_{variant.name.replace('+', '_')}.cl"
    )
    assert path.exists(), (
        f"missing artifact {path.name}; regenerate with "
        "python -c \"...generate_program...\" (see this test)"
    )
    assert path.read_text() == expected, (
        f"{path.name} is stale — regenerate it from repro.kernels.opencl_source"
    )


def test_artifacts_directory_has_exactly_the_three_devices():
    names = sorted(p.name for p in ARTIFACTS.glob("*.cl"))
    assert len(names) == 3
    assert any("gpu" in n for n in names)
    assert any("cpu" in n for n in names)
    assert any("mic" in n for n in names)
