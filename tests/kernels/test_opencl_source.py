"""Structural tests for the generated OpenCL C source.

No OpenCL runtime exists here, so the source cannot be compiled; these
tests pin the structure that defines each variant — which constructs
appear when each optimization is enabled — and basic well-formedness.
"""

from __future__ import annotations

import re

import pytest

from repro.clsim.costmodel import OptFlags
from repro.kernels.opencl_source import (
    generate_flat,
    generate_program,
    generate_s1,
    generate_s2,
    generate_s3,
)
from repro.kernels.variants import all_variants


def balanced_braces(src: str) -> bool:
    depth = 0
    for ch in src:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


@pytest.mark.parametrize("variant", all_variants(), ids=lambda v: v.name)
class TestProgramStructure:
    def test_braces_balanced(self, variant):
        assert balanced_braces(generate_program(variant.flags))

    def test_three_step_kernels_plus_flat(self, variant):
        src = generate_program(variant.flags)
        for name in ("als_s1", "als_s2", "als_s3", "als_update_flat"):
            assert f"__kernel void {name}" in src

    def test_constants_baked(self, variant):
        src = generate_program(variant.flags, k=12, ws=16, tile=64)
        assert "#define K 12" in src
        assert "#define WS 16" in src
        assert "#define TILE 64" in src

    def test_variant_label_recorded(self, variant):
        assert variant.flags.label() in generate_program(variant.flags)

    def test_empty_row_guard(self, variant):
        # Algorithm 2 line 5 in every kernel that walks a row (the guard
        # continues to the group's next persistent row).
        src = generate_s1(variant.flags)
        assert "if (omega == 0) continue;" in src

    def test_persistent_group_loop(self, variant):
        # The paper's 8192×WS launch: groups stride over rows.
        src = generate_program(variant.flags)
        assert src.count("u += get_num_groups(0)") == 3  # s1, s2, s3


class TestOptimizationConstructs:
    def test_local_memory_only_when_enabled(self):
        staged = generate_program(OptFlags(local_mem=True))
        unstaged = generate_program(OptFlags())
        assert "__local" in staged
        assert "barrier(CLK_LOCAL_MEM_FENCE)" in staged
        assert "__local" not in unstaged.replace("CLK_LOCAL_MEM_FENCE", "")
        assert "barrier" not in generate_s1(OptFlags())

    def test_register_variant_drops_kxk_private_array(self):
        reg = generate_s1(OptFlags(registers=True))
        plain = generate_s1(OptFlags())
        assert "float sum[K * K]" in plain  # Fig. 3(a)
        assert "float sum[K * K]" not in reg  # Fig. 3(b)
        assert "sums[strip][j]" in reg

    def test_vector_variant_uses_vload_vstore(self):
        vec = generate_s1(OptFlags(registers=True, vector=True))
        scalar = generate_s1(OptFlags(registers=True))
        assert "vload4" in vec and "vstore4" in vec
        assert "vload4" not in scalar

    def test_cholesky_vs_elimination_s3(self):
        chol = generate_s3(OptFlags(cholesky=True))
        gauss = generate_s3(OptFlags(cholesky=False))
        assert "sqrt(" in chol
        assert "Cholesky" in chol
        assert "Gaussian elimination" in gauss
        assert "sqrt(" not in gauss

    def test_flat_kernel_has_colmajor_indirection(self):
        src = generate_flat()
        assert "colmajor_id[idx]" in src  # Algorithm 2 line 10
        assert "get_global_id(0)" in src  # one thread per row
        assert "get_group_id" not in src

    def test_batched_kernels_are_group_per_row(self):
        for gen in (generate_s1, generate_s2):
            src = gen(OptFlags())
            assert "get_group_id(0)" in src
            assert "get_local_id(0)" in src

    def test_s2_unstaged_comment_names_the_pathology(self):
        assert "scattered scalar" in generate_s2(OptFlags())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_program(OptFlags(), k=0)
        with pytest.raises(ValueError):
            generate_program(OptFlags(), ws=-1)

    def test_all_eight_programs_distinct(self):
        sources = {generate_program(v.flags) for v in all_variants()}
        # vector changes nothing without registers in S1 — allow collisions
        # only between variants that differ solely in an inert flag.
        assert len(sources) >= 6
