"""Tests for iALS++ subspace block coordinate descent.

The tentpole guarantees: ``block_size == k`` reproduces the historical
full sweep *bitwise* for all three trainers, d < k reaches the full-k
loss at a lower arithmetic cost, and the blocked path is insensitive to
parallelism and to the out-of-core input representation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.als import ALSConfig, ALSModel, IterationStats, train_als
from repro.core.alswr import train_als_wr
from repro.core.implicit import ImplicitConfig, ImplicitModel, train_implicit_als
from repro.core.subspace import (
    BLOCK_SCHEDULES,
    make_blocks,
    pass_cost,
    resolve_block_size,
    validate_block_size,
)
from repro.linalg.normal_equations import GramCache, complement_predictions
from repro.sparse import CSRMatrix

K = 8


@pytest.fixture(scope="module")
def ratings():
    """Non-negative ratings so the same fixture feeds all three trainers."""
    gen = np.random.default_rng(11)
    dense = np.where(
        gen.random((60, 45)) < 0.3,
        gen.integers(1, 6, size=(60, 45)).astype(np.float64),
        0.0,
    )
    return CSRMatrix.from_dense(dense).to_coo()


def _train(algorithm, ratings, **overrides):
    kw = dict(k=K, lam=0.1, iterations=3, seed=3)
    kw.update(overrides)
    if algorithm == "implicit":
        return train_implicit_als(ratings, ImplicitConfig(alpha=10.0, **kw))
    trainer = train_als if algorithm == "als" else train_als_wr
    return trainer(ratings, ALSConfig(**kw))


class TestBlockPlumbing:
    def test_make_blocks_covers_k(self):
        assert make_blocks(8, 3) == ((0, 3), (3, 6), (6, 8))
        assert make_blocks(8, 8) == ((0, 8),)
        with pytest.raises(ValueError):
            make_blocks(8, 16)  # resolve_block_size clamps before this

    def test_validate_block_size(self):
        validate_block_size(None)
        validate_block_size("auto")
        validate_block_size(4)
        with pytest.raises(ValueError):
            validate_block_size(0)
        with pytest.raises(ValueError):
            validate_block_size("fast")
        with pytest.raises(ValueError):
            validate_block_size(True)

    def test_resolve_clamps_to_k(self):
        assert resolve_block_size(None, 8) is None
        assert resolve_block_size(16, 8) == 8
        assert resolve_block_size(4, 8) == 4

    def test_pass_cost_smaller_blocks_cheaper_solve(self):
        # Same assembly-side nnz work order, but a d=4 pass solves
        # 2 systems of size 4 instead of 1 of size 8.
        full = pass_cost(8, 8, nnz=1000, rows=100)
        blocked = pass_cost(8, 4, nnz=1000, rows=100)
        assert blocked != full
        assert pass_cost(64, 16, nnz=10**5, rows=10**3) < pass_cost(
            64, 64, nnz=10**5, rows=10**3
        )

    def test_config_rejects_bad_blocks(self):
        with pytest.raises(ValueError):
            ALSConfig(k=4, block_size=0)
        with pytest.raises(ValueError):
            ALSConfig(k=4, block_schedule="zigzag")
        with pytest.raises(ValueError):
            ImplicitConfig(k=4, block_size="turbo")


class TestFullWidthReduction:
    """``block_size == k`` is the historical full sweep, bit for bit."""

    @pytest.mark.parametrize("algorithm", ("als", "als-wr", "implicit"))
    @pytest.mark.parametrize("schedule", BLOCK_SCHEDULES)
    def test_dk_bitwise_equal(self, ratings, algorithm, schedule):
        base = _train(algorithm, ratings)
        blocked = _train(
            algorithm, ratings, block_size=K, block_schedule=schedule
        )
        assert np.array_equal(np.asarray(base.X), np.asarray(blocked.X))
        assert np.array_equal(np.asarray(base.Y), np.asarray(blocked.Y))

    @pytest.mark.parametrize("algorithm", ("als", "implicit"))
    def test_dk_loss_history_equal(self, ratings, algorithm):
        base = _train(algorithm, ratings)
        blocked = _train(algorithm, ratings, block_size=K)
        get = (
            (lambda m: [s.loss for s in m.history])
            if algorithm == "als"
            else (lambda m: list(m.history))
        )
        assert get(base) == get(blocked)


class TestSubspaceConvergence:
    @pytest.mark.parametrize("algorithm", ("als", "als-wr", "implicit"))
    def test_reaches_full_k_loss_at_lower_cost(self, ratings, algorithm):
        iterations = 6
        base = _train(algorithm, ratings, iterations=iterations)
        sub = _train(
            algorithm, ratings, iterations=2 * iterations, block_size=K // 4
        )
        losses = (
            [s.loss for s in sub.history]
            if algorithm != "implicit"
            else list(sub.history)
        )
        target = (
            base.history[-1].loss if algorithm != "implicit" else base.history[-1]
        )
        bar = target + abs(target) * 1e-6
        reached = [i for i, loss in enumerate(losses) if loss <= bar]
        assert reached, f"subspace never reached full-k loss {target}"
        # Arithmetic-cost proxy for wall time: the passes spent getting
        # there must undercut the full-k passes.
        nnz, rows = ratings.nnz, 60
        spent = (reached[0] + 1) * pass_cost(K, K // 4, nnz=nnz, rows=rows)
        full = iterations * pass_cost(K, K, nnz=nnz, rows=rows)
        assert spent < full

    def test_parallel_matches_serial_bitwise(self, ratings):
        serial = _train("als", ratings, block_size=3)
        threaded = _train("als", ratings, block_size=3, workers=3)
        assert np.array_equal(np.asarray(serial.X), np.asarray(threaded.X))
        assert np.array_equal(np.asarray(serial.Y), np.asarray(threaded.Y))

    @pytest.mark.parametrize("algorithm", ("als", "implicit"))
    def test_shard_store_matches_in_ram_bitwise(
        self, ratings, algorithm, tmp_path
    ):
        from repro.datasets.shardio import build_shard_store
        from repro.sparse.shards import ShardStore

        build_shard_store(tmp_path / "store", ratings)
        store = ShardStore.open(tmp_path / "store", shard_bytes=1 << 20)
        ram = _train(algorithm, ratings, block_size=3)
        ooc = _train(algorithm, store, block_size=3)
        assert np.array_equal(np.asarray(ram.X), np.asarray(ooc.X))
        assert np.array_equal(np.asarray(ram.Y), np.asarray(ooc.Y))


class TestBuildingBlocks:
    def test_complement_predictions_matches_dense(self, rng):
        dense = np.where(rng.random((12, 9)) < 0.4, rng.random((12, 9)), 0.0)
        R = CSRMatrix.from_dense(dense)
        X = rng.standard_normal((12, 6))
        Y = rng.standard_normal((9, 6))
        got = complement_predictions(R, X, Y, 2, 4)
        rows = R.expanded_rows()
        expect = np.einsum(
            "ej,ej->e", X[rows][:, [0, 1, 4, 5]], Y[R.col_idx][:, [0, 1, 4, 5]]
        )
        np.testing.assert_allclose(got, expect, rtol=1e-12)

    def test_complement_full_block_is_zero(self, rng):
        dense = np.where(rng.random((6, 5)) < 0.5, rng.random((6, 5)), 0.0)
        R = CSRMatrix.from_dense(dense)
        X = rng.standard_normal((6, 4))
        Y = rng.standard_normal((5, 4))
        assert np.all(complement_predictions(R, X, Y, 0, 4) == 0.0)

    def test_gram_cache_block_update_tracks_fresh_recompute(self, rng):
        F = rng.standard_normal((20, 8))
        cache = GramCache(F)
        F[:, 2:5] = rng.standard_normal((20, 3))
        cache.update_block(F, 2, 5)
        np.testing.assert_allclose(
            cache.matrix, GramCache(F).matrix, rtol=1e-12, atol=1e-12
        )

    def test_gram_cache_full_width_update_is_exact(self, rng):
        F = rng.standard_normal((10, 4))
        cache = GramCache(F)
        F[:] = rng.standard_normal((10, 4))
        cache.update_block(F, 0, 4)
        assert np.array_equal(cache.matrix, GramCache(F).matrix)


class TestElapsedSeconds:
    @pytest.mark.parametrize("algorithm", ("als", "als-wr"))
    def test_monotone_cumulative(self, ratings, algorithm):
        model = _train(algorithm, ratings, iterations=4)
        elapsed = [s.elapsed_seconds for s in model.history]
        assert all(e > 0 for e in elapsed)
        assert elapsed == sorted(elapsed)

    def test_implicit_stats_monotone(self, ratings):
        model = _train("implicit", ratings, iterations=4)
        assert isinstance(model.history[0], float)
        elapsed = [s.elapsed_seconds for s in model.stats]
        assert len(model.stats) == 4
        assert all(s.train_rmse is None for s in model.stats)
        assert all(e > 0 for e in elapsed)
        assert elapsed == sorted(elapsed)

    def test_old_checkpoints_default_to_zero(self):
        stats = IterationStats(iteration=0, loss=1.0, train_rmse=0.5)
        assert stats.elapsed_seconds == 0.0

    @pytest.mark.parametrize("algorithm", ("als", "implicit"))
    def test_roundtrips_through_save_load(self, ratings, algorithm, tmp_path):
        from repro.api import Recommender

        rec = Recommender(
            k=4, iterations=3, seed=5, algorithm=algorithm, alpha=10.0
        ).fit(ratings)
        rec.save(tmp_path / "model")
        loaded = Recommender.load(tmp_path / "model")
        if algorithm == "implicit":
            saved = [s.elapsed_seconds for s in rec.model.stats]
            back = [s.elapsed_seconds for s in loaded.model.stats]
        else:
            saved = [s.elapsed_seconds for s in rec.model.history]
            back = [s.elapsed_seconds for s in loaded.model.history]
        assert back == saved
        assert saved == sorted(saved)


class TestImplicitLossControls:
    def test_validation(self):
        with pytest.raises(ValueError):
            ImplicitConfig(k=4, tol=-1.0)
        with pytest.raises(ValueError):
            ImplicitConfig(k=4, tol=1e-3, track_loss=False)
        ImplicitConfig(k=4, tol=1e-3)  # fine with tracking on

    def test_track_loss_off_skips_history(self, ratings):
        model = _train("implicit", ratings, track_loss=False)
        assert model.history == []
        assert model.stats == []
        assert np.all(np.isfinite(model.X))

    def test_tol_early_stops(self, ratings):
        lax = _train("implicit", ratings, iterations=30, tol=0.5)
        assert len(lax.history) < 30
        # The tight-tol run keeps going at least as long.
        tight = _train("implicit", ratings, iterations=30, tol=1e-12)
        assert len(tight.history) >= len(lax.history)
