"""Index-bounds regressions for the prediction paths.

numpy fancy indexing wraps negative indices, so ``predict_entries`` used
to silently score the *last* user/item for ``-1`` — exactly the value
:func:`recommend_top_n_batch` pads short rows with.  Feeding a padded
row back into prediction must now raise, not mis-score.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ALSConfig, train_als
from repro.core.predict import (
    predict_entries,
    predict_rating,
    recommend_top_n_batch,
)
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(11)
    dense = np.where(
        rng.random((12, 9)) < 0.4, rng.integers(1, 6, size=(12, 9)), 0
    ).astype(np.float32)
    return train_als(COOMatrix.from_dense(dense), ALSConfig(k=3, iterations=2))


class TestPredictEntriesBounds:
    def test_negative_item_raises(self, model):
        with pytest.raises(IndexError):
            predict_entries(model, np.array([0, 1]), np.array([0, -1]))

    def test_negative_user_raises(self, model):
        with pytest.raises(IndexError):
            predict_entries(model, np.array([-3]), np.array([0]))

    def test_too_large_raises(self, model):
        m, n = model.shape
        with pytest.raises(IndexError):
            predict_entries(model, np.array([0]), np.array([n]))
        with pytest.raises(IndexError):
            predict_entries(model, np.array([m]), np.array([0]))

    def test_pad_item_message_mentions_padding(self, model):
        with pytest.raises(IndexError, match="PAD_ITEM"):
            predict_entries(model, np.array([0]), np.array([-1]))

    def test_in_range_still_works(self, model):
        out = predict_entries(model, np.array([0, 1]), np.array([2, 3]))
        assert out.shape == (2,)
        assert np.isclose(out[0], float(model.X[0] @ model.Y[2]))

    def test_empty_arrays_ok(self, model):
        out = predict_entries(
            model, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert out.shape == (0,)

    def test_padded_batch_row_fed_back_raises(self, model):
        """The original footgun, end to end: take a user whose batch row
        is padded and feed (user, row) straight into predict_entries."""
        m, n = model.shape
        # Exclude everything so every row is fully padded.
        exclude = CSRMatrix.from_dense(np.ones((m, n), dtype=np.float32))
        rows = recommend_top_n_batch(
            model, np.arange(3), n_items=4, exclude=exclude
        )
        assert (rows == -1).any()
        users = np.repeat(np.arange(3), rows.shape[1])
        with pytest.raises(IndexError, match="PAD_ITEM"):
            predict_entries(model, users, rows.ravel())


class TestPredictRatingBounds:
    def test_negative_indices_raise(self, model):
        with pytest.raises(IndexError):
            predict_rating(model, -1, 0)
        with pytest.raises(IndexError):
            predict_rating(model, 0, -1)
