"""Sharded training == in-RAM training, bit for bit.

The contract the whole out-of-core subsystem rests on: because degree
bins come from a fixed geometric grid (a pure function of each row's own
degree) and the cols orientation replays ``CSCMatrix.from_csr``'s entry
order, a blocked half-sweep over resident shards assembles and solves
the *identical* float64 systems the in-RAM sweep does.  Factors must be
``np.array_equal``; loss trajectories (streamed partial sums) agree to
1e-10 relative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.als import ALSConfig, train_als
from repro.core.alswr import train_als_wr, weighted_half_sweep
from repro.core.implicit import (
    ImplicitConfig,
    implicit_half_sweep,
    train_implicit_als,
)
from repro.core.init import init_factors
from repro.datasets.catalog import DatasetSpec
from repro.datasets.shardio import build_shard_store
from repro.datasets.synthetic import generate_ratings
from repro.kernels.fastpath import fast_half_sweep
from repro.sparse import CSRMatrix, ShardStore

_SPEC = DatasetSpec(
    name="parity", abbr="PRTY", m=900, n=220, nnz=14000,
    row_alpha=0.9, col_alpha=0.9, rating_min=1.0, rating_max=5.0,
)
_K = 12
_EXTRA = 4096  # per-row budget padding that forces several shards


@pytest.fixture(scope="module")
def data(tmp_path_factory):
    coo = generate_ratings(_SPEC, seed=5)
    root = tmp_path_factory.mktemp("ooc")
    build_shard_store(root / "store", coo)
    store = ShardStore.open(root / "store", shard_bytes=1 << 20)
    pos = type(coo)(coo.shape, coo.row, coo.col, np.abs(coo.value) + 0.25)
    build_shard_store(root / "store_pos", pos)
    store_pos = ShardStore.open(root / "store_pos", shard_bytes=1 << 20)
    return coo, store, pos, store_pos


def _multi_sharded(view):
    return len(view.shards(_EXTRA)) > 1


class TestHalfSweepParity:
    def test_plain(self, data):
        coo, store, _, _ = data
        R = CSRMatrix.from_coo(coo.deduplicate())
        Y = np.random.default_rng(0).uniform(-0.1, 0.1, (R.ncols, _K))
        assert _multi_sharded(store.rows)
        assert np.array_equal(
            fast_half_sweep(R, Y, 0.1), fast_half_sweep(store.rows, Y, 0.1)
        )

    def test_weighted(self, data):
        coo, store, _, _ = data
        R = CSRMatrix.from_coo(coo.deduplicate())
        Y = np.random.default_rng(1).uniform(-0.1, 0.1, (R.ncols, _K))
        assert np.array_equal(
            weighted_half_sweep(R, Y, 0.1),
            weighted_half_sweep(store.rows, Y, 0.1),
        )

    def test_implicit(self, data):
        _, _, pos, store_pos = data
        R = CSRMatrix.from_coo(pos.deduplicate())
        Y = np.random.default_rng(2).uniform(-0.1, 0.1, (R.ncols, _K))
        assert np.array_equal(
            implicit_half_sweep(R, Y, 0.1, 40.0),
            implicit_half_sweep(store_pos.rows, Y, 0.1, 40.0),
        )

    def test_cols_orientation(self, data):
        coo, store, _, _ = data
        from repro.sparse import CSCMatrix

        R = CSRMatrix.from_coo(coo.deduplicate())
        Rt = CSCMatrix.from_csr(R).transpose_as_csr()
        X = np.random.default_rng(3).uniform(-0.1, 0.1, (R.nrows, _K))
        assert np.array_equal(
            fast_half_sweep(Rt, X, 0.1), fast_half_sweep(store.cols, X, 0.1)
        )


class TestTrainerParity:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_als(self, data, workers):
        coo, store, _, _ = data
        cfg = ALSConfig(k=_K, iterations=2, workers=workers)
        ram = train_als(coo, cfg)
        ooc = train_als(store, cfg)
        assert np.array_equal(ram.X, ooc.X)
        assert np.array_equal(ram.Y, ooc.Y)
        for a, b in zip(ram.history, ooc.history):
            assert abs(a.loss - b.loss) <= 1e-10 * max(1.0, abs(a.loss))
            assert abs(a.train_rmse - b.train_rmse) <= 1e-10

    @pytest.mark.parametrize("workers", [None, 2])
    def test_als_wr(self, data, workers):
        coo, store, _, _ = data
        cfg = ALSConfig(k=_K, iterations=2, workers=workers)
        ram = train_als_wr(coo, cfg)
        ooc = train_als_wr(store, cfg)
        assert np.array_equal(ram.X, ooc.X)
        assert np.array_equal(ram.Y, ooc.Y)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_implicit(self, data, workers):
        _, _, pos, store_pos = data
        cfg = ImplicitConfig(k=_K, iterations=2, workers=workers)
        ram = train_implicit_als(pos, cfg)
        ooc = train_implicit_als(store_pos, cfg)
        assert np.array_equal(ram.X, ooc.X)
        assert np.array_equal(ram.Y, ooc.Y)
        for a, b in zip(ram.history, ooc.history):
            assert abs(a - b) <= 1e-10 * max(1.0, abs(a))

    def test_implicit_negative_values_rejected(self, data, tmp_path):
        coo, *_ = data
        neg = type(coo)(
            coo.shape, coo.row, coo.col, -np.abs(coo.value)
        )
        build_shard_store(tmp_path / "neg", neg)
        with pytest.raises(ValueError, match="non-negative"):
            train_implicit_als(ShardStore.open(tmp_path / "neg"))


class TestMemmapFactors:
    def test_als_memmap_matches_ram(self, data, tmp_path):
        _, store, _, _ = data
        ram = train_als(store, ALSConfig(k=_K, iterations=2))
        mm = train_als(
            store,
            ALSConfig(
                k=_K, iterations=2, factors="memmap",
                factors_dir=str(tmp_path / "f"),
            ),
        )
        assert isinstance(mm.X, np.memmap)
        assert np.array_equal(ram.X, np.asarray(mm.X))
        assert np.array_equal(ram.Y, np.asarray(mm.Y))
        assert (tmp_path / "f" / "X.npy").is_file()

    def test_implicit_memmap_matches_ram(self, data, tmp_path):
        _, _, _, store_pos = data
        ram = train_implicit_als(store_pos, ImplicitConfig(k=_K, iterations=2))
        mm = train_implicit_als(
            store_pos,
            ImplicitConfig(
                k=_K, iterations=2, factors="memmap",
                factors_dir=str(tmp_path / "f"),
            ),
        )
        assert np.array_equal(ram.X, np.asarray(mm.X))

    def test_bad_factor_mode_rejected(self):
        with pytest.raises(ValueError, match="factors"):
            ALSConfig(factors="cloud")
        with pytest.raises(ValueError, match="factors"):
            ImplicitConfig(factors="cloud")


class TestInitFactors:
    def test_memmap_rng_identity(self, tmp_path):
        """Chunked memmap fill draws the same stream as the one-shot path."""
        X1, Y1 = init_factors(64, 70000, 4, seed=11)
        X2, Y2 = init_factors(64, 70000, 4, seed=11, memmap_dir=tmp_path / "f")
        assert np.array_equal(X1, np.asarray(X2))
        assert np.array_equal(Y1, np.asarray(Y2))
