"""Tests for prediction, recommendation and initialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ALSConfig,
    init_factors,
    mae,
    predict_entries,
    predict_rating,
    recommend_top_n,
    train_als,
)
from repro.datasets import planted_problem
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture(scope="module")
def model_and_data():
    problem = planted_problem(m=40, n=30, rank=3, density=0.35, seed=9)
    model = train_als(problem.ratings, ALSConfig(k=3, lam=0.05, iterations=6))
    return model, CSRMatrix.from_coo(problem.ratings)


class TestPredict:
    def test_predict_rating_is_inner_product(self, model_and_data):
        model, _ = model_and_data
        assert predict_rating(model, 3, 7) == pytest.approx(
            float(model.X[3] @ model.Y[7])
        )

    def test_bounds_checked(self, model_and_data):
        model, _ = model_and_data
        with pytest.raises(IndexError):
            predict_rating(model, 40, 0)
        with pytest.raises(IndexError):
            predict_rating(model, 0, 30)

    def test_predict_entries_vectorized(self, model_and_data):
        model, _ = model_and_data
        users = np.array([0, 1, 2])
        items = np.array([5, 6, 7])
        out = predict_entries(model, users, items)
        for idx in range(3):
            assert out[idx] == pytest.approx(
                predict_rating(model, int(users[idx]), int(items[idx]))
            )

    def test_predict_entries_shape_mismatch(self, model_and_data):
        model, _ = model_and_data
        with pytest.raises(ValueError):
            predict_entries(model, np.array([0]), np.array([0, 1]))

    def test_predictions_approximate_observed(self, model_and_data):
        model, R = model_and_data
        coo = R.to_coo()
        assert mae(coo, model.X, model.Y) < 0.25


class TestRecommend:
    def test_excludes_seen_items(self, model_and_data):
        model, R = model_and_data
        user = 0
        seen, _ = R.row_slice(user)
        recs = recommend_top_n(model, user, n_items=10, exclude=R)
        assert not set(i for i, _ in recs) & set(seen.tolist())

    def test_sorted_descending(self, model_and_data):
        model, R = model_and_data
        recs = recommend_top_n(model, 1, n_items=8, exclude=R)
        scores = [s for _, s in recs]
        assert scores == sorted(scores, reverse=True)

    def test_without_exclusion_returns_global_top(self, model_and_data):
        model, _ = model_and_data
        recs = recommend_top_n(model, 2, n_items=5)
        expect_best = int(np.argmax(model.Y @ model.X[2]))
        assert recs[0][0] == expect_best

    def test_n_larger_than_catalog(self, model_and_data):
        model, _ = model_and_data
        recs = recommend_top_n(model, 0, n_items=10_000)
        assert len(recs) == 30

    def test_invalid_args(self, model_and_data):
        model, _ = model_and_data
        with pytest.raises(IndexError):
            recommend_top_n(model, 99)
        with pytest.raises(ValueError):
            recommend_top_n(model, 0, n_items=0)


class TestInit:
    def test_x_zero_y_small_random(self):
        X, Y = init_factors(5, 4, 3, seed=0, scale=0.1)
        np.testing.assert_array_equal(X, np.zeros((5, 3)))
        assert Y.shape == (4, 3)
        assert np.all(np.abs(Y) <= 0.1)
        assert np.any(Y != 0)

    def test_deterministic(self):
        _, y1 = init_factors(5, 4, 3, seed=7)
        _, y2 = init_factors(5, 4, 3, seed=7)
        np.testing.assert_array_equal(y1, y2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            init_factors(0, 4, 3)
        with pytest.raises(ValueError):
            init_factors(5, 4, 3, scale=0.0)
