"""Recommender facade: the implicit algorithm and persistence hardening."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Recommender
from repro.core.implicit import ImplicitConfig, ImplicitModel
from repro.sparse import COOMatrix


@pytest.fixture
def counts(rng) -> COOMatrix:
    dense = np.where(
        rng.random((20, 14)) < 0.3, rng.integers(1, 6, size=(20, 14)), 0
    ).astype(np.float32)
    return COOMatrix.from_dense(dense)


@pytest.fixture
def fitted(counts) -> Recommender:
    return Recommender(k=3, iterations=2, algorithm="implicit", alpha=15.0).fit(
        counts
    )


class TestImplicitAlgorithm:
    def test_fit_produces_implicit_model(self, fitted):
        assert isinstance(fitted.model, ImplicitModel)
        assert isinstance(fitted.config, ImplicitConfig)
        assert fitted.config.alpha == 15.0
        assert all(isinstance(h, float) for h in fitted.model.history)

    def test_predict_and_recommend_work(self, fitted, counts):
        scores = fitted.predict([0, 1], [2, 3])
        assert scores.shape == (2,)
        recs = fitted.recommend(user=0, n_items=5)
        seen = set(counts.col[counts.row == 0].tolist())
        assert all(item not in seen for item, _ in recs)

    def test_evaluate_ranking_accepts_implicit_model(self, fitted, counts):
        test = COOMatrix((20, 14), [0, 3], [1, 2], [1.0, 1.0])
        metrics = fitted.evaluate_ranking(test, n=5)
        assert metrics.users == 2

    def test_save_load_roundtrip(self, fitted, tmp_path):
        path = tmp_path / "implicit.npz"
        fitted.save(path)
        loaded = Recommender.load(path)
        assert loaded.algorithm == "implicit"
        assert isinstance(loaded.model, ImplicitModel)
        assert loaded.config.alpha == 15.0
        np.testing.assert_array_equal(loaded.model.X, fitted.model.X)
        np.testing.assert_array_equal(loaded.model.Y, fitted.model.Y)
        assert loaded.model.history == fitted.model.history

    def test_loaded_model_serves(self, fitted, tmp_path):
        path = tmp_path / "implicit.npz"
        fitted.save(path)
        loaded = Recommender.load(path)
        np.testing.assert_array_equal(
            loaded.predict([0, 1], [2, 3]), fitted.predict([0, 1], [2, 3])
        )


class TestPersistenceHardening:
    def test_explicit_roundtrip_unchanged(self, counts, tmp_path):
        rec = Recommender(k=3, iterations=2).fit(counts)
        path = tmp_path / "als.npz"
        rec.save(path)
        loaded = Recommender.load(path)
        assert loaded.algorithm == "als"
        np.testing.assert_array_equal(loaded.model.X, rec.model.X)
        assert loaded.model.history[-1].train_rmse == rec.model.history[-1].train_rmse

    def test_missing_keys_is_value_error(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, X=np.zeros((2, 3)))
        with pytest.raises(ValueError, match="missing"):
            Recommender.load(path)

    def test_unknown_algorithm_is_value_error(self, tmp_path):
        path = tmp_path / "alien.npz"
        meta = {"algorithm": "svd++", "config": {"k": 3}, "history": []}
        np.savez(
            path, X=np.zeros((2, 3)), Y=np.zeros((4, 3)),
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="unknown algorithm"):
            Recommender.load(path)

    def test_factor_shape_mismatch_is_value_error(self, counts, tmp_path):
        rec = Recommender(k=3, iterations=1).fit(counts)
        path = tmp_path / "truncated.npz"
        rec.save(path)
        with np.load(path) as data:
            meta, X, Y = data["meta"], data["X"], data["Y"]
        np.savez(tmp_path / "bad.npz", X=X[:, :2], Y=Y, meta=meta)
        with pytest.raises(ValueError, match="shape"):
            Recommender.load(tmp_path / "bad.npz")
