"""Tests for the high-level Recommender facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Recommender
from repro.datasets import planted_problem, train_test_split


@pytest.fixture(scope="module")
def data():
    problem = planted_problem(m=60, n=40, rank=3, density=0.35, seed=4)
    return train_test_split(problem.ratings, test_fraction=0.2, seed=0)


@pytest.fixture(scope="module")
def fitted(data):
    return Recommender(k=4, lam=0.05, iterations=8).fit(data.train)


class TestLifecycle:
    def test_unfitted_raises(self):
        rec = Recommender()
        assert not rec.is_fitted
        with pytest.raises(RuntimeError, match="fit"):
            rec.predict([0], [0])
        with pytest.raises(RuntimeError):
            rec.recommend(0)

    def test_fit_returns_self(self, data):
        rec = Recommender(k=3, iterations=2)
        assert rec.fit(data.train) is rec
        assert rec.is_fitted

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            Recommender(algorithm="svd++")

    def test_alswr_algorithm(self, data):
        rec = Recommender(k=3, iterations=3, algorithm="als-wr").fit(data.train)
        assert rec.evaluate(data.test)["rmse"] < 1.5


class TestQueries:
    def test_predict_matches_model(self, fitted):
        out = fitted.predict([1, 2], [3, 4])
        expect = [
            float(fitted.model.X[1] @ fitted.model.Y[3]),
            float(fitted.model.X[2] @ fitted.model.Y[4]),
        ]
        np.testing.assert_allclose(out, expect)

    def test_recommend_excludes_seen_by_default(self, fitted, data):
        user = int(data.train.row[0])
        seen = set(data.train.col[data.train.row == user].tolist())
        recs = fitted.recommend(user, n_items=10)
        assert not {i for i, _ in recs} & seen

    def test_recommend_can_include_seen(self, fitted):
        all_items = fitted.recommend(0, n_items=40, exclude_seen=False)
        assert len(all_items) == 40

    def test_evaluate_keys_and_order(self, fitted, data):
        metrics = fitted.evaluate(data.test)
        assert set(metrics) == {"rmse", "mae"}
        assert metrics["mae"] <= metrics["rmse"] + 1e-12

    def test_heldout_rmse_sane(self, fitted, data):
        assert fitted.evaluate(data.test)["rmse"] < 1.0


class TestPersistence:
    def test_save_load_roundtrip(self, fitted, data, tmp_path):
        path = tmp_path / "model.npz"
        fitted.save(path)
        loaded = Recommender.load(path)
        np.testing.assert_array_equal(loaded.model.X, fitted.model.X)
        np.testing.assert_array_equal(loaded.model.Y, fitted.model.Y)
        assert loaded.algorithm == fitted.algorithm
        assert loaded.config == fitted.config

    def test_loaded_model_predicts_identically(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        fitted.save(path)
        loaded = Recommender.load(path)
        np.testing.assert_allclose(
            loaded.predict([0, 5], [1, 2]), fitted.predict([0, 5], [1, 2])
        )

    def test_loaded_recommend_without_training_data(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        fitted.save(path)
        loaded = Recommender.load(path)
        # No training matrix persisted → nothing excluded, still works.
        assert len(loaded.recommend(0, n_items=5)) == 5

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            Recommender().save(tmp_path / "x.npz")

    def test_history_survives_roundtrip(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        fitted.save(path)
        loaded = Recommender.load(path)
        assert loaded.model.history == fitted.model.history
        assert len(loaded.model.history) == fitted.config.iterations
        assert loaded.model.losses() == fitted.model.losses()

    def test_load_tolerates_files_without_history(self, fitted, tmp_path):
        """Pre-history .npz files (no 'history' key) still load."""
        import json

        import numpy as np

        path = tmp_path / "legacy.npz"
        fitted.save(path)
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
            X, Y = data["X"], data["Y"]
        del meta["history"]
        np.savez_compressed(
            path,
            X=X,
            Y=Y,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        loaded = Recommender.load(path)
        assert loaded.model.history == []
        np.testing.assert_array_equal(loaded.model.X, fitted.model.X)


class TestSingleConversion:
    """fit() builds the row-CSR once and shares it with exclude_seen.

    The CSC (column) view is always built from the transpose inside the
    trainer, so only conversions in the *input* orientation count.
    """

    @staticmethod
    def _count_row_conversions(monkeypatch, shape):
        from repro.sparse.csr import CSRMatrix

        calls = []
        original = CSRMatrix.from_coo.__func__

        def counting(cls, coo):
            if coo.shape == shape:
                calls.append(coo)
            return original(cls, coo)

        monkeypatch.setattr(CSRMatrix, "from_coo", classmethod(counting))
        return calls

    def test_fit_converts_coo_to_csr_exactly_once(self, data, monkeypatch):
        calls = self._count_row_conversions(monkeypatch, data.train.shape)
        Recommender(k=3, iterations=2).fit(data.train)
        assert len(calls) == 1

    def test_fit_accepts_prebuilt_csr(self, data):
        from repro.sparse.csr import CSRMatrix

        csr = CSRMatrix.from_coo(data.train.deduplicate())
        rec = Recommender(k=3, iterations=2).fit(csr)
        assert rec._train_csr is csr
        assert rec.evaluate(data.test)["rmse"] < 1.5

    def test_alswr_fit_converts_once_too(self, data, monkeypatch):
        calls = self._count_row_conversions(monkeypatch, data.train.shape)
        Recommender(k=3, iterations=2, algorithm="als-wr").fit(data.train)
        assert len(calls) == 1
