"""Tests for ranking metrics and batch recommendation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ALSConfig,
    RankingMetrics,
    evaluate_ranking,
    recommend_top_n,
    recommend_top_n_batch,
    train_als,
)
from repro.datasets import planted_problem, train_test_split
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture(scope="module")
def setup():
    problem = planted_problem(m=120, n=90, rank=4, density=0.25, seed=14)
    split = train_test_split(problem.ratings, test_fraction=0.25, seed=1)
    model = train_als(split.train, ALSConfig(k=4, lam=0.05, iterations=10))
    train_csr = CSRMatrix.from_coo(split.train)
    return model, train_csr, split.test


class TestEvaluateRanking:
    def test_trained_model_beats_random_scorer(self, setup):
        model, train, test = setup
        rng = np.random.default_rng(0)
        trained = evaluate_ranking(
            lambda u: model.Y @ model.X[u], train, test, n=10
        )
        random = evaluate_ranking(
            lambda u: rng.random(model.Y.shape[0]), train, test, n=10
        )
        assert trained.ndcg > random.ndcg
        assert trained.hit_rate > random.hit_rate

    def test_metric_ranges(self, setup):
        model, train, test = setup
        m = evaluate_ranking(lambda u: model.Y @ model.X[u], train, test, n=10)
        for v in (m.hit_rate, m.precision, m.recall, m.ndcg):
            assert 0.0 <= v <= 1.0
        assert m.users > 0

    def test_perfect_scorer_maxes_ndcg(self):
        """A scorer that ranks exactly the held-out items first."""
        dense_train = np.zeros((4, 8), dtype=np.float32)
        dense_train[:, 0] = 1.0  # everyone saw item 0
        train = CSRMatrix.from_dense(dense_train)
        test = COOMatrix((4, 8), [0, 1, 2, 3], [1, 2, 3, 4], [1.0] * 4)
        held = {0: 1, 1: 2, 2: 3, 3: 4}

        def perfect(u):
            scores = np.zeros(8)
            scores[held[u]] = 10.0
            return scores

        m = evaluate_ranking(perfect, train, test, n=3)
        assert m.ndcg == pytest.approx(1.0)
        assert m.recall == pytest.approx(1.0)
        assert m.hit_rate == pytest.approx(1.0)

    def test_rejects_bad_inputs(self, setup):
        model, train, test = setup
        with pytest.raises(ValueError):
            evaluate_ranking(lambda u: None, train, test, n=0)
        with pytest.raises(ValueError):
            evaluate_ranking(
                lambda u: None, train, COOMatrix.empty(train.shape)
            )
        with pytest.raises(ValueError):
            evaluate_ranking(
                lambda u: None,
                train,
                COOMatrix((3, 3), [0], [0], [1.0]),
            )

    def test_str(self, setup):
        model, train, test = setup
        m = evaluate_ranking(lambda u: model.Y @ model.X[u], train, test)
        assert "NDCG" in str(m)
        assert isinstance(m, RankingMetrics)


class TestBatchRecommend:
    def test_matches_single_user_path(self, setup):
        model, train, _ = setup
        users = np.array([0, 3, 7])
        batch = recommend_top_n_batch(model, users, n_items=5, exclude=train)
        for row, user in zip(batch, users):
            single = [i for i, _ in recommend_top_n(model, int(user), 5, exclude=train)]
            assert row.tolist() == single

    def test_without_exclusion(self, setup):
        model, _, _ = setup
        batch = recommend_top_n_batch(model, np.arange(4), n_items=3)
        assert batch.shape == (4, 3)

    def test_invalid_args(self, setup):
        model, train, _ = setup
        with pytest.raises(ValueError):
            recommend_top_n_batch(model, np.zeros((2, 2), dtype=int))
        with pytest.raises(ValueError):
            recommend_top_n_batch(model, np.array([0]), n_items=0)
        with pytest.raises(ValueError):
            recommend_top_n_batch(model, np.array([0]), n_items=10_000)
