"""Tests for ranking metrics and batch recommendation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ALSConfig,
    RankingMetrics,
    evaluate_ranking,
    recommend_top_n,
    recommend_top_n_batch,
    train_als,
)
from repro.datasets import planted_problem, train_test_split
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture(scope="module")
def setup():
    problem = planted_problem(m=120, n=90, rank=4, density=0.25, seed=14)
    split = train_test_split(problem.ratings, test_fraction=0.25, seed=1)
    model = train_als(split.train, ALSConfig(k=4, lam=0.05, iterations=10))
    train_csr = CSRMatrix.from_coo(split.train)
    return model, train_csr, split.test


class TestEvaluateRanking:
    def test_trained_model_beats_random_scorer(self, setup):
        model, train, test = setup
        rng = np.random.default_rng(0)
        trained = evaluate_ranking(
            lambda u: model.Y @ model.X[u], train, test, n=10
        )
        random = evaluate_ranking(
            lambda u: rng.random(model.Y.shape[0]), train, test, n=10
        )
        assert trained.ndcg > random.ndcg
        assert trained.hit_rate > random.hit_rate

    def test_metric_ranges(self, setup):
        model, train, test = setup
        m = evaluate_ranking(lambda u: model.Y @ model.X[u], train, test, n=10)
        for v in (m.hit_rate, m.precision, m.recall, m.ndcg):
            assert 0.0 <= v <= 1.0
        assert m.users > 0

    def test_perfect_scorer_maxes_ndcg(self):
        """A scorer that ranks exactly the held-out items first."""
        dense_train = np.zeros((4, 8), dtype=np.float32)
        dense_train[:, 0] = 1.0  # everyone saw item 0
        train = CSRMatrix.from_dense(dense_train)
        test = COOMatrix((4, 8), [0, 1, 2, 3], [1, 2, 3, 4], [1.0] * 4)
        held = {0: 1, 1: 2, 2: 3, 3: 4}

        def perfect(u):
            scores = np.zeros(8)
            scores[held[u]] = 10.0
            return scores

        m = evaluate_ranking(perfect, train, test, n=3)
        assert m.ndcg == pytest.approx(1.0)
        assert m.recall == pytest.approx(1.0)
        assert m.hit_rate == pytest.approx(1.0)

    def test_rejects_bad_inputs(self, setup):
        model, train, test = setup
        with pytest.raises(ValueError):
            evaluate_ranking(lambda u: None, train, test, n=0)
        with pytest.raises(ValueError):
            evaluate_ranking(
                lambda u: None, train, COOMatrix.empty(train.shape)
            )
        with pytest.raises(ValueError):
            evaluate_ranking(
                lambda u: None,
                train,
                COOMatrix((3, 3), [0], [0], [1.0]),
            )

    def test_str(self, setup):
        model, train, test = setup
        m = evaluate_ranking(lambda u: model.Y @ model.X[u], train, test)
        assert "NDCG" in str(m)
        assert isinstance(m, RankingMetrics)


class TestBatchRecommend:
    def test_matches_single_user_path(self, setup):
        model, train, _ = setup
        users = np.array([0, 3, 7])
        batch = recommend_top_n_batch(model, users, n_items=5, exclude=train)
        for row, user in zip(batch, users):
            single = [i for i, _ in recommend_top_n(model, int(user), 5, exclude=train)]
            assert row.tolist() == single

    def test_without_exclusion(self, setup):
        model, _, _ = setup
        batch = recommend_top_n_batch(model, np.arange(4), n_items=3)
        assert batch.shape == (4, 3)

    def test_invalid_args(self, setup):
        model, train, _ = setup
        with pytest.raises(ValueError):
            recommend_top_n_batch(model, np.zeros((2, 2), dtype=int))
        with pytest.raises(ValueError):
            recommend_top_n_batch(model, np.array([0]), n_items=0)

    def test_n_larger_than_catalog_clamps(self, setup):
        """Both entry points clamp n to the catalog instead of raising."""
        model, _, _ = setup
        n_catalog = model.Y.shape[0]
        batch = recommend_top_n_batch(model, np.array([0]), n_items=10_000)
        assert batch.shape == (1, n_catalog)
        single = recommend_top_n(model, 0, n_items=10_000)
        assert [i for i, _ in single] == batch[0].tolist()


class TestShortCandidateContract:
    """A user with fewer than N unseen items: batch pads, single truncates."""

    @pytest.fixture(scope="class")
    def nearly_saturated(self):
        # User 0 has seen all but 2 of the 6 items; user 1 has seen none.
        dense = np.zeros((2, 6), dtype=np.float32)
        dense[0, [0, 1, 2, 3]] = 1.0
        train = CSRMatrix.from_dense(dense)
        from repro.core.als import ALSConfig, ALSModel

        X = np.array([[1.0, 0.0], [0.0, 1.0]])
        Y = np.arange(12, dtype=np.float64).reshape(6, 2)
        model = ALSModel(X=X, Y=Y, config=ALSConfig(k=2), history=[])
        return model, train

    def test_batch_pads_with_sentinel(self, nearly_saturated):
        model, train = nearly_saturated
        batch = recommend_top_n_batch(model, np.array([0, 1]), n_items=4, exclude=train)
        assert batch.shape == (2, 4)
        # user 0: only items 4, 5 are unseen -> two real ids, two pads
        assert set(batch[0, :2].tolist()) == {4, 5}
        assert batch[0, 2:].tolist() == [-1, -1]
        # user 1 saw nothing: full row, no padding
        assert (batch[1] >= 0).all()

    def test_single_truncates_consistently(self, nearly_saturated):
        model, train = nearly_saturated
        single = recommend_top_n(model, 0, n_items=4, exclude=train)
        batch = recommend_top_n_batch(model, np.array([0]), n_items=4, exclude=train)
        valid = [int(i) for i in batch[0] if i >= 0]
        assert [i for i, _ in single] == valid
        assert len(single) == 2


class TestEvaluateRankingParity:
    """The engine-based rewrite reproduces the pre-rewrite metrics."""

    @staticmethod
    def _reference(score_matrix_fn, train, test, n=10):
        """The pre-rewrite per-user loop, kept verbatim as the oracle."""
        held_out = {}
        for u, i in zip(test.row, test.col):
            held_out.setdefault(int(u), set()).add(int(i))

        def dcg(rel):
            if rel.size == 0:
                return 0.0
            discounts = 1.0 / np.log2(np.arange(2, rel.size + 2))
            return float(rel @ discounts)

        hits = total_held = 0
        precisions, recalls, ndcgs = [], [], []
        for user, items in held_out.items():
            scores = np.asarray(score_matrix_fn(user), dtype=np.float64).copy()
            seen, _ = train.row_slice(user)
            scores[seen] = -np.inf
            top_n = min(n, scores.size)
            top = np.argpartition(scores, -top_n)[-top_n:]
            top = top[np.argsort(scores[top])[::-1]]
            rel = np.array([1.0 if int(i) in items else 0.0 for i in top])
            got = int(rel.sum())
            hits += got
            total_held += len(items)
            precisions.append(got / n)
            recalls.append(got / len(items))
            ideal = dcg(np.ones(min(len(items), n)))
            ndcgs.append(dcg(rel) / ideal if ideal else 0.0)
        return {
            "users": len(held_out),
            "hit_rate": hits / total_held,
            "precision": float(np.mean(precisions)),
            "recall": float(np.mean(recalls)),
            "ndcg": float(np.mean(ndcgs)),
        }

    def test_model_path_matches_reference(self, setup):
        model, train, test = setup
        ref = self._reference(lambda u: model.X[u] @ model.Y.T, train, test, n=10)
        got = evaluate_ranking(model, train, test, n=10)
        assert got.users == ref["users"]
        for name in ("hit_rate", "precision", "recall", "ndcg"):
            assert getattr(got, name) == pytest.approx(ref[name], abs=1e-12)

    def test_callable_path_matches_reference(self, setup):
        model, train, test = setup
        fn = lambda u: model.Y @ model.X[u]  # noqa: E731
        ref = self._reference(fn, train, test, n=10)
        got = evaluate_ranking(fn, train, test, n=10)
        assert got.users == ref["users"]
        for name in ("hit_rate", "precision", "recall", "ndcg"):
            assert getattr(got, name) == pytest.approx(ref[name], abs=1e-12)
