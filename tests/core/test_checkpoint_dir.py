"""Directory checkpoints: chunked memmap writes, mmap loads, crash safety.

The directory format exists so that factors too large for RAM can be
saved (streamed row chunks through ``open_memmap``) and served
(``mmap_mode="r"`` faults pages in on demand).  Correctness bar: a
save/load round trip is bit-exact, an interrupted save (no ``meta.json``)
is rejected, and the legacy ``.npz`` envelope keeps working unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.datasets.catalog import DatasetSpec
from repro.datasets.shardio import build_shard_store
from repro.datasets.synthetic import generate_ratings

_SPEC = DatasetSpec(
    name="ckpt", abbr="CKPT", m=120, n=50, nnz=1500,
    row_alpha=0.9, col_alpha=0.9, rating_min=1.0, rating_max=5.0,
)


@pytest.fixture(scope="module")
def fitted(tmp_path_factory):
    ratings = generate_ratings(_SPEC, seed=6)
    rec = repro.Recommender(k=6, lam=0.1, iterations=3).fit(ratings)
    return ratings, rec


class TestDirectoryRoundTrip:
    def test_round_trip_is_bit_exact(self, fitted, tmp_path):
        _, rec = fitted
        rec.save(tmp_path / "ckpt")
        assert (tmp_path / "ckpt" / "meta.json").is_file()
        loaded = repro.Recommender.load(tmp_path / "ckpt")
        assert np.array_equal(rec.model.X, loaded.model.X)
        assert np.array_equal(rec.model.Y, loaded.model.Y)
        assert loaded.algorithm == rec.algorithm

    def test_mmap_load_serves_without_copy(self, fitted, tmp_path):
        _, rec = fitted
        rec.save(tmp_path / "ckpt")
        loaded = repro.Recommender.load(tmp_path / "ckpt", mmap_mode="r")
        assert isinstance(loaded.model.X, np.memmap)
        assert not loaded.model.X.flags.writeable
        got = loaded.recommend(user=0, n_items=5, exclude_seen=False)
        want = rec.recommend(user=0, n_items=5, exclude_seen=False)
        assert [i for i, _ in got] == [i for i, _ in want]

    def test_interrupted_save_rejected(self, fitted, tmp_path):
        _, rec = fitted
        rec.save(tmp_path / "ckpt")
        (tmp_path / "ckpt" / "meta.json").unlink()  # simulate a crash
        with pytest.raises(ValueError, match="meta.json"):
            repro.Recommender.load(tmp_path / "ckpt")

    def test_npz_suffix_selects_legacy_envelope(self, fitted, tmp_path):
        _, rec = fitted
        rec.save(tmp_path / "m.npz")
        assert (tmp_path / "m.npz").is_file()
        loaded = repro.Recommender.load(tmp_path / "m.npz")
        assert np.array_equal(rec.model.X, loaded.model.X)

    def test_npz_rejects_mmap_mode(self, fitted, tmp_path):
        _, rec = fitted
        rec.save(tmp_path / "m.npz")
        with pytest.raises(ValueError, match="mmap_mode"):
            repro.Recommender.load(tmp_path / "m.npz", mmap_mode="r")


class TestShardStoreFit:
    def test_fit_from_store_matches_in_ram(self, fitted, tmp_path):
        ratings, rec = fitted
        build_shard_store(tmp_path / "store", ratings)
        store = repro.ShardStore.open(tmp_path / "store")
        ooc = repro.Recommender(k=6, lam=0.1, iterations=3).fit(store)
        assert np.array_equal(rec.model.X, ooc.model.X)
        assert np.array_equal(rec.model.Y, ooc.model.Y)
        # exclude-seen recommendation reads the ShardedCSR directly
        got = ooc.recommend(user=1, n_items=4)
        want = rec.recommend(user=1, n_items=4)
        assert [i for i, _ in got] == [i for i, _ in want]
