"""Tests for ALS-WR and implicit-feedback ALS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ALSConfig, ImplicitConfig, train_als, train_als_wr, train_implicit_als
from repro.core.alswr import weighted_half_sweep
from repro.core.implicit import implicit_half_sweep
from repro.datasets import planted_problem
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture(scope="module")
def problem():
    return planted_problem(m=50, n=35, rank=3, density=0.3, seed=21)


class TestALSWR:
    def test_weighted_system_definition(self, rng):
        """x_u must solve (Y_ΩᵀY_Ω + λ·n_u·I) x = Y_Ωᵀ r_u exactly."""
        dense = np.zeros((3, 6), dtype=np.float32)
        dense[1, [0, 2, 5]] = [4.0, 3.0, 5.0]
        R = CSRMatrix.from_dense(dense)
        Y = rng.standard_normal((6, 4))
        lam = 0.3
        X = weighted_half_sweep(R, Y, lam)
        cols, vals = R.row_slice(1)
        sub = Y[cols]
        expect = np.linalg.solve(
            sub.T @ sub + lam * 3 * np.eye(4), sub.T @ vals.astype(np.float64)
        )
        np.testing.assert_allclose(X[1], expect, rtol=1e-8)
        np.testing.assert_array_equal(X[0], np.zeros(4))  # empty row

    def test_reduces_to_als_on_constant_degree(self, rng):
        """When every row has the same count n₀, WR with λ equals plain ALS
        with λ·n₀."""
        dense = rng.integers(1, 6, size=(8, 5)).astype(np.float32)  # full
        R = CSRMatrix.from_dense(dense)
        Y = rng.standard_normal((5, 3))
        from repro.kernels.fastpath import fast_half_sweep

        wr = weighted_half_sweep(R, Y, 0.2)
        plain = fast_half_sweep(R, Y, 0.2 * 5)
        np.testing.assert_allclose(wr, plain, rtol=1e-9)

    def test_training_improves_rmse(self, problem):
        model = train_als_wr(problem.ratings, ALSConfig(k=3, lam=0.02, iterations=6))
        rmses = [s.train_rmse for s in model.history]
        assert rmses[-1] < rmses[0]
        assert rmses[-1] < 0.3

    def test_rejects_nonpositive_lambda(self, rng):
        R = CSRMatrix.from_dense(rng.random((3, 3)).astype(np.float32))
        with pytest.raises(ValueError):
            weighted_half_sweep(R, rng.standard_normal((3, 2)), 0.0)


class TestImplicit:
    def test_half_sweep_matches_direct_solve(self, rng):
        """Check the Hu-Koren shortcut against the explicit weighted system."""
        dense = np.zeros((4, 5), dtype=np.float32)
        dense[2, [1, 3]] = [2.0, 1.0]
        R = CSRMatrix.from_dense(dense)
        Y = rng.standard_normal((5, 3))
        lam, alpha = 0.1, 10.0
        X = implicit_half_sweep(R, Y, lam, alpha)
        # Direct: C = diag(1 + α r) over all items (r=0 unobserved), p = 1{r>0}
        r = dense[2].astype(np.float64)
        C = np.diag(1.0 + alpha * r)
        p = (r > 0).astype(np.float64)
        expect = np.linalg.solve(Y.T @ C @ Y + lam * np.eye(3), Y.T @ C @ p)
        np.testing.assert_allclose(X[2], expect, rtol=1e-8)

    def test_empty_row_solves_to_zero(self, rng):
        dense = np.zeros((2, 4), dtype=np.float32)
        dense[0, 1] = 1.0
        X = implicit_half_sweep(
            CSRMatrix.from_dense(dense), rng.standard_normal((4, 2)), 0.1, 5.0
        )
        np.testing.assert_allclose(X[1], np.zeros(2), atol=1e-12)

    def test_training_loss_decreases(self, problem):
        counts = COOMatrix(
            problem.ratings.shape,
            problem.ratings.row,
            problem.ratings.col,
            np.abs(problem.ratings.value) + 0.5,
        )
        model = train_implicit_als(counts, ImplicitConfig(k=3, iterations=5))
        assert model.history[-1] < model.history[0]

    def test_scores_rank_observed_above_unobserved(self, rng):
        """On data with learnable block structure, a user's in-block items
        must outscore out-of-block items."""
        m, n = 40, 30
        dense = np.zeros((m, n), dtype=np.float32)
        # Two taste communities with dense in-block interactions.
        dense[:20, :15] = (rng.random((20, 15)) < 0.6).astype(np.float32)
        dense[20:, 15:] = (rng.random((20, 15)) < 0.6).astype(np.float32)
        counts = COOMatrix.from_dense(dense)
        model = train_implicit_als(counts, ImplicitConfig(k=3, iterations=8, alpha=40))
        scores = model.score(0)  # community-A user
        assert scores[:15].mean() > scores[15:].mean() + 0.2

    def test_negative_feedback_rejected(self):
        coo = COOMatrix((2, 2), [0], [0], [-1.0])
        with pytest.raises(ValueError):
            train_implicit_als(coo)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ImplicitConfig(alpha=0.0)
        with pytest.raises(ValueError):
            ImplicitConfig(k=0)
