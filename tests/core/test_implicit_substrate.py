"""Parity and bounded-memory tests for implicit ALS on the tiled substrate.

The implicit half-sweep now rides the degree-binned, nnz-tile-budgeted
weighted assembly; the legacy scatter kernel stays reachable via
``assembly="scatter"`` as the reference.  These tests pin the contract:

* binned-weighted matches the scatter reference to 1e-10, per half-sweep
  and end-to-end through ``train_implicit_als``;
* ``workers=N`` reproduces the serial result **bitwise**;
* peak assembly scratch respects ``tile_bytes_bound(..., weighted=True)``
  — no ``(nnz, k, k)`` intermediate survives;
* the ``als.implicit.s1/s2/s3`` spans are emitted;
* config knobs validate like :class:`ALSConfig`'s.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.assembly import clear_decision_cache
from repro.core import ImplicitConfig, train_implicit_als
from repro.core.implicit import implicit_half_sweep
from repro.linalg import configure_assembly, tile_bytes_bound
from repro.obs import metrics as obs_metrics
from repro.obs.spans import capture
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture(autouse=True)
def _clean_assembly_config():
    configure_assembly()
    yield
    configure_assembly()


def _skewed_counts(rng: np.random.Generator, m: int = 48, n: int = 30) -> CSRMatrix:
    """Interaction counts with heavy rows, empty rows and a degree skew."""
    mask = rng.random((m, n)) < 0.2
    mask[0] = rng.random(n) < 0.9  # heavy user
    mask[1] = False  # cold-start user
    dense = np.where(mask, rng.integers(1, 8, size=(m, n)), 0).astype(np.float32)
    return CSRMatrix.from_dense(dense)


class TestHalfSweepParity:
    def test_binned_matches_scatter_reference(self, rng):
        R = _skewed_counts(rng)
        Y = rng.standard_normal((R.ncols, 7))
        ref = implicit_half_sweep(R, Y, 0.1, 25.0, assembly="scatter")
        out = implicit_half_sweep(R, Y, 0.1, 25.0, assembly="binned")
        np.testing.assert_allclose(out, ref, atol=1e-10, rtol=0)

    def test_tiny_tile_budget_matches_untiled(self, rng):
        R = _skewed_counts(rng)
        Y = rng.standard_normal((R.ncols, 5))
        full = implicit_half_sweep(R, Y, 0.1, 10.0, assembly="binned")
        tiled = implicit_half_sweep(
            R, Y, 0.1, 10.0, assembly="binned", tile_nnz=16
        )
        np.testing.assert_allclose(tiled, full, atol=1e-10, rtol=0)

    def test_auto_assembly_matches_binned(self, rng):
        clear_decision_cache()
        R = _skewed_counts(rng)
        Y = rng.standard_normal((R.ncols, 4))
        auto = implicit_half_sweep(R, Y, 0.1, 5.0, assembly="auto")
        ref = implicit_half_sweep(R, Y, 0.1, 5.0, assembly="scatter")
        np.testing.assert_allclose(auto, ref, atol=1e-10, rtol=0)

    def test_parallel_bitwise_equals_serial(self, rng):
        R = _skewed_counts(rng, m=64)
        Y = rng.standard_normal((R.ncols, 6))
        serial = implicit_half_sweep(R, Y, 0.1, 40.0, solver="lapack")
        for workers in (2, 5):
            par = implicit_half_sweep(
                R, Y, 0.1, 40.0, solver="lapack", workers=workers
            )
            assert np.array_equal(par, serial)

    def test_rejects_nonpositive_alpha(self, rng):
        R = _skewed_counts(rng, m=8, n=6)
        with pytest.raises(ValueError):
            implicit_half_sweep(R, rng.standard_normal((6, 2)), 0.1, 0.0)


class TestEndToEndParity:
    def _counts(self, rng) -> COOMatrix:
        mask = rng.random((36, 24)) < 0.25
        dense = np.where(mask, rng.integers(1, 6, size=(36, 24)), 0)
        return COOMatrix.from_dense(dense.astype(np.float32))

    def test_training_binned_matches_scatter(self, rng):
        counts = self._counts(rng)
        kw = dict(k=4, iterations=3, alpha=20.0, seed=3)
        ref = train_implicit_als(counts, ImplicitConfig(assembly="scatter", **kw))
        out = train_implicit_als(counts, ImplicitConfig(assembly="binned", **kw))
        np.testing.assert_allclose(out.X, ref.X, atol=1e-10, rtol=0)
        np.testing.assert_allclose(out.Y, ref.Y, atol=1e-10, rtol=0)
        np.testing.assert_allclose(out.history, ref.history, rtol=1e-10)

    def test_training_parallel_bitwise(self, rng):
        counts = self._counts(rng)
        kw = dict(k=4, iterations=3, alpha=20.0, seed=3, solver="lapack")
        serial = train_implicit_als(counts, ImplicitConfig(**kw))
        par = train_implicit_als(counts, ImplicitConfig(workers=4, **kw))
        assert np.array_equal(par.X, serial.X)
        assert np.array_equal(par.Y, serial.Y)
        assert par.history == serial.history

    def test_model_shape_and_k(self, rng):
        counts = self._counts(rng)
        model = train_implicit_als(counts, ImplicitConfig(k=4, iterations=1))
        assert model.shape == counts.shape
        assert model.k == 4


class TestBoundedMemoryAndSpans:
    def test_peak_tile_gauge_respects_weighted_bound(self, rng):
        R = _skewed_counts(rng, m=80, n=40)
        Y = rng.standard_normal((R.ncols, 8))
        tile_nnz = 64
        with capture():
            obs_metrics.reset()
            implicit_half_sweep(R, Y, 0.1, 30.0, assembly="binned", tile_nnz=tile_nnz)
            snap = obs_metrics.snapshot()
        peak = snap["gauges"]["assembly.implicit.peak_tile_bytes"]
        assert 0 < peak <= tile_bytes_bound(tile_nnz, 8, weighted=True)

    def test_no_dense_nnz_k_k_intermediate(self, rng):
        """The binned path's scratch must not scale with nnz·k² — a budget
        of 32 nnz on a 2000-nnz matrix keeps peak bytes far below the
        scatter kernel's (nnz, k, k) tensor."""
        rng2 = np.random.default_rng(9)
        mask = rng2.random((100, 80)) < 0.25
        dense = np.where(mask, rng2.integers(1, 5, size=(100, 80)), 0)
        R = CSRMatrix.from_dense(dense.astype(np.float32))
        k = 16
        Y = rng2.standard_normal((R.ncols, k))
        with capture():
            obs_metrics.reset()
            implicit_half_sweep(R, Y, 0.1, 10.0, assembly="binned", tile_nnz=32)
            peak = obs_metrics.snapshot()["gauges"][
                "assembly.implicit.peak_tile_bytes"
            ]
        scatter_tensor_bytes = R.nnz * k * k * 8
        assert peak < scatter_tensor_bytes / 10

    def test_implicit_spans_emitted(self, rng):
        R = _skewed_counts(rng, m=16, n=10)
        Y = rng.standard_normal((R.ncols, 3))
        with capture() as tracer:
            implicit_half_sweep(R, Y, 0.1, 5.0, assembly="binned")
        names = {r.name for r in tracer.records}
        assert {"als.implicit.s1", "als.implicit.s2", "als.implicit.s3"} <= names

    def test_explicit_spans_unchanged(self, rng):
        """The weighted kernels must not rename the explicit path's spans."""
        from repro.kernels.fastpath import fast_half_sweep

        R = _skewed_counts(rng, m=16, n=10)
        Y = rng.standard_normal((R.ncols, 3))
        with capture() as tracer:
            fast_half_sweep(R, Y, 0.1)
        names = {r.name for r in tracer.records}
        assert {"als.s1.gram", "als.s2.rhs", "als.s3.solve"} <= names
        assert not any(n.startswith("als.implicit") for n in names)


class TestConfigKnobs:
    def test_accepts_substrate_knobs(self):
        cfg = ImplicitConfig(
            assembly="binned", tile_nnz=1024, assembly_dtype="float32",
            solver="lapack", workers=2,
        )
        assert cfg.assembly == "binned"
        assert cfg.workers == 2

    @pytest.mark.parametrize(
        "kw",
        [
            {"assembly": "magic"},
            {"tile_nnz": 0},
            {"assembly_dtype": "float16"},
            {"solver": "qr"},
            {"workers": 0},
            {"workers": "sometimes"},
        ],
    )
    def test_rejects_bad_knobs(self, kw):
        with pytest.raises(ValueError):
            ImplicitConfig(**kw)
