"""Tests for the ALS driver: convergence properties and API contracts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALSConfig, regularized_loss, rmse, train_als
from repro.datasets import planted_problem, train_test_split
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture(scope="module")
def planted():
    # Large enough that the rank-4 factorization is well-determined even
    # after holding out 20% (≈ 27 observations per user for 4 parameters).
    return planted_problem(m=120, n=90, rank=4, density=0.3, noise_std=0.05, seed=3)


class TestConvergence:
    def test_loss_decreases_monotonically(self, planted):
        """Each ALS half-sweep exactly minimizes Eq. 2 in its block, so the
        objective can never increase between iterations."""
        model = train_als(planted.ratings, ALSConfig(k=4, lam=0.1, iterations=8))
        losses = model.losses()
        assert all(a >= b - 1e-9 for a, b in zip(losses, losses[1:]))

    def test_recovers_planted_structure(self, planted):
        """Held-out RMSE approaches the noise floor on a planted problem."""
        split = train_test_split(planted.ratings, test_fraction=0.2, seed=1)
        model = train_als(split.train, ALSConfig(k=4, lam=0.05, iterations=20))
        test_rmse = rmse(split.test, model.X, model.Y)
        assert test_rmse < 4 * planted.ideal_rmse()

    def test_training_beats_constant_predictor(self, planted):
        model = train_als(planted.ratings, ALSConfig(k=4, lam=0.1, iterations=5))
        values = planted.ratings.value.astype(np.float64)
        baseline = float(np.sqrt(np.mean((values - values.mean()) ** 2)))
        assert model.history[-1].train_rmse < baseline / 2

    def test_more_iterations_never_hurt_train_loss(self, planted):
        cfg = dict(k=4, lam=0.1)
        short = train_als(planted.ratings, ALSConfig(iterations=2, **cfg))
        long = train_als(planted.ratings, ALSConfig(iterations=10, **cfg))
        assert long.losses()[-1] <= short.losses()[-1] + 1e-9

    def test_lambda_controls_factor_norm(self, planted):
        small = train_als(planted.ratings, ALSConfig(k=4, lam=0.01, iterations=4))
        large = train_als(planted.ratings, ALSConfig(k=4, lam=10.0, iterations=4))
        assert np.linalg.norm(large.X) < np.linalg.norm(small.X)


class TestDriverContracts:
    def test_accepts_coo_and_csr(self, planted):
        cfg = ALSConfig(k=3, iterations=2)
        a = train_als(planted.ratings, cfg)
        b = train_als(CSRMatrix.from_coo(planted.ratings), cfg)
        np.testing.assert_allclose(a.X, b.X, rtol=1e-10)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            train_als(np.zeros((3, 3)))

    def test_shapes_and_history_length(self, planted):
        cfg = ALSConfig(k=6, iterations=3)
        model = train_als(planted.ratings, cfg)
        assert model.X.shape == (120, 6)
        assert model.Y.shape == (90, 6)
        assert model.k == 6
        assert model.shape == (120, 90)
        assert len(model.history) == 3
        assert [s.iteration for s in model.history] == [1, 2, 3]

    def test_track_loss_off(self, planted):
        model = train_als(planted.ratings, ALSConfig(k=3, iterations=2, track_loss=False))
        assert model.history == []

    def test_empty_rows_stay_zero(self):
        dense = np.zeros((5, 4), dtype=np.float32)
        dense[0, :2] = [3.0, 4.0]
        dense[2, 1:3] = [2.0, 5.0]
        model = train_als(COOMatrix.from_dense(dense), ALSConfig(k=2, iterations=3))
        np.testing.assert_array_equal(model.X[1], [0.0, 0.0])
        np.testing.assert_array_equal(model.X[4], [0.0, 0.0])

    def test_deterministic_given_seed(self, planted):
        cfg = ALSConfig(k=4, iterations=2, seed=42)
        a = train_als(planted.ratings, cfg)
        b = train_als(planted.ratings, cfg)
        np.testing.assert_array_equal(a.X, b.X)

    def test_seed_changes_init(self, planted):
        a = train_als(planted.ratings, ALSConfig(k=4, iterations=1, seed=0))
        b = train_als(planted.ratings, ALSConfig(k=4, iterations=1, seed=1))
        assert not np.allclose(a.Y, b.Y)

    def test_cholesky_and_gaussian_agree(self, planted):
        a = train_als(planted.ratings, ALSConfig(k=4, iterations=3, cholesky=True))
        b = train_als(planted.ratings, ALSConfig(k=4, iterations=3, cholesky=False))
        np.testing.assert_allclose(a.X, b.X, rtol=1e-7, atol=1e-9)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ALSConfig(k=0)
        with pytest.raises(ValueError):
            ALSConfig(lam=0.0)
        with pytest.raises(ValueError):
            ALSConfig(iterations=0)


class TestLossDefinition:
    def test_loss_formula_matches_eq2(self, rng):
        coo = COOMatrix((2, 2), [0, 1], [1, 0], [4.0, 2.0])
        X = rng.standard_normal((2, 3))
        Y = rng.standard_normal((2, 3))
        lam = 0.5
        expected = (
            (4.0 - X[0] @ Y[1]) ** 2
            + (2.0 - X[1] @ Y[0]) ** 2
            + lam * (np.sum(X**2) + np.sum(Y**2))
        )
        assert regularized_loss(coo, X, Y, lam) == pytest.approx(expected)

    def test_shape_mismatch_rejected(self, rng):
        coo = COOMatrix((2, 2), [0], [1], [4.0])
        with pytest.raises(ValueError):
            regularized_loss(coo, rng.standard_normal((3, 2)), rng.standard_normal((2, 2)), 0.1)

    def test_rmse_of_perfect_fit_is_zero(self):
        X = np.array([[1.0, 0.0], [0.0, 1.0]])
        Y = np.array([[2.0, 3.0], [4.0, 5.0]])
        coo = COOMatrix((2, 2), [0, 1], [0, 1], [2.0, 5.0])
        assert rmse(coo, X, Y) == pytest.approx(0.0)

    def test_rmse_empty_matrix(self):
        assert rmse(COOMatrix.empty((3, 3)), np.zeros((3, 2)), np.zeros((3, 2))) == 0.0


class TestAssemblyConfig:
    def test_invalid_assembly_rejected(self):
        with pytest.raises(ValueError, match="assembly"):
            ALSConfig(assembly="magic")

    def test_invalid_tile_nnz_rejected(self):
        with pytest.raises(ValueError, match="tile_nnz"):
            ALSConfig(tile_nnz=0)

    def test_invalid_assembly_dtype_rejected(self):
        with pytest.raises(ValueError, match="assembly_dtype"):
            ALSConfig(assembly_dtype="float16")

    def test_scatter_and_binned_train_identically(self, planted):
        """The assembly variant is a hardware mapping, not an algorithm
        change: both must produce the same factors bit-for-bit-close."""
        base = dict(k=4, lam=0.1, iterations=2, seed=1)
        binned = train_als(planted.ratings, ALSConfig(assembly="binned", **base))
        scatter = train_als(planted.ratings, ALSConfig(assembly="scatter", **base))
        np.testing.assert_allclose(binned.X, scatter.X, atol=1e-9)
        np.testing.assert_allclose(binned.Y, scatter.Y, atol=1e-9)

    def test_tile_budget_and_dtype_pass_through(self, planted):
        model = train_als(
            planted.ratings,
            ALSConfig(k=3, iterations=1, tile_nnz=64, assembly_dtype="float32"),
        )
        assert np.isfinite(model.losses()[-1])


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    k=st.integers(2, 5),
    lam=st.floats(0.01, 1.0),
)
def test_property_monotone_descent(seed, k, lam):
    """Monotone loss descent holds for any problem and hyper-parameters."""
    problem = planted_problem(m=25, n=20, rank=3, density=0.3, seed=seed)
    model = train_als(problem.ratings, ALSConfig(k=k, lam=lam, iterations=4))
    losses = model.losses()
    assert all(a >= b - 1e-7 * abs(a) for a, b in zip(losses, losses[1:]))
