"""Tests for the float32 device-precision study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.precision import compare_precision, float32_half_sweep
from repro.datasets import planted_problem
from repro.kernels.fastpath import fast_half_sweep
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def problem():
    return planted_problem(m=80, n=60, rank=4, density=0.3, noise_std=0.05, seed=12)


class TestFloat32HalfSweep:
    def test_matches_float64_closely(self, problem, rng):
        R = CSRMatrix.from_coo(problem.ratings)
        Y = rng.standard_normal((R.ncols, 5))
        x32 = float32_half_sweep(R, Y, 0.1)
        x64 = fast_half_sweep(R, Y, 0.1)
        np.testing.assert_allclose(x32, x64, rtol=5e-3, atol=5e-3)

    def test_output_dtype_is_float32(self, problem, rng):
        R = CSRMatrix.from_coo(problem.ratings)
        Y = rng.standard_normal((R.ncols, 4))
        assert float32_half_sweep(R, Y, 0.1).dtype == np.float32

    def test_empty_rows_keep_previous(self, rng):
        dense = np.zeros((3, 4), dtype=np.float32)
        dense[0, 1] = 2.0
        R = CSRMatrix.from_dense(dense)
        prev = np.full((3, 2), 5.0, dtype=np.float32)
        out = float32_half_sweep(R, rng.standard_normal((4, 2)), 0.1, X_prev=prev)
        np.testing.assert_array_equal(out[1], [5.0, 5.0])


class TestComparison:
    def test_single_precision_is_adequate(self, problem):
        """The paper's float arithmetic must not hurt model quality —
        that is what licenses single-precision kernels."""
        cmp = compare_precision(problem.ratings, k=4, lam=0.1, iterations=5)
        assert cmp.rmse_gap < 1e-3
        assert cmp.rmse_float32 < 0.5

    def test_factors_stay_close(self, problem):
        cmp = compare_precision(problem.ratings, k=4, lam=0.1, iterations=5)
        assert cmp.factor_max_abs_diff < 0.05

    def test_fields_consistent(self, problem):
        cmp = compare_precision(problem.ratings, k=3, iterations=2)
        assert cmp.rmse_gap == pytest.approx(
            abs(cmp.rmse_float32 - cmp.rmse_float64)
        )
