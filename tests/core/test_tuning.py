"""Tests for hyper-parameter grid search."""

from __future__ import annotations

import pytest

from repro.core import grid_search, rmse
from repro.datasets import planted_problem, train_test_split


@pytest.fixture(scope="module")
def ratings():
    return planted_problem(m=100, n=70, rank=4, density=0.3, seed=8).ratings


@pytest.fixture(scope="module")
def result(ratings):
    return grid_search(
        ratings, ks=(2, 4, 8), lams=(0.01, 0.1), iterations=6, seed=1
    )


class TestGridSearch:
    def test_covers_full_grid(self, result):
        assert len(result.points) == 6
        assert {(p.k, p.lam) for p in result.points} == {
            (k, lam) for k in (2, 4, 8) for lam in (0.01, 0.1)
        }

    def test_best_is_grid_minimum(self, result):
        assert result.best.validation_rmse == min(
            p.validation_rmse for p in result.points
        )

    def test_ranking_sorted(self, result):
        ranked = result.ranking()
        rmses = [p.validation_rmse for p in ranked]
        assert rmses == sorted(rmses)

    def test_picks_adequate_capacity(self, result):
        """On a planted rank-4 problem, k=2 must not win."""
        assert result.best.k >= 4

    def test_final_model_refit_on_all_data(self, ratings, result):
        assert result.model.X.shape == (100, result.best.k)
        # The refit model fits the full data well.
        assert rmse(ratings, result.model.X, result.model.Y) < 0.5

    def test_overfit_gap_nonnegative_for_winner(self, result):
        # Not guaranteed in general, but with a sane winner on planted
        # data the validation error should not beat train by much.
        assert result.best.overfit_gap > -0.05

    def test_invalid_grids(self, ratings):
        with pytest.raises(ValueError):
            grid_search(ratings, ks=())
        with pytest.raises(ValueError):
            grid_search(ratings, ks=(0,))
        with pytest.raises(ValueError):
            grid_search(ratings, lams=(0.0,))


class TestTrainerKnobs:
    """grid_search forwards the trainer knobs to every fit."""

    def test_forwards_solver_workers_and_blocks(self, ratings):
        result = grid_search(
            ratings, ks=(4,), lams=(0.1,), iterations=3, seed=1,
            solver="cholesky", workers=2, block_size=2,
        )
        cfg = result.model.config
        assert cfg.solver == "cholesky"
        assert cfg.workers == 2
        assert cfg.block_size == 2
        assert all(p.train_rmse > 0 for p in result.points)

    def test_rejects_track_loss_off(self, ratings):
        with pytest.raises(ValueError, match="track_loss"):
            grid_search(ratings, ks=(4,), lams=(0.1,), track_loss=False)

    def test_untracked_history_raises_clearly(self):
        import numpy as np

        from repro.core import ALSConfig, ALSModel
        from repro.core.tuning import _last_train_rmse

        model = ALSModel(
            X=np.zeros((3, 2)), Y=np.zeros((2, 2)),
            config=ALSConfig(k=2), history=[],
        )
        with pytest.raises(RuntimeError, match="track_loss"):
            _last_train_rmse(model)
