"""Tests for Algorithm 1's error-rate stopping criterion and validation
tracking."""

from __future__ import annotations

import pytest

from repro.core import ALSConfig, train_als
from repro.datasets import planted_problem, train_test_split


@pytest.fixture(scope="module")
def split():
    problem = planted_problem(m=80, n=60, rank=3, density=0.3, seed=6)
    return train_test_split(problem.ratings, test_fraction=0.2, seed=0)


class TestEarlyStopping:
    def test_stops_before_budget_on_loose_tol(self, split):
        model = train_als(split.train, ALSConfig(k=3, iterations=50, tol=0.05))
        assert len(model.history) < 50

    def test_tight_tol_uses_full_budget(self, split):
        model = train_als(split.train, ALSConfig(k=3, iterations=4, tol=1e-12))
        assert len(model.history) == 4

    def test_zero_tol_disables(self, split):
        model = train_als(split.train, ALSConfig(k=3, iterations=6, tol=0.0))
        assert len(model.history) == 6

    def test_stopping_point_satisfies_criterion(self, split):
        tol = 0.02
        model = train_als(split.train, ALSConfig(k=3, iterations=50, tol=tol))
        losses = model.losses()
        # Every consumed iteration but the last improved by ≥ tol.
        for prev, cur in zip(losses[:-2], losses[1:-1]):
            assert (prev - cur) / prev >= tol
        assert (losses[-2] - losses[-1]) / losses[-2] < tol

    def test_invalid_tol(self):
        with pytest.raises(ValueError):
            ALSConfig(tol=-0.1)
        with pytest.raises(ValueError, match="track_loss"):
            ALSConfig(tol=0.1, track_loss=False)


class TestValidationTracking:
    def test_validation_rmse_recorded(self, split):
        model = train_als(
            split.train, ALSConfig(k=3, iterations=4), validation=split.test
        )
        assert all(s.validation_rmse is not None for s in model.history)
        assert model.history[-1].validation_rmse < model.history[0].validation_rmse

    def test_absent_by_default(self, split):
        model = train_als(split.train, ALSConfig(k=3, iterations=2))
        assert all(s.validation_rmse is None for s in model.history)
