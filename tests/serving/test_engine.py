"""Exactness and contract tests for the tiled top-N serving engine.

The load-bearing property: for float64 scoring with integer-valued
factors the engine is *bitwise* identical to a full lexsort of the dense
score matrix, for any tile width and user-block size — tiling, the
running threshold, candidate-side exclusion and the streaming merge are
pure reorganizations of the same computation.  (Real-valued factors are
kept out of bitwise assertions on scores: BLAS GEMM may round the same
dot product differently for different operand shapes.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.engine import (
    DEFAULT_TILE_BYTES,
    PAD_ITEM,
    TopNEngine,
    TopNResult,
    configure_serving,
    serving_defaults,
    topn_from_scores,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


@pytest.fixture(autouse=True)
def _reset_serving_config():
    yield
    configure_serving(None, None, None)


def full_sort_reference(X, Y, users, n, exclude):
    """Dense lexsort oracle: (score desc, id asc), PAD_ITEM past -inf."""
    S = X[users] @ Y.T
    if exclude is not None:
        for pos, user in enumerate(users):
            seen, _ = exclude.row_slice(int(user))
            S[pos, seen] = -np.inf
    B, width = S.shape
    n = min(n, width)
    rows = np.repeat(np.arange(B), width)
    ids = np.tile(np.arange(width), B)
    order = np.lexsort((ids, -S.ravel(), rows)).reshape(B, width)
    take = order[:, :n] - (np.arange(B) * width)[:, None]
    ref_ids = take.astype(np.int64)
    ref_scores = np.take_along_axis(S, take, axis=1)
    ref_ids[~np.isfinite(ref_scores)] = PAD_ITEM
    return ref_ids, ref_scores


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(11)
    m, n_items, k = 220, 350, 12
    # Integer-valued factors: scores are exactly representable and ties
    # are common, so the (score desc, id asc) order is actually exercised.
    X = rng.integers(-3, 4, size=(m, k)).astype(np.float64)
    Y = rng.integers(-3, 4, size=(n_items, k)).astype(np.float64)
    nnz = 5000
    rows = rng.integers(0, m, nnz)
    cols = rng.integers(0, n_items, nnz)
    R = CSRMatrix.from_coo(COOMatrix((m, n_items), rows, cols, np.ones(nnz)))
    return X, Y, R


def tile_bytes_for(width_items: int, block_users: int, itemsize: int = 8) -> int:
    """The budget that yields exactly ``width_items``-wide tiles."""
    return max(1, width_items * block_users * itemsize)


class TestBitwiseParity:
    N = 10

    @pytest.mark.parametrize("width", [1, 7, 350, 350 + 13])
    @pytest.mark.parametrize("user_block", [1, 53, 220])
    def test_matches_full_sort(self, problem, width, user_block):
        X, Y, R = problem
        users = np.arange(X.shape[0])
        ref_ids, ref_scores = full_sort_reference(X, Y, users, self.N, R)
        engine = TopNEngine(
            X, Y,
            tile_bytes=tile_bytes_for(width, min(user_block, users.size)),
            user_block=user_block,
        )
        got = engine.query(users, n=self.N, exclude=R)
        assert np.array_equal(got.items, ref_ids)
        finite = np.isfinite(ref_scores)
        assert np.array_equal(got.scores[finite], ref_scores[finite])
        assert (got.scores[~finite] == -np.inf).all()

    def test_without_exclusion(self, problem):
        X, Y, _ = problem
        users = np.arange(0, X.shape[0], 3)
        ref_ids, ref_scores = full_sort_reference(X, Y, users, self.N, None)
        got = TopNEngine(X, Y, tile_bytes=tile_bytes_for(17, users.size),
                         user_block=users.size).query(users, n=self.N)
        assert np.array_equal(got.items, ref_ids)
        assert np.array_equal(got.scores, ref_scores)

    def test_subset_and_repeated_users(self, problem):
        X, Y, R = problem
        users = np.array([5, 5, 0, 219, 7, 5])
        ref_ids, _ = full_sort_reference(X, Y, users, self.N, R)
        got = TopNEngine(X, Y, tile_bytes=tile_bytes_for(31, users.size),
                         user_block=4).query(users, n=self.N, exclude=R)
        assert np.array_equal(got.items, ref_ids)

    @pytest.mark.parametrize("n", [1, 3, 40])
    def test_other_row_widths(self, problem, n):
        X, Y, R = problem
        users = np.arange(X.shape[0])
        ref_ids, _ = full_sort_reference(X, Y, users, n, R)
        got = TopNEngine(X, Y, tile_bytes=tile_bytes_for(64, users.size),
                         user_block=users.size).query(users, n=n, exclude=R)
        assert np.array_equal(got.items, ref_ids)


class TestTiesAndEdges:
    def test_all_tied_scores_rank_by_item_id(self):
        """All-ones factors: every item ties, ids must come out ascending."""
        X = np.ones((40, 4))
        Y = np.ones((90, 4))
        engine = TopNEngine(X, Y, tile_bytes=tile_bytes_for(11, 13), user_block=13)
        got = engine.query(np.arange(40), n=7)
        assert np.array_equal(got.items, np.tile(np.arange(7), (40, 1)))

    def test_empty_user_array(self, problem):
        X, Y, R = problem
        got = TopNEngine(X, Y).query(np.array([], dtype=np.int64), n=5, exclude=R)
        assert got.items.shape == (0, 5)
        assert got.scores.shape == (0, 5)
        assert got.lengths.shape == (0,)

    def test_n_larger_than_catalog_clamps(self, problem):
        X, Y, _ = problem
        got = TopNEngine(X, Y).query(np.array([0]), n=10_000)
        assert got.items.shape == (1, Y.shape[0])

    def test_heavy_exclusion_pads_with_sentinel(self):
        """Users with zero or nearly zero unseen items: PAD rows, not junk."""
        rng = np.random.default_rng(3)
        m, n_items = 30, 120
        X = rng.standard_normal((m, 6))
        Y = rng.standard_normal((n_items, 6))
        rows, cols = [], []
        for u in range(m):
            unseen = 0 if u % 3 == 0 else 4  # a third of users saw everything
            seen = rng.choice(n_items, size=n_items - unseen, replace=False)
            rows.extend([u] * seen.size)
            cols.extend(seen.tolist())
        R = CSRMatrix.from_coo(
            COOMatrix((m, n_items), np.array(rows), np.array(cols),
                      np.ones(len(rows)))
        )
        got = TopNEngine(X, Y, tile_bytes=tile_bytes_for(13, m),
                         user_block=m).query(np.arange(m), n=10, exclude=R)
        ref_ids, ref_scores = full_sort_reference(X, Y, np.arange(m), 10, R)
        assert np.array_equal(got.items, ref_ids)
        for u in range(m):
            expect = 0 if u % 3 == 0 else 4
            assert got.lengths[u] == expect
            assert (got.items[u, expect:] == PAD_ITEM).all()
            assert (got.scores[u, expect:] == -np.inf).all()
            assert len(got.row(u)) == expect

    def test_validation_errors(self, problem):
        X, Y, R = problem
        engine = TopNEngine(X, Y)
        with pytest.raises(ValueError):
            engine.query(np.zeros((2, 2), dtype=int), n=3)
        with pytest.raises(ValueError):
            engine.query(np.array([0]), n=0)
        with pytest.raises(IndexError):
            engine.query(np.array([X.shape[0]]), n=3)
        with pytest.raises(ValueError):
            engine.query(np.array([0]), n=3, exclude=CSRMatrix.from_coo(
                COOMatrix((X.shape[0], Y.shape[0] + 1), [0], [0], [1.0])))
        with pytest.raises(ValueError):
            TopNEngine(X, Y[:, :-1])


class TestPrecisionModes:
    def test_f32_agrees_with_f64_on_ml100k_scale(self):
        """Item sets match at ML-100K shape; scores agree to f32 tolerance.

        Scores are compared loosely (float32 rounds), and near-tied
        ranks may swap under rounding — so agreement is on the item
        *sets* per user, allowing the documented rounding slack.
        """
        rng = np.random.default_rng(5)
        m, n_items, k = 943, 1682, 16  # the ML-100K shape
        X = rng.standard_normal((m, k))
        Y = rng.standard_normal((n_items, k))
        users = np.arange(0, m, 2)
        f64 = TopNEngine(X, Y, dtype="float64",
                         tile_bytes=1 << 20).query(users, n=10)
        f32 = TopNEngine(X, Y, dtype="float32",
                         tile_bytes=1 << 20).query(users, n=10)
        same = 0
        for a, b, sa, sb in zip(f64.items, f32.items, f64.scores, f32.scores):
            if set(a.tolist()) == set(b.tolist()):
                same += 1
            np.testing.assert_allclose(sa, sb, rtol=1e-4, atol=1e-4)
        assert same >= 0.99 * users.size

    def test_f32_engine_reports_float64_scores(self, problem):
        X, Y, _ = problem
        got = TopNEngine(X, Y, dtype="float32").query(np.arange(8), n=4)
        assert got.scores.dtype == np.float64

    def test_rejects_unknown_dtype(self, problem):
        X, Y, _ = problem
        with pytest.raises(ValueError):
            TopNEngine(X, Y, dtype="float16")


class TestKnobs:
    def test_tile_items_respects_budget(self, problem):
        X, Y, _ = problem
        engine = TopNEngine(X, Y, tile_bytes=tile_bytes_for(9, 64), user_block=64)
        assert engine.tile_items(64) == 9
        assert engine.tile_items(1) <= Y.shape[0]

    def test_peak_stays_within_budget_plus_mask(self, problem):
        X, Y, R = problem
        budget = tile_bytes_for(16, 55)
        engine = TopNEngine(X, Y, tile_bytes=budget, user_block=55)
        engine.query(np.arange(X.shape[0]), n=10, exclude=R)
        # score buffer within budget; bool mask adds 1 byte per slot
        assert 0 < engine.peak_tile_bytes <= budget + budget // 8

    def test_configure_serving_sets_process_defaults(self, problem):
        X, Y, _ = problem
        configure_serving(tile_bytes=1 << 21, dtype="float32", user_block=77)
        tile, dtype, block = serving_defaults()
        assert (tile, dtype, block) == (1 << 21, "float32", 77)
        engine = TopNEngine(X, Y)
        assert engine.tile_bytes == 1 << 21
        assert engine.dtype_name == "float32"
        assert engine.user_block == 77
        configure_serving(None, None, None)
        assert serving_defaults()[0] == DEFAULT_TILE_BYTES

    def test_env_knobs(self, problem, monkeypatch):
        X, Y, _ = problem
        monkeypatch.setenv("REPRO_SERVE_TILE_BYTES", str(1 << 22))
        monkeypatch.setenv("REPRO_SERVE_DTYPE", "float32")
        monkeypatch.setenv("REPRO_SERVE_USER_BLOCK", "99")
        engine = TopNEngine(X, Y)
        assert engine.tile_bytes == 1 << 22
        assert engine.dtype_name == "float32"
        assert engine.user_block == 99

    def test_auto_consults_autotuner(self, problem, monkeypatch):
        X, Y, _ = problem
        import repro.autotune.serving as auto

        sentinel = auto.ServingDecision(
            tile_bytes=1 << 20, dtype="float32", users_per_sec={},
            n_items=Y.shape[0], k=X.shape[1], n_bucket=512,
        )
        monkeypatch.setattr(auto, "select_serving", lambda n, k: sentinel)
        engine = TopNEngine(X, Y, tile_bytes="auto", dtype="auto")
        assert engine.tile_bytes == 1 << 20
        assert engine.dtype_name == "float32"

    def test_workers_shard_identically(self, problem):
        X, Y, R = problem
        users = np.arange(X.shape[0])
        serial = TopNEngine(X, Y, user_block=32, workers=1).query(
            users, n=10, exclude=R)
        sharded = TopNEngine(X, Y, user_block=32, workers=3).query(
            users, n=10, exclude=R)
        assert np.array_equal(serial.items, sharded.items)
        assert np.array_equal(serial.scores, sharded.scores)


class TestTopNFromScores:
    def test_matches_engine_on_materialized_scores(self, problem):
        X, Y, R = problem
        users = np.arange(60)
        S = X[users] @ Y.T
        got = topn_from_scores(S, n=10, users=users, exclude=R,
                               tile_bytes=tile_bytes_for(23, users.size))
        ref_ids, ref_scores = full_sort_reference(X, Y, users, 10, R)
        assert np.array_equal(got.items, ref_ids)
        finite = np.isfinite(ref_scores)
        assert np.array_equal(got.scores[finite], ref_scores[finite])

    def test_requires_users_for_exclusion(self, problem):
        X, Y, R = problem
        with pytest.raises(ValueError):
            topn_from_scores(np.zeros((2, Y.shape[0])), n=3, exclude=R)


class TestResultContract:
    def test_row_and_lengths(self):
        result = TopNResult(
            items=np.array([[3, 1, PAD_ITEM], [2, 0, 5]]),
            scores=np.array([[2.0, 1.0, -np.inf], [9.0, 8.0, 7.0]]),
        )
        assert result.lengths.tolist() == [2, 3]
        assert result.row(0) == [(3, 2.0), (1, 1.0)]
        assert result.row(1) == [(2, 9.0), (0, 8.0), (5, 7.0)]


class TestExclusionKeyCache:
    def test_attach_prewarms_and_reuses_by_identity(self, problem):
        X, Y, R = problem
        engine = TopNEngine(X, Y)
        engine.attach_exclusion(R)
        keys_a, kd_a = engine._exclusion_keys(R)
        keys_b, kd_b = engine._exclusion_keys(R)
        assert keys_a is keys_b and kd_a is kd_b  # no rebuild per query
        assert not keys_a.flags.writeable

    def test_cache_invalidates_on_new_matrix(self, problem):
        X, Y, R = problem
        engine = TopNEngine(X, Y)
        keys_a, _ = engine._exclusion_keys(R)
        other = R.take_rows(np.arange(R.nrows))  # equal content, new object
        keys_b, _ = engine._exclusion_keys(other)
        assert keys_b is not keys_a
        assert np.array_equal(keys_a, keys_b)
        engine.attach_exclusion(None)
        assert engine._excl_cache is None

    def test_cached_path_matches_oracle_across_queries(self, problem):
        """Steady-state serving: repeated queries reuse the sorted keys
        and stay bitwise-identical to the dense lexsort oracle."""
        X, Y, R = problem
        engine = TopNEngine(X, Y, tile_bytes=tile_bytes_for(29, 64),
                            user_block=64)
        engine.attach_exclusion(R)
        for users in (np.arange(X.shape[0]), np.arange(0, X.shape[0], 7)):
            ref_ids, ref_scores = full_sort_reference(X, Y, users, 10, R)
            got = engine.query(users, n=10, exclude=R)
            assert np.array_equal(got.items, ref_ids)
            finite = np.isfinite(ref_scores)
            assert np.array_equal(got.scores[finite], ref_scores[finite])

    def test_unsorted_column_csr_is_sorted_defensively(self):
        rng = np.random.default_rng(3)
        m, n_items, k = 12, 30, 4
        X = rng.integers(-3, 4, size=(m, k)).astype(np.float64)
        Y = rng.integers(-3, 4, size=(n_items, k)).astype(np.float64)
        # Directly-constructed CSR with descending columns inside a row:
        # legal for CSRMatrix, but the key cache must sort before searching.
        R = CSRMatrix(
            (m, n_items),
            np.ones(3, dtype=np.float32),
            np.array([7, 3, 1]),
            np.concatenate([[0], np.full(m, 3)]),
        )
        engine = TopNEngine(X, Y)
        users = np.arange(m)
        ref_ids, ref_scores = full_sort_reference(X, Y, users, 5, R)
        got = engine.query(users, n=5, exclude=R)
        assert np.array_equal(got.items, ref_ids)
        finite = np.isfinite(ref_scores)
        assert np.array_equal(got.scores[finite], ref_scores[finite])

    def test_int64_keys_when_product_overflows_int32(self):
        rng = np.random.default_rng(4)
        n_items, k = 50_000, 3
        m = 50_000  # nrows * n_items = 2.5e9 > 2**31: int64 path
        users = np.array([0, 1, 49_999])
        X = rng.integers(-2, 3, size=(m, k)).astype(np.float64)
        Y = rng.integers(-2, 3, size=(n_items, k)).astype(np.float64)
        rows = np.repeat(users, 2)
        cols = np.array([5, 11, 0, 49_999, 123, 321])
        R = CSRMatrix.from_coo(COOMatrix(
            (m, n_items), rows, cols, np.ones(rows.size, dtype=np.float32)
        ))
        engine = TopNEngine(X, Y)
        keys, kd = engine._exclusion_keys(R)
        assert kd is np.int64 and keys.dtype == np.int64
        got = engine.query(users, n=4, exclude=R)
        ref_ids, _ = full_sort_reference(X[users], Y, np.arange(3), 4,
                                         R.take_rows(users))
        assert np.array_equal(got.items, ref_ids)
