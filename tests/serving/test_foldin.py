"""Fold-in correctness: bitwise parity with fresh half-sweeps, no retrain.

The contract under test: a folded-in row is not an approximation — it is
*the same float64 arithmetic* a serial half-sweep over the augmented
matrix would run for that row, so the factors must match bit for bit for
all three trainers.  On top of that sit the ``Recommender`` semantics:
fold-in appends (never mutates existing rows), extends the exclusion
matrix, and never calls a trainer.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.api as api_mod
from repro.api import Recommender, _append_rows
from repro.core.alswr import weighted_half_sweep
from repro.core.implicit import implicit_half_sweep
from repro.kernels.fastpath import fast_half_sweep
from repro.serving.foldin import (
    FOLDIN_ALGORITHMS,
    as_new_rows_csr,
    fold_in_factors,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

LAM = 0.3
ALPHA = 20.0


def _reference_rows(algorithm: str, aug: CSRMatrix, Y: np.ndarray) -> np.ndarray:
    """Fresh serial float64 half-sweep over the augmented matrix."""
    if algorithm == "als":
        return fast_half_sweep(aug, Y, LAM)
    if algorithm == "als-wr":
        return weighted_half_sweep(aug, Y, LAM, None)
    return implicit_half_sweep(aug, Y, LAM, ALPHA)


@pytest.fixture()
def base_problem(rng):
    m, n, k = 80, 60, 9
    nnz = 900
    R = CSRMatrix.from_coo(COOMatrix(
        (m, n), rng.integers(0, m, nnz), rng.integers(0, n, nnz),
        rng.integers(1, 6, nnz).astype(np.float32),
    ))
    Y = rng.integers(-3, 4, size=(n, k)).astype(np.float64)
    return R, Y


@pytest.fixture()
def new_rows(rng, base_problem):
    _, Y = base_problem
    n = Y.shape[0]
    h = 5
    rows = np.repeat(np.arange(h), 4)
    return CSRMatrix.from_coo(COOMatrix(
        (h, n), rows, rng.integers(0, n, rows.size),
        rng.integers(1, 6, rows.size).astype(np.float32),
    ))


class TestFoldInFactors:
    @pytest.mark.parametrize("algorithm", FOLDIN_ALGORITHMS)
    def test_bitwise_parity_with_augmented_half_sweep(
        self, base_problem, new_rows, algorithm
    ):
        R, Y = base_problem
        folded = fold_in_factors(new_rows, Y, LAM, algorithm, ALPHA)
        aug = _append_rows(R, new_rows)
        ref = _reference_rows(algorithm, aug, Y)
        assert np.array_equal(folded, ref[R.nrows:])

    @pytest.mark.parametrize("algorithm", FOLDIN_ALGORITHMS)
    def test_batch_composition_does_not_change_rows(
        self, base_problem, new_rows, algorithm
    ):
        """One row folded alone equals the same row folded in a batch."""
        _, Y = base_problem
        together = fold_in_factors(new_rows, Y, LAM, algorithm, ALPHA)
        for i in range(new_rows.nrows):
            alone = fold_in_factors(
                new_rows.take_rows(np.array([i])), Y, LAM, algorithm, ALPHA
            )
            assert np.array_equal(alone[0], together[i])

    def test_empty_rows_come_back_zero(self, base_problem):
        _, Y = base_problem
        n, k = Y.shape
        empty = CSRMatrix(
            (3, n), np.zeros(0, np.float32), np.zeros(0, np.int64),
            np.zeros(4, np.int64),
        )
        out = fold_in_factors(empty, Y, LAM, "als")
        assert out.shape == (3, k)
        assert not out.any()

    def test_rejects_unknown_algorithm(self, base_problem, new_rows):
        _, Y = base_problem
        with pytest.raises(ValueError, match="unknown fold-in algorithm"):
            fold_in_factors(new_rows, Y, LAM, "sgd")

    def test_implicit_requires_alpha(self, base_problem, new_rows):
        _, Y = base_problem
        with pytest.raises(ValueError, match="alpha"):
            fold_in_factors(new_rows, Y, LAM, "implicit")

    def test_rejects_column_overflow(self, base_problem, new_rows):
        _, Y = base_problem
        with pytest.raises(ValueError, match="columns"):
            fold_in_factors(new_rows, Y[:-5], LAM, "als")


class TestAsNewRowsCsr:
    def test_widens_coo_payload(self):
        coo = COOMatrix((2, 3), np.array([0, 1]), np.array([2, 0]),
                        np.array([1.0, 2.0], np.float32))
        csr = as_new_rows_csr(coo, 10)
        assert csr.shape == (2, 10)
        assert csr.nnz == 2

    def test_widens_narrow_csr(self):
        csr = CSRMatrix.from_coo(COOMatrix(
            (1, 4), np.array([0]), np.array([3]), np.array([1.0], np.float32)
        ))
        wide = as_new_rows_csr(csr, 9)
        assert wide.shape == (1, 9)

    def test_exact_width_passthrough(self):
        csr = CSRMatrix.from_coo(COOMatrix(
            (1, 9), np.array([0]), np.array([3]), np.array([1.0], np.float32)
        ))
        assert as_new_rows_csr(csr, 9) is csr

    def test_rejects_overshoot_and_bad_type(self):
        csr = CSRMatrix.from_coo(COOMatrix(
            (1, 9), np.array([0]), np.array([3]), np.array([1.0], np.float32)
        ))
        with pytest.raises(ValueError, match="columns"):
            as_new_rows_csr(csr, 4)
        with pytest.raises(TypeError):
            as_new_rows_csr(np.ones((2, 2)), 4)


@pytest.fixture()
def ratings(rng):
    m, n, nnz = 70, 50, 800
    return COOMatrix(
        (m, n), rng.integers(0, m, nnz), rng.integers(0, n, nnz),
        rng.integers(1, 6, nnz).astype(np.float32),
    )


def _disarm_trainers(monkeypatch):
    """Any trainer call during fold-in/update is a test failure."""
    def tripwire(*args, **kwargs):
        raise AssertionError("fold-in must not retrain")

    monkeypatch.setattr(
        api_mod, "_ALGORITHMS", {name: tripwire for name in api_mod._ALGORITHMS}
    )


class TestRecommenderFoldIn:
    @pytest.mark.parametrize("algorithm", FOLDIN_ALGORITHMS)
    def test_fold_in_users_bitwise_and_no_retrain(
        self, ratings, rng, algorithm, monkeypatch
    ):
        rec = Recommender(
            k=7, lam=LAM, iterations=2, algorithm=algorithm, alpha=ALPHA
        ).fit(ratings)
        m, n = ratings.shape
        X_before = np.asarray(rec.model.X).copy()
        new = COOMatrix(
            (2, n), np.array([0, 0, 1]), np.array([3, 9, 1]),
            np.array([5, 4, 3], np.float32),
        )
        _disarm_trainers(monkeypatch)
        ids = rec.fold_in_users(new)
        assert np.array_equal(ids, [m, m + 1])
        # Existing rows untouched bitwise; model appended, not rebuilt.
        assert np.array_equal(np.asarray(rec.model.X)[:m], X_before)
        assert rec.model.X.shape[0] == m + 2
        # The folded rows match a fresh serial half-sweep over the
        # augmented matrix (which rec._train_csr now is) bit for bit.
        ref = _reference_rows(algorithm, rec._train_csr, np.asarray(rec.model.Y))
        assert np.array_equal(np.asarray(rec.model.X)[ids], ref[ids])

    def test_fold_in_extends_exclusion(self, ratings):
        rec = Recommender(k=6, lam=LAM, iterations=1).fit(ratings)
        m, n = ratings.shape
        new = COOMatrix((1, n), np.array([0, 0]), np.array([2, 7]),
                        np.array([5.0, 5.0], np.float32))
        (uid,) = rec.fold_in_users(new)
        assert rec._train_csr.nrows == m + 1
        cols, _ = rec._train_csr.row_slice(int(uid))
        assert np.array_equal(cols, [2, 7])
        # The served top-N for the new user excludes exactly those items.
        recs = rec.recommend(int(uid), n_items=n)
        assert {2, 7}.isdisjoint(i for i, _ in recs)

    def test_fold_in_users_on_loaded_checkpoint(self, ratings, tmp_path):
        rec = Recommender(k=6, lam=LAM, iterations=1).fit(ratings)
        rec.save(tmp_path / "ckpt")
        loaded = Recommender.load(tmp_path / "ckpt")
        m, n = ratings.shape
        new = COOMatrix((1, n), np.array([0]), np.array([4]),
                        np.array([3.0], np.float32))
        (uid,) = loaded.fold_in_users(new)
        assert uid == m
        assert loaded.model.X.shape[0] == m + 1
        # Existing users have no persisted exclusion rows, the new one does.
        assert loaded._train_csr.nnz == 1
        ref = fast_half_sweep(loaded._train_csr, np.asarray(loaded.model.Y), LAM)
        assert np.array_equal(np.asarray(loaded.model.X)[m], ref[m])

    @pytest.mark.parametrize("algorithm", FOLDIN_ALGORITHMS)
    def test_fold_in_items_bitwise(self, ratings, rng, algorithm, monkeypatch):
        rec = Recommender(
            k=7, lam=LAM, iterations=2, algorithm=algorithm, alpha=ALPHA
        ).fit(ratings)
        m, n = ratings.shape
        Y_before = np.asarray(rec.model.Y).copy()
        new = COOMatrix(
            (2, m), np.array([0, 0, 1]), np.array([5, 11, 2]),
            np.array([4, 2, 5], np.float32),
        )
        _disarm_trainers(monkeypatch)
        ids = rec.fold_in_items(new)
        assert np.array_equal(ids, [n, n + 1])
        assert np.array_equal(np.asarray(rec.model.Y)[:n], Y_before)
        # Item fold-in is the transposed statement: reference is a
        # half-sweep over the transposed augmented matrix against X.
        aug_T = rec._train_csr.transpose_to_csr()
        ref = _reference_rows(algorithm, aug_T, np.asarray(rec.model.X))
        assert np.array_equal(np.asarray(rec.model.Y)[ids], ref[ids])
        # Exclusion gained the new columns.
        assert rec._train_csr.ncols == n + 2
        cols, _ = rec._train_csr.row_slice(5)
        assert n in cols

    @pytest.mark.parametrize("algorithm", FOLDIN_ALGORITHMS)
    def test_update_ratings_bitwise_for_affected_rows_only(
        self, ratings, algorithm, monkeypatch
    ):
        rec = Recommender(
            k=7, lam=LAM, iterations=2, algorithm=algorithm, alpha=ALPHA
        ).fit(ratings)
        m, n = ratings.shape
        X_before = np.asarray(rec.model.X).copy()
        updates = COOMatrix(
            (m, n), np.array([3, 3, 10]), np.array([0, 5, 2]),
            np.array([5, 1, 4], np.float32),
        )
        _disarm_trainers(monkeypatch)
        affected = rec.update_ratings(updates)
        assert np.array_equal(affected, [3, 10])
        untouched = np.setdiff1d(np.arange(m), affected)
        assert np.array_equal(np.asarray(rec.model.X)[untouched],
                              X_before[untouched])
        ref = _reference_rows(algorithm, rec._train_csr, np.asarray(rec.model.Y))
        assert np.array_equal(np.asarray(rec.model.X)[affected], ref[affected])

    def test_update_ratings_overwrites_last_write_wins(self, ratings):
        rec = Recommender(k=5, lam=LAM, iterations=1).fit(ratings)
        m, n = ratings.shape
        updates = COOMatrix((m, n), np.array([0]), np.array([1]),
                            np.array([2.5], np.float32))
        rec.update_ratings(updates)
        cols, vals = rec._train_csr.row_slice(0)
        assert vals[list(cols).index(1)] == np.float32(2.5)

    def test_update_ratings_requires_training_matrix(self, ratings, tmp_path):
        rec = Recommender(k=5, lam=LAM, iterations=1).fit(ratings)
        rec.save(tmp_path / "ckpt")
        loaded = Recommender.load(tmp_path / "ckpt")
        updates = COOMatrix(ratings.shape, np.array([0]), np.array([1]),
                            np.array([2.5], np.float32))
        with pytest.raises(RuntimeError, match="training matrix"):
            loaded.update_ratings(updates)

    def test_sharded_training_matrix_is_rejected(self, ratings, tmp_path):
        from repro.datasets.shardio import build_shard_store
        from repro.sparse.shards import ShardStore

        build_shard_store(tmp_path / "store", ratings)
        rec = Recommender(k=5, lam=LAM, iterations=1).fit(
            ShardStore.open(tmp_path / "store")
        )
        new = COOMatrix((1, ratings.shape[1]), np.array([0]), np.array([0]),
                        np.array([1.0], np.float32))
        with pytest.raises(ValueError, match="out-of-core"):
            rec.fold_in_users(new)
