"""Behavioral tests for the long-lived ``RecommendService``.

Factor matrices are overwritten with integer-valued arrays after
training so every score is exactly representable: the engine's total
order is then identical for *any* batch composition, which lets these
tests compare coalesced/micro-batched responses against a single
batched reference query bit for bit (the same trick as
``test_engine.py``).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import Recommender
from repro.obs.metrics import MetricsRegistry
from repro.serving.engine import TopNEngine
from repro.serving.loadgen import run_closed_loop, run_open_loop
from repro.serving.service import RecommendService, ServiceEndpoint
from repro.sparse.coo import COOMatrix

M, N_ITEMS, K = 60, 45, 6


def make_rec(seed: int, m: int = M, n: int = N_ITEMS, k: int = K) -> Recommender:
    rng = np.random.default_rng(seed)
    nnz = 6 * m
    ratings = COOMatrix(
        (m, n), rng.integers(0, m, nnz), rng.integers(0, n, nnz),
        rng.integers(1, 6, nnz).astype(np.float32),
    )
    rec = Recommender(k=k, lam=0.1, iterations=1).fit(ratings)
    # Integer-valued factors: exact scores, batch-shape-independent order.
    rec.model.X = rng.integers(-3, 4, size=(m, k)).astype(np.float64)
    rec.model.Y = rng.integers(-3, 4, size=(n, k)).astype(np.float64)
    rec._engine = None
    return rec


def expected_rows(rec: Recommender, n: int) -> dict[int, tuple]:
    """Reference top-n per user through one plain engine query."""
    engine = TopNEngine.from_model(rec.model)
    result = engine.query(np.arange(rec.model.X.shape[0]), n=n,
                          exclude=rec._train_csr)
    return {u: tuple(result.row(u)[:n]) for u in range(rec.model.X.shape[0])}


@pytest.fixture()
def rec():
    return make_rec(seed=5)


class TestRequestPath:
    def test_results_match_reference_and_coalesce(self, rec):
        expected = expected_rows(rec, 10)
        with RecommendService(rec, max_batch=4, batch_window=0.05) as svc:
            futures = [svc.submit(u, 10) for u in range(16)]
            for u, fut in enumerate(futures):
                res = fut.result(10)
                assert res.recommendations == expected[u]
                assert res.user == u and res.generation == 0
        stats = svc.stats.snapshot()
        assert stats["requests"] == 16
        assert stats["batches"] < 16  # coalescing actually happened
        assert stats["mean_batch_size"] > 1.0

    def test_mixed_n_requests_share_a_batch(self, rec):
        """Different n coalesce; each caller gets its own prefix."""
        exp3, exp7 = expected_rows(rec, 3), expected_rows(rec, 7)
        with RecommendService(rec, max_batch=8, batch_window=0.05) as svc:
            f_a = svc.submit(1, 3)
            f_b = svc.submit(2, 7)
            assert f_a.result(10).recommendations == exp3[1]
            assert f_b.result(10).recommendations == exp7[2]

    def test_unbatched_configuration(self, rec):
        expected = expected_rows(rec, 5)
        with RecommendService(rec, max_batch=1, batch_window=0.0,
                              cache_size=0) as svc:
            for u in (0, 3, 9):
                assert svc.recommend(u, 5) == list(expected[u])
        assert svc.stats.snapshot()["mean_batch_size"] == 1.0

    def test_submit_validates(self, rec):
        with RecommendService(rec) as svc:
            with pytest.raises(IndexError):
                svc.submit(M + 5)
            with pytest.raises(ValueError):
                svc.submit(0, 0)
        with pytest.raises(RuntimeError):
            svc.submit(0, 5)  # not running any more

    def test_stop_drains_queue(self, rec):
        svc = RecommendService(rec, max_batch=4, batch_window=0.2).start()
        futures = [svc.submit(u, 5) for u in range(10)]
        svc.stop()
        assert all(f.result(1).recommendations for f in futures)


class TestResultCache:
    def test_hit_on_repeat(self, rec):
        with RecommendService(rec, max_batch=1, batch_window=0.0) as svc:
            first = svc.submit(4, 6).result(10)
            second = svc.submit(4, 6).result(10)
        assert not first.cached and second.cached
        assert second.recommendations == first.recommendations
        stats = svc.stats.snapshot()
        assert stats["cache_hits"] == 1 and stats["cache_misses"] == 1

    def test_different_n_is_a_different_entry(self, rec):
        with RecommendService(rec) as svc:
            svc.submit(4, 6).result(10)
            assert not svc.submit(4, 7).result(10).cached

    def test_lru_eviction(self, rec):
        with RecommendService(rec, cache_size=2) as svc:
            for u in (0, 1, 2):
                svc.submit(u, 5).result(10)
            assert svc.cache_entries() == 2
            assert not svc.submit(0, 5).result(10).cached  # evicted

    def test_cache_disabled(self, rec):
        with RecommendService(rec, cache_size=0) as svc:
            svc.submit(4, 6).result(10)
            assert not svc.submit(4, 6).result(10).cached

    def test_update_ratings_invalidates(self, rec):
        m, n = rec._train_csr.shape
        with RecommendService(rec) as svc:
            before = svc.submit(4, 6).result(10)
            assert svc.submit(4, 6).result(10).cached
            svc.update_ratings(COOMatrix(
                (m, n), np.array([4]), np.array([0]),
                np.array([5.0], np.float32),
            ))
            after = svc.submit(4, 6).result(10)
        assert not after.cached
        assert after.generation == before.generation + 1

    def test_invalidate_user(self, rec):
        with RecommendService(rec) as svc:
            svc.submit(4, 6).result(10)
            svc.submit(4, 9).result(10)
            svc.submit(5, 6).result(10)
            assert svc.invalidate_user(4) == 2
            assert not svc.submit(4, 6).result(10).cached
            assert svc.submit(5, 6).result(10).cached


class TestFoldInThroughService:
    def test_new_users_served_without_generation_bump(self, rec):
        n = rec._train_csr.ncols
        with RecommendService(rec) as svc:
            cached_before = svc.submit(0, 5).result(10)
            ids = svc.fold_in_users(COOMatrix(
                (1, n), np.array([0, 0]), np.array([2, 7]),
                np.array([5.0, 4.0], np.float32),
            ))
            assert svc.generation == 0
            # Existing users' cache entries survive (provably unchanged).
            assert svc.submit(0, 5).result(10).cached
            res = svc.submit(int(ids[0]), 5).result(10)
        assert res.recommendations  # the folded user is served
        assert {2, 7}.isdisjoint(i for i, _ in res.recommendations)
        assert cached_before.generation == res.generation == 0

    def test_fold_in_items_bumps_generation(self, rec):
        m = rec.model.X.shape[0]
        with RecommendService(rec) as svc:
            svc.submit(0, 5).result(10)
            svc.fold_in_items(COOMatrix(
                (1, m), np.array([0]), np.array([3]),
                np.array([4.0], np.float32),
            ))
            assert svc.generation == 1
            assert not svc.submit(0, 5).result(10).cached


class TestHotSwap:
    def test_under_concurrent_load_no_torn_reads(self, rec):
        """Every response matches the pre- or post-swap model exactly."""
        rec_b = make_rec(seed=99)
        n = 8
        expected_a = expected_rows(rec, n)
        # The checkpoint-free swap keeps rec_b's training matrix, so the
        # post-swap reference includes its exclusion filter.
        expected_b = expected_rows(rec_b, n)
        results: list = []
        errors: list = []
        stop = threading.Event()

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                user = int(rng.integers(M))
                try:
                    results.append((user, svc.submit(user, n).result(10)))
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

        with RecommendService(rec, max_batch=4, batch_window=0.001,
                              cache_size=0) as svc:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.05)
            new_gen = svc.hot_swap(rec_b)
            time.sleep(0.05)
            stop.set()
            for t in threads:
                t.join(10)
        assert not errors
        assert new_gen == 1
        generations = {res.generation for _, res in results}
        assert generations == {0, 1}  # load straddled the swap
        for user, res in results:
            expected = expected_a if res.generation == 0 else expected_b
            assert res.recommendations == expected[user], (
                f"user {user} gen {res.generation}: torn or stale response"
            )

    def test_swap_from_checkpoint_path(self, rec, tmp_path):
        rec_b = make_rec(seed=42)
        rec_b.save(tmp_path / "ckpt")
        # A loaded checkpoint has no training matrix: no exclusion filter.
        loaded = Recommender.load(tmp_path / "ckpt")
        loaded._train_csr = None
        engine = TopNEngine.from_model(loaded.model)
        ref = engine.query(np.array([3]), n=5)
        with RecommendService(rec) as svc:
            svc.submit(3, 5).result(10)
            gen = svc.hot_swap(tmp_path / "ckpt")
            assert gen == 1 and svc.cache_entries() == 0
            res = svc.submit(3, 5).result(10)
        assert res.generation == 1
        assert res.recommendations == tuple(ref.row(0)[:5])

    def test_swap_rejects_unfitted(self, rec):
        with RecommendService(rec) as svc:
            with pytest.raises(ValueError, match="fitted"):
                svc.hot_swap(Recommender(k=4))


class TestLoadGenerators:
    def test_closed_loop_counts_and_latency(self, rec):
        with RecommendService(rec, cache_size=0) as svc:
            report = run_closed_loop(
                svc, np.arange(M), n=5, concurrency=3,
                requests_per_worker=10, seed=0,
            )
        assert report.mode == "closed"
        assert report.requests == 30 and report.errors == 0
        assert report.throughput > 0
        assert report.latency["count"] == 30
        assert 0 < report.latency["p50"] <= report.latency["p99"]

    def test_open_loop_poisson(self, rec):
        with RecommendService(rec) as svc:
            report = run_open_loop(
                svc, np.arange(M), n=5, rate=300.0, duration=0.3, seed=1,
            )
        assert report.mode == "open"
        assert report.errors == 0
        assert report.requests > 0
        assert report.latency["count"] == report.requests

    def test_loadgen_validation(self, rec):
        with RecommendService(rec) as svc:
            with pytest.raises(ValueError):
                run_closed_loop(svc, np.array([]), concurrency=1)
            with pytest.raises(ValueError):
                run_open_loop(svc, np.arange(3), rate=0.0)

    def test_open_loop_rates_exclude_drain_tail(self):
        """A slow final response must not deflate the reported rates.

        The stub resolves every future the moment the next one is
        submitted, so issuance never blocks — but the *last* future only
        resolves ``stall`` seconds after its submit.  The dispatch
        window therefore holds the offered rate while the run as a whole
        drags on ``stall`` longer; the report must keep the two apart.
        """
        # seed 5's Poisson draw lands within ~1% of the offered rate, so
        # the 10% assertion budget is left for dispatch jitter, not for
        # sampling noise in the arrival process itself.
        stall, duration, rate = 0.4, 0.5, 400.0
        svc = _StallLastService(stall)
        report = run_open_loop(
            svc, np.arange(4), n=5, rate=rate, duration=duration, seed=5,
        )
        assert report.errors == 0
        assert report.seconds == pytest.approx(duration, rel=0.2)
        achieved = report.extra["achieved_rate"]
        assert abs(achieved - rate) / rate < 0.10
        assert report.throughput == pytest.approx(achieved, rel=0.05)
        assert report.extra["drain_seconds"] >= 0.5 * stall
        assert report.latency["count"] == report.requests


class _StallLastService:
    """Load-test stub: each future resolves when its successor is
    submitted; the final future (no successor) resolves only after a
    fixed stall, emulating one slow straggler response.  Submission is
    deliberately cheap (no per-request threads) so the stub itself
    never throttles the dispatcher."""

    def __init__(self, stall: float):
        self.stall = stall
        self._lock = threading.Lock()
        self._prev = None
        self._prev_at = 0.0
        sweeper = threading.Thread(target=self._sweep, daemon=True)
        sweeper.start()

    def _resolve(self, fut) -> None:
        with self._lock:
            if not fut.done():
                fut.set_result("ok")

    def _sweep(self) -> None:
        # Resolve whichever future has lingered past the stall — only
        # the final one ever lives that long.
        while True:
            with self._lock:
                fut, t0 = self._prev, self._prev_at
            if fut is not None and time.perf_counter() - t0 >= self.stall:
                self._resolve(fut)
            time.sleep(self.stall / 20)

    def submit(self, user: int, n: int):
        from concurrent.futures import Future

        fut = Future()
        with self._lock:
            prev, self._prev = self._prev, fut
            self._prev_at = time.perf_counter()
        if prev is not None:
            self._resolve(prev)
        return fut


class TestServiceEndpoint:
    def _get(self, url: str):
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode()

    def test_recommend_healthz_stats(self, rec):
        expected = expected_rows(rec, 4)
        with RecommendService(rec) as svc, ServiceEndpoint(svc) as ep:
            status, body = self._get(ep.url("/recommend?user=3&n=4"))
            payload = json.loads(body)
            assert status == 200
            assert payload["items"] == [i for i, _ in expected[3]]
            assert payload["scores"] == [s for _, s in expected[3]]
            assert payload["generation"] == 0 and not payload["cached"]
            # Second identical request answers from the cache.
            assert json.loads(self._get(
                ep.url("/recommend?user=3&n=4"))[1])["cached"]
            health = json.loads(self._get(ep.url("/healthz"))[1])
            assert health["status"] == "ok" and health["generation"] == 0
            stats = json.loads(self._get(ep.url("/stats"))[1])
            assert stats["requests"] == 2 and stats["cache_hits"] == 1

    def test_error_statuses(self, rec):
        with RecommendService(rec) as svc, ServiceEndpoint(svc) as ep:
            for path, code in (
                ("/recommend", 400),          # missing user
                ("/recommend?user=zzz", 400),  # unparsable
                (f"/recommend?user={M + 9}", 404),  # unknown user
                ("/nope", 404),
            ):
                with pytest.raises(urllib.error.HTTPError) as err:
                    self._get(ep.url(path))
                assert err.value.code == code

    def test_metrics_windowed_snapshot(self, rec):
        registry = MetricsRegistry()
        registry.quantile("demo.seconds").observe(0.25)
        with RecommendService(rec) as svc, ServiceEndpoint(
            svc, registry=registry
        ) as ep:
            _, cumulative = self._get(ep.url("/metrics"))
            assert 'demo_seconds_count' in cumulative
            _, first_window = self._get(ep.url("/metrics?window=1"))
            assert 'demo_seconds_count 1' in first_window
            # The scrape reset the window; nothing new arrived since.
            _, second_window = self._get(ep.url("/metrics?window=1"))
            assert 'demo_seconds_count 0' in second_window
            # The cumulative view is untouched by window resets.
            _, cumulative2 = self._get(ep.url("/metrics"))
            assert 'demo_seconds_count 1' in cumulative2
