"""Smoke tests: the example scripts must run end to end.

Each example executes in its own interpreter (as a user would run it);
only the fast ones run here — the heavy sweeps are exercised through
their underlying experiment runners in tests/bench/.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "movielens_recommend.py",
    "implicit_feedback.py",
    "solver_families.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert present >= {
        "quickstart.py",
        "movielens_recommend.py",
        "portability_sweep.py",
        "variant_autotune.py",
        "implicit_feedback.py",
        "solver_families.py",
        "divergence_study.py",
    }


def test_quickstart_output_shape():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=420,
    )
    out = result.stdout
    assert "train RMSE" in out
    assert "top-5 unseen items" in out
    assert "simulated training time" in out
