"""Golden-file tests for the Prometheus renderer and the JSONL event log.

The golden files live in ``tests/obs/golden/`` and lock in stable family
ordering, name sanitization, value formatting and the event-log envelope.
Regenerate them (after an intentional format change) with::

    PYTHONPATH=src python tests/obs/test_exporter_golden.py --regen
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import spans
from repro.obs.exporter import (
    EventLog,
    escape_label_value,
    prometheus_name,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _clean_state():
    spans.disable()
    spans.clear()
    obs_metrics.reset()
    yield
    spans.disable()
    spans.clear()
    obs_metrics.reset()


def build_registry() -> MetricsRegistry:
    """A deterministic registry exercising every instrument kind."""
    reg = MetricsRegistry()
    reg.counter("serve.topn.queries").inc(42)
    reg.counter("als.iterations").inc(5)
    reg.gauge("sweep.imbalance.measured").set(1.25)
    reg.gauge("serve.users_per_sec").set(123456.5)
    reg.histogram("sweep.shard_seconds").observe(0.5)
    reg.histogram("sweep.shard_seconds").observe(1.5)
    # serve.topn.seconds carries BOTH flavors (the observe_latency idiom):
    # the renderer must emit only the quantile summary for it.
    reg.histogram("serve.topn.seconds").observe(0.002)
    reg.quantile("serve.topn.seconds").observe(0.002)
    reg.quantile("serve.topn.seconds").observe(0.004)
    reg.quantile("serve.topn.seconds").observe(0.032)
    return reg


def build_event_lines() -> str:
    """Deterministic JSONL: fixed run id and an injected stepping clock."""
    clock_state = {"now": 1000.0}

    def clock() -> float:
        clock_state["now"] += 0.5
        return clock_state["now"]

    buf = io.StringIO()
    with EventLog(buf, run_id="golden-run", clock=clock) as log:
        log.emit("train.start", dataset="ML1M", k=10)
        log.emit("note", text='quote " backslash \\ newline \n done')
        log.emit_snapshot(build_registry())
    return buf.getvalue()


class TestPrometheusGolden:
    def test_rendering_matches_golden(self):
        expected = (GOLDEN_DIR / "registry.prom").read_text()
        assert render_prometheus(build_registry()) == expected

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert render_prometheus({}) == ""

    def test_rendering_is_deterministic(self):
        assert render_prometheus(build_registry()) == render_prometheus(
            build_registry()
        )

    def test_every_line_is_comment_or_sample(self):
        """Minimal text-exposition parse: no malformed lines sneak in."""
        for line in render_prometheus(build_registry()).splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name_part, value = line.rsplit(" ", 1)
                float(value)  # parseable sample value
                assert name_part.startswith("repro_")

    def test_name_sanitization(self):
        assert prometheus_name("serve.topn.seconds") == "repro_serve_topn_seconds"
        assert prometheus_name("weird-name!x") == "repro_weird_name_x"
        assert prometheus_name("9lives") == "repro__9lives"
        assert prometheus_name("c", "_total") == "repro_c_total"

    def test_label_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestEventLogGolden:
    def test_jsonl_matches_golden(self):
        expected = (GOLDEN_DIR / "events.jsonl").read_text()
        assert build_event_lines() == expected

    def test_lines_are_valid_json_with_envelope(self):
        lines = build_event_lines().splitlines()
        assert len(lines) == 3
        for seq, line in enumerate(lines, start=1):
            record = json.loads(line)
            assert record["run"] == "golden-run"
            assert record["seq"] == seq
            assert isinstance(record["ts"], float)
        assert json.loads(lines[2])["metrics"]["counters"]["als.iterations"] == 5

    def test_span_context_is_attached_when_tracing(self):
        buf = io.StringIO()
        spans.enable()
        with EventLog(buf, run_id="r") as log:
            with spans.span("serve.topn", users=4):
                record = log.emit("query.done")
        assert record["span"]["name"] == "serve.topn"
        assert json.loads(buf.getvalue().splitlines()[0])["span"]["name"] == (
            "serve.topn"
        )

    def test_file_sink_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, run_id="r", clock=lambda: 1.0) as log:
            log.emit("a")
        with EventLog(path, run_id="r", clock=lambda: 2.0) as log:
            log.emit("b")
        events = [json.loads(l)["event"] for l in path.read_text().splitlines()]
        assert events == ["a", "b"]


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    (GOLDEN_DIR / "registry.prom").write_text(
        render_prometheus(build_registry())
    )
    (GOLDEN_DIR / "events.jsonl").write_text(build_event_lines())
    print(f"regenerated goldens in {GOLDEN_DIR}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
