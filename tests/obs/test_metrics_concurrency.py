"""Thread-safety of the metrics registry: no lost counts, no torn snapshots.

The instruments are written from ``SweepExecutor`` worker threads and
read by the HTTP endpoint's scrape thread, so these invariants are load-
bearing, not theoretical.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry, QuantileHistogram


def _run_threads(n: int, target) -> None:
    barrier = threading.Barrier(n)

    def go():
        barrier.wait()
        target()

    threads = [threading.Thread(target=go) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestNoLostUpdates:
    def test_concurrent_counter_incs(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        per_thread, threads = 5_000, 8
        _run_threads(threads, lambda: [c.inc() for _ in range(per_thread)])
        assert c.value == per_thread * threads

    def test_concurrent_histogram_observes(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        per_thread, threads = 5_000, 8
        _run_threads(threads, lambda: [h.observe(1.0) for _ in range(per_thread)])
        s = h.summary()
        assert s["count"] == per_thread * threads
        assert s["sum"] == per_thread * threads  # 1.0 adds exactly

    def test_concurrent_quantile_observes(self):
        q = QuantileHistogram("q")
        per_thread, threads = 5_000, 8
        _run_threads(threads, lambda: [q.observe(0.01) for _ in range(per_thread)])
        assert q.count == per_thread * threads
        assert sum(q._counts) == per_thread * threads

    def test_concurrent_get_or_create_returns_one_instrument(self):
        reg = MetricsRegistry()
        seen = []
        _run_threads(8, lambda: seen.append(reg.counter("shared")))
        assert all(c is seen[0] for c in seen)


class TestNoTornSnapshots:
    def test_snapshot_during_writes_is_internally_consistent(self):
        """count and sum always agree: every observe is 1.0 exactly."""
        reg = MetricsRegistry()
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            h = reg.histogram("h")
            q = reg.quantile("q")
            c = reg.counter("c")
            while not stop.is_set():
                h.observe(1.0)
                q.observe(1.0)
                c.inc()

        def reader():
            for _ in range(200):
                snap = reg.snapshot()
                h = snap["histograms"].get("h")
                if h and h["sum"] != h["count"]:
                    failures.append(f"torn histogram: {h}")
                q = snap["quantiles"].get("q")
                if q and q["sum"] != q["count"]:
                    failures.append(f"torn quantile: {q}")

        writers = [threading.Thread(target=writer) for _ in range(4)]
        for t in writers:
            t.start()
        try:
            readers = [threading.Thread(target=reader) for _ in range(2)]
            for t in readers:
                t.start()
            for t in readers:
                t.join()
        finally:
            stop.set()
            for t in writers:
                t.join()
        assert not failures, failures[:3]

    def test_merge_during_writes_conserves_count(self):
        src = QuantileHistogram("src")
        for _ in range(1_000):
            src.observe(0.5)
        dst = QuantileHistogram("dst")

        def write_dst():
            for _ in range(1_000):
                dst.observe(0.5)

        def merge_in():
            dst.merge(src)

        writer = threading.Thread(target=write_dst)
        merger = threading.Thread(target=merge_in)
        writer.start()
        merger.start()
        writer.join()
        merger.join()
        assert dst.count == 2_000
        assert sum(dst._counts) == 2_000
