"""Chrome-trace schema, merged simulated+real export, metrics JSON."""

from __future__ import annotations

import json

import pytest

from repro.clsim import CommandQueue, LaunchCost, NVIDIA_TESLA_K20C
from repro.obs import export
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer


class StepClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


@pytest.fixture
def records():
    tracer = Tracer(clock=StepClock())
    with tracer.span("als.train", algorithm="als"):
        with tracer.span("als.half_sweep", side="X"):
            with tracer.span("als.s1.gram", stage="S1"):
                pass
    return tracer.records


@pytest.fixture
def queue():
    q = CommandQueue(NVIDIA_TESLA_K20C)
    q.enqueue("s1_update_X", LaunchCost(0.002, 0.001, 0.0005))
    q.enqueue("s2_update_X", LaunchCost(0.0001, 0.003, 0.0005))
    return q


class TestSpanEvents:
    def test_complete_event_schema(self, records):
        events = export.spans_to_events(records)
        assert len(events) == 3
        for e in events:
            assert e["ph"] == "X"
            assert e["dur"] >= 0
            assert e["ts"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert "name" in e and "cat" in e

    def test_ts_monotonic_and_zero_based(self, records):
        ts = [e["ts"] for e in export.spans_to_events(records)]
        assert ts[0] == 0.0
        assert ts == sorted(ts)

    def test_attrs_flow_into_args(self, records):
        events = export.spans_to_events(records)
        by_name = {e["name"]: e for e in events}
        assert by_name["als.s1.gram"]["args"]["stage"] == "S1"
        assert by_name["als.half_sweep"]["args"]["side"] == "X"
        assert "self_us" in by_name["als.train"]["args"]

    def test_empty(self):
        assert export.spans_to_events([]) == []


class TestMergedTrace:
    def test_host_and_sim_tracks(self, records, queue, tmp_path):
        path = tmp_path / "merged.json"
        export.write_trace(path, records, [queue], meta={"dataset": "TEST"})
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {export.HOST_PID, export.SIM_PID_BASE}
        labels = {
            e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert labels[export.HOST_PID] == "host (measured)"
        assert labels[export.SIM_PID_BASE] == f"sim:{NVIDIA_TESLA_K20C.name}"
        assert payload["otherData"] == {"dataset": "TEST"}

    def test_sim_events_laid_end_to_end(self, queue):
        events = export.queue_to_events(queue, pid=7, tid=3)
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == pytest.approx(events[0]["dur"])
        assert all(e["pid"] == 7 and e["tid"] == 3 for e in events)
        total_us = queue.total_seconds * 1e6
        assert events[-1]["ts"] + events[-1]["dur"] == pytest.approx(total_us)

    def test_trace_loads_as_valid_json_object(self, records, queue, tmp_path):
        path = tmp_path / "t.json"
        export.write_trace(path, records, [queue])
        payload = json.loads(path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}


class TestMetricsPayload:
    def test_snapshot_plus_span_aggregates(self, records):
        reg = MetricsRegistry()
        reg.counter("solver.cholesky.calls").inc(6)
        payload = export.metrics_payload(reg, records, meta={"run": 1})
        assert payload["meta"] == {"run": 1}
        assert payload["metrics"]["counters"]["solver.cholesky.calls"] == 6
        assert payload["spans"]["als.s1.gram"]["calls"] == 1
        assert payload["spans"]["als.train"]["seconds"] > 0

    def test_write_metrics_roundtrip(self, records, tmp_path):
        path = tmp_path / "m.json"
        export.write_metrics(path, MetricsRegistry(), records)
        payload = json.loads(path.read_text())
        assert set(payload) == {"meta", "metrics", "spans"}
