"""QuantileHistogram: bucketing, quantile error bound, merge semantics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import DEFAULT_QUANTILES, MetricsRegistry, QuantileHistogram


class TestConstruction:
    def test_default_layout(self):
        h = QuantileHistogram("t")
        assert h.layout() == (1e-7, 1e5, 12)
        assert h.growth == pytest.approx(10 ** (1 / 12))

    def test_bad_layouts_raise(self):
        with pytest.raises(ValueError):
            QuantileHistogram("t", lo=0.0, hi=1.0)
        with pytest.raises(ValueError):
            QuantileHistogram("t", lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            QuantileHistogram("t", buckets_per_decade=0)

    def test_memory_is_fixed(self):
        """The bucket array never grows with the sample count."""
        h = QuantileHistogram("t")
        size = len(h._counts)
        for i in range(10_000):
            h.observe(1e-9 + i * 0.01)
        assert len(h._counts) == size
        assert h.count == 10_000


class TestQuantiles:
    def test_empty_sketch_reports_zeros(self):
        h = QuantileHistogram("t")
        assert h.quantile(0.5) == 0.0
        assert h.summary() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_single_sample_all_quantiles_hit_it(self):
        h = QuantileHistogram("t")
        h.observe(0.025)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.025, rel=h.growth - 1)

    def test_percentile_keys(self):
        h = QuantileHistogram("t")
        h.observe(1.0)
        assert set(h.percentiles()) == {"p50", "p95", "p99"}
        assert set(h.percentiles((0.25, 0.999))) == {"p25", "p99.9"}

    def test_out_of_range_samples_use_observed_extremes(self):
        h = QuantileHistogram("t", lo=1e-3, hi=1e3)
        h.observe(1e-6)   # underflow bucket
        h.observe(1e6)    # overflow bucket
        assert h.quantile(0.0) == pytest.approx(1e-6)
        assert h.quantile(1.0) == pytest.approx(1e6)
        assert h.summary()["min"] == pytest.approx(1e-6)
        assert h.summary()["max"] == pytest.approx(1e6)

    def test_quantile_out_of_domain_raises(self):
        h = QuantileHistogram("t")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_buckets_view_only_lists_occupied(self):
        h = QuantileHistogram("t")
        h.observe(0.01)
        h.observe(0.01)
        h.observe(5.0)
        pairs = h.buckets()
        assert sum(c for _, c in pairs) == 3
        edges = [e for e, _ in pairs]
        assert edges == sorted(edges)

    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-6, max_value=9e4,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_error_bounded_by_bucket_resolution(self, samples, q):
        """Estimate within one geometric bucket of the true nearest rank.

        The nearest-rank sample lies in the bucket the cumulative walk
        stops at (bucket order refines value order), and the estimate is
        that bucket's geometric midpoint — so estimate/true is bounded
        by the bucket growth factor on both sides.
        """
        h = QuantileHistogram("t")
        for s in samples:
            h.observe(s)
        est = h.quantile(q)
        target = max(1, math.ceil(q * len(samples)))
        true = sorted(samples)[target - 1]
        g = h.growth
        assert true / g <= est <= true * g

    @settings(max_examples=100, deadline=None)
    @given(
        a=st.lists(st.floats(min_value=1e-6, max_value=9e4,
                             allow_nan=False, allow_infinity=False),
                   max_size=50),
        b=st.lists(st.floats(min_value=1e-6, max_value=9e4,
                             allow_nan=False, allow_infinity=False),
                   max_size=50),
    )
    def test_merge_equals_union_of_samples(self, a, b):
        ha, hb, hu = (QuantileHistogram(n) for n in ("a", "b", "u"))
        for s in a:
            ha.observe(s)
        for s in b:
            hb.observe(s)
        for s in a + b:
            hu.observe(s)
        ha.merge(hb)
        assert ha._counts == hu._counts
        assert ha.count == hu.count
        sa, su = ha.summary(), hu.summary()
        # sum/mean differ by float addition order; everything derived
        # from counts and extremes is exact.
        assert sa["sum"] == pytest.approx(su["sum"])
        assert sa["mean"] == pytest.approx(su["mean"])
        for key in ("count", "min", "max", "p50", "p95", "p99"):
            assert sa[key] == su[key]


class TestMerge:
    def test_layout_mismatch_raises(self):
        a = QuantileHistogram("a")
        b = QuantileHistogram("b", buckets_per_decade=4)
        with pytest.raises(ValueError, match="layout"):
            a.merge(b)

    def test_merge_tracks_extremes(self):
        a, b = QuantileHistogram("a"), QuantileHistogram("b")
        a.observe(1.0)
        b.observe(0.001)
        b.observe(50.0)
        a.merge(b)
        assert a.summary()["min"] == pytest.approx(0.001)
        assert a.summary()["max"] == pytest.approx(50.0)
        assert a.count == 3


class TestRegistryIntegration:
    def test_get_or_create_and_snapshot_key(self):
        reg = MetricsRegistry()
        q = reg.quantile("serve.topn.seconds")
        assert reg.quantile("serve.topn.seconds") is q
        q.observe(0.002)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms", "quantiles"}
        assert snap["quantiles"]["serve.topn.seconds"]["count"] == 1

    def test_layout_args_apply_on_creation_only(self):
        reg = MetricsRegistry()
        q = reg.quantile("x", buckets_per_decade=4)
        assert q.buckets_per_decade == 4
        assert reg.quantile("x", buckets_per_decade=24) is q

    def test_reset_clears_quantiles(self):
        reg = MetricsRegistry()
        reg.quantile("x").observe(1.0)
        reg.reset()
        assert reg.snapshot()["quantiles"] == {}

    def test_default_quantiles_constant(self):
        assert DEFAULT_QUANTILES == (0.5, 0.95, 0.99)


class TestWindowedSnapshot:
    def test_window_is_delta_since_last_reset(self):
        h = QuantileHistogram("t")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        win = h.window_summary()
        assert win["count"] == 3
        assert win["min"] == 0.1 and win["max"] == 0.3
        # The reset consumed the window; the cumulative view is untouched.
        assert h.window_summary()["count"] == 0
        assert h.summary()["count"] == 3
        h.observe(5.0)
        win2 = h.window_summary()
        assert win2["count"] == 1
        assert win2["min"] == 5.0 == win2["max"]
        assert h.summary()["count"] == 4

    def test_window_reset_false_peeks(self):
        h = QuantileHistogram("t")
        h.observe(1.0)
        assert h.window_summary(reset=False)["count"] == 1
        assert h.window_summary(reset=True)["count"] == 1
        assert h.window_summary(reset=False)["count"] == 0

    def test_empty_window_reports_zeroed_percentiles(self):
        h = QuantileHistogram("t")
        h.observe(1.0)
        h.window_summary()
        win = h.window_summary()
        assert win == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_window_percentiles_track_recent_samples_only(self):
        h = QuantileHistogram("t")
        for _ in range(100):
            h.observe(0.001)
        h.window_summary()
        for _ in range(10):
            h.observe(1.0)
        win = h.window_summary()
        # Cumulative p50 stays on the old mass; the window sees only new.
        assert win["p50"] == pytest.approx(1.0, rel=h.growth - 1)
        assert h.summary()["p50"] == pytest.approx(0.001, rel=h.growth - 1)

    def test_merge_feeds_the_window_too(self):
        a = QuantileHistogram("t")
        b = QuantileHistogram("t")
        b.observe(0.5)
        b.observe(2.0)
        a.window_summary()  # reset a's window first
        a.merge(b)
        win = a.window_summary()
        assert win["count"] == 2
        assert win["min"] == 0.5 and win["max"] == 2.0

    def test_registry_window_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc()
        reg.quantile("lat").observe(0.25)
        snap = reg.window_snapshot()
        assert snap["counters"]["jobs"] == 1
        assert snap["quantiles"]["lat"]["count"] == 1
        # Counters stay cumulative; quantile windows reset per scrape.
        snap2 = reg.window_snapshot()
        assert snap2["counters"]["jobs"] == 1
        assert snap2["quantiles"]["lat"]["count"] == 0
        assert reg.snapshot()["quantiles"]["lat"]["count"] == 1
