"""The profile runner and its CLI subcommand, end to end."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.als import ALSConfig, train_als
from repro.datasets.planted import planted_problem
from repro.obs.profiler import profile_training, render_report
from repro.obs.spans import capture


@pytest.fixture(scope="module")
def report():
    return profile_training("YMR4", device="gpu", scale=0.05, iterations=2, seed=3)


class TestProfileTraining:
    def test_report_shape(self, report):
        assert report.spec.abbr == "YMR4"
        assert report.scale == 0.05
        assert report.train_seconds > 0
        assert report.metrics["counters"]["als.iterations"] == 2
        assert report.sim_run is not None
        assert report.sim_queue is not None and report.sim_queue.events

    def test_stage_spans_present(self, report):
        names = {r.name for r in report.records}
        assert {"als.train", "als.half_sweep", "als.s1.gram", "als.s2.rhs",
                "als.s3.solve"} <= names

    def test_render(self, report):
        out = render_report(report)
        assert "Measured hotspot breakdown" in out
        assert "simulated on NVIDIA Tesla K20c" in out

    def test_merged_trace_file(self, report, tmp_path):
        path = tmp_path / "trace.json"
        report.write_trace(path)
        events = json.loads(path.read_text())["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) == 2  # host + one simulated device
        cats = {e.get("cat") for e in events}
        assert "kernel" in cats and "host" in cats

    def test_metrics_file(self, report, tmp_path):
        path = tmp_path / "metrics.json"
        report.write_metrics(path)
        payload = json.loads(path.read_text())
        assert payload["meta"]["dataset"] == "YMR4"
        assert payload["meta"]["device"] == "NVIDIA Tesla K20c"
        assert payload["metrics"]["counters"]["solver.cholesky.calls"] == 4

    def test_auto_scale_and_unknown_names(self):
        with pytest.raises(KeyError):
            profile_training("NOPE")
        with pytest.raises(ValueError, match="unknown algorithm"):
            profile_training("YMR4", algorithm="svd")


class TestCli:
    def test_profile_exits_zero_and_writes_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        code = main([
            "profile", "ML10M",
            "--scale", "0.002", "--iterations", "2",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "S1" in out and "S2" in out and "S3" in out
        assert trace.exists() and metrics.exists()
        payload = json.loads(trace.read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_profile_with_device_has_sim_track(self, tmp_path):
        trace = tmp_path / "t.json"
        code = main([
            "profile", "YMR4", "--device", "gpu",
            "--scale", "0.05", "--iterations", "1", "--trace", str(trace),
        ])
        assert code == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert {e["pid"] for e in events if e["ph"] == "X"} == {1, 100}

    def test_profile_usage_errors(self, capsys):
        assert main(["profile"]) == 2
        assert main(["profile", "NOPE"]) == 2

    def test_experiment_metrics_dump(self, tmp_path, capsys):
        path = tmp_path / "fig8.json"
        assert main(["fig8", "--metrics", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["meta"]["experiment"] == "fig8"
        assert payload["meta"]["wall_seconds"] > 0
        assert "experiment.fig8" in payload["spans"]


class TestNoBehaviorChange:
    def test_instrumentation_does_not_change_results(self):
        """Factors are bit-identical with tracing on and off."""
        problem = planted_problem(m=50, n=40, rank=3, density=0.3, seed=8)
        config = ALSConfig(k=3, lam=0.05, iterations=3)
        plain = train_als(problem.ratings, config)
        with capture():
            traced_model = train_als(problem.ratings, config)
        np.testing.assert_array_equal(plain.X, traced_model.X)
        np.testing.assert_array_equal(plain.Y, traced_model.Y)
