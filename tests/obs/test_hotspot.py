"""Measured hotspot aggregation over real instrumented training runs."""

from __future__ import annotations

import pytest

from repro.core.als import ALSConfig, train_als
from repro.datasets.planted import planted_problem
from repro.obs import hotspot
from repro.obs.spans import Tracer, capture


@pytest.fixture(scope="module")
def run_records():
    """Spans from a real (small) instrumented training run."""
    problem = planted_problem(m=80, n=60, rank=3, density=0.3, seed=5)
    with capture() as tracer:
        train_als(problem.ratings, ALSConfig(k=4, lam=0.05, iterations=3))
    return tuple(tracer.records)


class TestStageBreakdown:
    def test_all_stages_present_with_expected_calls(self, run_records):
        stages = hotspot.stage_breakdown(run_records)
        assert set(stages) == {"S1", "S2", "S3"}
        # 3 iterations x 2 half-sweeps, one stage span each
        for stat in stages.values():
            assert stat.calls == 6
            assert stat.seconds > 0

    def test_stages_sum_to_sweep_total(self, run_records):
        """S1+S2+S3 ≈ the parent half-sweep span (small residual only)."""
        stage_total = sum(
            s.seconds for s in hotspot.stage_breakdown(run_records).values()
        )
        sweep = hotspot.sweep_seconds(run_records)
        assert 0 < stage_total <= sweep
        assert stage_total == pytest.approx(sweep, rel=0.25)

    def test_zero_filled_for_empty_records(self):
        stages = hotspot.stage_breakdown([])
        assert all(s.calls == 0 and s.seconds == 0.0 for s in stages.values())


class TestTopSpans:
    def test_sorted_by_total_and_bounded(self, run_records):
        top = hotspot.top_spans(run_records, n=3)
        assert len(top) == 3
        assert top[0].seconds >= top[1].seconds >= top[2].seconds

    def test_aggregates_calls(self, run_records):
        by_name = {s.name: s for s in hotspot.top_spans(run_records, n=50)}
        assert by_name["als.half_sweep"].calls == 6
        assert by_name["als.train"].calls == 1


class TestRendering:
    def test_hotspot_table_renders(self, run_records):
        table = hotspot.render_hotspot_table(run_records)
        for token in ("S1", "S2", "S3", "half-sweep total", "100.0%"):
            assert token in table

    def test_top_spans_table_renders(self, run_records):
        table = hotspot.render_top_spans(run_records, n=5)
        assert "als.s1.gram" in table

    def test_tables_handle_no_records(self):
        assert "n/a" in hotspot.render_hotspot_table([])
        hotspot.render_top_spans([])  # must not raise


class TestDeterministicShares:
    def test_shares_with_fake_clock(self):
        """Stage shares computed from a fully deterministic span set."""
        t = Tracer(clock=iter(range(100)).__next__)
        with t.span("als.half_sweep"):  # start 0
            with t.span("als.s1.gram", stage="S1"):  # 1..2 → 1s
                pass
            with t.span("als.s2.rhs", stage="S2"):  # 3..4 → 1s
                pass
            with t.span("als.s3.solve", stage="S3"):  # 5..6 → 1s
                pass
        # half_sweep: 0..7 → 7s
        stages = hotspot.stage_breakdown(t.records)
        assert [stages[s].seconds for s in ("S1", "S2", "S3")] == [1.0, 1.0, 1.0]
        assert hotspot.sweep_seconds(t.records) == 7.0
