"""Span nesting, the fake clock, disabled no-op behavior, metrics."""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import spans
from repro.obs.spans import Tracer, capture, span, traced


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0, start: float = 0.0):
        self.step = step
        self.now = start

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


@pytest.fixture(autouse=True)
def _clean_state():
    """Every test starts disabled, with empty records and real clock."""
    spans.disable()
    spans.clear()
    spans.set_clock(None)
    obs_metrics.reset()
    yield
    spans.disable()
    spans.clear()
    spans.set_clock(None)
    obs_metrics.reset()


class TestNesting:
    def test_parent_child_durations_with_fake_clock(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("parent"):
            # clock: parent.start=0; child.start=1; child.end=2; parent.end=3
            with tracer.span("child"):
                pass
        child, parent = tracer.records
        assert child.name == "child"
        assert parent.name == "parent"
        assert child.duration == pytest.approx(1.0)
        assert parent.duration == pytest.approx(3.0)
        assert parent.self_duration == pytest.approx(2.0)
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None
        assert (parent.depth, child.depth) == (0, 1)

    def test_sibling_children_accumulate_into_self_time(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        root = tracer.records[-1]
        a, b = tracer.records[:2]
        assert root.duration == pytest.approx(a.duration + b.duration + root.self_duration)

    def test_attrs_and_late_set(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", stage="S1") as s:
            s.set(rows=42)
        record = tracer.records[0]
        assert record.attrs == {"stage": "S1", "rows": 42}

    def test_global_tracer_fake_clock(self):
        spans.set_clock(FakeClock(step=0.5))
        spans.enable()
        with span("x"):
            pass
        assert spans.get_tracer().records[0].duration == pytest.approx(0.5)

    def test_records_carry_thread_id(self):
        spans.enable()
        with span("main-thread"):
            pass

        def worker():
            with span("worker-thread"):
                pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        tids = {r.name: r.tid for r in spans.get_tracer().records}
        assert tids["main-thread"] != tids["worker-thread"]


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert span("anything") is span("other")
        with span("nothing", stage="S1") as s:
            s.set(more=1)
        assert spans.get_tracer().records == []

    def test_traced_decorator_passthrough(self):
        calls = []

        @traced("mytask")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6
        assert spans.get_tracer().records == []
        spans.enable()
        assert fn(4) == 8
        assert [r.name for r in spans.get_tracer().records] == ["mytask"]
        assert calls == [3, 4]

    def test_metric_helpers_gated(self):
        obs_metrics.inc("c")
        obs_metrics.set_gauge("g", 5)
        obs_metrics.observe("h", 1.0)
        obs_metrics.observe_quantile("q", 1.0)
        obs_metrics.observe_latency("l", 1.0)
        snap = obs_metrics.snapshot()
        assert snap == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "quantiles": {},
        }
        spans.enable()
        obs_metrics.inc("c", 2)
        assert obs_metrics.snapshot()["counters"]["c"] == 2


class TestCapture:
    def test_capture_enables_and_restores(self):
        assert not spans.is_enabled()
        with capture() as tracer:
            assert spans.is_enabled()
            with span("inside"):
                pass
        assert not spans.is_enabled()
        assert [r.name for r in tracer.records] == ["inside"]

    def test_capture_clears_previous_records(self):
        spans.enable()
        with span("stale"):
            pass
        with capture() as tracer:
            with span("fresh"):
                pass
        assert [r.name for r in tracer.records] == ["fresh"]
        # capture restores the *previous* state, which was enabled
        assert spans.is_enabled()


class TestMetricsRegistry:
    def test_counter_monotonic(self):
        reg = obs_metrics.MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        assert reg.counter("n") is c

    def test_histogram_summary(self):
        reg = obs_metrics.MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}
        assert reg.histogram("empty").summary()["count"] == 0

    def test_snapshot_and_reset(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(9)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1.0}
        assert snap["gauges"] == {"b": 9.0}
        reg.reset()
        assert reg.snapshot()["counters"] == {}
