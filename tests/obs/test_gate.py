"""The perf-regression gate over the BENCH trajectory, library and CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.obs.gate import (
    GATE_METRICS,
    check_record,
    extract_metric,
    fingerprints_match,
    load_trajectory,
    render_checks,
    run_gate,
    shape_key,
)

HOST_A = {"cpu_count": 8, "machine": "x86_64", "system": "Linux", "blas": "openblas"}
HOST_B = {"cpu_count": 2, "machine": "aarch64", "system": "Linux", "blas": "blis"}


def make_record(speedup: float = 10.0, host: dict | None = HOST_A, **over) -> dict:
    record = {
        "benchmark": "s1s2_assembly",
        "dataset": "ml-1m",
        "scale": 0.0625,
        "k": 32,
        "speedup": speedup,
    }
    if host is not None:
        record["host"] = host
    record.update(over)
    return record


@pytest.fixture
def trajectory_dir(tmp_path):
    (tmp_path / "BENCH_2.json").write_text(json.dumps(make_record(speedup=8.0)))
    (tmp_path / "BENCH_10.json").write_text(
        json.dumps([make_record(speedup=10.0)])  # list format, newest file
    )
    (tmp_path / "BENCH_3.json").write_text("{not json")  # must be skipped
    return tmp_path


class TestHelpers:
    def test_extract_metric_dotted_path(self):
        record = {"sweep": {"speedup": 3.5}}
        assert extract_metric(record, "sweep.speedup") == 3.5
        assert extract_metric(record, "sweep.missing") is None
        assert extract_metric({"x": "nan?no-a-number"}, "x") is None

    def test_shape_key_and_fingerprints(self):
        assert shape_key(make_record()) == ("ml-1m", 0.0625, 32)
        assert fingerprints_match(HOST_A, dict(HOST_A))
        assert not fingerprints_match(HOST_A, HOST_B)
        assert not fingerprints_match(HOST_A, None)
        assert not fingerprints_match({}, {})  # unknown never matches

    def test_load_trajectory_sorts_naturally_and_skips_bad(self, trajectory_dir):
        trajectory = load_trajectory(trajectory_dir)
        assert [r["_file"] for r in trajectory] == ["BENCH_2.json", "BENCH_10.json"]

    def test_load_trajectory_with_mixed_name_styles(self, trajectory_dir):
        """Non-numeric suffixes (grid exports like ``BENCH_grid_x.json``)
        must sort alongside numbered files without a type error."""
        (trajectory_dir / "BENCH_grid_assembly.json").write_text(
            json.dumps(make_record(speedup=9.0))
        )
        files = [r["_file"] for r in load_trajectory(trajectory_dir)]
        # "BENCH_" is a strict prefix of "BENCH_grid_...", so the
        # numbered files sort first; the point is no TypeError/ValueError.
        assert files == [
            "BENCH_2.json", "BENCH_10.json", "BENCH_grid_assembly.json",
        ]

    def test_load_trajectory_survives_unicode_digit_names(self, trajectory_dir):
        """``'²'.isdigit()`` is True but ``int('²')`` raises — a filename
        like that must not crash the sort."""
        (trajectory_dir / "BENCH_x².json").write_text(
            json.dumps(make_record(speedup=9.0))
        )
        files = [r["_file"] for r in load_trajectory(trajectory_dir)]
        assert "BENCH_x².json" in files and len(files) == 3


class TestCheckRecord:
    def test_equal_numbers_pass(self, trajectory_dir):
        trajectory = load_trajectory(trajectory_dir)
        check = check_record(make_record(speedup=10.0), trajectory)
        assert check.ok
        # The current payload is identical to BENCH_10's record — that
        # is the record itself, not a baseline.  The gate must fall back
        # to the previous comparable record instead of self-comparing.
        assert check.baseline == 8.0
        assert check.baseline_file == "BENCH_2.json"

    def test_self_baseline_excluded_catches_regressed_rerun(self, tmp_path):
        """A regressed record appended to the trajectory before gating
        must not self-pass by being judged against itself."""
        (tmp_path / "BENCH_1.json").write_text(json.dumps(make_record(speedup=10.0)))
        regressed = make_record(speedup=2.0)
        (tmp_path / "BENCH_2.json").write_text(json.dumps(regressed))
        trajectory = load_trajectory(tmp_path)
        # The appended copy is in the pool; payload equality excludes it.
        check = check_record(regressed, trajectory)
        assert check.baseline == 10.0
        assert check.baseline_file == "BENCH_1.json"
        assert not check.ok  # 2.0 vs 10.0: the regression is visible

    def test_record_in_gate_root_excluded_by_filename(self, trajectory_dir):
        """Gating a file that sits inside the gate root: its own records
        (matched by filename) never serve as their baseline."""
        fresh = trajectory_dir / "BENCH_99.json"
        fresh.write_text(json.dumps(make_record(speedup=3.0)))
        checks, ok = run_gate([fresh], root=trajectory_dir)
        assert not ok  # judged against BENCH_10's 10.0, not itself
        (check,) = checks
        assert check.baseline == 10.0
        assert check.baseline_file == "BENCH_10.json"

    def test_only_self_in_trajectory_means_no_baseline(self, tmp_path):
        record = make_record(speedup=5.0)
        (tmp_path / "BENCH_1.json").write_text(json.dumps(record))
        trajectory = load_trajectory(tmp_path)
        check = check_record(record, trajectory)
        assert check.ok and check.baseline is None  # skipped, not self-passed
        assert not check_record(record, trajectory, strict=True).ok

    def test_two_x_regression_fails(self, trajectory_dir):
        trajectory = load_trajectory(trajectory_dir)
        check = check_record(make_record(speedup=5.0), trajectory)
        assert not check.ok
        assert check.ratio == pytest.approx(0.5)

    def test_within_tolerance_passes(self, trajectory_dir):
        trajectory = load_trajectory(trajectory_dir)
        assert check_record(make_record(speedup=8.5), trajectory).ok  # -15%
        assert not check_record(make_record(speedup=7.9), trajectory).ok

    def test_host_mismatch_widens_tolerance(self, trajectory_dir):
        trajectory = load_trajectory(trajectory_dir)
        # -30% fails same-host at 20% tolerance but passes cross-host
        # at the 2x-widened 40%.
        same = check_record(make_record(speedup=7.0), trajectory)
        cross = check_record(make_record(speedup=7.0, host=HOST_B), trajectory)
        assert not same.ok
        assert cross.ok
        assert not cross.same_host
        assert cross.tolerance == pytest.approx(0.4)

    def test_host_slack_is_capped(self, trajectory_dir):
        trajectory = load_trajectory(trajectory_dir)
        check = check_record(
            make_record(speedup=0.4, host=HOST_B), trajectory, host_slack=100.0
        )
        assert check.tolerance == 0.95  # capped: never a no-op gate
        assert not check.ok  # a 25x collapse still fails the capped floor

    def test_shape_mismatch_skips_unless_strict(self, trajectory_dir):
        trajectory = load_trajectory(trajectory_dir)
        other_shape = make_record(speedup=0.1, k=64)
        assert check_record(other_shape, trajectory).ok
        assert not check_record(other_shape, trajectory, strict=True).ok

    def test_ungated_benchmark_passes(self, trajectory_dir):
        check = check_record(
            {"benchmark": "not-a-gated-bench"}, load_trajectory(trajectory_dir)
        )
        assert check.ok
        assert check.metric == "-"

    def test_gate_metric_override(self, trajectory_dir):
        record = make_record()
        record["gate_metric"] = "custom.path"
        check = check_record(record, load_trajectory(trajectory_dir))
        assert not check.ok  # declared metric missing from the record
        assert "custom.path" in check.reason

    def test_missing_metric_value_fails(self, trajectory_dir):
        record = make_record()
        del record["speedup"]
        assert not check_record(record, load_trajectory(trajectory_dir)).ok


class TestRunGate:
    def test_all_pass_and_render(self, trajectory_dir, tmp_path):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(make_record(speedup=11.0)))
        checks, ok = run_gate([current], root=trajectory_dir)
        assert ok
        table = render_checks(checks)
        assert "OK" in table and "s1s2_assembly" in table

    def test_unreadable_and_empty_files_fail(self, trajectory_dir, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        checks, ok = run_gate(
            [tmp_path / "missing.json", empty], root=trajectory_dir
        )
        assert not ok
        assert all(not c.ok for c in checks)

    def test_known_benchmarks_are_gated(self):
        assert set(GATE_METRICS) == {
            "s1s2_assembly",
            "s3_solve_and_parallel_sweep",
            "tiled_topn_serving",
            "implicit_half_sweep",
            "outofcore_training",
            "subspace_convergence",
            "serving_service",
        }


class TestCLI:
    def test_exit_zero_on_pass(self, trajectory_dir, tmp_path, capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(make_record(speedup=10.0)))
        code = cli_main(
            ["perf-gate", str(current), "--baseline-dir", str(trajectory_dir)]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_synthetic_2x_regression(
        self, trajectory_dir, tmp_path, capsys
    ):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(make_record(speedup=5.0)))
        code = cli_main(
            ["perf-gate", str(current), "--baseline-dir", str(trajectory_dir)]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flag(self, trajectory_dir, tmp_path):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(make_record(speedup=5.0)))
        code = cli_main(
            ["perf-gate", str(current), "--baseline-dir", str(trajectory_dir),
             "--tolerance", "0.6"]
        )
        assert code == 0

    def test_strict_flag(self, trajectory_dir, tmp_path):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(make_record(speedup=10.0, k=999)))
        args = ["perf-gate", str(current), "--baseline-dir", str(trajectory_dir)]
        assert cli_main(args) == 0
        assert cli_main(args + ["--strict"]) == 1

    def test_usage_error(self, capsys):
        assert cli_main(["perf-gate"]) == 2
        assert "usage" in capsys.readouterr().err


class TestCommittedTrajectory:
    def test_repo_trajectory_loads_and_bench6_is_stamped(self):
        """The committed BENCH files parse; BENCH_6 carries the envelope."""
        trajectory = load_trajectory(".")
        names = {r["benchmark"] for r in trajectory}
        assert set(GATE_METRICS) <= names
        bench6 = [r for r in trajectory if r["_file"] == "BENCH_6.json"]
        assert len(bench6) == 4
        for record in bench6:
            assert record["schema_version"] == 1
            assert "host" in record and "cpu_count" in record["host"]
