"""The background /metrics + /healthz HTTP endpoint."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.endpoint import PROMETHEUS_CONTENT_TYPE, MetricsEndpoint
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serve.topn.queries").inc(7)
    reg.quantile("serve.topn.seconds").observe(0.002)
    reg.quantile("serve.topn.seconds").observe(0.050)
    return reg


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers, resp.read().decode("utf-8")


class TestEndpoint:
    def test_metrics_served_in_prometheus_format(self, registry):
        with MetricsEndpoint(registry) as ep:
            status, headers, body = _get(ep.url("/metrics"))
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        lines = body.splitlines()
        assert "repro_serve_topn_queries_total 7" in lines
        # the p50/p95/p99 series the acceptance criterion asks for
        for q in ("0.5", "0.95", "0.99"):
            assert any(
                l.startswith(f'repro_serve_topn_seconds{{quantile="{q}"}} ')
                for l in lines
            )
        for line in lines:  # every sample line parses
            if not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_live_updates_between_scrapes(self, registry):
        with MetricsEndpoint(registry) as ep:
            _, _, before = _get(ep.url("/metrics"))
            registry.counter("serve.topn.queries").inc(3)
            _, _, after = _get(ep.url("/metrics"))
        assert "repro_serve_topn_queries_total 7" in before
        assert "repro_serve_topn_queries_total 10" in after

    def test_healthz(self, registry):
        with MetricsEndpoint(registry) as ep:
            status, headers, body = _get(ep.url("/healthz"))
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0.0
        assert isinstance(payload["pid"], int)

    def test_unknown_path_is_json_404(self, registry):
        with MetricsEndpoint(registry) as ep:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(ep.url("/nope"))
            assert exc.value.code == 404
            payload = json.loads(exc.value.read().decode())
            assert payload["endpoints"] == ["/metrics", "/healthz"]

    def test_ephemeral_port_and_lifecycle(self, registry):
        ep = MetricsEndpoint(registry, port=0)
        assert not ep.running
        ep.start()
        try:
            assert ep.running
            assert ep.port != 0
            assert ep.start() is ep  # idempotent
        finally:
            ep.stop()
        assert not ep.running
        ep.stop()  # idempotent
        with pytest.raises(urllib.error.URLError):
            _get(f"http://127.0.0.1:{ep.port}/healthz")

    def test_empty_registry_scrape_is_valid(self):
        with MetricsEndpoint(MetricsRegistry()) as ep:
            status, _, body = _get(ep.url("/metrics"))
        assert status == 200
        assert body == ""
