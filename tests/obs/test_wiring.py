"""Hot-path telemetry wiring: training and serving fill the sketches.

These tests run the real trainers/engine under ``capture`` and assert
the latency series PR 6 wires in actually accumulate — the contract the
``/metrics`` endpoint and the profile report build on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.als import ALSConfig, train_als
from repro.core.implicit import ImplicitConfig, train_implicit_als
from repro.obs import metrics as obs_metrics
from repro.obs import spans
from repro.obs.spans import capture
from repro.serving.engine import TopNEngine
from tests.conftest import random_rating_matrix


@pytest.fixture(autouse=True)
def _clean_state():
    spans.disable()
    spans.clear()
    obs_metrics.reset()
    yield
    spans.disable()
    spans.clear()
    obs_metrics.reset()


@pytest.fixture
def ratings(rng):
    return random_rating_matrix(rng, m=30, n=20, density=0.3)


def test_training_fills_stage_and_half_sweep_sketches(ratings):
    with capture():
        train_als(ratings, ALSConfig(k=4, iterations=2, track_loss=False))
    snap = obs_metrics.snapshot()
    # 2 iterations x 2 half-sweeps, via both the explicit timer and the
    # span-end observer folding stage-tagged spans into distributions.
    assert snap["quantiles"]["als.half_sweep.seconds"]["count"] == 4
    assert snap["histograms"]["als.half_sweep.seconds"]["count"] == 4
    for stage in ("s1", "s2", "s3"):
        q = snap["quantiles"][f"stage.{stage}.seconds"]
        assert q["count"] >= 4
        assert 0.0 <= q["p50"] <= q["p95"] <= q["p99"]


def test_implicit_training_fills_half_sweep_sketch(ratings):
    with capture():
        train_implicit_als(ratings, ImplicitConfig(k=4, iterations=1))
    snap = obs_metrics.snapshot()
    assert snap["quantiles"]["als.half_sweep.seconds"]["count"] == 2


def test_simulated_kernel_spans_do_not_pollute_stage_sketches():
    """clsim spans carry cat='kernel'; only measured host spans count."""
    spans.enable()
    with spans.span("sim.launch", cat="kernel", stage="S1"):
        pass
    with spans.span("real.work", stage="S1"):
        pass
    snap = obs_metrics.snapshot()
    assert snap["quantiles"]["stage.s1.seconds"]["count"] == 1


def test_local_tracers_do_not_write_global_metrics():
    """The observer rides the global tracer only — test Tracers stay inert."""
    tracer = spans.Tracer()
    with tracer.span("local", stage="S1"):
        pass
    assert [r.name for r in tracer.records] == ["local"]
    assert obs_metrics.snapshot()["quantiles"] == {}


def test_serving_query_fills_latency_and_throughput_series(rng):
    X = rng.standard_normal((40, 4))
    Y = rng.standard_normal((25, 4))
    engine = TopNEngine(X, Y)
    with capture():
        for start in (0, 10, 20, 30):
            engine.query(np.arange(start, start + 10), n=5)
    snap = obs_metrics.snapshot()
    lat = snap["quantiles"]["serve.topn.seconds"]
    assert lat["count"] == 4
    assert snap["histograms"]["serve.topn.seconds"]["count"] == 4
    assert 0.0 < lat["p50"] <= lat["p99"]
    # users_per_sec keeps the whole distribution, not just the last write
    ups = snap["histograms"]["serve.users_per_sec"]
    assert ups["count"] == 4
    assert ups["min"] <= snap["gauges"]["serve.users_per_sec"] <= ups["max"]


def test_parallel_sweep_fills_shard_and_imbalance_series(rng):
    R = random_rating_matrix(rng, m=60, n=20, density=0.4)
    from repro.parallel.executor import SweepExecutor

    Y = rng.standard_normal((20, 4))
    with capture():
        with SweepExecutor(2) as executor:
            executor.half_sweep(R, Y, 0.1)
    snap = obs_metrics.snapshot()
    assert snap["quantiles"]["sweep.shard_seconds"]["count"] >= 2
    assert snap["histograms"]["sweep.shard_seconds"]["count"] >= 2
    assert snap["histograms"]["sweep.imbalance.measured"]["count"] >= 1
