"""The stdlib-only resource sampler and its raw readers."""

from __future__ import annotations

import sys
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.resource import ResourceSampler, cpu_seconds, peak_rss_bytes, rss_bytes


class TestReaders:
    def test_cpu_seconds_monotone_nonnegative(self):
        a = cpu_seconds()
        sum(i * i for i in range(200_000))  # burn a little CPU
        b = cpu_seconds()
        assert 0.0 <= a <= b

    @pytest.mark.skipif(sys.platform == "win32", reason="no /proc, no rusage")
    def test_rss_readers_plausible(self):
        rss = rss_bytes()
        peak = peak_rss_bytes()
        # A running CPython interpreter is comfortably above 1 MB and
        # under 1 TB; the peak high-water mark is at least current RSS
        # (modulo page rounding between the two sources).
        if rss is not None:
            assert 1 << 20 < rss < 1 << 40
        if peak is not None:
            assert 1 << 20 < peak < 1 << 40
        if rss is not None and peak is not None:
            assert peak >= rss // 2


class TestSampler:
    def test_bad_interval_raises(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval=0)

    def test_sample_records_into_registry(self):
        reg = MetricsRegistry()
        recorded = ResourceSampler(registry=reg).sample()
        snap = reg.snapshot()
        assert "proc.cpu_seconds" in recorded
        assert snap["gauges"]["proc.cpu_seconds"] == recorded["proc.cpu_seconds"]
        assert snap["counters"]["proc.samples"] == 1
        if "proc.rss_bytes" in recorded:  # Linux with /proc
            assert snap["histograms"]["proc.rss.sampled_bytes"]["count"] == 1

    def test_context_manager_samples_on_enter_and_exit(self):
        reg = MetricsRegistry()
        with ResourceSampler(interval=10.0, registry=reg) as sampler:
            assert sampler.running
            assert reg.snapshot()["counters"]["proc.samples"] == 1  # start
        assert not sampler.running
        assert reg.snapshot()["counters"]["proc.samples"] == 2  # + stop

    def test_background_thread_keeps_sampling(self):
        reg = MetricsRegistry()
        with ResourceSampler(interval=0.01, registry=reg):
            time.sleep(0.08)
        assert reg.snapshot()["counters"]["proc.samples"] >= 4

    def test_start_is_idempotent_and_stop_without_start_is_noop(self):
        reg = MetricsRegistry()
        sampler = ResourceSampler(interval=10.0, registry=reg)
        sampler.stop()  # never started: no-op, no sample
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "quantiles": {},
        }
        sampler.start()
        try:
            assert sampler.start() is sampler
        finally:
            sampler.stop()
