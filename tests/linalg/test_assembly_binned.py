"""Tests for the degree-binned, tiled normal-equations assembly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    assemble_gram,
    assemble_rhs,
    assembly_defaults,
    batched_normal_equations,
    binned_normal_equations,
    configure_assembly,
    scatter_normal_equations,
    tile_bytes_bound,
)
from repro.linalg.normal_equations import DEFAULT_TILE_NNZ
from repro.obs import metrics as obs_metrics
from repro.obs.spans import capture, disable
from repro.sparse import CSRMatrix


@pytest.fixture(autouse=True)
def _clean_assembly_config():
    """Each test starts from (and restores) the built-in defaults."""
    configure_assembly()
    yield
    configure_assembly()


def _random_matrix(
    rng: np.random.Generator, m: int, n: int, density: float, skewed: bool = False
) -> CSRMatrix:
    mask = rng.random((m, n)) < density
    if skewed and m >= 4:
        # A few heavy rows plus empty rows — the degree profile the
        # binning exists for.
        mask[0] = True
        mask[1] = rng.random(n) < min(1.0, 4 * density)
        mask[m // 2] = False
    dense = np.where(mask, rng.integers(1, 6, size=(m, n)).astype(np.float32), 0.0)
    return CSRMatrix.from_dense(dense.astype(np.float32))


def _reference(R: CSRMatrix, Y: np.ndarray, lam: float):
    """The per-row Algorithm-2 reference every batched path must match."""
    m, k = R.nrows, Y.shape[1]
    A = np.empty((m, k, k))
    b = np.empty((m, k))
    for u in range(m):
        cols, vals = R.row_slice(u)
        A[u] = assemble_gram(Y, cols, lam)
        b[u] = assemble_rhs(Y, cols, vals)
    return A, b


class TestBinnedMatchesReference:
    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=30),
        k=st.integers(min_value=1, max_value=9),
        density=st.floats(min_value=0.0, max_value=0.7),
        skewed=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_binned_matches_per_row(self, m, n, k, density, skewed, seed):
        rng = np.random.default_rng(seed)
        R = _random_matrix(rng, m, n, density, skewed)
        Y = rng.standard_normal((n, k))
        A_ref, b_ref = _reference(R, Y, 0.3)
        A, b = binned_normal_equations(R, Y, 0.3)
        np.testing.assert_allclose(A, A_ref, atol=1e-10)
        np.testing.assert_allclose(b, b_ref, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=30),
        n=st.integers(min_value=1, max_value=20),
        k=st.integers(min_value=1, max_value=8),
        tile_nnz=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_tiling_never_changes_the_result(self, m, n, k, tile_nnz, seed):
        """Tiny tile budgets force row tiling *and* width segmentation."""
        rng = np.random.default_rng(seed)
        R = _random_matrix(rng, m, n, 0.4, skewed=True)
        Y = rng.standard_normal((n, k))
        A_ref, b_ref = _reference(R, Y, 0.1)
        A, b = binned_normal_equations(R, Y, 0.1, tile_nnz=tile_nnz)
        np.testing.assert_allclose(A, A_ref, atol=1e-10)
        np.testing.assert_allclose(b, b_ref, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=30),
        n=st.integers(min_value=1, max_value=20),
        k=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_float32_compute_stays_close(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        R = _random_matrix(rng, m, n, 0.4, skewed=True)
        Y = rng.standard_normal((n, k))
        A_ref, b_ref = _reference(R, Y, 0.2)
        A, b = binned_normal_equations(R, Y, 0.2, compute_dtype="float32")
        assert A.dtype == np.float64 and b.dtype == np.float64
        np.testing.assert_allclose(A, A_ref, atol=1e-4, rtol=1e-4)
        np.testing.assert_allclose(b, b_ref, atol=1e-4, rtol=1e-4)

    def test_matches_scatter_exactly_on_fixture(self, small_ratings, rng):
        Y = rng.standard_normal((small_ratings.ncols, 6))
        A_s, b_s = scatter_normal_equations(small_ratings, Y, 0.1)
        A_b, b_b = binned_normal_equations(small_ratings, Y, 0.1)
        np.testing.assert_allclose(A_b, A_s, atol=1e-12)
        np.testing.assert_allclose(b_b, b_s, atol=1e-12)

    def test_empty_rows_get_lambda_identity(self):
        dense = np.zeros((3, 4), dtype=np.float32)
        dense[0, 1] = 2.0
        R = CSRMatrix.from_dense(dense)
        A, b = binned_normal_equations(R, np.ones((4, 3)), 0.7)
        np.testing.assert_allclose(A[1], 0.7 * np.eye(3))
        np.testing.assert_allclose(b[1], np.zeros(3))

    def test_empty_matrix(self):
        R = CSRMatrix(
            (3, 4),
            np.array([], dtype=np.float32),
            np.array([], dtype=np.int64),
            np.zeros(4, dtype=np.int64),
        )
        A, b = binned_normal_equations(R, np.ones((4, 2)), 0.5)
        np.testing.assert_allclose(A, np.broadcast_to(0.5 * np.eye(2), (3, 2, 2)))
        np.testing.assert_allclose(b, np.zeros((3, 2)))

    def test_shape_mismatch_rejected(self, small_ratings, rng):
        with pytest.raises(ValueError):
            binned_normal_equations(small_ratings, rng.standard_normal((3, 5)), 0.1)


class TestTileBudget:
    def test_peak_tile_bytes_gauge_respects_budget(self, rng):
        R = _random_matrix(rng, 60, 40, 0.5, skewed=True)
        k = 7
        Y = rng.standard_normal((40, k))
        for tile_nnz in (16, 128, 4096):
            obs_metrics.reset()
            with capture():
                binned_normal_equations(R, Y, 0.1, tile_nnz=tile_nnz)
            snap = obs_metrics.snapshot()
            peak = snap["gauges"]["assembly.peak_tile_bytes"]
            assert 0 < peak <= tile_bytes_bound(tile_nnz, k)
            assert snap["gauges"]["assembly.bins"] >= 1
            assert snap["counters"]["assembly.tiles"] >= 1

    def test_smaller_budget_means_smaller_peak(self, rng):
        R = _random_matrix(rng, 80, 50, 0.5)
        Y = rng.standard_normal((50, 6))
        peaks = []
        for tile_nnz in (8, 2048):
            obs_metrics.reset()
            with capture():
                binned_normal_equations(R, Y, 0.1, tile_nnz=tile_nnz)
            peaks.append(obs_metrics.snapshot()["gauges"]["assembly.peak_tile_bytes"])
        assert peaks[0] < peaks[1]

    def test_float32_bound_uses_compute_itemsize(self):
        assert tile_bytes_bound(1024, 8, "float32") < tile_bytes_bound(1024, 8)

    def test_bad_tile_budget_rejected(self, small_ratings, rng):
        with pytest.raises(ValueError):
            binned_normal_equations(
                small_ratings, rng.standard_normal((small_ratings.ncols, 2)), 0.1,
                tile_nnz=0,
            )


class TestDispatchAndConfig:
    def test_mode_argument_selects_variant(self, small_ratings, rng):
        Y = rng.standard_normal((small_ratings.ncols, 4))
        A_b, b_b = batched_normal_equations(small_ratings, Y, 0.1, mode="binned")
        A_s, b_s = batched_normal_equations(small_ratings, Y, 0.1, mode="scatter")
        np.testing.assert_allclose(A_b, A_s, atol=1e-12)
        np.testing.assert_allclose(b_b, b_s, atol=1e-12)

    def test_auto_mode_runs_and_matches(self, small_ratings, rng):
        Y = rng.standard_normal((small_ratings.ncols, 4))
        A_a, b_a = batched_normal_equations(small_ratings, Y, 0.1, mode="auto")
        A_b, b_b = batched_normal_equations(small_ratings, Y, 0.1, mode="binned")
        np.testing.assert_allclose(A_a, A_b, atol=1e-12)
        np.testing.assert_allclose(b_a, b_b, atol=1e-12)

    def test_unknown_mode_rejected(self, small_ratings, rng):
        with pytest.raises(ValueError):
            batched_normal_equations(
                small_ratings, rng.standard_normal((small_ratings.ncols, 2)), 0.1,
                mode="magic",
            )

    def test_defaults_resolve_builtin(self):
        d = assembly_defaults()
        assert d == {
            "mode": "binned",
            "tile_nnz": DEFAULT_TILE_NNZ,
            "compute_dtype": "float64",
        }

    def test_configure_assembly_installs_and_resets(self):
        configure_assembly(mode="scatter", tile_nnz=77, compute_dtype="float32")
        assert assembly_defaults() == {
            "mode": "scatter",
            "tile_nnz": 77,
            "compute_dtype": "float32",
        }
        configure_assembly()
        assert assembly_defaults()["mode"] == "binned"

    def test_configure_assembly_validates(self):
        with pytest.raises(ValueError):
            configure_assembly(mode="magic")
        with pytest.raises(ValueError):
            configure_assembly(tile_nnz=0)
        with pytest.raises(ValueError):
            configure_assembly(compute_dtype="float16")

    def test_environment_overrides(self, monkeypatch, small_ratings, rng):
        monkeypatch.setenv("REPRO_ASSEMBLY", "scatter")
        monkeypatch.setenv("REPRO_TILE_NNZ", "123")
        monkeypatch.setenv("REPRO_ASSEMBLY_DTYPE", "float32")
        d = assembly_defaults()
        assert d == {"mode": "scatter", "tile_nnz": 123, "compute_dtype": "float32"}
        # configure_assembly wins over the environment...
        configure_assembly(mode="binned")
        assert assembly_defaults()["mode"] == "binned"
        # ...and the explicit argument wins over both.
        Y = rng.standard_normal((small_ratings.ncols, 3))
        A, _ = batched_normal_equations(small_ratings, Y, 0.1, mode="binned")
        assert A.shape == (small_ratings.nrows, 3, 3)

    def test_bad_environment_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSEMBLY", "nope")
        with pytest.raises(ValueError):
            assembly_defaults()

    def test_spans_disabled_still_correct(self, small_ratings, rng):
        disable()
        Y = rng.standard_normal((small_ratings.ncols, 3))
        A_ref, b_ref = _reference(small_ratings, Y, 0.1)
        A, b = binned_normal_equations(small_ratings, Y, 0.1)
        np.testing.assert_allclose(A, A_ref, atol=1e-10)
        np.testing.assert_allclose(b, b_ref, atol=1e-10)


class TestAssembleHelpers:
    def test_gram_keeps_inputs_unchanged(self, rng):
        """The cached-diagonal ridge must not alias caller data."""
        Y = rng.standard_normal((9, 4))
        Y0 = Y.copy()
        g1 = assemble_gram(Y, np.array([1, 3, 8]), 0.5)
        g2 = assemble_gram(Y, np.array([1, 3, 8]), 0.5)
        np.testing.assert_array_equal(Y, Y0)
        np.testing.assert_allclose(g1, g2)
        np.testing.assert_allclose(
            g1, Y[[1, 3, 8]].T @ Y[[1, 3, 8]] + 0.5 * np.eye(4)
        )

    def test_no_copy_for_float64_contiguous(self, rng):
        from repro.linalg.normal_equations import _as_float

        Y = np.ascontiguousarray(rng.standard_normal((5, 3)))
        assert _as_float(Y, np.dtype(np.float64)) is Y
        Y32 = Y.astype(np.float32)
        assert _as_float(Y32, np.dtype(np.float32)) is Y32
        assert _as_float(Y32, np.dtype(np.float64)) is not Y32
