"""Tests for Gaussian elimination and normal-equation assembly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    assemble_gram,
    assemble_rhs,
    batched_gaussian_solve,
    batched_normal_equations,
    gaussian_solve,
)
from repro.sparse import CSRMatrix


class TestGaussian:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((8, 8)) + 8 * np.eye(8)
        b = rng.standard_normal(8)
        np.testing.assert_allclose(gaussian_solve(a, b), np.linalg.solve(a, b), rtol=1e-9)

    def test_needs_pivoting(self):
        # Zero leading pivot forces a row swap.
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = np.array([2.0, 3.0])
        np.testing.assert_allclose(gaussian_solve(a, b), [3.0, 2.0])

    def test_singular_rejected(self):
        with pytest.raises(np.linalg.LinAlgError):
            gaussian_solve(np.ones((2, 2)), np.ones(2))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            gaussian_solve(np.ones((2, 3)), np.ones(2))

    def test_rhs_length_checked(self):
        with pytest.raises(ValueError):
            gaussian_solve(np.eye(3), np.ones(2))

    def test_inputs_not_mutated(self, rng):
        a = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        b = rng.standard_normal(5)
        a0, b0 = a.copy(), b.copy()
        gaussian_solve(a, b)
        np.testing.assert_array_equal(a, a0)
        np.testing.assert_array_equal(b, b0)

    def test_batched_matches_scalar(self, rng):
        stack = rng.standard_normal((6, 5, 5)) + 5 * np.eye(5)
        rhs = rng.standard_normal((6, 5))
        out = batched_gaussian_solve(stack, rhs)
        for i in range(6):
            np.testing.assert_allclose(out[i], gaussian_solve(stack[i], rhs[i]), rtol=1e-8)

    def test_batched_with_pivot_swaps(self):
        a = np.array([[[0.0, 1.0], [1.0, 0.0]], [[2.0, 0.0], [0.0, 2.0]]])
        b = np.array([[2.0, 3.0], [4.0, 6.0]])
        np.testing.assert_allclose(
            batched_gaussian_solve(a, b), [[3.0, 2.0], [2.0, 3.0]]
        )

    def test_batched_shape_checks(self):
        with pytest.raises(ValueError):
            batched_gaussian_solve(np.ones((2, 2, 3)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            batched_gaussian_solve(np.eye(2)[None], np.ones((2, 2)))


class TestNormalEquations:
    def test_gram_definition(self, rng):
        Y = rng.standard_normal((9, 4))
        cols = np.array([1, 3, 8])
        g = assemble_gram(Y, cols, 0.5)
        np.testing.assert_allclose(g, Y[cols].T @ Y[cols] + 0.5 * np.eye(4))

    def test_rhs_definition(self, rng):
        Y = rng.standard_normal((9, 4))
        cols = np.array([0, 2])
        r = np.array([5.0, 3.0])
        np.testing.assert_allclose(assemble_rhs(Y, cols, r), Y[cols].T @ r)

    def test_batched_matches_per_row(self, small_ratings, rng):
        Y = rng.standard_normal((small_ratings.ncols, 5))
        A, b = batched_normal_equations(small_ratings, Y, 0.1)
        for u in range(small_ratings.nrows):
            cols, vals = small_ratings.row_slice(u)
            np.testing.assert_allclose(A[u], assemble_gram(Y, cols, 0.1), rtol=1e-8)
            np.testing.assert_allclose(
                b[u], assemble_rhs(Y, cols, vals), rtol=1e-8, atol=1e-10
            )

    def test_empty_row_gets_lambda_identity(self):
        dense = np.zeros((3, 4), dtype=np.float32)
        dense[0, 1] = 2.0
        R = CSRMatrix.from_dense(dense)
        Y = np.ones((4, 3))
        A, b = batched_normal_equations(R, Y, 0.7)
        np.testing.assert_allclose(A[1], 0.7 * np.eye(3))
        np.testing.assert_allclose(b[1], np.zeros(3))

    def test_shape_mismatch_rejected(self, small_ratings, rng):
        with pytest.raises(ValueError):
            batched_normal_equations(small_ratings, rng.standard_normal((3, 5)), 0.1)

    def test_duplicate_ratings_summed_consistently(self, rng):
        # A row with repeated column patterns accumulates outer products.
        dense = np.array([[2.0, 3.0, 0.0]], dtype=np.float32)
        R = CSRMatrix.from_dense(dense)
        Y = rng.standard_normal((3, 2))
        A, b = batched_normal_equations(R, Y, 0.0)
        expect = np.outer(Y[0], Y[0]) + np.outer(Y[1], Y[1])
        np.testing.assert_allclose(A[0], expect, rtol=1e-8)


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_gaussian_residual(k, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((k, k)) + (k + 1) * np.eye(k)
    b = rng.standard_normal(k)
    x = gaussian_solve(a, b)
    np.testing.assert_allclose(a @ x, b, rtol=1e-7, atol=1e-8)
