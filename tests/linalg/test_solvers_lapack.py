"""Tests for the S3 solver registry and the LAPACK-class batched solve."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    CholeskyError,
    SOLVER_MODES,
    SOLVERS,
    as_float64_stack,
    batched_cholesky_solve,
    batched_gaussian_solve,
    batched_lapack_solve,
    configure_solver,
    lapack_cholesky_factor,
    resolve_solver,
    solver_fn,
)
from repro.obs import metrics as obs_metrics
from repro.obs.spans import capture


def spd_stack(
    rng: np.random.Generator, batch: int, k: int, lam: float = 0.1
) -> tuple[np.ndarray, np.ndarray]:
    """An ALS-shaped stack of normal equations ``WᵀW + λI``, with RHS."""
    W = rng.standard_normal((batch, k + 3, k))
    A = W.transpose(0, 2, 1) @ W
    idx = np.arange(k)
    A[:, idx, idx] += lam
    return A, rng.standard_normal((batch, k))


@pytest.fixture(autouse=True)
def _reset_configured_solver():
    yield
    configure_solver(None)


class TestVariantAgreement:
    """The three variants are code variants of ONE solve: same answer."""

    @pytest.mark.parametrize("k", [1, 10, 64])
    def test_all_variants_agree(self, rng, k):
        A, b = spd_stack(rng, 17, k)
        x_ref = batched_cholesky_solve(A, b)
        np.testing.assert_allclose(
            batched_lapack_solve(A, b), x_ref, rtol=1e-10, atol=1e-10
        )
        np.testing.assert_allclose(
            batched_gaussian_solve(A, b), x_ref, rtol=1e-10, atol=1e-10
        )

    @pytest.mark.parametrize("batch", [1, 2, 7, 257])
    def test_skewed_batch_sizes(self, rng, batch):
        A, b = spd_stack(rng, batch, 11)
        np.testing.assert_allclose(
            batched_lapack_solve(A, b),
            batched_cholesky_solve(A, b),
            rtol=1e-10,
            atol=1e-10,
        )

    def test_near_singular_systems(self, rng):
        # λ barely above machine noise: conditioning is poor but all
        # variants must still agree on the (well-defined) solution.
        A, b = spd_stack(rng, 9, 8, lam=1e-8)
        x_ref = batched_cholesky_solve(A, b)
        x_lap = batched_lapack_solve(A, b)
        residual_ref = np.einsum("bij,bj->bi", A, x_ref) - b
        residual_lap = np.einsum("bij,bj->bi", A, x_lap) - b
        np.testing.assert_allclose(residual_lap, residual_ref, atol=1e-5)

    def test_solves_the_system(self, rng):
        A, b = spd_stack(rng, 13, 20)
        x = batched_lapack_solve(A, b)
        np.testing.assert_allclose(
            np.einsum("bij,bj->bi", A, x), b, rtol=1e-8, atol=1e-8
        )


class TestLapackFactor:
    def test_matches_numpy(self, rng):
        A, _ = spd_stack(rng, 6, 9)
        np.testing.assert_allclose(
            lapack_cholesky_factor(A), np.linalg.cholesky(A), rtol=1e-12
        )

    def test_indefinite_member_reported_by_index(self, rng):
        A, _ = spd_stack(rng, 4, 3)
        A[2] = -np.eye(3)
        with pytest.raises(CholeskyError, match="matrix 2"):
            lapack_cholesky_factor(A)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="batch, k, k"):
            lapack_cholesky_factor(np.ones((2, 3, 4)))


class TestFallback:
    def test_one_bad_system_does_not_abort_the_batch(self, rng):
        A, b = spd_stack(rng, 5, 4)
        A[3] = -np.eye(4)  # indefinite: the batched dpotrf rejects the stack
        x = batched_lapack_solve(A, b)
        good = [0, 1, 2, 4]
        np.testing.assert_allclose(
            x[good],
            batched_cholesky_solve(A[good], b[good]),
            rtol=1e-10,
            atol=1e-10,
        )
        # the bad system got the least-squares answer, not garbage
        np.testing.assert_allclose(
            x[3], np.linalg.lstsq(A[3], b[3], rcond=None)[0], rtol=1e-10
        )

    def test_fallback_counted_in_metrics(self, rng):
        A, b = spd_stack(rng, 4, 3)
        A[1] = -np.eye(3)
        obs_metrics.reset()
        with capture():
            batched_lapack_solve(A, b)
        counters = obs_metrics.snapshot()["counters"]
        assert counters["solver.lapack.fallback_systems"] == 1.0

    def test_fallback_disabled_raises_like_reference(self, rng):
        A, b = spd_stack(rng, 4, 3)
        A[1] = -np.eye(3)
        with pytest.raises(CholeskyError, match="matrix 1"):
            batched_lapack_solve(A, b, fallback=False)

    def test_shape_validation(self, rng):
        A, b = spd_stack(rng, 3, 4)
        with pytest.raises(ValueError, match="rhs"):
            batched_lapack_solve(A, b[:, :3])
        with pytest.raises(ValueError, match="batch, k, k"):
            batched_lapack_solve(np.ones((2, 3, 4)), np.ones((2, 3)))


class TestAsFloat64Stack:
    """Satellite of PR 3: validation must not copy already-conforming input."""

    def test_float64_contiguous_returned_unchanged(self, rng):
        a = rng.standard_normal((4, 3, 3))
        assert as_float64_stack(a, 3) is a

    def test_float32_converted(self, rng):
        a = rng.standard_normal((4, 3, 3)).astype(np.float32)
        out = as_float64_stack(a, 3)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, a)

    def test_fortran_order_made_contiguous(self, rng):
        a = np.asfortranarray(rng.standard_normal((4, 3, 3)))
        out = as_float64_stack(a, 3)
        assert out.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(out, a)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError, match="3-D"):
            as_float64_stack(np.ones((2, 2)), 3)


class TestRegistryAndResolution:
    def test_registry_covers_concrete_modes(self):
        assert set(SOLVERS) == set(SOLVER_MODES) - {"auto"}

    def test_solver_fn_unknown_name(self):
        with pytest.raises(ValueError, match="newton"):
            solver_fn("newton")

    def test_resolve_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "gaussian")
        configure_solver("cholesky")
        assert resolve_solver("lapack") == "lapack"

    def test_resolve_configured_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "gaussian")
        configure_solver("lapack")
        assert resolve_solver() == "lapack"

    def test_resolve_env_beats_legacy_bool(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "lapack")
        assert resolve_solver(cholesky=False) == "lapack"

    def test_resolve_legacy_bool_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        assert resolve_solver() == "cholesky"
        assert resolve_solver(cholesky=False) == "gaussian"

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            resolve_solver("qr")
        with pytest.raises(ValueError):
            configure_solver("qr")


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=12),
    k=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
    lam=st.floats(min_value=1e-4, max_value=10.0),
)
def test_property_lapack_matches_reference(batch, k, seed, lam):
    """For any ALS-shaped stack, lapack and the reference agree to 1e-10."""
    rng = np.random.default_rng(seed)
    A, b = spd_stack(rng, batch, k, lam)
    np.testing.assert_allclose(
        batched_lapack_solve(A, b),
        batched_cholesky_solve(A, b),
        rtol=1e-10,
        atol=1e-10,
    )
