"""Tests for the from-scratch Cholesky factorization and solves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    CholeskyError,
    backward_substitution,
    batched_cholesky_factor,
    batched_cholesky_solve,
    cholesky_factor,
    cholesky_solve,
    forward_substitution,
)


def random_spd(rng: np.random.Generator, k: int, lam: float = 0.1) -> np.ndarray:
    """Random SPD matrix shaped like an ALS normal matrix YᵀY + λI."""
    Y = rng.standard_normal((k + 3, k))
    return Y.T @ Y + lam * np.eye(k)


class TestScalarCholesky:
    def test_factor_reconstructs(self, rng):
        a = random_spd(rng, 8)
        L = cholesky_factor(a)
        np.testing.assert_allclose(L @ L.T, a, rtol=1e-10, atol=1e-10)

    def test_factor_is_lower_triangular(self, rng):
        L = cholesky_factor(random_spd(rng, 6))
        np.testing.assert_array_equal(np.triu(L, 1), np.zeros((6, 6)))

    def test_matches_numpy(self, rng):
        a = random_spd(rng, 10)
        np.testing.assert_allclose(cholesky_factor(a), np.linalg.cholesky(a), rtol=1e-9)

    def test_1x1(self):
        np.testing.assert_allclose(cholesky_factor([[4.0]]), [[2.0]])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            cholesky_factor(np.ones((2, 3)))

    def test_indefinite_rejected(self):
        with pytest.raises(CholeskyError):
            cholesky_factor(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_zero_matrix_rejected(self):
        with pytest.raises(CholeskyError):
            cholesky_factor(np.zeros((3, 3)))

    def test_solve_matches_numpy(self, rng):
        a = random_spd(rng, 10)
        b = rng.standard_normal(10)
        np.testing.assert_allclose(cholesky_solve(a, b), np.linalg.solve(a, b), rtol=1e-8)

    def test_triangular_substitutions(self, rng):
        L = np.tril(rng.standard_normal((7, 7))) + 7 * np.eye(7)
        b = rng.standard_normal(7)
        np.testing.assert_allclose(L @ forward_substitution(L, b), b, rtol=1e-9)
        np.testing.assert_allclose(
            L.T @ backward_substitution(L.T, b), b, rtol=1e-9
        )


class TestBatchedCholesky:
    def test_matches_scalar(self, rng):
        stack = np.stack([random_spd(rng, 5) for _ in range(9)])
        Ls = batched_cholesky_factor(stack)
        for i in range(9):
            np.testing.assert_allclose(Ls[i], cholesky_factor(stack[i]), rtol=1e-10)

    def test_solve_matches_numpy(self, rng):
        stack = np.stack([random_spd(rng, 6) for _ in range(12)])
        b = rng.standard_normal((12, 6))
        x = batched_cholesky_solve(stack, b)
        np.testing.assert_allclose(
            x, np.linalg.solve(stack, b[..., None])[..., 0], rtol=1e-8
        )

    def test_batch_of_one(self, rng):
        a = random_spd(rng, 4)[None]
        b = rng.standard_normal((1, 4))
        np.testing.assert_allclose(
            batched_cholesky_solve(a, b)[0], np.linalg.solve(a[0], b[0]), rtol=1e-8
        )

    def test_bad_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            batched_cholesky_factor(np.ones((2, 3, 4)))
        with pytest.raises(ValueError):
            batched_cholesky_solve(np.eye(3)[None], np.ones(3))

    def test_indefinite_member_reported(self, rng):
        stack = np.stack([random_spd(rng, 3), -np.eye(3)])
        with pytest.raises(CholeskyError, match="matrix 1"):
            batched_cholesky_factor(stack)

    def test_identity_stack(self):
        stack = np.broadcast_to(np.eye(4), (5, 4, 4)).copy()
        np.testing.assert_allclose(batched_cholesky_factor(stack), stack)


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
    lam=st.floats(min_value=1e-3, max_value=10.0),
)
def test_property_solve_residual(k, seed, lam):
    """For any ALS-shaped SPD system, the residual must vanish."""
    rng = np.random.default_rng(seed)
    a = random_spd(rng, k, lam)
    b = rng.standard_normal(k)
    x = cholesky_solve(a, b)
    np.testing.assert_allclose(a @ x, b, rtol=1e-6, atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=8),
    k=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_batched_equals_scalar(batch, k, seed):
    rng = np.random.default_rng(seed)
    stack = np.stack([random_spd(rng, k) for _ in range(batch)])
    rhs = rng.standard_normal((batch, k))
    batched = batched_cholesky_solve(stack, rhs)
    scalar = np.stack([cholesky_solve(stack[i], rhs[i]) for i in range(batch)])
    np.testing.assert_allclose(batched, scalar, rtol=1e-9, atol=1e-9)
