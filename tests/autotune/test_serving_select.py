"""Tests for the serving-config autotuner (measure → pick → cache)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.autotune.serving as serving_auto
from repro.autotune import (
    ServingDecision,
    clear_serving_cache,
    cached_serving_decisions,
    measure_serving,
    select_serving,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_serving_cache()
    yield
    clear_serving_cache()


FAST_GRID = dict(tile_candidates=(1 << 18, 1 << 20), repeats=1)


class TestMeasureServing:
    def test_probes_full_grid_and_picks_winner(self):
        decision = measure_serving(300, 8, **FAST_GRID)
        assert set(decision.users_per_sec) == {
            (tile, dtype)
            for tile in FAST_GRID["tile_candidates"]
            for dtype in ("float32", "float64")
        }
        assert (decision.tile_bytes, decision.dtype) == max(
            decision.users_per_sec, key=decision.users_per_sec.get
        )
        assert decision.speedup >= 1.0
        assert decision.n_bucket == 512

    def test_valid_engine_config(self):
        """The verdict must be directly usable as engine knobs."""
        from repro.serving.engine import SERVE_DTYPES, TopNEngine

        decision = measure_serving(150, 4, **FAST_GRID)
        assert decision.dtype in SERVE_DTYPES
        rng = np.random.default_rng(0)
        engine = TopNEngine(
            rng.standard_normal((10, 4)),
            rng.standard_normal((150, 4)),
            tile_bytes=decision.tile_bytes,
            dtype=decision.dtype,
        )
        assert engine.query(np.arange(10), n=5).items.shape == (10, 5)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            measure_serving(0, 4)
        with pytest.raises(ValueError):
            measure_serving(100, -1)
        with pytest.raises(ValueError):
            measure_serving(100, 4, repeats=0)


class TestSelectServing:
    def test_caches_per_bucket(self, monkeypatch):
        calls = []
        real = serving_auto.measure_serving

        def counting(n_items, k, **kwargs):
            calls.append((n_items, k))
            return real(n_items, k, **FAST_GRID)

        monkeypatch.setattr(serving_auto, "measure_serving", counting)
        first = select_serving(300, 8)
        again = select_serving(300, 8)
        assert again is first
        # 290 hashes to the same power-of-two bucket as 300 -> cache hit
        assert select_serving(290, 8) is first
        assert len(calls) == 1
        # different k or a different bucket re-measures
        select_serving(300, 4)
        select_serving(1100, 8)
        assert len(calls) == 3

    def test_cached_decisions_enumerable(self, monkeypatch):
        def canned(n_items, k, **kwargs):
            return ServingDecision(
                tile_bytes=1 << 20,
                dtype="float32",
                users_per_sec={(1 << 20, "float32"): 1.0},
                n_items=n_items,
                k=k,
                n_bucket=serving_auto._n_bucket(n_items),
            )

        monkeypatch.setattr(serving_auto, "measure_serving", canned)
        select_serving(64, 2)
        select_serving(64, 3)
        decisions = cached_serving_decisions()
        assert len(decisions) == 2
        assert all(isinstance(d, ServingDecision) for d in decisions)
