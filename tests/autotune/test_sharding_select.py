"""Measured shard-budget selection: candidate dedup, caching, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.sharding import (
    SHARD_CANDIDATES,
    ShardingDecision,
    cached_sharding_decisions,
    clear_sharding_cache,
    measure_sharding,
    select_sharding,
)
from repro.datasets.catalog import DatasetSpec
from repro.datasets.shardio import build_shard_store
from repro.datasets.synthetic import generate_ratings
from repro.sparse.shards import MIN_SHARD_BYTES, ShardStore

_SPEC = DatasetSpec(
    name="tune", abbr="TUNE", m=400, n=60, nnz=5000,
    row_alpha=0.9, col_alpha=0.9, rating_min=1.0, rating_max=5.0,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    dest = tmp_path_factory.mktemp("tune") / "s"
    build_shard_store(dest, generate_ratings(_SPEC, seed=2))
    return ShardStore.open(dest)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_sharding_cache()
    yield
    clear_sharding_cache()


class TestMeasure:
    def test_returns_a_winner_among_candidates(self, store):
        decision = measure_sharding(store, k=4)
        assert decision.shard_bytes in decision.seconds
        assert decision.shard_bytes == min(
            decision.seconds, key=decision.seconds.get
        )
        assert decision.nnz == store.nnz
        assert decision.speedup >= 1.0

    def test_degenerate_plans_are_measured_once(self, store):
        # The store is tiny: every candidate collapses to one resident
        # shard, so exactly one measurement should remain after dedup.
        decision = measure_sharding(store, k=4)
        assert set(decision.shards.values()) == {1}
        assert len(decision.seconds) == 1

    def test_validation(self, store):
        with pytest.raises(ValueError, match="k must be positive"):
            measure_sharding(store, k=0)
        with pytest.raises(ValueError, match="repeats"):
            measure_sharding(store, k=4, repeats=0)
        with pytest.raises(ValueError, match="non-empty"):
            measure_sharding(store, k=4, candidates=())
        with pytest.raises(ValueError, match="candidate budgets"):
            measure_sharding(store, k=4, candidates=(MIN_SHARD_BYTES - 1,))

    def test_candidate_grid_is_sane(self):
        assert all(b >= MIN_SHARD_BYTES for b in SHARD_CANDIDATES)
        assert list(SHARD_CANDIDATES) == sorted(SHARD_CANDIDATES)


class TestSelect:
    def test_caches_per_context(self, store):
        first = select_sharding(store, k=4)
        second = select_sharding(store, k=4)
        assert second is first  # same (k, nnz-bucket) → cached verdict
        other = select_sharding(store, k=5)
        assert other is not first
        assert len(cached_sharding_decisions()) == 2

    def test_clear_forgets(self, store):
        select_sharding(store, k=4)
        clear_sharding_cache()
        assert cached_sharding_decisions() == ()
