"""Tests for the empirical S3 solver selector (§III-D applied to S3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.solver import (
    MAX_PROBE_BATCH,
    SolverDecision,
    _batch_bucket,
    cached_solver_decisions,
    clear_solver_cache,
    measure_solvers,
    select_solver,
)
from repro.kernels.fastpath import fast_half_sweep
from repro.linalg.solvers import SOLVERS
from repro.obs import metrics as obs_metrics
from repro.obs.spans import capture
from tests.conftest import random_rating_matrix


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_solver_cache()
    yield
    clear_solver_cache()


class TestBatchBucket:
    def test_powers_of_two(self):
        assert _batch_bucket(1) == 1
        assert _batch_bucket(2) == 2
        assert _batch_bucket(3) == 4
        assert _batch_bucket(1000) == 1024
        assert _batch_bucket(1024) == 1024
        assert _batch_bucket(1025) == 2048

    def test_neighbors_share_a_bucket(self):
        assert _batch_bucket(700) == _batch_bucket(900)


class TestMeasure:
    def test_times_every_registered_variant(self):
        decision = measure_solvers(k=4, batch=16, repeats=1)
        assert set(decision.seconds) == set(SOLVERS)
        assert all(s > 0 for s in decision.seconds.values())

    def test_winner_is_the_fastest(self):
        decision = measure_solvers(k=4, batch=16, repeats=1)
        assert decision.solver == min(decision.seconds, key=decision.seconds.get)
        assert decision.speedup >= 1.0

    def test_probe_batch_capped(self):
        decision = measure_solvers(k=2, batch=100_000, repeats=1)
        assert decision.probe_batch == MAX_PROBE_BATCH
        assert decision.batch_bucket == _batch_bucket(100_000)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            measure_solvers(k=0, batch=4)
        with pytest.raises(ValueError):
            measure_solvers(k=4, batch=0)
        with pytest.raises(ValueError):
            measure_solvers(k=4, batch=4, repeats=0)


class TestSelect:
    def test_returns_a_registered_name(self):
        assert select_solver(k=4, batch=32) in SOLVERS

    def test_verdict_cached_per_context(self):
        select_solver(k=4, batch=33)
        assert len(cached_solver_decisions()) == 1
        select_solver(k=4, batch=40)  # same bucket (64): no re-measure
        assert len(cached_solver_decisions()) == 1
        select_solver(k=4, batch=200)  # new bucket
        select_solver(k=5, batch=33)  # new k
        assert len(cached_solver_decisions()) == 3

    def test_cached_decisions_are_decisions(self):
        select_solver(k=4, batch=32)
        (decision,) = cached_solver_decisions()
        assert isinstance(decision, SolverDecision)
        assert decision.k == 4
        assert decision.batch_bucket == 32  # already a power of two

    def test_clear_cache(self):
        select_solver(k=4, batch=32)
        clear_solver_cache()
        assert cached_solver_decisions() == ()

    def test_measurements_counted(self):
        obs_metrics.reset()
        with capture():
            select_solver(k=4, batch=32)
            select_solver(k=4, batch=32)  # cache hit: not re-counted
        counters = obs_metrics.snapshot()["counters"]
        assert counters["solver.auto.measurements"] == 1.0
        chose = [c for c in counters if c.startswith("solver.auto.chose_")]
        assert len(chose) == 1 and counters[chose[0]] == 1.0


class TestAutoInTheSweep:
    def test_auto_solver_end_to_end(self, rng):
        R = random_rating_matrix(rng, m=20, n=15, density=0.4)
        Y = rng.standard_normal((R.ncols, 4))
        X_auto = fast_half_sweep(R, Y, 0.1, solver="auto")
        X_ref = fast_half_sweep(R, Y, 0.1, solver="cholesky")
        np.testing.assert_allclose(X_auto, X_ref, rtol=1e-9, atol=1e-9)
        assert len(cached_solver_decisions()) == 1
