"""Tests for the empirical scatter-vs-binned assembly selector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune import assembly as asm
from repro.sparse import CSRMatrix


@pytest.fixture(autouse=True)
def _fresh_cache():
    asm.clear_decision_cache()
    yield
    asm.clear_decision_cache()


def _matrix(rng, m=40, n=25, density=0.4):
    dense = np.where(
        rng.random((m, n)) < density,
        rng.integers(1, 6, size=(m, n)).astype(np.float32),
        0.0,
    )
    return CSRMatrix.from_dense(dense.astype(np.float32))


class TestMeasure:
    def test_decision_is_well_formed(self, rng):
        R = _matrix(rng)
        d = asm.measure_assembly(R, k=4)
        assert d.mode in ("binned", "scatter")
        assert d.binned_seconds > 0 and d.scatter_seconds > 0
        assert d.speedup >= 1.0
        assert d.sample_rows == R.nrows  # small matrix: no subsampling
        assert d.sample_nnz == R.nnz

    def test_sample_is_bounded(self, rng):
        R = _matrix(rng, m=200, n=30, density=0.5)
        d = asm.measure_assembly(R, k=4, sample_nnz=100)
        assert d.sample_nnz <= 100 + 30  # one row may overshoot the cut
        assert d.sample_rows < R.nrows

    def test_invalid_args_rejected(self, rng):
        R = _matrix(rng)
        with pytest.raises(ValueError):
            asm.measure_assembly(R, k=0)
        with pytest.raises(ValueError):
            asm.measure_assembly(R, k=4, repeats=0)


class TestSelect:
    def test_verdict_cached_per_context(self, rng, monkeypatch):
        R = _matrix(rng)
        mode = asm.select_assembly(R, k=4)
        assert mode in ("binned", "scatter")
        calls = {"n": 0}
        real = asm.measure_assembly

        def counting(*a, **kw):
            calls["n"] += 1
            return real(*a, **kw)

        monkeypatch.setattr(asm, "measure_assembly", counting)
        assert asm.select_assembly(R, k=4) == mode  # cache hit: no re-measure
        assert calls["n"] == 0
        asm.select_assembly(R, k=5)  # different k = different context
        assert calls["n"] == 1

    def test_clear_cache_forces_remeasure(self, rng, monkeypatch):
        R = _matrix(rng)
        asm.select_assembly(R, k=4)
        asm.clear_decision_cache()
        calls = {"n": 0}
        real = asm.measure_assembly

        def counting(*a, **kw):
            calls["n"] += 1
            return real(*a, **kw)

        monkeypatch.setattr(asm, "measure_assembly", counting)
        asm.select_assembly(R, k=4)
        assert calls["n"] == 1
