"""Tests for the empirical iALS++ block-width selector."""

from __future__ import annotations

import math

import pytest

from repro.autotune.blocks import (
    BlockDecision,
    _nnz_bucket,
    block_candidates,
    cached_block_decisions,
    clear_block_cache,
    measure_blocks,
    select_block_size,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_block_cache()
    yield
    clear_block_cache()


class TestCandidates:
    def test_always_includes_full_width(self):
        for k in (4, 8, 64, 128):
            assert block_candidates(k)[-1] == k

    def test_only_narrower_widths_otherwise(self):
        cands = block_candidates(64)
        assert all(d < 64 for d in cands[:-1])
        assert len(cands) <= 5

    def test_tiny_k_degenerates_to_full(self):
        assert block_candidates(4) == (4,)

    def test_bucket_rounds_up_to_powers_of_two(self):
        assert _nnz_bucket(3) == 4
        assert _nnz_bucket(64) == 64
        assert _nnz_bucket(65) == 128
        assert _nnz_bucket(10**6) == 1024  # capped


class TestMeasure:
    def test_times_every_candidate(self):
        decision = measure_blocks(
            8, 8, iterations=2, probe_rows=96, seed=1
        )
        assert isinstance(decision, BlockDecision)
        assert set(decision.seconds_to_target) == set(block_candidates(8))
        assert decision.block_size in decision.seconds_to_target

    def test_winner_reached_the_shared_target(self):
        decision = measure_blocks(8, 8, iterations=2, probe_rows=96, seed=1)
        assert math.isfinite(decision.seconds_to_target[decision.block_size])
        assert decision.speedup > 0


class TestSelect:
    def test_caches_per_shape(self):
        first = select_block_size(8, nnz_per_row=8)
        again = select_block_size(8, nnz_per_row=8)
        assert first == again
        assert len(cached_block_decisions()) == 1

    def test_clear_empties_cache(self):
        select_block_size(8, nnz_per_row=8)
        clear_block_cache()
        assert cached_block_decisions() == ()

    def test_nearby_shapes_share_a_bucket(self):
        select_block_size(8, nnz_per_row=60)
        select_block_size(8, nnz_per_row=64)
        assert len(cached_block_decisions()) == 1
