"""Tests for empirical variant search and the learned selector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune import (
    FEATURE_NAMES,
    VariantSelector,
    WS_CANDIDATES,
    context_features,
    exhaustive_search,
)
from repro.clsim import (
    ALL_DEVICES,
    INTEL_XEON_E5_2670_X2 as CPU,
    INTEL_XEON_PHI_31SP as MIC,
    NVIDIA_TESLA_K20C as GPU,
)
from repro.clsim.costmodel import CostModel
from repro.datasets import NETFLIX, YAHOO_R1, YAHOO_R4, degree_sequences


@pytest.fixture(scope="module")
def seqs():
    return {
        s.abbr: degree_sequences(s, seed=7) for s in (NETFLIX, YAHOO_R1, YAHOO_R4)
    }


class TestExhaustiveSearch:
    def test_covers_full_grid(self, seqs):
        rows, cols = seqs["YMR4"]
        result = exhaustive_search(GPU, rows, cols)
        assert len(result.table) == 8 * len(WS_CANDIDATES)

    def test_best_is_table_minimum(self, seqs):
        rows, cols = seqs["YMR4"]
        result = exhaustive_search(CPU, rows, cols)
        assert result.best_seconds == pytest.approx(min(result.table.values()))
        assert result.table[result.best_variant.name, result.best_ws] == result.best_seconds

    def test_gpu_best_uses_registers_and_local(self, seqs):
        """§V: the GPU winner combines registers + local memory."""
        rows, cols = seqs["NTFX"]
        result = exhaustive_search(GPU, rows, cols)
        assert result.best_variant.flags.registers
        assert result.best_variant.flags.local_mem
        assert result.best_ws in (16, 32)

    def test_cpu_best_avoids_registers(self, seqs):
        """§V-B: registers+local degrade on the CPU."""
        rows, cols = seqs["NTFX"]
        result = exhaustive_search(CPU, rows, cols)
        assert result.best_variant.flags.local_mem
        assert not result.best_variant.flags.registers

    def test_mic_ws_optimum_depends_on_dataset(self, seqs):
        """Fig. 10: YMR4 → ws 8, YMR1 → ws 16 on the MIC."""
        small = exhaustive_search(MIC, *seqs["YMR4"])
        large = exhaustive_search(MIC, *seqs["YMR1"])
        assert small.best_ws == 8
        assert large.best_ws == 16

    def test_ranking_sorted(self, seqs):
        result = exhaustive_search(GPU, *seqs["YMR4"])
        times = [t for _, _, t in result.ranking()]
        assert times == sorted(times)
        assert result.speedup_over_worst() > 1.0

    def test_empty_candidates_rejected(self, seqs):
        with pytest.raises(ValueError):
            exhaustive_search(GPU, *seqs["YMR4"], ws_candidates=())


class TestFeatures:
    def test_feature_vector_shape(self, seqs):
        feats = context_features(GPU, *seqs["YMR4"])
        assert feats.shape == (len(FEATURE_NAMES),)
        assert np.isfinite(feats).all()

    def test_device_features_differ(self, seqs):
        a = context_features(GPU, *seqs["YMR4"])
        b = context_features(CPU, *seqs["YMR4"])
        assert not np.allclose(a, b)

    def test_dataset_features_differ(self, seqs):
        a = context_features(GPU, *seqs["YMR4"])
        b = context_features(GPU, *seqs["NTFX"])
        assert not np.allclose(a, b)

    def test_inconsistent_sequences_rejected(self, seqs):
        rows, cols = seqs["YMR4"]
        with pytest.raises(ValueError, match="nnz"):
            context_features(GPU, rows, cols[:-1])


class TestSelector:
    @pytest.fixture(scope="class")
    def selector(self, seqs):
        # Train on two datasets across devices, predict the third.
        contexts = []
        for abbr in ("NTFX", "YMR4"):
            rows, cols = seqs[abbr]
            for device in ALL_DEVICES:
                contexts.append((device, rows, cols))
        return VariantSelector(n_neighbors=1).fit(contexts)

    def test_predicts_near_optimal_on_held_out(self, seqs, selector):
        """The learned choice must be close to the exhaustive optimum."""
        rows, cols = seqs["YMR1"]
        for device in ALL_DEVICES:
            variant, ws = selector.predict(device, rows, cols)
            best = exhaustive_search(device, rows, cols)
            chosen = CostModel(device).training_time(
                rows, cols, 10, ws, variant.flags, 5
            )
            assert chosen <= 1.5 * best.best_seconds, device.name

    def test_respects_device_structure(self, seqs, selector):
        rows, cols = seqs["YMR1"]
        v_gpu, _ = selector.predict(GPU, rows, cols)
        v_cpu, _ = selector.predict(CPU, rows, cols)
        assert v_gpu.flags.registers
        assert not v_cpu.flags.registers

    def test_unfitted_rejects_predict(self, seqs):
        with pytest.raises(RuntimeError):
            VariantSelector().predict(GPU, *seqs["YMR4"])

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            VariantSelector().fit([])

    def test_invalid_neighbors(self):
        with pytest.raises(ValueError):
            VariantSelector(n_neighbors=0)
