"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_rating_matrix(
    rng: np.random.Generator,
    m: int = 24,
    n: int = 18,
    density: float = 0.25,
) -> CSRMatrix:
    """A small random rating matrix with ratings in [1, 5]."""
    mask = rng.random((m, n)) < density
    dense = np.where(mask, rng.integers(1, 6, size=(m, n)).astype(np.float32), 0.0)
    return CSRMatrix.from_dense(dense.astype(np.float32))


@pytest.fixture
def small_ratings(rng: np.random.Generator) -> CSRMatrix:
    return random_rating_matrix(rng)


@pytest.fixture
def paper_fig2_matrix() -> COOMatrix:
    """The 4×4 example of Fig. 2: 5 ratings out of 16 cells."""
    dense = np.array(
        [
            [1.0, 0.0, 0.0, 2.0],
            [0.0, 3.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [4.0, 0.0, 5.0, 0.0],
        ],
        dtype=np.float32,
    )
    return COOMatrix.from_dense(dense)
