"""The top-level acceptance test: every paper anchor must hold."""

from __future__ import annotations

import pytest

from repro.bench import collect_anchors, render_scorecard


@pytest.fixture(scope="module")
def anchors():
    return collect_anchors()


def test_every_anchor_holds(anchors):
    failed = [a for a in anchors if not a.holds]
    assert not failed, "\n".join(
        f"{a.experiment}: {a.description} (paper {a.paper}, measured {a.measured})"
        for a in failed
    )


def test_anchor_coverage(anchors):
    """Every paper artifact contributes at least one anchor."""
    experiments = {a.experiment for a in anchors}
    assert experiments >= {
        "table1",
        "fig1",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "ksweep",
    }
    assert len(anchors) >= 12


def test_scorecard_renders(anchors):
    text = render_scorecard(anchors)
    assert "anchors hold" in text
    assert "FAIL" not in text
