"""The shared BENCH record writer: envelope stamping and telemetry flags."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.bench.record import (
    SCHEMA_VERSION,
    add_telemetry_args,
    enable_telemetry_if_requested,
    host_fingerprint,
    resource_snapshot,
    stamp,
    write_record,
    write_telemetry,
)
from repro.obs import metrics as obs_metrics
from repro.obs import spans


@pytest.fixture(autouse=True)
def _clean_state():
    spans.disable()
    spans.clear()
    obs_metrics.reset()
    yield
    spans.disable()
    spans.clear()
    obs_metrics.reset()


class TestFingerprint:
    def test_has_the_gate_comparison_keys(self):
        fp = host_fingerprint()
        for key in ("cpu_count", "machine", "system", "blas"):
            assert fp[key] is not None
        assert fp["float_dtype_itemsize"] == 8
        json.dumps(fp)  # JSON-serializable


class TestStamp:
    def test_adds_envelope_without_mutating_input(self):
        payload = {"benchmark": "x", "speedup": 2.0}
        stamped = stamp(payload)
        assert stamped["schema_version"] == SCHEMA_VERSION
        assert stamped["host"] == host_fingerprint()
        assert "schema_version" not in payload

    def test_gauge_snapshot_travels_when_present(self):
        obs_metrics.get_registry().gauge("assembly.peak_tile_bytes").set(1234.0)
        stamped = stamp({"benchmark": "x"})
        assert stamped["gauges"]["assembly.peak_tile_bytes"] == 1234.0
        assert "gauges" not in stamp({"benchmark": "x"}, gauges=False)

    def test_existing_gauges_key_is_not_clobbered(self):
        obs_metrics.get_registry().gauge("g").set(1.0)
        stamped = stamp({"benchmark": "x", "gauges": {"mine": 7.0}})
        assert stamped["gauges"] == {"mine": 7.0}


class TestWriteRecord:
    def test_single_record_roundtrip(self, tmp_path):
        path = tmp_path / "bench.json"
        write_record(path, {"benchmark": "x", "speedup": 3.0})
        loaded = json.loads(path.read_text())
        assert loaded["speedup"] == 3.0
        assert loaded["schema_version"] == SCHEMA_VERSION

    def test_list_payload_stamps_every_record(self, tmp_path):
        path = tmp_path / "bench.json"
        write_record(path, [{"benchmark": "a"}, {"benchmark": "b"}])
        loaded = json.loads(path.read_text())
        assert [r["benchmark"] for r in loaded] == ["a", "b"]
        assert all(r["schema_version"] == SCHEMA_VERSION for r in loaded)

    def test_gate_reads_what_the_writer_writes(self, tmp_path):
        """The writer/gate pair agree on format end to end."""
        from repro.obs.gate import load_trajectory

        write_record(
            tmp_path / "BENCH_1.json",
            [{"benchmark": "s1s2_assembly", "speedup": 4.0}],
        )
        trajectory = load_trajectory(tmp_path)
        assert len(trajectory) == 1
        assert trajectory[0]["host"] == host_fingerprint()


class TestTelemetryFlags:
    def _parse(self, argv):
        parser = argparse.ArgumentParser()
        add_telemetry_args(parser)
        return parser.parse_args(argv)

    def test_flags_default_to_off(self, capsys, tmp_path):
        write_telemetry(self._parse([]))
        assert capsys.readouterr().out == ""

    def test_enable_only_when_artifacts_requested(self, tmp_path):
        assert not enable_telemetry_if_requested(self._parse([]))
        assert not spans.is_enabled()
        ns = self._parse(["--trace", str(tmp_path / "t.json")])
        assert enable_telemetry_if_requested(ns)
        assert spans.is_enabled()

    def test_metrics_and_trace_files_written(self, tmp_path, capsys):
        spans.enable()
        with spans.span("bench.section", stage="S1"):
            obs_metrics.inc("bench.calls")
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        ns = self._parse(
            ["--metrics", str(metrics_path), "--trace", str(trace_path)]
        )
        write_telemetry(ns, meta={"benchmark": "unit"})
        metrics = json.loads(metrics_path.read_text())
        assert metrics["metrics"]["counters"]["bench.calls"] == 1
        assert metrics["meta"]["benchmark"] == "unit"
        trace = json.loads(trace_path.read_text())
        assert any(
            ev.get("name") == "bench.section"
            for ev in trace["traceEvents"]
        )
        out = capsys.readouterr().out
        assert "metrics written" in out and "trace written" in out


class TestResources:
    def test_stamp_attaches_resource_envelope(self):
        stamped = stamp({"benchmark": "x"})
        res = stamped["resources"]
        assert res["cpu_seconds"] >= 0.0
        assert res["peak_rss_bytes"] > 0  # ru_maxrss is always readable here
        assert res["rss_bytes"] > 0

    def test_resources_opt_out_and_no_clobber(self):
        assert "resources" not in stamp({"benchmark": "x"}, resources=False)
        mine = {"peak_rss_bytes": 42}
        stamped = stamp({"benchmark": "x", "resources": mine})
        assert stamped["resources"] == mine

    def test_snapshot_is_json_serializable(self):
        json.dumps(resource_snapshot())
