"""Integration tests: every experiment runner reproduces its paper shape.

One test class per table/figure; together these are the acceptance tests
for the reproduction (the measured values are recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    run_fig1,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table1,
)
from repro.bench.report import format_bar, format_table
from repro.datasets import TABLE_I


@pytest.fixture(scope="module")
def fig1():
    return run_fig1()


@pytest.fixture(scope="module")
def fig6():
    return run_fig6()


@pytest.fixture(scope="module")
def fig7():
    return run_fig7()


@pytest.fixture(scope="module")
def fig9():
    return run_fig9()


@pytest.fixture(scope="module")
def fig10():
    return run_fig10()


class TestTable1:
    def test_generated_nnz_matches_spec(self):
        result = run_table1()
        for abbr, _, m, n, nnz_spec, nnz_rows, nnz_cols in result.rows:
            assert nnz_rows == nnz_spec
            assert nnz_cols == nnz_spec
        assert len(result.rows) == 4

    def test_render_contains_all_datasets(self):
        text = run_table1().render()
        for spec in TABLE_I:
            assert spec.abbr in text


class TestFig1:
    def test_cuda_slower_on_every_dataset(self, fig1):
        """Observation 1 (§II-C): baseline ALS runs faster on the CPU."""
        for abbr, ratio in fig1.ratios.items():
            assert ratio > 2.0, abbr

    def test_mean_ratio_same_order_as_paper(self, fig1):
        # Paper: 8.4× on average.  Calibration note (EXPERIMENTS.md): the
        # paper's own anchors are mutually inconsistent; we land the mean
        # in the same regime while matching Figs. 7/9 closely.
        assert 3.0 < fig1.mean_ratio < 12.0

    def test_render(self, fig1):
        assert "8.4" in fig1.render()


class TestFig6:
    def test_gpu_bar_ordering(self, fig6):
        """GPU: batching > +local > +local+register; vector ≈ neutral."""
        for abbr in ("MVLE", "NTFX", "YMR1"):
            bars = fig6.times[abbr]["gpu"]
            assert bars["thread batching"] > bars["+local memory"]
            assert bars["+local memory"] > bars["+local memory + register"]
            assert bars["+vector"] == pytest.approx(
                bars["+local memory + register"], rel=1e-6
            )

    def test_gpu_combined_speedup_up_to_2_6(self, fig6):
        ratios = [
            fig6.times[s.abbr]["gpu"]["thread batching"]
            / fig6.times[s.abbr]["gpu"]["+local memory + register"]
            for s in TABLE_I
        ]
        assert 2.2 < max(ratios) < 3.2  # paper: "by upto 2.6×"

    def test_cpu_mic_local_memory_boost(self, fig6):
        """§V-B: local memory helps on CPU (≤1.6×) and MIC (≤1.4×)."""
        for dev, cap in (("cpu", 1.9), ("mic", 1.7)):
            ratios = [
                fig6.times[s.abbr][dev]["thread batching"]
                / fig6.times[s.abbr][dev]["+local memory"]
                for s in TABLE_I
            ]
            assert all(r > 1.0 for r in ratios)
            assert 1.2 < max(ratios) < cap

    def test_cpu_mic_register_degradation(self, fig6):
        """§V-B: combining registers with local memory degrades CPU/MIC."""
        for dev in ("cpu", "mic"):
            for s in TABLE_I:
                bars = fig6.times[s.abbr][dev]
                assert (
                    bars["+local memory + register"] > bars["+local memory"]
                ), (dev, s.abbr)

    def test_render_mentions_every_dataset(self, fig6):
        text = fig6.render()
        for s in TABLE_I:
            assert s.abbr in text


class TestFig7:
    def test_cpu_speedup_near_5_5(self, fig7):
        mean = np.mean(list(fig7.vs_sac15_cpu.values()))
        assert 4.0 < mean < 7.5  # paper: 5.5×

    def test_gpu_speedup_near_21(self, fig7):
        mean = np.mean(list(fig7.vs_sac15_gpu.values()))
        assert 15.0 < mean < 28.0  # paper: 21.2×

    def test_cumf_range(self, fig7):
        values = list(fig7.vs_hpdc16_gpu.values())
        assert all(2.0 < v < 8.0 for v in values)  # paper: 2.2–6.8×

    def test_cumf_max_on_ymr4(self, fig7):
        """§V-A: "we achieve the largest speedup for YahooMusic R4"."""
        assert max(fig7.vs_hpdc16_gpu, key=fig7.vs_hpdc16_gpu.get) == "YMR4"

    def test_all_speedups_above_one(self, fig7):
        for d in (fig7.vs_sac15_cpu, fig7.vs_sac15_gpu, fig7.vs_hpdc16_gpu):
            assert all(v > 1.0 for v in d.values())


class TestFig8:
    def test_pipeline_story(self):
        result = run_fig8()
        profiles = {p.label: p for p in result.profiles}
        totals = [p.total_seconds for p in result.profiles]
        assert totals == sorted(totals, reverse=True)  # every stage helps
        # S1 is the hotspot after batching (§V-C: "around 70%").
        assert profiles["thread batching"].shares[0] > 0.5
        # After optimizing S1, S2's share rises (paper: S2 becomes the
        # most time-consuming step).
        assert (
            profiles["optimizing S1"].shares[1]
            > profiles["thread batching"].shares[1]
        )
        # After optimizing S2, S1 dominates again.
        s2opt = profiles["optimizing S2"].shares
        assert s2opt[0] > max(s2opt[1], s2opt[2])

    def test_render(self):
        text = run_fig8().render()
        assert "S1" in text and "Cholesky" in text


class TestFig9:
    def test_cpu_fastest_overall(self, fig9):
        slow = fig9.slowdowns()
        gpu_mean = np.mean([slow[a]["gpu"] for a in slow])
        mic_mean = np.mean([slow[a]["mic"] for a in slow])
        assert 1.0 <= gpu_mean < 2.0  # paper: 1.5×
        assert 3.0 < mic_mean < 5.5  # paper: 4.1×

    def test_gpu_wins_on_ymr1(self, fig9):
        """§V-D: "our ALS solver on the K20c GPU outperforms that on the
        16-core CPU" for YahooMusic R1."""
        s = fig9.seconds["YMR1"]
        assert s["gpu"] <= s["cpu"]

    def test_mic_slowest_everywhere(self, fig9):
        for abbr, per_dev in fig9.seconds.items():
            assert per_dev["mic"] == max(per_dev.values()), abbr


class TestFig10:
    def test_gpu_optimum_16_or_32(self, fig10):
        for abbr, per_dev in fig10.optima().items():
            assert per_dev["gpu"] in (16, 32), abbr

    def test_gpu_penalties_off_optimum(self, fig10):
        for s in TABLE_I:
            sweep = fig10.times[s.abbr]["gpu"]
            assert sweep[8] > sweep[16]
            assert sweep[64] > sweep[32]
            assert sweep[128] > sweep[64]

    def test_cpu_smaller_is_better(self, fig10):
        for s in TABLE_I:
            sweep = fig10.times[s.abbr]["cpu"]
            values = [sweep[ws] for ws in (8, 16, 32, 64, 128)]
            assert values == sorted(values), s.abbr

    def test_mic_optimum_dataset_dependent(self, fig10):
        """§V-E: YMR4 best at 8, YMR1 best at 16 on the MIC."""
        optima = fig10.optima()
        assert optima["YMR4"]["mic"] == 8
        assert optima["YMR1"]["mic"] == 16

    def test_render(self, fig10):
        assert "ws=128" in fig10.render()


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.25]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_bar(self):
        assert format_bar(5.0, 10.0, width=10) == "#####"
        assert format_bar(0.0, 10.0) == ""
        assert format_bar(1.0, 0.0) == ""
