"""Tests for the row-reordering extension experiment."""

from __future__ import annotations

import pytest

from repro.bench import EXPERIMENTS, run_reorder


@pytest.fixture(scope="module")
def result():
    return run_reorder()


def test_sorting_always_helps_flat(result):
    assert all(g > 1.5 for g in result.gains().values())


def test_lane_efficiency_restored(result):
    for abbr in result.efficiency_after:
        assert result.efficiency_after[abbr] > 0.9
        assert result.efficiency_before[abbr] < 0.5


def test_batching_still_beats_sorted_flat():
    """Sorting fixes divergence but not scattered access/spills — the
    paper's thread batching must still win."""
    from repro.datasets import NETFLIX, degree_sequences
    from repro.solvers import PortableALS
    from repro.clsim import NVIDIA_TESLA_K20C
    from repro.bench import run_reorder

    sorted_flat = run_reorder().sorted_s["NTFX"]
    ours = PortableALS(NVIDIA_TESLA_K20C).simulate(
        *degree_sequences(NETFLIX, seed=7)
    )
    assert ours.seconds < sorted_flat


def test_registered():
    assert "reorder" in EXPERIMENTS


def test_render(result):
    assert "lane eff" in result.render()
