"""Tests for the experiment-grid harness (config, execution, export, CLI)."""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.bench import grid
from repro.bench.grid import (
    GridError,
    expand_config,
    export_markdown,
    export_records,
    load_config,
    run_grid,
    run_single_cell,
)
from repro.bench.store import ResultsStore

SRC = Path(__file__).resolve().parents[2] / "src"


# ----------------------------------------------------------------------
# configs
# ----------------------------------------------------------------------

def test_expand_config_cartesian_product():
    cells = expand_config({
        "name": "g",
        "experiments": [
            {"benchmark": "b", "params": {"k": [8, 16], "scale": [0.5, 1.0]},
             "fixed": {"quick": True}},
        ],
    })
    assert len(cells) == 4
    assert all(name == "b" and params["quick"] for name, params in cells)
    assert {(p["k"], p["scale"]) for _, p in cells} == {
        (8, 0.5), (8, 1.0), (16, 0.5), (16, 1.0),
    }


def test_expand_config_dedups_and_validates():
    cells = expand_config({
        "name": "g",
        "experiments": [
            {"benchmark": "b", "params": {"k": [8, 8]}},  # duplicate axis value
            {"benchmark": "b", "fixed": {"k": 8}},        # same cell again
        ],
    })
    assert len(cells) == 1
    with pytest.raises(GridError, match="must be a list"):
        expand_config({
            "name": "g",
            "experiments": [{"benchmark": "b", "params": {"k": 8}}],
        })
    with pytest.raises(GridError, match="zero cells"):
        expand_config({"name": "g", "experiments": []})


def test_load_config_sources(tmp_path):
    assert load_config("ci-quick")["name"] == "ci-quick"
    path = tmp_path / "c.json"
    path.write_text(json.dumps({"name": "file", "experiments": []}))
    assert load_config(path)["name"] == "file"
    with pytest.raises(GridError, match="no grid config"):
        load_config(tmp_path / "missing.json")
    with pytest.raises(GridError, match="needs a top-level 'name'"):
        load_config({"experiments": []})


def test_builtin_grids_reference_registered_workloads():
    for name in ("ci-quick", "quick-core"):
        for benchmark, params in expand_config(load_config(name)):
            assert grid.get_workload(benchmark).name == benchmark
            assert params["quick"] is True


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def test_run_grid_executes_cells_and_stamps_records():
    grid.register(
        "t-double", lambda x=1.0, **_: {"benchmark": "t-double", "value": 2 * x}
    )
    with ResultsStore(":memory:") as store:
        counts = run_grid(store, {
            "name": "g",
            "experiments": [{"benchmark": "t-double", "params": {"x": [1.0, 3.0]}}],
        }, log=lambda m: None)
        assert counts == {"open": 0, "running": 0, "done": 2, "error": 0}
        records = store.records("g")
    assert [rec["value"] for rec in records] == [2.0, 6.0]
    # The grid stamps the bench/record envelope onto every record.
    assert all("schema_version" in rec and "host" in rec for rec in records)


def test_check_failure_marks_error_but_keeps_record():
    grid.register(
        "t-barred",
        lambda **_: {"benchmark": "t-barred", "speedup": 0.5},
        check=lambda rec, params: (
            [] if rec["speedup"] >= 1.0 else ["speedup below 1.0"]
        ),
    )
    with ResultsStore(":memory:") as store:
        counts = run_grid(store, {
            "name": "g", "experiments": [{"benchmark": "t-barred"}],
        }, log=lambda m: None)
        assert counts["error"] == 1 and counts["done"] == 0
        (cell,) = store.cells("g")
    assert "speedup below 1.0" in cell.error
    assert cell.record["speedup"] == 0.5  # the record still lands


def test_check_skipped_when_params_disable_it():
    grid.register(
        "t-unchecked",
        lambda check=True, **_: {"benchmark": "t-unchecked"},
        check=lambda rec, params: ["always fails"],
    )
    with ResultsStore(":memory:") as store:
        counts = run_grid(store, {
            "name": "g",
            "experiments": [{"benchmark": "t-unchecked", "fixed": {"check": False}}],
        }, log=lambda m: None)
    assert counts["done"] == 1


def test_exception_in_workload_lands_as_error():
    def boom(**_):
        raise ValueError("exploded mid-benchmark")

    grid.register("t-boom", boom)
    with ResultsStore(":memory:") as store:
        counts = run_grid(store, {
            "name": "g", "experiments": [{"benchmark": "t-boom"}],
        }, log=lambda m: None)
        (cell,) = store.cells("g")
    assert counts["error"] == 1
    assert "ValueError: exploded mid-benchmark" in cell.error


def test_unknown_benchmark_fails_fast():
    with ResultsStore(":memory:") as store:
        with pytest.raises(GridError, match="unknown grid benchmark"):
            run_grid(store, {
                "name": "g", "experiments": [{"benchmark": "no-such-bench"}],
            }, log=lambda m: None)


def test_max_cells_leaves_remainder_open():
    grid.register("t-count", lambda i=0, **_: {"benchmark": "t-count", "i": i})
    with ResultsStore(":memory:") as store:
        counts = run_grid(store, {
            "name": "g",
            "experiments": [{"benchmark": "t-count", "params": {"i": [0, 1, 2]}}],
        }, max_cells=2, log=lambda m: None)
    assert counts["done"] == 2 and counts["open"] == 1


def test_run_single_cell_returns_stamped_record_or_raises():
    grid.register(
        "t-single",
        lambda good=True, **_: {"benchmark": "t-single", "ok": good},
        check=lambda rec, params: [] if rec["ok"] else ["not ok"],
    )
    record = run_single_cell("t-single", {"good": True})
    assert record["ok"] is True and "schema_version" in record
    with pytest.raises(GridError, match="not ok"):
        run_single_cell("t-single", {"good": False})


# ----------------------------------------------------------------------
# crash resume
# ----------------------------------------------------------------------

_CRASH_SCRIPT = textwrap.dedent(
    """
    import os, sys
    sys.path.insert(0, {src!r})
    from repro.bench import grid
    from repro.bench.store import ResultsStore

    marker, store_path, log_path = sys.argv[1:4]

    def run(i=0, **_):
        with open(log_path, "a") as fh:
            fh.write(f"{{i}}\\n")
        if i == 1 and not os.path.exists(marker):
            open(marker, "w").close()
            os.kill(os.getpid(), 9)  # SIGKILL: no cleanup, claim left behind
        return {{"benchmark": "crashy", "i": i}}

    grid.register("crashy", run)
    config = {{
        "name": "crash",
        "experiments": [{{"benchmark": "crashy", "params": {{"i": [0, 1, 2]}}}}],
    }}
    with ResultsStore(store_path) as store:
        grid.run_grid(store, config, log=lambda m: None)
    """
)


def test_sigkill_mid_grid_resumes_with_only_open_cells(tmp_path):
    script = tmp_path / "crashgrid.py"
    script.write_text(_CRASH_SCRIPT.format(src=str(SRC)))
    marker, store_path = tmp_path / "marker", tmp_path / "g.sqlite"
    log_path = tmp_path / "ran.log"
    argv = [sys.executable, str(script), str(marker), str(store_path), str(log_path)]

    first = subprocess.run(argv, capture_output=True)
    assert first.returncode == -signal.SIGKILL

    with ResultsStore(store_path) as store:
        by_i = {c.params["i"]: c for c in store.cells("crash")}
        assert by_i[0].status == "done"
        assert by_i[1].status == "running"  # the orphaned claim
        assert by_i[2].status == "open"

    second = subprocess.run(argv, capture_output=True)
    assert second.returncode == 0, second.stderr.decode()

    with ResultsStore(store_path) as store:
        assert store.status_counts("crash") == {
            "open": 0, "running": 0, "done": 3, "error": 0,
        }
    # Completed work is never re-executed: cell 0 ran once, the killed
    # cell ran twice (once per attempt), cell 2 ran once.
    runs = [int(line) for line in log_path.read_text().split()]
    assert sorted(runs) == [0, 1, 1, 2]


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------

def _fake_assembly(speedup=4.5, **_):
    return {
        "benchmark": "s1s2_assembly", "dataset": "TEST", "scale": 1.0,
        "k": 64, "speedup": speedup,
    }


def test_export_records_are_gate_compatible(tmp_path):
    from repro.obs.gate import run_gate

    grid.register("t-gate", _fake_assembly)
    baseline_dir = tmp_path / "baseline"
    baseline_dir.mkdir()
    (baseline_dir / "BENCH_1.json").write_text(json.dumps({
        "benchmark": "s1s2_assembly", "dataset": "TEST", "scale": 1.0,
        "k": 64, "speedup": 5.0,
    }))
    config = {"name": "g", "experiments": [{"benchmark": "t-gate"}]}
    with ResultsStore(":memory:") as store:
        run_grid(store, config, log=lambda m: None)
        written = export_records(store, tmp_path / "exported")
    assert [p.name for p in written] == ["BENCH_grid_s1s2_assembly.json"]
    payload = json.loads(written[0].read_text())
    assert payload[0]["gate_metric"] == "speedup"  # stamped for the gate

    checks, ok = run_gate(written, root=baseline_dir)
    assert ok  # 4.5 is within tolerance of the 5.0 baseline
    assert checks[0].baseline == 5.0


def test_export_round_trip_catches_regression(tmp_path):
    from repro.obs.gate import run_gate

    grid.register("t-gate-slow", lambda **_: _fake_assembly(speedup=1.0))
    baseline_dir = tmp_path / "baseline"
    baseline_dir.mkdir()
    (baseline_dir / "BENCH_1.json").write_text(json.dumps({
        "benchmark": "s1s2_assembly", "dataset": "TEST", "scale": 1.0,
        "k": 64, "speedup": 5.0,
    }))
    with ResultsStore(":memory:") as store:
        run_grid(store, {
            "name": "g", "experiments": [{"benchmark": "t-gate-slow"}],
        }, log=lambda m: None)
        written = export_records(store, tmp_path / "exported")
    checks, ok = run_gate(written, root=baseline_dir)
    assert not ok  # 1.0 vs 5.0 is far below any tolerance


def test_export_markdown_renders_cells():
    grid.register("t-md", _fake_assembly)
    with ResultsStore(":memory:") as store:
        run_grid(store, {
            "name": "g",
            "experiments": [{"benchmark": "t-md", "params": {"speedup": [2.0, 3.0]}}],
        }, log=lambda m: None)
        markdown = export_markdown(store, "g")
    assert "## t-md" in markdown
    assert "| speedup |" in markdown.splitlines()[4]  # param column present
    assert "| 2 | done | speedup | 2 |" in markdown
    assert "| 3 | done | speedup | 3 |" in markdown


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_grid_cli_run_status_export_reset(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    calls = {"n": 0}

    def flaky(**_):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("first attempt fails")
        return _fake_assembly()

    grid.register("t-cli", flaky)
    config_path = tmp_path / "cli.json"
    config_path.write_text(json.dumps({
        "name": "cli", "experiments": [{"benchmark": "t-cli"}],
    }))
    store_path = tmp_path / "g.sqlite"
    common = ["--store", str(store_path)]

    assert main(["grid", "run", str(config_path), *common]) == 1  # errored cell
    capsys.readouterr()
    assert main(["grid", "status", *common]) == 0
    out = capsys.readouterr().out
    assert "cli: 1 cell(s)" in out and "first attempt fails" in out

    assert main(["grid", "reset-errors", *common]) == 0
    assert main(["grid", "run", str(config_path), *common]) == 0  # retry passes

    out_dir = tmp_path / "exported"
    assert main(["grid", "export", *common, "--out-dir", str(out_dir)]) == 0
    assert (out_dir / "BENCH_grid_s1s2_assembly.json").exists()
    assert "## t-cli" in (out_dir / "RESULTS.md").read_text()


def test_grid_cli_rejects_bad_usage(tmp_path, capsys):
    from repro.cli import main

    assert main(["grid"]) == 2
    assert main(["grid", "frobnicate"]) == 2
    assert main(["grid", "run", "no-such-config",
                 "--store", str(tmp_path / "g.sqlite")]) == 2
