"""Tests for the quality-vs-time extension experiment."""

from __future__ import annotations

import pytest

from repro.bench import EXPERIMENTS, run_quality


@pytest.fixture(scope="module")
def quality():
    return run_quality()


class TestQuality:
    def test_reaches_noise_floor(self, quality):
        assert quality.rmse_per_iteration[-1] < 0.15  # planted noise = 0.1

    def test_rmse_improves_overall(self, quality):
        curve = quality.rmse_per_iteration
        assert curve[-1] < curve[0] / 5

    def test_cpu_time_axis_fastest(self, quality):
        assert (
            quality.iteration_seconds["cpu"]
            < quality.iteration_seconds["gpu"]
            < quality.iteration_seconds["mic"]
        )

    def test_curve_is_time_ordered(self, quality):
        curve = quality.curve("gpu")
        times = [t for t, _ in curve]
        assert times == sorted(times)
        assert len(curve) == len(quality.rmse_per_iteration)

    def test_time_to_target(self, quality):
        t = quality.time_to("cpu", target_rmse=0.2)
        assert t is not None
        assert t < quality.time_to("mic", target_rmse=0.2)

    def test_time_to_unreachable_target(self, quality):
        assert quality.time_to("cpu", target_rmse=0.0) is None

    def test_registered(self):
        assert "quality" in EXPERIMENTS

    def test_render(self, quality):
        text = quality.render()
        assert "held-out RMSE" in text
