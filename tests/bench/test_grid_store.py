"""Tests for the sqlite results store behind the experiment grid."""

from __future__ import annotations

import subprocess
import sys
import threading

import pytest

from repro.bench.store import Cell, ResultsStore, canonical_params


def _cells(n: int, benchmark: str = "bench") -> list[tuple[str, dict]]:
    return [(benchmark, {"i": i}) for i in range(n)]


def test_canonical_params_is_order_independent():
    assert canonical_params({"b": 2, "a": 1}) == canonical_params({"a": 1, "b": 2})
    assert canonical_params({"a": 1}) != canonical_params({"a": 2})


def test_ensure_cells_is_idempotent(tmp_path):
    with ResultsStore(tmp_path / "g.sqlite") as store:
        assert store.ensure_cells("g", _cells(3)) == 3
        assert store.ensure_cells("g", _cells(3)) == 0  # resume, not restart
        assert store.ensure_cells("g", _cells(5)) == 2  # only the new ones
        assert store.status_counts("g") == {
            "open": 5, "running": 0, "done": 0, "error": 0,
        }


def test_same_params_in_different_grids_are_distinct_cells(tmp_path):
    with ResultsStore(tmp_path / "g.sqlite") as store:
        store.ensure_cells("g1", _cells(2))
        store.ensure_cells("g2", _cells(2))
        assert len(store.cells()) == 4
        assert len(store.cells("g1")) == 2


def test_claim_finish_fail_roundtrip(tmp_path):
    with ResultsStore(tmp_path / "g.sqlite") as store:
        store.ensure_cells("g", _cells(2))
        first = store.claim_next("g")
        assert isinstance(first, Cell)
        assert first.status == "running" and first.attempts == 1
        store.finish(first.id, {"benchmark": "bench", "value": 1.5})
        second = store.claim_next("g")
        assert second.id != first.id
        store.fail(second.id, "boom", record={"benchmark": "bench", "partial": True})
        assert store.claim_next("g") is None
        done, errored = store.cells("g")
        assert done.status == "done" and done.record["value"] == 1.5
        assert errored.status == "error" and errored.error == "boom"
        assert errored.record["partial"] is True  # record lands even on error


def test_claim_next_is_atomic_under_concurrent_claimers(tmp_path):
    path = tmp_path / "g.sqlite"
    n_cells, n_threads = 24, 8
    with ResultsStore(path) as store:
        store.ensure_cells("g", _cells(n_cells))
    claimed: list[int] = []
    lock = threading.Lock()

    def worker():
        # Each claimer has its own connection, like separate processes
        # sharing the file would.
        with ResultsStore(path) as conn:
            while True:
                cell = conn.claim_next("g")
                if cell is None:
                    return
                with lock:
                    claimed.append(cell.id)
                conn.finish(cell.id, {"benchmark": "bench"})

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(claimed) == sorted(set(claimed))  # nobody ran a cell twice
    assert len(claimed) == n_cells
    with ResultsStore(path) as store:
        assert store.status_counts("g")["done"] == n_cells


def _dead_pid() -> int:
    """PID of a process guaranteed dead (it already exited)."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def test_reclaim_stale_reopens_dead_same_host_claims(tmp_path):
    with ResultsStore(tmp_path / "g.sqlite") as store:
        store.ensure_cells("g", _cells(3))
        mine = store.claim_next("g")
        crashed = store.claim_next("g")
        foreign = store.claim_next("g")
        store._conn.execute(
            "UPDATE cells SET claimed_pid = ? WHERE id = ?",
            (_dead_pid(), crashed.id),
        )
        store._conn.execute(
            "UPDATE cells SET claimed_host = 'somewhere-else' WHERE id = ?",
            (foreign.id,),
        )
        assert store.reclaim_stale() == 1  # only the dead same-host claim
        by_id = {c.id: c for c in store.cells("g")}
        assert by_id[crashed.id].status == "open"
        assert by_id[mine.id].status == "running"  # live pid: untouched
        assert by_id[foreign.id].status == "running"  # unprobeable: untouched
        # The reopened cell is claimable again and counts its attempts.
        again = store.claim_next("g")
        assert again.id == crashed.id and again.attempts == 2


def test_reset_errors_reopens_only_errored_cells(tmp_path):
    with ResultsStore(tmp_path / "g.sqlite") as store:
        store.ensure_cells("g", _cells(3))
        done = store.claim_next("g")
        store.finish(done.id, {"benchmark": "bench"})
        bad = store.claim_next("g")
        store.fail(bad.id, "missed the bar")
        assert store.reset_errors("g") == 1
        by_id = {c.id: c for c in store.cells("g")}
        assert by_id[bad.id].status == "open" and by_id[bad.id].error is None
        assert by_id[done.id].status == "done"
        assert store.reset_errors("g") == 0


def test_records_flattens_list_valued_cells(tmp_path):
    with ResultsStore(":memory:") as store:
        store.ensure_cells("g", _cells(2))
        first = store.claim_next("g")
        store.finish(first.id, [{"benchmark": "a"}, {"benchmark": "b"}])
        second = store.claim_next("g")
        store.finish(second.id, {"benchmark": "c"})
        names = [rec["benchmark"] for rec in store.records("g")]
        assert names == ["a", "b", "c"]


def test_store_survives_reopen(tmp_path):
    path = tmp_path / "g.sqlite"
    with ResultsStore(path) as store:
        store.ensure_cells("g", _cells(1))
        cell = store.claim_next("g")
        store.finish(cell.id, {"benchmark": "bench", "value": 2.0})
    with ResultsStore(path) as store:
        (cell,) = store.cells("g")
        assert cell.status == "done" and cell.record["value"] == 2.0


def test_invalid_status_rejected(tmp_path):
    with ResultsStore(":memory:") as store:
        store.ensure_cells("g", _cells(1))
        import sqlite3

        with pytest.raises(sqlite3.IntegrityError):
            store._conn.execute("UPDATE cells SET status = 'bogus'")
