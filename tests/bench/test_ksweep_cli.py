"""Tests for the k-sweep extension experiment and the CLI."""

from __future__ import annotations

import pytest

from repro.bench import EXPERIMENTS, run_ksweep
from repro.cli import main


class TestKSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ksweep(ks=(10, 50, 100))

    def test_speedup_shrinks_toward_k100(self, result):
        """§V-A: cuMF is tuned for k=100 — the gap must close as k grows."""
        speed = result.speedups()
        assert speed[10] > speed[50] > speed[100]
        assert speed[100] == pytest.approx(1.0, abs=0.25)

    def test_ours_wins_at_small_k(self, result):
        assert result.speedups()[10] > 2.0

    def test_times_grow_with_k(self, result):
        assert result.ours_s[100] > result.ours_s[50] > result.ours_s[10]

    def test_registered(self):
        assert "ksweep" in EXPERIMENTS

    def test_render(self, result):
        text = result.render()
        assert "k=100" in text or "100" in text


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig1", "fig10", "ksweep"):
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        assert "Movielens10M" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_tune(self, capsys):
        assert main(["tune", "gpu", "YMR4"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "batching" in out

    def test_tune_usage_error(self, capsys):
        assert main(["tune", "gpu"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_tune_with_custom_k(self, capsys):
        assert main(["tune", "cpu", "YMR4", "--k", "20"]) == 0
        assert "k=20" in capsys.readouterr().out


class TestEmitCL:
    def test_emit_cl_gpu(self, capsys):
        from repro.cli import main

        assert main(["emit-cl", "gpu"]) == 0
        out = capsys.readouterr().out
        assert "__kernel void als_s1" in out
        assert "batching+local+reg" in out

    def test_emit_cl_with_k(self, capsys):
        from repro.cli import main

        assert main(["emit-cl", "cpu", "--k", "16"]) == 0
        assert "#define K 16" in capsys.readouterr().out

    def test_emit_cl_usage(self, capsys):
        from repro.cli import main

        assert main(["emit-cl"]) == 2
        assert "usage" in capsys.readouterr().err
