"""Tests for the three solvers and their relative behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clsim import (
    ALL_DEVICES,
    INTEL_XEON_E5_2670_X2 as CPU,
    INTEL_XEON_PHI_31SP as MIC,
    NVIDIA_TESLA_K20C as GPU,
)
from repro.core import ALSConfig
from repro.datasets import YAHOO_R4, degree_sequences, generate_ratings
from repro.kernels.variants import FLAT_BASELINE, variant_from_flags
from repro.solvers import CuMF, PortableALS, Sac15Baseline


@pytest.fixture(scope="module")
def ymr4():
    return degree_sequences(YAHOO_R4, seed=7)


class TestPortableALS:
    def test_simulate_returns_positive_time(self, ymr4):
        rows, cols = ymr4
        for device in ALL_DEVICES:
            run = PortableALS(device).simulate(rows, cols, dataset="YMR4")
            assert run.seconds > 0
            assert run.device == device.kind.value
            assert run.iterations == 5
            assert run.step_costs is not None

    def test_default_variant_is_recommended(self):
        assert PortableALS(GPU).variant.flags.registers
        assert PortableALS(CPU).variant.flags.vector
        assert not PortableALS(MIC).variant.flags.registers

    def test_rejects_flat_variant(self):
        with pytest.raises(ValueError, match="thread-batched"):
            PortableALS(GPU, variant=FLAT_BASELINE)

    def test_rejects_bad_ws(self):
        with pytest.raises(ValueError):
            PortableALS(GPU, ws=0)

    def test_queue_records_six_kernels_per_iteration(self, ymr4):
        rows, cols = ymr4
        solver = PortableALS(GPU)
        solver.simulate(rows, cols, iterations=1)
        # fresh queue per simulate() call; inspect via a fresh run
        queue = solver.context.create_queue()
        assert queue.total_seconds == 0.0
        run = solver.simulate(rows, cols, iterations=2)
        assert run.seconds > 0

    def test_simulate_spec_matches_manual(self, ymr4):
        rows, cols = ymr4
        solver = PortableALS(GPU)
        via_spec = solver.simulate_spec(YAHOO_R4)
        manual = solver.simulate(rows, cols, dataset=YAHOO_R4.abbr)
        assert via_spec.seconds == pytest.approx(manual.seconds)

    def test_fit_report_trains_and_times(self):
        spec = YAHOO_R4.scaled(1 / 64)
        ratings = generate_ratings(spec, seed=1)
        report = PortableALS(CPU).fit_report(
            ratings, ALSConfig(k=4, iterations=2), dataset=spec.abbr
        )
        assert len(report.model.history) == 2
        assert report.run.seconds > 0
        losses = report.model.losses()
        assert losses[-1] <= losses[0]

    def test_variant_affects_time(self, ymr4):
        rows, cols = ymr4
        plain = PortableALS(GPU, variant=variant_from_flags()).simulate(rows, cols)
        tuned = PortableALS(
            GPU, variant=variant_from_flags(registers=True, local_mem=True)
        ).simulate(rows, cols)
        assert tuned.seconds < plain.seconds

    def test_str_of_run(self, ymr4):
        rows, cols = ymr4
        text = str(PortableALS(GPU).simulate(rows, cols, dataset="YMR4"))
        assert "YMR4" in text and "gpu" in text


class TestSac15:
    def test_implementation_names(self):
        assert Sac15Baseline(CPU).implementation == "OpenMP"
        assert Sac15Baseline(GPU).implementation == "CUDA"
        assert Sac15Baseline(MIC).implementation == "flat-OpenCL"

    def test_cuda_slower_than_openmp(self, ymr4):
        """Fig. 1's motivating observation, on YMR4's shape."""
        rows, cols = ymr4
        omp = Sac15Baseline(CPU).simulate(rows, cols).seconds
        cuda = Sac15Baseline(GPU).simulate(rows, cols).seconds
        assert cuda > 2 * omp

    def test_ours_beats_baseline_on_same_device(self, ymr4):
        rows, cols = ymr4
        for device in (CPU, GPU):
            base = Sac15Baseline(device).simulate(rows, cols).seconds
            ours = PortableALS(device).simulate(rows, cols).seconds
            assert ours < base, device.name

    def test_functional_fit_shared(self):
        spec = YAHOO_R4.scaled(1 / 64)
        ratings = generate_ratings(spec, seed=2)
        model = Sac15Baseline(CPU).fit(ratings, ALSConfig(k=3, iterations=2))
        assert model.X.shape[1] == 3


class TestCuMF:
    def test_requires_gpu(self):
        with pytest.raises(ValueError, match="CUDA-only"):
            CuMF(device=CPU)

    def test_generic_penalty_shape(self):
        # Tuned point: no penalty at k=100; maximal at small k (§V-A).
        assert CuMF.generic_penalty(100) == pytest.approx(1.0)
        assert CuMF.generic_penalty(10) > CuMF.generic_penalty(50) > 1.0
        assert CuMF.generic_penalty(200) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            CuMF.generic_penalty(0)

    def test_ours_beats_cumf_at_k10(self, ymr4):
        rows, cols = ymr4
        ours = PortableALS(GPU).simulate(rows, cols).seconds
        cumf = CuMF().simulate(rows, cols).seconds
        assert 2.0 < cumf / ours < 8.0  # paper: 2.2–6.8×

    def test_gap_narrows_at_k100(self, ymr4):
        rows, cols = ymr4
        ours10 = PortableALS(GPU).simulate(rows, cols, k=10).seconds
        cumf10 = CuMF().simulate(rows, cols, k=10).seconds
        ours100 = PortableALS(GPU).simulate(rows, cols, k=100).seconds
        cumf100 = CuMF().simulate(rows, cols, k=100).seconds
        assert cumf100 / ours100 < cumf10 / ours10
