"""Integration tests over the top-level public API."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_ml1m_catalog_entry(self):
        spec = repro.MOVIELENS1M
        assert (spec.m, spec.n, spec.nnz) == (6040, 3706, 1_000_209)
        assert repro.dataset_by_name("ML1M") is spec


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        """generate → split → fit → evaluate → persist → reload."""
        spec = repro.MOVIELENS1M.scaled(1 / 16)
        ratings = repro.generate_ratings(spec, seed=3)
        split = repro.train_test_split(ratings, test_fraction=0.2, seed=3)
        rec = repro.Recommender(k=8, lam=0.1, iterations=4).fit(split.train)
        path = tmp_path_factory.mktemp("model") / "ml1m.npz"
        rec.save(path)
        return spec, split, rec, repro.Recommender.load(path)

    def test_training_learned_something(self, pipeline):
        _, split, rec, _ = pipeline
        metrics = rec.evaluate(split.train.deduplicate())
        values = split.train.value.astype(np.float64)
        constant_rmse = float(np.sqrt(np.mean((values - values.mean()) ** 2)))
        assert metrics["rmse"] < constant_rmse

    def test_reload_equivalent(self, pipeline):
        _, split, rec, loaded = pipeline
        np.testing.assert_allclose(
            loaded.evaluate(split.test)["rmse"], rec.evaluate(split.test)["rmse"]
        )

    def test_recommendations_well_formed(self, pipeline):
        spec, _, rec, _ = pipeline
        recs = rec.recommend(user=0, n_items=7)
        assert len(recs) == 7
        assert all(0 <= item < spec.n for item, _ in recs)

    def test_simulated_cost_for_same_shape(self, pipeline):
        spec, _, _, _ = pipeline
        run = repro.PortableALS(repro.NVIDIA_TESLA_K20C).simulate_spec(
            spec, iterations=4
        )
        assert run.seconds > 0


class TestCrossSolverConsistency:
    """All solver families drive down the same objective on one problem."""

    def test_three_families_converge(self):
        problem = repro.planted_problem(m=60, n=45, rank=3, density=0.3, seed=2)
        als = repro.train_als(
            problem.ratings, repro.ALSConfig(k=3, lam=0.05, iterations=6)
        )
        sgd = repro.train_sgd(
            problem.ratings, repro.SGDConfig(k=3, lam=0.05, lr=0.15, epochs=15)
        )
        ccd = repro.train_ccd(
            problem.ratings, repro.CCDConfig(k=3, lam=0.05, outer_iterations=6)
        )
        for model in (als, sgd, ccd):
            history = model.losses() if hasattr(model, "losses") else model.history
            assert history[-1] < history[0]

    def test_simulators_agree_on_ordering(self):
        """Every solver pair preserves the paper's Netflix ordering."""
        rows, cols = repro.degree_sequences(repro.NETFLIX)
        gpu = repro.NVIDIA_TESLA_K20C
        ours = repro.PortableALS(gpu).simulate(rows, cols).seconds
        cumf = repro.CuMF().simulate(rows, cols).seconds
        flat = repro.Sac15Baseline(gpu).simulate(rows, cols).seconds
        assert ours < cumf < flat
