"""Calibration work-bench: prints every paper anchor next to the model output.

Run after touching repro/clsim/calibration.py:

    python scripts/tune_calibration.py
"""

from __future__ import annotations

import numpy as np

from repro.clsim import ALL_DEVICES, CostModel, OptFlags, device_by_name
from repro.datasets import TABLE_I, degree_sequences

K = 10
WS = 32
ITERS = 5

FLAGS = {
    "flat": OptFlags(batched=False),
    "tb": OptFlags(),
    "+lm": OptFlags(local_mem=True),
    "+lm+reg": OptFlags(local_mem=True, registers=True),
    "+lm+reg+vec": OptFlags(local_mem=True, registers=True, vector=True),
    "+lm+vec": OptFlags(local_mem=True, vector=True),
}

BEST = {"cpu": "+lm+vec", "gpu": "+lm+reg", "mic": "+lm+vec"}


def main() -> None:
    seqs = {spec.abbr: degree_sequences(spec) for spec in TABLE_I}
    times: dict[tuple[str, str, str], float] = {}
    for dev in ALL_DEVICES:
        cm = CostModel(dev)
        for spec in TABLE_I:
            rows, cols = seqs[spec.abbr]
            for label, flags in FLAGS.items():
                times[dev.kind.value, spec.abbr, label] = cm.training_time(
                    rows, cols, K, WS, flags, ITERS
                )

    print("=== absolute seconds (5 iters, ws=32, k=10) ===")
    header = f"{'dev':4s} {'variant':12s}" + "".join(f"{s.abbr:>9s}" for s in TABLE_I)
    print(header)
    for dev in ALL_DEVICES:
        for label in FLAGS:
            row = f"{dev.kind.value:4s} {label:12s}"
            for spec in TABLE_I:
                row += f"{times[dev.kind.value, spec.abbr, label]:9.2f}"
            print(row)
        print()

    def best(dev: str, abbr: str) -> float:
        return times[dev, abbr, BEST[dev]]

    print("=== anchors ===")
    f1 = [times["gpu", s.abbr, "flat"] / times["cpu", s.abbr, "flat"] for s in TABLE_I]
    print(f"fig1  CUDA/OpenMP baseline ratio: {np.round(f1,2)}  mean={np.mean(f1):.2f}  (paper ~8.4)")
    f7c = [times["cpu", s.abbr, "flat"] / best("cpu", s.abbr) for s in TABLE_I]
    print(f"fig7  ours vs SAC15 on CPU:       {np.round(f7c,2)}  mean={np.mean(f7c):.2f}  (paper 5.5)")
    f7g = [times["gpu", s.abbr, "flat"] / best("gpu", s.abbr) for s in TABLE_I]
    print(f"fig7  ours vs SAC15 on GPU:       {np.round(f7g,2)}  mean={np.mean(f7g):.2f}  (paper 21.2)")
    f9g = [best("gpu", s.abbr) / best("cpu", s.abbr) for s in TABLE_I]
    f9m = [best("mic", s.abbr) / best("cpu", s.abbr) for s in TABLE_I]
    print(f"fig9  GPU slowdown vs CPU:        {np.round(f9g,2)}  mean={np.mean(f9g):.2f}  (paper ~1.5, <1 on YMR1)")
    print(f"fig9  MIC slowdown vs CPU:        {np.round(f9m,2)}  mean={np.mean(f9m):.2f}  (paper ~4.1)")
    g26 = [times["gpu", s.abbr, "tb"] / times["gpu", s.abbr, "+lm+reg"] for s in TABLE_I]
    print(f"fig6  GPU tb/(+lm+reg):           {np.round(g26,2)}  max={max(g26):.2f}  (paper upto 2.6)")
    c16 = [times["cpu", s.abbr, "tb"] / times["cpu", s.abbr, "+lm"] for s in TABLE_I]
    m14 = [times["mic", s.abbr, "tb"] / times["mic", s.abbr, "+lm"] for s in TABLE_I]
    print(f"fig6  CPU tb/+lm:                 {np.round(c16,2)}  max={max(c16):.2f}  (paper upto 1.6)")
    print(f"fig6  MIC tb/+lm:                 {np.round(m14,2)}  max={max(m14):.2f}  (paper upto 1.4)")
    creg = [times["cpu", s.abbr, "+lm+reg"] / times["cpu", s.abbr, "+lm"] for s in TABLE_I]
    mreg = [times["mic", s.abbr, "+lm+reg"] / times["mic", s.abbr, "+lm"] for s in TABLE_I]
    print(f"fig6  CPU (+lm+reg)/+lm:          {np.round(creg,2)}  (paper >1: degradation)")
    print(f"fig6  MIC (+lm+reg)/+lm:          {np.round(mreg,2)}  (paper >1: degradation)")
    gvec = [times["gpu", s.abbr, "+lm+reg+vec"] / times["gpu", s.abbr, "+lm+reg"] for s in TABLE_I]
    print(f"fig6  GPU +vec effect:            {np.round(gvec,2)}  (paper ~1.0)")

    print("\n=== fig10: block-size sweep (best variant per device) ===")
    for spec in TABLE_I:
        rows, cols = seqs[spec.abbr]
        print(spec.abbr)
        for dev in ALL_DEVICES:
            cm = CostModel(dev)
            flags = FLAGS[BEST[dev.kind.value]]
            sweep = [
                cm.training_time(rows, cols, K, ws, flags, ITERS)
                for ws in (8, 16, 32, 64, 128)
            ]
            argmin = (8, 16, 32, 64, 128)[int(np.argmin(sweep))]
            print(f"  {dev.kind.value:4s} " + " ".join(f"{t:8.2f}" for t in sweep) + f"   best ws={argmin}")
    print("(paper: GPU best 16/32; CPU smaller=better/stable; MIC YMR4->8, YMR1->16)")


if __name__ == "__main__":
    main()
