"""Legacy setup shim.

Enables editable installs in offline environments whose pip cannot build
PEP 660 wheels (no `wheel` package): `pip install -e . --no-use-pep517
--no-build-isolation`.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
