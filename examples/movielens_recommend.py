"""End-to-end recommender: train/test split, ALS vs ALS-WR, top-N.

The workload the paper's introduction motivates: learn user/item factors
from observed ratings, evaluate on held-out ratings, and recommend.

    python examples/movielens_recommend.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    spec = repro.MOVIELENS10M.scaled(1 / 256)
    ratings = repro.generate_ratings(spec, seed=11)
    split = repro.train_test_split(ratings, test_fraction=0.2, seed=1)
    print(
        f"{spec.name}: {split.train.nnz} train / {split.test.nnz} test ratings "
        f"({split.test_fraction:.0%} held out)"
    )

    config = repro.ALSConfig(k=10, lam=0.1, iterations=8)
    als = repro.train_als(split.train, config)
    alswr = repro.train_als_wr(split.train, config)

    def report(name: str, model) -> float:
        train = repro.rmse(split.train.deduplicate(), model.X, model.Y)
        test = repro.rmse(split.test, model.X, model.Y)
        print(f"  {name:8s} train RMSE {train:.4f}   held-out RMSE {test:.4f}")
        return test

    print("model quality:")
    report("ALS", als)
    report("ALS-WR", alswr)

    # Recommend for the most active user.
    R = repro.CSRMatrix.from_coo(split.train)
    user = int(np.argmax(R.row_lengths()))
    print(f"\nmost active user: #{user} with {R.count_nonzeros(user)} ratings")
    for rank, (item, score) in enumerate(
        repro.recommend_top_n(als, user, n_items=10, exclude=R), 1
    ):
        print(f"  {rank:2d}. item {item:5d}  predicted {score:5.2f}")


if __name__ == "__main__":
    main()
