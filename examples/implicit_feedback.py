"""Implicit-feedback recommendation on play-count-style data.

The paper credits ALS with handling implicit ratings (§I, citing Koren
et al.); this example builds synthetic listen counts with community
structure, trains implicit ALS, and measures top-10 ranking quality
(hit rate / NDCG) on held-out interactions against a popularity baseline.

    python examples/implicit_feedback.py
"""

from __future__ import annotations

import numpy as np

import repro


def synthetic_playcounts(
    m: int = 400, n: int = 250, communities: int = 5, seed: int = 3
) -> repro.COOMatrix:
    """Play counts where users mostly interact inside their community."""
    rng = np.random.default_rng(seed)
    user_comm = rng.integers(0, communities, size=m)
    item_comm = rng.integers(0, communities, size=n)
    affinity = np.where(user_comm[:, None] == item_comm[None, :], 0.25, 0.01)
    mask = rng.random((m, n)) < affinity
    counts = np.where(mask, rng.geometric(0.2, size=(m, n)), 0).astype(np.float32)
    return repro.COOMatrix.from_dense(counts)


def main() -> None:
    counts = synthetic_playcounts()
    split = repro.train_test_split(counts, test_fraction=0.2, seed=0)
    print(f"interactions: {split.train.nnz} train / {split.test.nnz} test")

    model = repro.train_implicit_als(
        split.train, repro.ImplicitConfig(k=16, lam=0.1, alpha=20.0, iterations=8)
    )
    print("weighted loss per iteration:",
          " ".join(f"{v:.0f}" for v in model.history))

    R_train = repro.CSRMatrix.from_coo(split.train)
    als_metrics = repro.evaluate_ranking(model.score, R_train, split.test, n=10)
    # Popularity baseline: everyone gets the globally hottest items.
    item_counts = np.bincount(
        split.train.col, minlength=split.train.shape[1]
    ).astype(float)
    pop_metrics = repro.evaluate_ranking(
        lambda u: item_counts, R_train, split.test, n=10
    )
    print(f"implicit ALS : {als_metrics}")
    print(f"popularity   : {pop_metrics}")


if __name__ == "__main__":
    main()
