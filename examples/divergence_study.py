"""Architect's notebook: why the flat baseline loses (paper §II-C, §III-B).

Walks the three analyses behind the paper's diagnosis on Netflix:

1. warp divergence of the flat mapping (and how row-sorting mitigates it),
2. memory-transaction coalescing of flat vs batched access patterns,
3. occupancy across work-group sizes (the Fig. 10 reasoning).

    python examples/divergence_study.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.clsim import (
    analyze_divergence,
    batched_column_pattern,
    efficiency_for,
    flat_smat_pattern,
    occupancy,
    sort_rows_by_length,
)


def divergence() -> None:
    print("=== 1. warp divergence (flat one-thread-per-row) ===")
    rows, cols = repro.degree_sequences(repro.NETFLIX)
    for label, lengths in (("user rows", rows), ("item columns", cols)):
        before = analyze_divergence(lengths, repro.NVIDIA_TESLA_K20C)
        after = analyze_divergence(
            sort_rows_by_length(lengths), repro.NVIDIA_TESLA_K20C
        )
        print(f"  {label}: {before}")
        print(f"  {label} (degree-sorted): {after}")


def coalescing() -> None:
    print("\n=== 2. memory transactions per access step ===")
    gpu = repro.NVIDIA_TESLA_K20C
    flat = flat_smat_pattern(gpu, k=10)
    batched = batched_column_pattern(base_element=0, k=10)
    print(
        f"  flat private smat access:   efficiency {efficiency_for(flat, gpu):.1%}"
        f"  (each lane pays a {gpu.cacheline_bytes}B transaction for 4B)"
    )
    print(
        f"  batched Y-column access:    efficiency {efficiency_for(batched, gpu):.1%}"
        f"  (k consecutive floats coalesce)"
    )


def occupancy_sweep() -> None:
    print("\n=== 3. occupancy over work-group sizes (k = 10) ===")
    for ws in (8, 16, 32, 64, 128):
        report = occupancy(repro.NVIDIA_TESLA_K20C, ws=ws, k=10)
        print(f"  {report}")
    print(
        "  -> the paper's recommendation: pick the smallest block size"
        " above the latent factor (section V-E)"
    )


def bottom_line() -> None:
    print("\n=== bottom line on Netflix/K20c (5 iterations) ===")
    rows, cols = repro.degree_sequences(repro.NETFLIX)
    flat = repro.Sac15Baseline(repro.NVIDIA_TESLA_K20C).simulate(rows, cols)
    sorted_flat = repro.Sac15Baseline(repro.NVIDIA_TESLA_K20C).simulate(
        sort_rows_by_length(rows), sort_rows_by_length(cols)
    )
    ours = repro.PortableALS(repro.NVIDIA_TESLA_K20C).simulate(rows, cols)
    print(f"  flat baseline:        {flat.seconds:8.1f} s")
    print(f"  flat + degree sort:   {sorted_flat.seconds:8.1f} s")
    print(f"  thread batching (ours): {ours.seconds:6.1f} s")


def main() -> None:
    divergence()
    coalescing()
    occupancy_sweep()
    bottom_line()


if __name__ == "__main__":
    main()
