"""ALS vs SGD vs CCD++ — the three MF families the paper surveys (§VI).

Trains all three on the same planted low-rank problem with the same
latent dimensionality and regularization, and prints the quality each
reaches — the head-to-head the paper's future work points toward.

    python examples/solver_families.py
"""

from __future__ import annotations

import time

import repro
from repro.extensions import CCDConfig, SGDConfig, train_ccd, train_sgd


def main() -> None:
    problem = repro.planted_problem(
        m=300, n=220, rank=8, density=0.15, noise_std=0.05, seed=5
    )
    split = repro.train_test_split(problem.ratings, test_fraction=0.2, seed=2)
    print(
        f"planted rank-8 problem: {problem.ratings.shape}, "
        f"{split.train.nnz} train ratings, noise floor RMSE = "
        f"{problem.ideal_rmse():.3f}\n"
    )

    k, lam = 8, 0.05

    def evaluate(name, X, Y, elapsed):
        train = repro.rmse(split.train.deduplicate(), X, Y)
        test = repro.rmse(split.test, X, Y)
        print(
            f"  {name:6s} train RMSE {train:.4f}  held-out RMSE {test:.4f}"
            f"  ({elapsed:.2f} s wall)"
        )

    t0 = time.perf_counter()
    als = repro.train_als(split.train, repro.ALSConfig(k=k, lam=lam, iterations=10))
    evaluate("ALS", als.X, als.Y, time.perf_counter() - t0)

    t0 = time.perf_counter()
    ccd = train_ccd(split.train, CCDConfig(k=k, lam=lam, outer_iterations=10))
    evaluate("CCD++", ccd.X, ccd.Y, time.perf_counter() - t0)

    t0 = time.perf_counter()
    sgd = train_sgd(split.train, SGDConfig(k=k, lam=lam, lr=0.15, epochs=40))
    evaluate("SGD", sgd.X, sgd.Y, time.perf_counter() - t0)

    print("\nconvergence (objective value per sweep):")
    print("  ALS  :", " ".join(f"{v:9.1f}" for v in als.losses()[:6]))
    print("  CCD++:", " ".join(f"{v:9.1f}" for v in ccd.history[:6]))
    print("  SGD  :", " ".join(f"{v:9.1f}" for v in sgd.history[:6]))


if __name__ == "__main__":
    main()
