/* ALS matrix factorization — generated code variant.
 * K latent factors, WS work-items per group, TILE staged rows.
 * One work-group updates one row of X (thread batching, paper
 * section III-B); kernels s1/s2/s3 implement the three steps of
 * Algorithm 2.
 */
#define K 10
#define WS 32
#define TILE 256

/* variant: batching+local+reg */

__kernel void als_s1(
    __global const float *value,
    __global const int   *col_idx,
    __global const int   *row_ptr,
    __global const float *Y,
    __global float       *smat,
    __local  float       *ystage,   /* TILE * K floats */
    const int m,
    const float lambda_)
{
    const int lx = get_local_id(0);
    /* persistent groups: the paper launches 8192 groups and each
     * strides over the rows it owns (thread config 8192 x WS). */
    for (int u = get_group_id(0); u < m; u += get_num_groups(0)) {
    const int lo = row_ptr[u];
    const int omega = row_ptr[u + 1] - lo;
    if (omega == 0) continue;

    /* Fig. 3(b): K scalar accumulators per owned i-strip — small
     * enough for the compiler to keep in registers; no k*k
     * private array, no spill.  NSTRIP is 1 whenever WS >= K,
     * the regime the paper recommends (section V-E). */
    #define NSTRIP ((K + WS - 1) / WS)
    float sums[NSTRIP][K];
    #pragma unroll
    for (int p = 0; p < NSTRIP; ++p)
        for (int j = 0; j < K; ++j) sums[p][j] = 0.0f;

    for (int t0 = 0; t0 < omega; t0 += TILE) {
        const int tlen = min(TILE, omega - t0);
        /* cooperative, coalesced staging of the needed Y columns
         * (Fig. 5) */
        for (int idx = lx; idx < tlen * K; idx += WS) {
            const int z = idx / K, c = idx % K;
            ystage[z * K + c] = Y[col_idx[lo + t0 + z] * K + c];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int z = 0; z < tlen; ++z) {
            int strip = 0;
            for (int i = lx; i < K; i += WS, ++strip) {
                const float yi = ystage[z * K + i];
                #pragma unroll
                for (int j = 0; j < K; ++j)
                    sums[strip][j] += yi * ystage[z * K + j];
            }
        }
        barrier(CLK_LOCAL_MEM_FENCE); /* tile reuse */
    }

    int out_strip = 0;
    for (int i = lx; i < K; i += WS, ++out_strip)
        for (int j = 0; j < K; ++j)
            smat[(u * K + i) * K + j] =
                sums[out_strip][j] + (i == j ? lambda_ : 0.0f);
    } /* persistent-group row loop */
    #undef NSTRIP
}

__kernel void als_s2(
    __global const float *value,
    __global const int   *col_idx,
    __global const int   *row_ptr,
    __global const float *Y,
    __global float       *svec,
    __local  float       *ystage,   /* TILE * K floats */
    __local  float       *rstage,   /* TILE floats */
    const int m)
{
    const int lx = get_local_id(0);
    for (int u = get_group_id(0); u < m; u += get_num_groups(0)) {
    const int lo = row_ptr[u];
    const int omega = row_ptr[u + 1] - lo;
    if (omega == 0) continue;
    float acc[(K + WS - 1) / WS];
    for (int p = 0; p < (K + WS - 1) / WS; ++p) acc[p] = 0.0f;
    for (int t0 = 0; t0 < omega; t0 += TILE) {
        const int tlen = min(TILE, omega - t0);
        for (int idx = lx; idx < tlen * K; idx += WS) {
            const int z = idx / K, c = idx % K;
            ystage[z * K + c] = Y[col_idx[lo + t0 + z] * K + c];
        }
        for (int z = lx; z < tlen; z += WS)
            rstage[z] = value[lo + t0 + z];
        barrier(CLK_LOCAL_MEM_FENCE);
        int strip = 0;
        for (int c = lx; c < K; c += WS, ++strip)
            for (int z = 0; z < tlen; ++z)
                acc[strip] += rstage[z] * ystage[z * K + c];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    int out_strip = 0;
    for (int c = lx; c < K; c += WS, ++out_strip)
        svec[u * K + c] = acc[out_strip];
    } /* persistent-group row loop */
}

__kernel void als_s3(
    __global const int   *row_ptr,
    __global const float *smat,
    __global const float *svec,
    __global float       *X,
    const int m)
{
    if (get_local_id(0) != 0) return;
    for (int u = get_group_id(0); u < m; u += get_num_groups(0)) {
    if (row_ptr[u + 1] - row_ptr[u] == 0) continue;
    float a[K][K], b[K];
    for (int i = 0; i < K; ++i) {
        b[i] = svec[u * K + i];
        for (int j = 0; j < K; ++j)
            a[i][j] = smat[(u * K + i) * K + j];
    }
    /* Cholesky a = L L^T (section V-C's optimized S3). */
    for (int j = 0; j < K; ++j) {
        float d = a[j][j];
        for (int p = 0; p < j; ++p) d -= a[j][p] * a[j][p];
        a[j][j] = sqrt(d);
        for (int i = j + 1; i < K; ++i) {
            float s = a[i][j];
            for (int p = 0; p < j; ++p) s -= a[i][p] * a[j][p];
            a[i][j] = s / a[j][j];
        }
    }
    float z[K];
    for (int i = 0; i < K; ++i) {
        float s = b[i];
        for (int p = 0; p < i; ++p) s -= a[i][p] * z[p];
        z[i] = s / a[i][i];
    }
    for (int i = K - 1; i >= 0; --i) {
        float s = z[i];
        for (int p = i + 1; p < K; ++p) s -= a[p][i] * b[p];
        b[i] = s / a[i][i];
    }
    for (int c = 0; c < K; ++c) X[u * K + c] = b[c];
    } /* persistent-group row loop */
}

__kernel void als_update_flat(
    __global const float *value_colmajor,
    __global const int   *colmajor_id,
    __global const int   *col_idx,
    __global const int   *row_ptr,
    __global const float *Y,
    __global float       *X,
    const int m,
    const float lambda_)
{
    const int u = get_global_id(0);
    if (u >= m) return;
    const int lo = row_ptr[u];
    const int omega = row_ptr[u + 1] - lo;
    if (omega == 0) return;
    /* private k*k scratch: neighbouring threads' accesses sit
     * (K+1)*K elements apart -> uncoalesced (section III-B). */
    float smat[K * K], svec[K];
    for (int p = 0; p < K * K; ++p) smat[p] = 0.0f;
    for (int c = 0; c < K; ++c) svec[c] = 0.0f;
    for (int i = 0; i < K; ++i)
        for (int j = i; j < K; ++j) {
            float s = 0.0f;
            for (int z = 0; z < omega; ++z) {
                const int d = col_idx[lo + z] * K;
                s += Y[d + i] * Y[d + j];
            }
            smat[i * K + j] = s; smat[j * K + i] = s;
        }
    for (int i = 0; i < K; ++i) smat[i * K + i] += lambda_;
    for (int c = 0; c < K; ++c)
        for (int z = 0; z < omega; ++z) {
            const int idx  = lo + z;
            const int idx2 = colmajor_id[idx];     /* line 10 */
            svec[c] += value_colmajor[idx2] * Y[col_idx[idx] * K + c];
        }
    /* Cholesky solve in private memory (lines 16-17). */
    for (int j = 0; j < K; ++j) {
        float d = smat[j * K + j];
        for (int p = 0; p < j; ++p) d -= smat[j * K + p] * smat[j * K + p];
        smat[j * K + j] = sqrt(d);
        for (int i = j + 1; i < K; ++i) {
            float s = smat[i * K + j];
            for (int p = 0; p < j; ++p) s -= smat[i * K + p] * smat[j * K + p];
            smat[i * K + j] = s / smat[j * K + j];
        }
    }
    float z[K];
    for (int i = 0; i < K; ++i) {
        float s = svec[i];
        for (int p = 0; p < i; ++p) s -= smat[i * K + p] * z[p];
        z[i] = s / smat[i * K + i];
    }
    for (int i = K - 1; i >= 0; --i) {
        float s = z[i];
        for (int p = i + 1; p < K; ++p) s -= smat[p * K + i] * svec[p];
        svec[i] = s / smat[i * K + i];
    }
    for (int c = 0; c < K; ++c) X[u * K + c] = svec[c];
}

