"""Portability study: one solver, three architectures (paper §V-D/E).

Sweeps the Table I datasets across the simulated E5-2670, K20c and
Phi 31SP with each device's recommended code variant, then sweeps the
work-group size — the paper's Figs. 9 and 10 in script form.

    python examples/portability_sweep.py
"""

from __future__ import annotations

import repro
from repro.bench.report import format_bar, format_table


def cross_device() -> None:
    print("=== execution time by architecture (best variant, ws=32) ===")
    rows = []
    for spec in repro.TABLE_I:
        seqs = repro.degree_sequences(spec)
        per_dev = {}
        for device in repro.ALL_DEVICES:
            run = repro.PortableALS(device).simulate(*seqs, dataset=spec.abbr)
            per_dev[device.kind.value] = run.seconds
        fastest = min(per_dev.values())
        rows.append(
            [spec.abbr]
            + [f"{per_dev[d]:.2f}" for d in ("cpu", "gpu", "mic")]
            + [f"{per_dev['gpu'] / per_dev['cpu']:.2f}x"]
        )
    print(
        format_table(
            ["dataset", "CPU [s]", "GPU [s]", "MIC [s]", "GPU/CPU"], rows
        )
    )


def block_size_sweep() -> None:
    print("\n=== work-group size sweep on Netflix (per-device variant) ===")
    seqs = repro.degree_sequences(repro.NETFLIX)
    for device in repro.ALL_DEVICES:
        variant = repro.recommended_variant(device)
        times = {}
        for ws in (8, 16, 32, 64, 128):
            solver = repro.PortableALS(device, variant=variant, ws=ws)
            times[ws] = solver.simulate(*seqs, dataset="NTFX").seconds
        scale = max(times.values())
        print(f"{device} [{variant}]")
        for ws, t in times.items():
            print(f"  ws={ws:<4d} {t:8.2f} s  {format_bar(t, scale, 36)}")


def main() -> None:
    cross_device()
    block_size_sweep()


if __name__ == "__main__":
    main()
