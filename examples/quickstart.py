"""Quickstart: factorize a MovieLens-shaped rating matrix and predict.

Runs in a few seconds on a laptop:

    python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. A rating matrix with MovieLens10M's shape statistics, scaled
    #    down 256x so the functional solver runs instantly.
    spec = repro.MOVIELENS10M.scaled(1 / 256)
    ratings = repro.generate_ratings(spec, seed=7)
    print(f"dataset: {spec.name}  ({spec.m} users x {spec.n} items, {ratings.nnz} ratings)")

    # 2. Train with the paper's defaults (k=10, lambda=0.1, 5 iterations).
    model = repro.train_als(ratings, repro.ALSConfig(k=10, lam=0.1, iterations=5))
    for stat in model.history:
        print(f"  iter {stat.iteration}: loss={stat.loss:12.1f}  train RMSE={stat.train_rmse:.4f}")

    # 3. Predict and recommend.
    user = 0
    print(f"predicted rating r[{user},0] = {repro.predict_rating(model, user, 0):.2f}")
    seen = repro.CSRMatrix.from_coo(ratings)
    top = repro.recommend_top_n(model, user, n_items=5, exclude=seen)
    print(f"top-5 unseen items for user {user}: {top}")

    # 4. Ask the simulator what this training run would cost on the
    #    paper's three devices (full-scale MovieLens10M).
    print("\nsimulated training time, full MovieLens10M, 5 iterations:")
    for device in repro.ALL_DEVICES:
        run = repro.PortableALS(device).simulate_spec(repro.MOVIELENS10M)
        print(f"  {run}")


if __name__ == "__main__":
    main()
