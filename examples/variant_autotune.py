"""Code-variant selection: empirical search + the learned selector.

Reproduces §III-D's empirical selection on every (device, dataset)
context, then trains the machine-learning selector the paper proposes as
future work and checks its choices against the exhaustive optimum.

    python examples/variant_autotune.py
"""

from __future__ import annotations

import repro
from repro.clsim.costmodel import CostModel


def empirical_search() -> None:
    print("=== exhaustive variant x ws search (paper §III-D) ===")
    for device in repro.ALL_DEVICES:
        for spec in repro.TABLE_I:
            seqs = repro.degree_sequences(spec)
            result = repro.exhaustive_search(device, *seqs)
            print(
                f"  {device.kind.value:4s} {spec.abbr}: "
                f"{result.best_variant.name:24s} ws={result.best_ws:<4d} "
                f"{result.best_seconds:8.2f} s  "
                f"({result.speedup_over_worst():.2f}x over worst config)"
            )


def learned_selector() -> None:
    print("\n=== learned selector (paper's future work) ===")
    selector = repro.train_default_selector()
    for device in repro.ALL_DEVICES:
        for spec in repro.TABLE_I:
            seqs = repro.degree_sequences(spec)
            variant, ws = selector.predict(device, *seqs)
            predicted = CostModel(device).training_time(
                *seqs, 10, ws, variant.flags, 5
            )
            best = repro.exhaustive_search(device, *seqs)
            gap = predicted / best.best_seconds
            print(
                f"  {device.kind.value:4s} {spec.abbr}: picks "
                f"{variant.name:24s} ws={ws:<4d} -> {gap:.2f}x of optimal"
            )


def main() -> None:
    empirical_search()
    learned_selector()


if __name__ == "__main__":
    main()
