"""Extension — held-out RMSE vs simulated seconds per architecture.

Combines the functional solver (quality) with the device cost models
(time): the same convergence curve, three time axes.  The CPU reaches any
RMSE target first at this problem size, consistent with Fig. 9.
"""

from __future__ import annotations

from conftest import emit
from repro.bench import run_quality


def test_quality_report(benchmark):
    result = benchmark.pedantic(run_quality, rounds=2, iterations=1)
    emit("Extension: quality vs time", result.render())
    assert result.rmse_per_iteration[-1] < 0.15
    assert result.time_to("cpu", 0.2) < result.time_to("gpu", 0.2)
