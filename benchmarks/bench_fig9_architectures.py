"""Fig. 9 — our solver across the three architectures (best variant each).

Paper shapes: CPU fastest overall, GPU ≈1.5× slower, MIC ≈4.1× slower;
the GPU outperforms the CPU on YahooMusic R1.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.bench import run_fig9


def test_fig9_report(warm_sequences, benchmark):
    result = benchmark.pedantic(run_fig9, rounds=3, iterations=1)
    emit("Fig. 9", result.render())
    slow = result.slowdowns()
    assert result.seconds["YMR1"]["gpu"] <= result.seconds["YMR1"]["cpu"]
    assert 3.0 < np.mean([slow[a]["mic"] for a in slow]) < 5.5
