#!/usr/bin/env python
"""Before/after benchmark of the S1+S2 normal-equations assembly.

Times the legacy ``np.add.at`` scatter path against the degree-binned,
tiled path on a synthetic MovieLens-1M-shaped matrix (the paper's
smallest real corpus) and writes the result to a JSON report —
``BENCH_2.json`` at the repo root records the committed numbers.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_assembly.py            # full ml-1m, k=64
    PYTHONPATH=src python benchmarks/bench_assembly.py --quick    # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_assembly.py --check    # exit 1 on regression

``--check`` makes the script fail when the binned path is not faster
than the scatter path (the CI perf-smoke gate); the full (non-quick)
configuration is additionally expected to clear the 3x bar recorded in
ISSUE 2's acceptance criteria.

The benchmark body lives in :mod:`repro.bench.workloads.assembly` (the
grid workload registered as ``assembly``); this entry point is a thin
single-cell wrapper over :func:`repro.bench.grid.run_single_cell`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.grid import run_single_cell
from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.bench.workloads.assembly import check_record
from repro.linalg.normal_equations import DEFAULT_TILE_NNZ


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small configuration for CI (1/16-scale ml-1m, k=32, 1 repeat)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if the binned path is not faster than scatter "
        "(>= 3x required for the full configuration)",
    )
    parser.add_argument("--k", type=int, default=None, help="latent factor size")
    parser.add_argument("--scale", type=float, default=None, help="ml-1m scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--tile-nnz", type=int, default=DEFAULT_TILE_NNZ)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_2.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)
    enable_telemetry_if_requested(ns)

    # check=False: the record must land (and be written below) even when
    # the bar is missed; the bar is applied explicitly for --check.
    params = {
        "quick": ns.quick, "check": False,
        "tile_nnz": ns.tile_nnz, "seed": ns.seed,
    }
    for name in ("scale", "k", "repeats"):
        if getattr(ns, name) is not None:
            params[name] = getattr(ns, name)
    result = run_single_cell("assembly", params)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_2.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        failures = check_record(result, params)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        required = 1.0 if ns.quick else 3.0
        print(f"OK: binned speedup {result['speedup']:.2f}x >= {required:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
