#!/usr/bin/env python
"""Before/after benchmark of the S1+S2 normal-equations assembly.

Times the legacy ``np.add.at`` scatter path against the degree-binned,
tiled path on a synthetic MovieLens-1M-shaped matrix (the paper's
smallest real corpus) and writes the result to a JSON report —
``BENCH_2.json`` at the repo root records the committed numbers.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_assembly.py            # full ml-1m, k=64
    PYTHONPATH=src python benchmarks/bench_assembly.py --quick    # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_assembly.py --check    # exit 1 on regression

``--check`` makes the script fail when the binned path is not faster
than the scatter path (the CI perf-smoke gate); the full (non-quick)
configuration is additionally expected to clear the 3x bar recorded in
ISSUE 2's acceptance criteria.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.datasets.catalog import MOVIELENS1M
from repro.datasets.synthetic import generate_ratings
from repro.linalg.normal_equations import (
    DEFAULT_TILE_NNZ,
    binned_normal_equations,
    scatter_normal_equations,
)
from repro.obs import metrics as obs_metrics
from repro.obs.spans import capture
from repro.sparse.csr import CSRMatrix


def _time_variant(fn, R, Y, lam, repeats):
    """Min-of-N wall time plus the run's S1/S2 span split and gauges."""
    best = float("inf")
    split = {}
    for _ in range(repeats):
        obs_metrics.reset()
        with capture() as tracer:
            t0 = perf_counter()
            fn(R, Y, lam)
            elapsed = perf_counter() - t0
        if elapsed < best:
            best = elapsed
            stage_seconds = {"S1": 0.0, "S2": 0.0}
            for rec in tracer.records:
                stage = rec.attrs.get("stage")
                if stage in stage_seconds:
                    stage_seconds[stage] += rec.duration
            split = {
                "total_seconds": elapsed,
                "s1_seconds": stage_seconds["S1"],
                "s2_seconds": stage_seconds["S2"],
                "gauges": obs_metrics.snapshot()["gauges"],
            }
    return split


def run_benchmark(
    scale: float, k: int, repeats: int, tile_nnz: int, seed: int
) -> dict:
    spec = MOVIELENS1M.scaled(scale)
    coo = generate_ratings(spec, seed=seed)
    R = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(seed)
    Y = rng.standard_normal((R.ncols, k))
    # Warm the derived-structure caches: a training run reuses one matrix
    # across every sweep, so steady-state cost is the honest comparison.
    R.expanded_rows()
    R.degree_bins()

    print(
        f"assembly benchmark: {spec.abbr} scale={scale:g} "
        f"(m={R.nrows}, n={R.ncols}, nnz={R.nnz}), k={k}, "
        f"tile_nnz={tile_nnz}, repeats={repeats}",
        flush=True,
    )
    binned = _time_variant(
        lambda R_, Y_, lam: binned_normal_equations(R_, Y_, lam, tile_nnz=tile_nnz),
        R, Y, 0.1, repeats,
    )
    print(f"  binned  : {binned['total_seconds']:8.3f} s "
          f"(S1 {binned['s1_seconds']:.3f}, S2 {binned['s2_seconds']:.3f})",
          flush=True)
    scatter = _time_variant(scatter_normal_equations, R, Y, 0.1, repeats)
    print(f"  scatter : {scatter['total_seconds']:8.3f} s "
          f"(S1 {scatter['s1_seconds']:.3f}, S2 {scatter['s2_seconds']:.3f})",
          flush=True)
    speedup = scatter["total_seconds"] / binned["total_seconds"]
    print(f"  speedup : {speedup:8.2f}x", flush=True)
    return {
        "benchmark": "s1s2_assembly",
        "dataset": spec.abbr,
        "scale": scale,
        "m": R.nrows,
        "n": R.ncols,
        "nnz": R.nnz,
        "k": k,
        "tile_nnz": tile_nnz,
        "repeats": repeats,
        "seed": seed,
        "scatter": scatter,
        "binned": binned,
        "speedup": speedup,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small configuration for CI (1/16-scale ml-1m, k=32, 1 repeat)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if the binned path is not faster than scatter "
        "(>= 3x required for the full configuration)",
    )
    parser.add_argument("--k", type=int, default=None, help="latent factor size")
    parser.add_argument("--scale", type=float, default=None, help="ml-1m scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--tile-nnz", type=int, default=DEFAULT_TILE_NNZ)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_2.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)
    enable_telemetry_if_requested(ns)

    if ns.quick:
        scale = ns.scale if ns.scale is not None else 1 / 16
        k = ns.k if ns.k is not None else 32
        repeats = ns.repeats if ns.repeats is not None else 1
    else:
        scale = ns.scale if ns.scale is not None else 1.0
        k = ns.k if ns.k is not None else 64
        repeats = ns.repeats if ns.repeats is not None else 2

    result = run_benchmark(scale, k, repeats, ns.tile_nnz, ns.seed)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_2.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        required = 1.0 if ns.quick else 3.0
        if result["speedup"] < required:
            print(
                f"FAIL: binned speedup {result['speedup']:.2f}x is below the "
                f"required {required:.1f}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: binned speedup {result['speedup']:.2f}x >= {required:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
