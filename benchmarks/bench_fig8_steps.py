"""Fig. 8 + §V-C — hotspot-guided tuning of S1/S2/S3 (Netflix, K20c).

Paper shapes: S1 dominates after batching (~70%); optimizing S1 promotes
S2 to hotspot; optimizing S2 restores S1 dominance; switching S3 to the
Cholesky method shrinks the remaining solve time (15 s → 12 s scale).
"""

from __future__ import annotations

from conftest import emit
from repro.bench import run_fig8


def test_fig8_report(warm_sequences, benchmark):
    result = benchmark.pedantic(run_fig8, rounds=3, iterations=1)
    emit("Fig. 8", result.render())
    totals = [p.total_seconds for p in result.profiles]
    assert totals == sorted(totals, reverse=True)
    by_label = {p.label: p for p in result.profiles}
    assert by_label["thread batching"].shares[0] > 0.5
    assert (
        by_label["optimizing S3 (Cholesky)"].s3_seconds
        < by_label["optimizing S2"].s3_seconds
    )
