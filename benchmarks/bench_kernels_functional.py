"""Functional micro-benchmarks: the NumPy fast path and its substrates.

These measure real Python/NumPy wall time (not simulated device time) for
the building blocks the solvers execute: normal-equation assembly,
batched Cholesky, a full half-sweep and a full training iteration on a
MovieLens-shaped matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ALSConfig, train_als
from repro.kernels.fastpath import fast_half_sweep, fast_iteration
from repro.linalg import batched_cholesky_solve, batched_normal_equations

K = 10
LAM = 0.1


@pytest.fixture(scope="module")
def factors(movielens_small):
    _, csr, _ = movielens_small
    rng = np.random.default_rng(0)
    return rng.standard_normal((csr.ncols, K))


def test_bench_normal_equation_assembly(movielens_small, factors, benchmark):
    _, csr, _ = movielens_small
    A, b = benchmark(batched_normal_equations, csr, factors, LAM)
    assert A.shape == (csr.nrows, K, K)
    assert np.isfinite(b).all()


def test_bench_batched_cholesky(movielens_small, factors, benchmark):
    _, csr, _ = movielens_small
    A, b = batched_normal_equations(csr, factors, LAM)
    x = benchmark(batched_cholesky_solve, A, b)
    np.testing.assert_allclose(
        np.einsum("bij,bj->bi", A, x), b, rtol=1e-6, atol=1e-8
    )


def test_bench_half_sweep(movielens_small, factors, benchmark):
    _, csr, _ = movielens_small
    X = benchmark(fast_half_sweep, csr, factors, LAM)
    assert X.shape == (csr.nrows, K)


def test_bench_full_iteration(movielens_small, factors, benchmark):
    _, csr, csc = movielens_small
    X0 = np.zeros((csr.nrows, K))
    X, Y = benchmark(fast_iteration, csr, csc, X0, factors, LAM)
    assert X.shape[0] == csr.nrows and Y.shape[0] == csr.ncols


def test_bench_training_run(movielens_small, benchmark):
    coo, _, _ = movielens_small
    model = benchmark.pedantic(
        train_als,
        args=(coo, ALSConfig(k=K, lam=LAM, iterations=2, track_loss=False)),
        rounds=2,
        iterations=1,
    )
    assert model.X.shape[1] == K
