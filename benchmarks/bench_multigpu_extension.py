"""Extension — multi-GPU data-parallel scaling (cuMF's regime, §VI).

Prices the data-parallel ALS scheme the paper's related work attributes
to cuMF on 1–4 simulated K20c devices: near-linear on Netflix, badly
communication-bound on the tiny YahooMusic R4.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.clsim import NVIDIA_TESLA_K20C as GPU
from repro.clsim.multidevice import simulate_multi_device
from repro.datasets import NETFLIX, YAHOO_R4, degree_sequences


@pytest.mark.parametrize("spec", [NETFLIX, YAHOO_R4], ids=lambda s: s.abbr)
def test_multigpu_scaling(spec, benchmark):
    rows, cols = degree_sequences(spec, seed=7)
    runs = benchmark.pedantic(
        lambda: {d: simulate_multi_device(GPU, d, rows, cols) for d in (1, 2, 4)},
        rounds=2,
        iterations=1,
    )
    table_rows = [
        [
            d,
            runs[d].compute_seconds,
            runs[d].comm_seconds,
            runs[d].seconds,
            runs[d].speedup_over(runs[1]),
        ]
        for d in (1, 2, 4)
    ]
    emit(
        f"Extension: multi-GPU scaling ({spec.abbr})",
        format_table(
            ["GPUs", "compute [s]", "comm [s]", "total [s]", "speedup"],
            table_rows,
        ),
    )
    assert runs[2].seconds < runs[1].seconds
    assert runs[4].speedup_over(runs[1]) < 4.0
