#!/usr/bin/env python
"""Benchmark of the S3 batched solvers and the parallel half-sweep.

Isolates stage S3 (solving the per-user normal equations) on the full
ml-1m shape: the reference blocked-Cholesky path against the batched
LAPACK ``gesv`` path and the Gaussian-elimination comparator, then a
whole half-sweep (S1+S2+S3) serial vs parallel with bitwise-identity
verification.  ``BENCH_3.json`` at the repo root records the committed
numbers.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_solve.py            # full ml-1m, k=64
    PYTHONPATH=src python benchmarks/bench_solve.py --quick    # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_solve.py --check    # exit 1 on regression

The benchmark body lives in :mod:`repro.bench.workloads.solve` (the
grid workload registered as ``solve``); this entry point is a thin
single-cell wrapper over :func:`repro.bench.grid.run_single_cell`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.grid import run_single_cell
from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.bench.workloads.solve import check_record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI perf-smoke configuration: full ml-1m solve shape at k=64 "
        "but one repeat and no gaussian timing",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless lapack beats the reference solve by >= 3x "
        "(and, on multi-core hosts, the parallel sweep beats serial)",
    )
    parser.add_argument("--k", type=int, default=None, help="latent factor size")
    parser.add_argument("--scale", type=float, default=None, help="ml-1m scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_3.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)
    enable_telemetry_if_requested(ns)

    # check=False: the record must land (and be written below) even when
    # the bar is missed; the bar is applied explicitly for --check.
    params = {"quick": ns.quick, "check": False, "seed": ns.seed}
    for name in ("scale", "k", "repeats"):
        if getattr(ns, name) is not None:
            params[name] = getattr(ns, name)
    result = run_single_cell("solve", params)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_3.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        failures = check_record(result, params)
        if failures:
            for message in failures:
                print(f"FAIL: {message}", file=sys.stderr)
            return 1
        print(
            f"OK: lapack {result['lapack_speedup']:.2f}x >= 3.0x, parallel "
            f"sweep {result['sweep']['speedup']:.2f}x with "
            f"{result['sweep']['workers']} workers, bitwise identical"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
