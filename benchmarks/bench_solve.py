#!/usr/bin/env python
"""Before/after benchmark of the S3 solve and the parallel half-sweep.

Times the from-scratch batched Cholesky reference (O(k) Python-level
einsum dispatches per sweep) against the Gaussian comparator and the
LAPACK-class ``lapack`` variant (one batched ``dpotrf`` + two batched
triangular solves) on normal equations assembled from a synthetic
MovieLens-1M-shaped matrix, then times the end-to-end half-sweep
serially vs. sharded across the multicore executor — ``BENCH_3.json``
at the repo root records the committed numbers.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_solve.py            # full ml-1m, k=64
    PYTHONPATH=src python benchmarks/bench_solve.py --quick    # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_solve.py --check    # exit 1 on regression

``--check`` fails when the lapack variant does not beat the reference by
at least 3x (the ISSUE 3 acceptance bar, enforced at k >= 32).  The
parallel-sweep comparison is asserted only on multi-core hosts — with a
single core the executor resolves ``auto`` to one worker and the sweep
is the serial path by construction.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.datasets.catalog import MOVIELENS1M
from repro.datasets.synthetic import generate_ratings
from repro.kernels.fastpath import fast_half_sweep
from repro.linalg.normal_equations import batched_normal_equations
from repro.linalg.solvers import SOLVERS
from repro.parallel import SweepExecutor
from repro.sparse.csr import CSRMatrix


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def run_benchmark(
    scale: float, k: int, repeats: int, seed: int, skip: tuple[str, ...] = ()
) -> dict:
    spec = MOVIELENS1M.scaled(scale)
    coo = generate_ratings(spec, seed=seed)
    R = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(seed)
    Y = rng.standard_normal((R.ncols, k))
    # Warm the derived-structure caches (a training run reuses one matrix
    # across every sweep) and assemble the S3 input once: the solve
    # comparison isolates S3, the sweep comparison covers S1+S2+S3.
    rows, sub = R.occupied_submatrix()
    A, b = batched_normal_equations(sub, Y, 0.1)
    batch = A.shape[0]

    print(
        f"solve benchmark: {spec.abbr} scale={scale:g} "
        f"(m={R.nrows}, n={R.ncols}, nnz={R.nnz}), k={k}, "
        f"batch={batch}, repeats={repeats}, cores={os.cpu_count()}",
        flush=True,
    )

    solve_seconds: dict[str, float] = {}
    for name, fn in SOLVERS.items():
        if name in skip:
            continue
        solve_seconds[name] = _best_of(lambda: fn(A, b), repeats)
        print(f"  s3 {name:9s}: {solve_seconds[name]:8.3f} s", flush=True)
    lapack_speedup = solve_seconds["cholesky"] / solve_seconds["lapack"]
    print(f"  lapack speedup over reference: {lapack_speedup:8.2f}x", flush=True)

    X_serial = fast_half_sweep(R, Y, 0.1, solver="lapack")  # untimed warm-up
    serial_seconds = _best_of(
        lambda: fast_half_sweep(R, Y, 0.1, solver="lapack"), repeats
    )
    with SweepExecutor("auto") as executor:
        workers = executor.workers
        parallel_seconds = _best_of(
            lambda: executor.half_sweep(R, Y, 0.1, solver="lapack"), repeats
        )
        X_parallel = executor.half_sweep(R, Y, 0.1, solver="lapack")
    bitwise = bool(np.array_equal(X_serial, X_parallel))
    sweep_speedup = serial_seconds / parallel_seconds
    print(f"  sweep workers=1   : {serial_seconds:8.3f} s", flush=True)
    print(f"  sweep workers={workers:<4d}: {parallel_seconds:8.3f} s "
          f"({sweep_speedup:.2f}x, bitwise identical: {bitwise})", flush=True)

    return {
        "benchmark": "s3_solve_and_parallel_sweep",
        "dataset": spec.abbr,
        "scale": scale,
        "m": R.nrows,
        "n": R.ncols,
        "nnz": R.nnz,
        "k": k,
        "batch": batch,
        "repeats": repeats,
        "seed": seed,
        "cores": os.cpu_count(),
        "s3_seconds": solve_seconds,
        "lapack_speedup": lapack_speedup,
        "sweep": {
            "solver": "lapack",
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "workers": workers,
            "speedup": sweep_speedup,
            "bitwise_identical": bitwise,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI perf-smoke configuration: full ml-1m solve shape at k=64 "
        "but one repeat and no gaussian timing",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless lapack beats the reference solve by >= 3x "
        "(and, on multi-core hosts, the parallel sweep beats serial)",
    )
    parser.add_argument("--k", type=int, default=None, help="latent factor size")
    parser.add_argument("--scale", type=float, default=None, help="ml-1m scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_3.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)
    enable_telemetry_if_requested(ns)

    if ns.quick:
        # Same solve shape as the full run — the 3x bar is only honest on
        # the real ml-1m batch — but one repeat and no gaussian timing
        # (the §V-C comparator is ~4x the reference; the smoke only needs
        # reference-vs-lapack and the sweep comparison).
        scale = ns.scale if ns.scale is not None else 1.0
        k = ns.k if ns.k is not None else 64
        repeats = ns.repeats if ns.repeats is not None else 1
        skip = ("gaussian",)
    else:
        scale = ns.scale if ns.scale is not None else 1.0
        k = ns.k if ns.k is not None else 64
        repeats = ns.repeats if ns.repeats is not None else 2
        skip = ()

    result = run_benchmark(scale, k, repeats, ns.seed, skip=skip)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_3.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        failures = []
        if k >= 32 and result["lapack_speedup"] < 3.0:
            failures.append(
                f"lapack speedup {result['lapack_speedup']:.2f}x is below the "
                f"required 3.0x at k={k}"
            )
        if not result["sweep"]["bitwise_identical"]:
            failures.append("parallel sweep result differs from serial")
        cores = os.cpu_count() or 1
        if cores > 1 and result["sweep"]["speedup"] <= 1.0:
            failures.append(
                f"parallel sweep ({result['sweep']['workers']} workers on "
                f"{cores} cores) not faster than serial "
                f"({result['sweep']['speedup']:.2f}x)"
            )
        if failures:
            for message in failures:
                print(f"FAIL: {message}", file=sys.stderr)
            return 1
        print(
            f"OK: lapack {result['lapack_speedup']:.2f}x >= 3.0x; parallel "
            f"sweep {result['sweep']['speedup']:.2f}x on "
            f"{result['sweep']['workers']} worker(s), bitwise identical"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
