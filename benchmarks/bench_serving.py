#!/usr/bin/env python
"""Online serving service: batching, caching, fold-in — the load test.

Trains a synthetic MovieLens-1M-shape model once, then drives the
long-lived :class:`repro.serving.service.RecommendService` with the
closed/open-loop generators of :mod:`repro.serving.loadgen`:

* **batched vs unbatched** — the same closed-loop concurrency sweep
  against a micro-batching service (``max_batch``, coalescing window)
  and a ``max_batch=1`` baseline, result cache off in both so the
  comparison isolates coalescing.  Headline metric:
  ``batching_speedup`` (throughput ratio).
* **cached vs cold** — the same request stream twice against a caching
  service; the second pass answers from the LRU and reports the hit
  rate and speedup.
* **open-loop percentiles** — Poisson arrivals at a fixed rate;
  p50/p95/p99 come from the client-side ``QuantileHistogram`` and
  include queueing delay behind the batch window.
* **fold-in parity** — new users folded in through
  ``Recommender.fold_in_users`` must match the corresponding rows of a
  fresh serial float64 half-sweep over the augmented matrix *bitwise*
  (explicit ALS, ALS-WR, implicit), with the trainers patched out to
  prove no retrain happens.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serving.py           # full, writes BENCH_9.json
    PYTHONPATH=src python benchmarks/bench_serving.py --quick   # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --check   # exit 1 on failure

``--check`` verifies the tentpole claims: batched throughput clears the
bar over unbatched (1.5x full, 1.2x for the tiny ``--quick`` shape),
fold-in is bitwise for all three algorithms without retraining, and
every loop reports non-zero throughput with zero errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.datasets.catalog import MOVIELENS1M

K = 64
LAM = 0.1
ALPHA = 40.0
ITERATIONS = 3
N_TOP = 10
MAX_BATCH = 32
BATCH_WINDOW = 0.002
ALGORITHMS = ("als", "als-wr", "implicit")


def _train(ratings, *, k: int, iterations: int, seed: int, algorithm: str = "als"):
    from repro.api import Recommender

    return Recommender(
        k=k, lam=LAM, iterations=iterations, seed=seed,
        algorithm=algorithm, alpha=ALPHA,
    ).fit(ratings)


def _closed(service, users, ns, *, concurrency=None) -> dict:
    from repro.serving.loadgen import run_closed_loop

    report = run_closed_loop(
        service, users, n=N_TOP,
        concurrency=concurrency or ns.concurrency,
        requests_per_worker=ns.requests, seed=ns.seed,
    )
    return report.to_dict()


def _measure_batching(rec, users, ns) -> dict:
    """Closed-loop throughput, micro-batched vs one-request-at-a-time.

    Cache off in both services so coalescing is the only difference.
    """
    from repro.serving.service import RecommendService

    out: dict = {}
    for label, kwargs in (
        ("unbatched", dict(max_batch=1, batch_window=0.0, cache_size=0)),
        ("batched", dict(max_batch=ns.max_batch, batch_window=ns.batch_window,
                         cache_size=0)),
    ):
        with RecommendService(rec, **kwargs) as service:
            out[label] = _closed(service, users, ns)
            out[label]["mean_batch_size"] = (
                service.stats.snapshot()["mean_batch_size"]
            )
        lat = out[label]["latency"]
        print(
            f"  {label:9s}: {out[label]['throughput']:9.0f} req/s "
            f"(batch {out[label]['mean_batch_size']:5.1f}, "
            f"p50={lat['p50'] * 1e3:.2f} ms p95={lat['p95'] * 1e3:.2f} ms "
            f"p99={lat['p99'] * 1e3:.2f} ms)",
            flush=True,
        )
    out["batching_speedup"] = (
        out["batched"]["throughput"] / out["unbatched"]["throughput"]
        if out["unbatched"]["throughput"] > 0 else 0.0
    )
    print(f"  batching speedup {out['batching_speedup']:.2f}x", flush=True)
    return out


def _measure_cache(rec, users, ns) -> dict:
    """The same closed-loop stream twice; pass two answers from the LRU."""
    from repro.serving.service import RecommendService

    pool = users[: max(8, users.size // 8)]  # small pool -> guaranteed reuse
    with RecommendService(
        rec, max_batch=ns.max_batch, batch_window=ns.batch_window,
        cache_size=max(4096, 2 * pool.size),
    ) as service:
        cold = _closed(service, pool, ns)
        warm = _closed(service, pool, ns)  # same seed: identical picks
        stats = service.stats.snapshot()
    hits = stats["cache_hits"]
    hit_rate = hits / stats["requests"] if stats["requests"] else 0.0
    speedup = (
        warm["throughput"] / cold["throughput"]
        if cold["throughput"] > 0 else 0.0
    )
    print(
        f"  cache: cold {cold['throughput']:9.0f} req/s, "
        f"warm {warm['throughput']:9.0f} req/s -> {speedup:.2f}x "
        f"(hit rate {hit_rate:.0%})",
        flush=True,
    )
    return {
        "cold": cold,
        "warm": warm,
        "cache_speedup": speedup,
        "hit_rate": hit_rate,
    }


def _measure_open_loop(rec, users, ns) -> dict:
    """Poisson arrivals at a fixed offered rate; tail includes queueing."""
    from repro.serving.loadgen import run_open_loop
    from repro.serving.service import RecommendService

    with RecommendService(
        rec, max_batch=ns.max_batch, batch_window=ns.batch_window, cache_size=0
    ) as service:
        report = run_open_loop(
            service, users, n=N_TOP, rate=ns.rate, duration=ns.duration,
            seed=ns.seed,
        ).to_dict()
    lat = report["latency"]
    print(
        f"  open loop @ {ns.rate:.0f}/s for {ns.duration:.1f} s: "
        f"{report['throughput']:9.0f} req/s served "
        f"(p50={lat['p50'] * 1e3:.2f} ms p95={lat['p95'] * 1e3:.2f} ms "
        f"p99={lat['p99'] * 1e3:.2f} ms)",
        flush=True,
    )
    return report


def _check_foldin(ratings, ns) -> tuple[dict, bool]:
    """Bitwise fold-in parity per algorithm, with the trainers disarmed.

    After ``fold_in_users`` the recommender's training matrix *is* the
    augmented matrix, so the reference is a fresh serial float64
    half-sweep over it; the folded rows must equal its tail rows bit for
    bit.  The trainer registry is swapped for tripwires during fold-in:
    any retrain attempt raises.
    """
    import repro.api as api_mod
    from repro.core.alswr import weighted_half_sweep
    from repro.core.implicit import implicit_half_sweep
    from repro.kernels.fastpath import fast_half_sweep
    from repro.sparse.coo import COOMatrix

    rng = np.random.default_rng(ns.seed + 1)
    m, n = ratings.shape
    h = 8
    rows = np.repeat(np.arange(h), 6)
    cols = rng.integers(0, n, rows.size)
    vals = rng.integers(1, 6, rows.size).astype(np.float32)
    new_users = COOMatrix((h, n), rows, cols, vals)

    parity: dict = {}
    no_retrain = True
    for algorithm in ALGORITHMS:
        rec = _train(
            ratings, k=ns.check_k, iterations=2, seed=ns.seed,
            algorithm=algorithm,
        )
        armed = dict(api_mod._ALGORITHMS)

        def _tripwire(*a, **kw):
            raise AssertionError("fold-in must not retrain")

        api_mod._ALGORITHMS = {name: _tripwire for name in armed}
        try:
            ids = rec.fold_in_users(new_users)
        except AssertionError:
            no_retrain = False
            parity[algorithm] = False
            continue
        finally:
            api_mod._ALGORITHMS = armed
        aug = rec._train_csr
        Y = np.asarray(rec.model.Y)
        if algorithm == "als":
            ref = fast_half_sweep(aug, Y, LAM)
        elif algorithm == "als-wr":
            ref = weighted_half_sweep(aug, Y, LAM, None)
        else:
            ref = implicit_half_sweep(aug, Y, LAM, ALPHA)
        parity[algorithm] = bool(
            np.array_equal(np.asarray(rec.model.X)[ids], ref[ids])
        )
    print(f"  fold-in bitwise: {parity} (no retrain: {no_retrain})", flush=True)
    return parity, no_retrain


def run_benchmark(ns: argparse.Namespace) -> list[dict]:
    from repro.datasets.synthetic import generate_ratings

    spec = MOVIELENS1M.scaled(ns.scale)
    ratings = generate_ratings(spec, seed=ns.seed)
    print(
        f"serving benchmark: {spec.abbr} scale={ns.scale:g} "
        f"(m={spec.m}, n={spec.n}, nnz={ratings.nnz}), k={ns.k}, "
        f"top-{N_TOP}, max_batch={ns.max_batch}, "
        f"window={ns.batch_window * 1e3:g} ms, "
        f"concurrency={ns.concurrency} x {ns.requests} requests",
        flush=True,
    )
    rec = _train(ratings, k=ns.k, iterations=ns.iterations, seed=ns.seed)
    users = np.arange(spec.m, dtype=np.int64)

    batching = _measure_batching(rec, users, ns)
    cache = _measure_cache(rec, users, ns)
    open_loop = _measure_open_loop(rec, users, ns)

    check_spec = MOVIELENS1M.scaled(ns.check_scale)
    check_ratings = generate_ratings(check_spec, seed=ns.seed)
    foldin_bitwise, no_retrain = _check_foldin(check_ratings, ns)

    batched_lat = batching["batched"]["latency"]
    shape = {
        "dataset": spec.abbr,
        "scale": ns.scale,
        "m": spec.m,
        "n": spec.n,
        "nnz": ratings.nnz,
        "k": ns.k,
        "lam": LAM,
        "alpha": ALPHA,
        "iterations": ns.iterations,
        "seed": ns.seed,
    }
    main_record = {
        "benchmark": "serving_service",
        **shape,
        "n_top": N_TOP,
        "max_batch": ns.max_batch,
        "batch_window": ns.batch_window,
        "concurrency": ns.concurrency,
        "requests_per_worker": ns.requests,
        "batching": batching,
        "cache": cache,
        "open_loop": open_loop,
        "batching_speedup": batching["batching_speedup"],
        "cache_speedup": cache["cache_speedup"],
        "cache_hit_rate": cache["hit_rate"],
        "serve_throughput": batching["batched"]["throughput"],
        "serve_p50_latency": batched_lat["p50"],
        "serve_p95_latency": batched_lat["p95"],
        "serve_p99_latency": batched_lat["p99"],
        "foldin_bitwise": foldin_bitwise,
        "foldin_no_retrain": no_retrain,
    }
    # A second, explicitly-keyed record gates absolute served throughput
    # at this shape (batching_speedup is a ratio and would mask a uniform
    # slowdown of both arms).
    throughput_record = {
        "benchmark": "serving_throughput",
        "gate_metric": "serve_throughput",
        **shape,
        "n_top": N_TOP,
        "max_batch": ns.max_batch,
        "batch_window": ns.batch_window,
        "concurrency": ns.concurrency,
        "serve_throughput": batching["batched"]["throughput"],
        "serve_p95_latency": batched_lat["p95"],
    }
    return [main_record, throughput_record]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small configuration for CI (1/64-scale ML1M, k=16)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on failure: batching speedup below the bar "
        "(1.5 full, 1.2 quick), a fold-in parity/retrain failure, zero "
        "throughput, or load-loop errors",
    )
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None, help="ML1M scale")
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument(
        "--max-batch", type=int, default=None,
        help="coalescing cap (default: match --concurrency, so a batch "
        "closes the moment every in-flight client has arrived instead of "
        "always waiting out the window)",
    )
    parser.add_argument("--batch-window", type=float, default=BATCH_WINDOW)
    parser.add_argument(
        "--concurrency", type=int, default=None,
        help="closed-loop client threads (default: 8 full, 4 quick)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="closed-loop requests per client (default: 200 full, 40 quick)",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="open-loop offered arrivals/s (default: 500 full, 200 quick)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="open-loop seconds (default: 4 full, 1 quick)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_9.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)

    enable_telemetry_if_requested(ns)
    if ns.scale is None:
        ns.scale = 1 / 64 if ns.quick else 1 / 8
    if ns.k is None:
        ns.k = 16 if ns.quick else K
    if ns.iterations is None:
        ns.iterations = 2 if ns.quick else ITERATIONS
    if ns.concurrency is None:
        ns.concurrency = 8 if ns.quick else 32
    if ns.max_batch is None:
        ns.max_batch = min(MAX_BATCH, ns.concurrency)
    if ns.requests is None:
        ns.requests = 40 if ns.quick else 200
    if ns.rate is None:
        ns.rate = 200.0 if ns.quick else 500.0
    if ns.duration is None:
        ns.duration = 1.0 if ns.quick else 4.0
    ns.check_scale = min(ns.scale, 1 / 64)
    ns.check_k = min(ns.k, 16)

    records = run_benchmark(ns)
    result = records[0]

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_9.json"
    if out:
        write_record(out, records)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        bar = 1.2 if ns.quick else 1.5
        failures = []
        if result["batching_speedup"] < bar:
            failures.append(
                f"batching speedup {result['batching_speedup']:.2f} is below "
                f"the required {bar:.2f}"
            )
        for alg, ok in result["foldin_bitwise"].items():
            if not ok:
                failures.append(
                    f"{alg}: folded-in factors are not bitwise-equal to a "
                    f"fresh augmented-matrix half-sweep"
                )
        if not result["foldin_no_retrain"]:
            failures.append("fold_in_users triggered a trainer call")
        for label in ("batched", "unbatched"):
            if result["batching"][label]["throughput"] <= 0:
                failures.append(f"{label} closed loop served nothing")
            if result["batching"][label]["errors"]:
                failures.append(
                    f"{label} closed loop had "
                    f"{result['batching'][label]['errors']} errors"
                )
        if result["open_loop"]["throughput"] <= 0:
            failures.append("open loop served nothing")
        if result["open_loop"]["errors"]:
            failures.append(
                f"open loop had {result['open_loop']['errors']} errors"
            )
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        print(
            f"OK: batching {result['batching_speedup']:.2f}x >= {bar:.2f}, "
            f"cache {result['cache_speedup']:.2f}x "
            f"(hit rate {result['cache_hit_rate']:.0%}), fold-in bitwise "
            f"for {', '.join(ALGORITHMS)} with no retrain"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
