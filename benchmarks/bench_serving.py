#!/usr/bin/env python
"""Benchmark of the long-lived RecommendService under load.

Trains an ml-1m-shaped model, stands the service up, and measures:
micro-batched vs unbatched closed-loop throughput and latency
percentiles, warm vs cold result-cache throughput, an open-loop Poisson
arrival run at a fixed offered rate, and bitwise fold-in parity with
the trainers disarmed.  ``BENCH_9.json`` at the repo root records the
committed numbers (two records: ``serving_service`` gated on
``batching_speedup`` and ``serving_throughput`` gated on absolute
``serve_throughput``).

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serving.py            # ML1M/8, k=64
    PYTHONPATH=src python benchmarks/bench_serving.py --quick    # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --check    # exit 1 on failure

The benchmark body lives in :mod:`repro.bench.workloads.serving` (the
grid workload registered as ``serving``); this entry point is a thin
single-cell wrapper over :func:`repro.bench.grid.run_single_cell`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.grid import run_single_cell
from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.bench.workloads.serving import BATCH_WINDOW, check_record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small configuration for CI (1/64-scale ML1M, k=16)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on failure: batching speedup below the bar "
        "(1.5 full, 1.2 quick), a fold-in parity/retrain failure, zero "
        "throughput, or load-loop errors",
    )
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None, help="ML1M scale")
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument(
        "--max-batch", type=int, default=None,
        help="coalescing cap (default: match --concurrency, so a batch "
        "closes the moment every in-flight client has arrived instead of "
        "always waiting out the window)",
    )
    parser.add_argument("--batch-window", type=float, default=BATCH_WINDOW)
    parser.add_argument(
        "--concurrency", type=int, default=None,
        help="closed-loop client threads (default: 32 full, 8 quick)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="closed-loop requests per client (default: 200 full, 40 quick)",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="open-loop offered arrivals/s (default: 500 full, 200 quick)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="open-loop seconds (default: 4 full, 1 quick)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_9.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)
    enable_telemetry_if_requested(ns)

    # check=False: the records must land (and be written below) even when
    # a bar is missed; the bars are applied explicitly for --check.
    params = {
        "quick": ns.quick, "check": False,
        "batch_window": ns.batch_window, "seed": ns.seed,
    }
    for name in (
        "scale", "k", "iterations", "max_batch", "concurrency",
        "requests", "rate", "duration",
    ):
        if getattr(ns, name) is not None:
            params[name] = getattr(ns, name)
    records = run_single_cell("serving", params)
    result = records[0]

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_9.json"
    if out:
        write_record(out, records)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        bar = 1.2 if ns.quick else 1.5
        failures = check_record(records, params)
        if failures:
            for message in failures:
                print(f"FAIL: {message}", file=sys.stderr)
            return 1
        print(
            f"OK: batching {result['batching_speedup']:.2f}x >= {bar:.2f}, "
            f"cache {result['cache_speedup']:.2f}x "
            f"(hit rate {result['cache_hit_rate']:.0%}), fold-in bitwise "
            f"with no retrain"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
