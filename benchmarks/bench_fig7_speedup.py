"""Fig. 7 — speedup over SAC15 (both devices) and over cuMF/HPDC16.

Paper anchors: 5.5× (CPU), 21.2× (K20c), 2.2–6.8× vs cuMF with the
largest win on YahooMusic R4.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.bench import run_fig7


def test_fig7_report(warm_sequences, benchmark):
    result = benchmark.pedantic(run_fig7, rounds=3, iterations=1)
    emit("Fig. 7", result.render())
    assert 4.0 < np.mean(list(result.vs_sac15_cpu.values())) < 7.5
    assert 15.0 < np.mean(list(result.vs_sac15_gpu.values())) < 28.0
    assert max(result.vs_hpdc16_gpu, key=result.vs_hpdc16_gpu.get) == "YMR4"
