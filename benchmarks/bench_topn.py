#!/usr/bin/env python
"""Benchmark of tiled top-N serving against the dense batch path.

Scores every ml-1m user against every item and extracts the top-10
unseen recommendations two ways: the pre-engine dense batch (one
(users x items) score matrix) and the tiled :class:`TopNEngine` in
float64 and float32.  ``BENCH_4.json`` at the repo root records the
committed numbers.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_topn.py            # full ml-1m, k=64
    PYTHONPATH=src python benchmarks/bench_topn.py --quick    # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_topn.py --check    # exit 1 on regression

The benchmark body lives in :mod:`repro.bench.workloads.topn` (the grid
workload registered as ``topn``); this entry point is a thin
single-cell wrapper over :func:`repro.bench.grid.run_single_cell`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.grid import run_single_cell
from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.bench.workloads.topn import check_record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI perf-smoke configuration: full ml-1m serving shape (the 2x "
        "bar is only honest there), no report file by default",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the best engine beats the dense batch by "
        ">= 2x users/sec (1.8x with --quick, leaving room for CI timing "
        "noise) within <= 1/4 of its peak scoring memory",
    )
    parser.add_argument("--k", type=int, default=None, help="latent factor size")
    parser.add_argument("--n", type=int, default=10, help="recommendations per user")
    parser.add_argument("--scale", type=float, default=None, help="ml-1m scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_4.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)
    enable_telemetry_if_requested(ns)

    # check=False: the record must land (and be written below) even when
    # the bar is missed; the bar is applied explicitly for --check.
    params = {
        "quick": ns.quick, "check": False, "top_n": ns.n, "seed": ns.seed,
    }
    for name in ("scale", "k", "repeats"):
        if getattr(ns, name) is not None:
            params[name] = getattr(ns, name)
    result = run_single_cell("topn", params)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_4.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        bar = 1.8 if ns.quick else 2.0
        failures = check_record(result, params)
        if failures:
            for message in failures:
                print(f"FAIL: {message}", file=sys.stderr)
            return 1
        print(
            f"OK: engine {result['best_speedup']:.2f}x >= {bar:.1f}x at "
            f"{result['best_peak_fraction_of_dense']:.2%} of dense peak memory; "
            f"float64 result bit-identical"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
