#!/usr/bin/env python
"""Before/after benchmark of batched top-N serving.

Times the pre-engine ``recommend_top_n_batch`` path (one dense
``(U, n_items)`` score matrix, a per-user Python loop for exclusion,
full-width argpartition) against the tiled streaming engine on a
synthetic MovieLens-1M-shaped problem — ``BENCH_4.json`` at the repo
root records the committed numbers.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_topn.py            # full ml-1m, k=64
    PYTHONPATH=src python benchmarks/bench_topn.py --quick    # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_topn.py --check    # exit 1 on regression

``--check`` fails when the best engine configuration does not beat the
dense batch path by at least 2x users/sec (1.8x under ``--quick``,
which tolerates CI timing noise around the ~2.0-2.1x true ratio), when
its peak scoring scratch exceeds a quarter of the dense score matrix,
or when the float64 engine's result is not bit-identical to the dense
reference.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.datasets.catalog import MOVIELENS1M
from repro.datasets.synthetic import generate_ratings
from repro.serving.engine import DEFAULT_TILE_BYTES, TopNEngine
from repro.sparse.csr import CSRMatrix


def naive_topn_batch(X, Y, users, n, exclude):
    """The pre-engine ``recommend_top_n_batch`` body, verbatim."""
    scores = X[users] @ Y.T  # (U, n_items), the dense matrix the engine avoids
    if exclude is not None:
        for pos, user in enumerate(users):
            seen, _ = exclude.row_slice(int(user))
            scores[pos, seen] = -np.inf
    top = np.argpartition(scores, -n, axis=1)[:, -n:]
    row_scores = np.take_along_axis(scores, top, axis=1)
    order = np.argsort(row_scores, axis=1)[:, ::-1]
    ranked = np.take_along_axis(top, order, axis=1)
    return ranked, np.take_along_axis(row_scores, order, axis=1), scores.nbytes


def _interleaved_best(fns: dict[str, object], repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` wall time per candidate, measured round-robin.

    Interleaving keeps every candidate exposed to the same machine
    conditions within each round — timing all repeats of one candidate
    back-to-back lets a load spike land entirely on one side of the
    before/after ratio.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            t0 = perf_counter()
            fn()
            best[name] = min(best[name], perf_counter() - t0)
    return best


def run_benchmark(scale: float, k: int, top_n: int, repeats: int, seed: int) -> dict:
    spec = MOVIELENS1M.scaled(scale)
    coo = generate_ratings(spec, seed=seed)
    R = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((R.nrows, k))
    Y = rng.standard_normal((R.ncols, k))
    users = np.arange(R.nrows)

    print(
        f"top-N benchmark: {spec.abbr} scale={scale:g} "
        f"(m={R.nrows}, n={R.ncols}, nnz={R.nnz}), k={k}, N={top_n}, "
        f"repeats={repeats}, cores={os.cpu_count()}",
        flush=True,
    )

    ref_items, ref_scores, dense_bytes = naive_topn_batch(X, Y, users, top_n, R)
    # Where the dense path ran out of unseen items it emits arbitrary
    # -inf-scored ids; the engine pads those slots with -1 (the
    # documented contract), so identity is asserted on finite slots only.
    ref_valid = np.isfinite(ref_scores)

    configs = [
        ("engine-f64", dict(tile_bytes=DEFAULT_TILE_BYTES, dtype="float64")),
        ("engine-f32", dict(tile_bytes=4 << 20, dtype="float32")),
    ]
    built = {
        name: TopNEngine(X, Y, user_block=2048, **kwargs)
        for name, kwargs in configs
    }
    f64_identical = None
    for name, kwargs in configs:
        engine = built[name]
        result = engine.query(users, n=top_n, exclude=R)  # warm-up + parity
        if kwargs["dtype"] == "float64":
            f64_identical = bool(
                np.array_equal(result.items[ref_valid], ref_items[ref_valid])
                and ((result.items == -1) == ~ref_valid).all()
            )

    timings = _interleaved_best(
        {
            "dense": lambda: naive_topn_batch(X, Y, users, top_n, R),
            **{
                name: (lambda e=built[name]: e.query(users, n=top_n, exclude=R))
                for name, _ in configs
            },
        },
        repeats,
    )
    naive_seconds = timings["dense"]
    naive_ups = users.size / naive_seconds
    print(
        f"  dense batch      : {naive_seconds:8.3f} s  {naive_ups:10,.0f} u/s  "
        f"peak {dense_bytes / 2**20:8.1f} MB",
        flush=True,
    )

    engines: dict[str, dict] = {}
    for name, kwargs in configs:
        engine = built[name]
        seconds = timings[name]
        ups = users.size / seconds
        engines[name] = {
            **{key: val for key, val in kwargs.items()},
            "seconds": seconds,
            "users_per_sec": ups,
            "speedup": ups / naive_ups,
            "peak_scoring_bytes": engine.peak_tile_bytes,
        }
        print(
            f"  {name:17s}: {seconds:8.3f} s  {ups:10,.0f} u/s  "
            f"peak {engine.peak_tile_bytes / 2**20:8.1f} MB  "
            f"({ups / naive_ups:.2f}x)",
            flush=True,
        )

    from repro.autotune.serving import select_serving

    decision = select_serving(R.ncols, k)
    print(
        f"  autotune picks   : tile_bytes={decision.tile_bytes} "
        f"dtype={decision.dtype}",
        flush=True,
    )

    best = max(engines.values(), key=lambda e: e["users_per_sec"])
    return {
        "benchmark": "tiled_topn_serving",
        "dataset": spec.abbr,
        "scale": scale,
        "m": R.nrows,
        "n": R.ncols,
        "nnz": R.nnz,
        "k": k,
        "top_n": top_n,
        "repeats": repeats,
        "seed": seed,
        "cores": os.cpu_count(),
        "dense_batch": {
            "seconds": naive_seconds,
            "users_per_sec": naive_ups,
            "peak_scoring_bytes": dense_bytes,
        },
        "engines": engines,
        "autotune": {"tile_bytes": decision.tile_bytes, "dtype": decision.dtype},
        "best_speedup": best["speedup"],
        "best_peak_fraction_of_dense": best["peak_scoring_bytes"] / dense_bytes,
        "f64_identical_to_dense": f64_identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI perf-smoke configuration: full ml-1m serving shape (the 2x "
        "bar is only honest there), no report file by default",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the best engine beats the dense batch by "
        ">= 2x users/sec (1.8x with --quick, leaving room for CI timing "
        "noise) within <= 1/4 of its peak scoring memory",
    )
    parser.add_argument("--k", type=int, default=None, help="latent factor size")
    parser.add_argument("--n", type=int, default=10, help="recommendations per user")
    parser.add_argument("--scale", type=float, default=None, help="ml-1m scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_4.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)
    enable_telemetry_if_requested(ns)

    scale = ns.scale if ns.scale is not None else 1.0
    k = ns.k if ns.k is not None else 64
    repeats = ns.repeats if ns.repeats is not None else 3

    result = run_benchmark(scale, k, ns.n, repeats, ns.seed)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_4.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        # Full runs hold the 2x line the committed BENCH_4.json documents;
        # the CI smoke keeps a noise margin — the true ratio sits at
        # ~2.0-2.1x on this shape and single-run timing jitter is +-10%,
        # so a hard 2.0 gate would flake without any code change.
        bar = 1.8 if ns.quick else 2.0
        failures = []
        if result["best_speedup"] < bar:
            failures.append(
                f"best engine speedup {result['best_speedup']:.2f}x is below "
                f"the required {bar:.1f}x"
            )
        if result["best_peak_fraction_of_dense"] > 0.25:
            failures.append(
                f"peak scoring memory is "
                f"{result['best_peak_fraction_of_dense']:.2%} of the dense "
                f"matrix (bar: <= 25%)"
            )
        if not result["f64_identical_to_dense"]:
            failures.append("float64 engine result differs from dense reference")
        if failures:
            for message in failures:
                print(f"FAIL: {message}", file=sys.stderr)
            return 1
        print(
            f"OK: engine {result['best_speedup']:.2f}x >= {bar:.1f}x at "
            f"{result['best_peak_fraction_of_dense']:.2%} of dense peak memory; "
            f"float64 result bit-identical"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
