"""Extension — latent-factor sweep (ours vs cuMF on Netflix/K20c).

Quantifies §V-A's explanation for the cuMF gap: "the HPDC16
implementation has been specially tuned for the k = 100 case".  The
speedup must shrink monotonically from k = 10 toward parity at k = 100.
"""

from __future__ import annotations

from conftest import emit
from repro.bench import run_ksweep


def test_ksweep_report(warm_sequences, benchmark):
    result = benchmark.pedantic(run_ksweep, rounds=3, iterations=1)
    emit("Extension: k sweep", result.render())
    speed = result.speedups()
    ks = sorted(speed)
    assert all(speed[a] >= speed[b] for a, b in zip(ks, ks[1:]))
    assert speed[ks[0]] > 2.0
