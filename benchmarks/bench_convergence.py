#!/usr/bin/env python
"""Subspace (iALS++) block coordinate descent vs full-k ALS sweeps.

Trains the same synthetic MovieLens-1M-shape ratings twice per
algorithm (explicit ALS, ALS-WR, implicit) — once with classic full
k-wide half-sweeps, once descending on d-column subspace blocks — and
compares the loss-vs-wall-seconds curves.  The headline metric is the
**time-to-target-loss speedup**: how much sooner the subspace run
reaches the loss the full-k run ends at.  Solving (k/d) systems of size
d costs d^2/k of the full solve and every block sees the other blocks'
freshest values, so the subspace run both moves faster per pass and
makes more progress per pass.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_convergence.py           # ML1M/8, k=64
    PYTHONPATH=src python benchmarks/bench_convergence.py --quick   # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_convergence.py --check   # exit 1 on failure

``--check`` verifies the tentpole claims: the worst per-algorithm
time-to-target speedup clears the bar (1.5x full runs, 0.7x sanity bar
for the tiny ``--quick`` shape where per-block overhead dominates), the
subspace run's final loss lands within 1e-6 relative of the full-k
final loss, ``block_size == k`` reproduces the full sweep bitwise, and
subspace training on an on-disk ShardStore matches in-RAM bitwise.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.datasets.catalog import MOVIELENS1M

K = 64
LAM = 0.1
ITERATIONS = 8
BLOCK = 16
ALPHA = 40.0
ALGORITHMS = ("als", "als-wr", "implicit")


def _train_curve(
    algorithm: str,
    ratings,
    *,
    k: int,
    iterations: int,
    seed: int,
    block_size: int | None,
    block_schedule: str,
) -> tuple[object, list[tuple[float, float]]]:
    """``(model, [(loss, cumulative_elapsed_seconds), ...])`` per iteration."""
    from repro.core.als import ALSConfig, train_als
    from repro.core.alswr import train_als_wr
    from repro.core.implicit import ImplicitConfig, train_implicit_als

    if algorithm == "implicit":
        cfg = ImplicitConfig(
            k=k, lam=LAM, alpha=ALPHA, iterations=iterations, seed=seed,
            block_size=block_size, block_schedule=block_schedule,
        )
        model = train_implicit_als(ratings, cfg)
        stats = model.stats
    else:
        cfg = ALSConfig(
            k=k, lam=LAM, iterations=iterations, seed=seed,
            block_size=block_size, block_schedule=block_schedule,
        )
        trainer = train_als if algorithm == "als" else train_als_wr
        model = trainer(ratings, cfg)
        stats = model.history
    return model, [(float(s.loss), float(s.elapsed_seconds)) for s in stats]


def _time_to_target(curve: list[tuple[float, float]], target: float) -> float:
    """First cumulative elapsed at which the curve reaches ``target``."""
    bar = target + abs(target) * 1e-12
    for loss, elapsed in curve:
        if loss <= bar:
            return max(elapsed, 1e-9)
    return float("inf")


def _compare_algorithm(
    algorithm: str, ratings, ns: argparse.Namespace
) -> dict:
    _, full = _train_curve(
        algorithm, ratings, k=ns.k, iterations=ns.iterations, seed=ns.seed,
        block_size=None, block_schedule=ns.block_schedule,
    )
    # The subspace pass is cheaper, so give it the same wall-clock
    # allowance in iterations (2x) and let time-to-target judge it.
    _, sub = _train_curve(
        algorithm, ratings, k=ns.k, iterations=2 * ns.iterations, seed=ns.seed,
        block_size=ns.block_size, block_schedule=ns.block_schedule,
    )
    target = full[-1][0]
    t_full = full[-1][1]
    t_sub = _time_to_target(sub, target)
    speedup = t_full / t_sub if np.isfinite(t_sub) else 0.0
    final_gap = max(0.0, sub[-1][0] - target) / max(1.0, abs(target))
    print(
        f"  {algorithm:8s}: full-k {t_full:7.2f} s to loss {target:.4f}; "
        f"d={ns.block_size} reaches it in "
        f"{t_sub:7.2f} s -> {speedup:5.2f}x "
        f"(final loss gap {final_gap:.1e})",
        flush=True,
    )
    return {
        "algorithm": algorithm,
        "full": {
            "losses": [l for l, _ in full],
            "elapsed_seconds": [e for _, e in full],
        },
        "subspace": {
            "losses": [l for l, _ in sub],
            "elapsed_seconds": [e for _, e in sub],
        },
        "target_loss": target,
        "seconds_to_target_full": t_full,
        "seconds_to_target_subspace": t_sub,
        "time_to_target_speedup": speedup,
        "final_loss_rel_gap": final_gap,
    }


def _bitwise_dk(algorithm: str, ratings, ns: argparse.Namespace) -> bool:
    """``block_size == k`` must reproduce the full sweep bit for bit."""
    full_model, _ = _train_curve(
        algorithm, ratings, k=ns.check_k, iterations=2, seed=ns.seed,
        block_size=None, block_schedule=ns.block_schedule,
    )
    dk_model, _ = _train_curve(
        algorithm, ratings, k=ns.check_k, iterations=2, seed=ns.seed,
        block_size=ns.check_k, block_schedule=ns.block_schedule,
    )
    return bool(
        np.array_equal(np.asarray(full_model.X), np.asarray(dk_model.X))
        and np.array_equal(np.asarray(full_model.Y), np.asarray(dk_model.Y))
    )


def _bitwise_sharded(algorithm: str, ratings, ns: argparse.Namespace) -> bool:
    """Subspace training on a ShardStore must match in-RAM bitwise."""
    from repro.datasets.shardio import build_shard_store
    from repro.sparse.shards import ShardStore

    ram_model, _ = _train_curve(
        algorithm, ratings, k=ns.check_k, iterations=2, seed=ns.seed,
        block_size=max(2, ns.check_k // 4), block_schedule=ns.block_schedule,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-conv-") as tmp:
        store_dir = str(Path(tmp) / "store")
        build_shard_store(store_dir, ratings)
        store = ShardStore.open(store_dir, shard_bytes=1 << 20)
        ooc_model, _ = _train_curve(
            algorithm, store, k=ns.check_k, iterations=2, seed=ns.seed,
            block_size=max(2, ns.check_k // 4), block_schedule=ns.block_schedule,
        )
    return bool(
        np.array_equal(np.asarray(ram_model.X), np.asarray(ooc_model.X))
        and np.array_equal(np.asarray(ram_model.Y), np.asarray(ooc_model.Y))
    )


def run_benchmark(ns: argparse.Namespace) -> dict:
    from repro.datasets.synthetic import generate_ratings

    spec = MOVIELENS1M.scaled(ns.scale)
    ratings = generate_ratings(spec, seed=ns.seed)
    print(
        f"subspace convergence benchmark: {spec.abbr} scale={ns.scale:g} "
        f"(m={spec.m}, n={spec.n}, nnz={ratings.nnz}), k={ns.k}, "
        f"block_size={ns.block_size}, schedule={ns.block_schedule}, "
        f"iterations={ns.iterations} full / {2 * ns.iterations} subspace",
        flush=True,
    )
    algorithms = [_compare_algorithm(a, ratings, ns) for a in ALGORITHMS]
    headline = min(a["time_to_target_speedup"] for a in algorithms)
    worst_gap = max(a["final_loss_rel_gap"] for a in algorithms)
    print(f"  worst time-to-target speedup {headline:.2f}x, "
          f"worst final-loss gap {worst_gap:.1e}", flush=True)

    check_spec = MOVIELENS1M.scaled(ns.check_scale)
    check_ratings = generate_ratings(check_spec, seed=ns.seed)
    dk = {a: _bitwise_dk(a, check_ratings, ns) for a in ALGORITHMS}
    sharded = {a: _bitwise_sharded(a, check_ratings, ns) for a in ALGORITHMS}
    print(f"  d==k bitwise: {dk}", flush=True)
    print(f"  sharded bitwise: {sharded}", flush=True)

    return {
        "benchmark": "subspace_convergence",
        "dataset": spec.abbr,
        "scale": ns.scale,
        "m": spec.m,
        "n": spec.n,
        "nnz": ratings.nnz,
        "k": ns.k,
        "lam": LAM,
        "alpha": ALPHA,
        "iterations": ns.iterations,
        "block_size": ns.block_size,
        "block_schedule": ns.block_schedule,
        "seed": ns.seed,
        "algorithms": algorithms,
        "time_to_target_speedup": headline,
        "final_loss_rel_gap": worst_gap,
        "dk_bitwise": dk,
        "sharded_bitwise": sharded,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small configuration for CI (1/64-scale ML1M, k=32)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on failure: time-to-target speedup below the "
        "bar (1.5 full, 0.7 quick), final-loss gap beyond 1e-6, or a "
        "bitwise d==k / ShardStore mismatch",
    )
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None, help="ML1M scale")
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument(
        "--block-size", type=int, default=None,
        help="subspace block width d (default: 16 full, 8 quick)",
    )
    parser.add_argument(
        "--block-schedule", default="paired", choices=("paired", "sweep"),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_8.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)

    enable_telemetry_if_requested(ns)
    if ns.scale is None:
        ns.scale = 1 / 64 if ns.quick else 1 / 8
    if ns.k is None:
        ns.k = 32 if ns.quick else K
    if ns.iterations is None:
        ns.iterations = 4 if ns.quick else ITERATIONS
    if ns.block_size is None:
        ns.block_size = 8 if ns.quick else BLOCK
    # The bitwise checks always run on a small shape so they stay cheap.
    ns.check_scale = min(ns.scale, 1 / 64)
    ns.check_k = min(ns.k, 16)

    result = run_benchmark(ns)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_8.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        bar = 0.7 if ns.quick else 1.5
        failures = []
        if result["time_to_target_speedup"] < bar:
            failures.append(
                f"time-to-target speedup {result['time_to_target_speedup']:.2f} "
                f"is below the required {bar:.2f}"
            )
        if result["final_loss_rel_gap"] > 1e-6:
            failures.append(
                f"subspace final loss misses full-k by "
                f"{result['final_loss_rel_gap']:.3e} relative (need <= 1e-6)"
            )
        for alg, ok in result["dk_bitwise"].items():
            if not ok:
                failures.append(f"{alg}: block_size==k is not bitwise-equal "
                                f"to the full sweep")
        for alg, ok in result["sharded_bitwise"].items():
            if not ok:
                failures.append(f"{alg}: sharded subspace training diverges "
                                f"from in-RAM bitwise")
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        print(
            f"OK: speedup {result['time_to_target_speedup']:.2f} >= {bar:.2f}, "
            f"loss gap {result['final_loss_rel_gap']:.1e} <= 1e-6, "
            f"d==k and sharded runs bitwise-equal"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
