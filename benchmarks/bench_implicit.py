#!/usr/bin/env python
"""Before/after benchmark of the implicit-feedback (iALS) half-sweep.

Times the scatter reference against the degree-binned, tiled implicit
assembly (the C_u - I confidence correction fused into the tile loop)
on a synthetic MovieLens-1M-shaped matrix.  ``BENCH_5.json`` at the
repo root records the committed numbers.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_implicit.py            # full ml-1m, k=64
    PYTHONPATH=src python benchmarks/bench_implicit.py --quick    # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_implicit.py --check    # exit 1 on regression

The benchmark body lives in :mod:`repro.bench.workloads.implicit` (the
grid workload registered as ``implicit``); this entry point is a thin
single-cell wrapper over :func:`repro.bench.grid.run_single_cell`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.grid import run_single_cell
from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.bench.workloads.implicit import check_record
from repro.linalg.normal_equations import DEFAULT_TILE_NNZ


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small configuration for CI (1/16-scale ml-1m, k=32, 1 repeat)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on regression: speedup below the bar (3x full / "
        "1x quick), variant mismatch beyond 1e-10, or peak assembly scratch "
        "above the weighted tile bound",
    )
    parser.add_argument("--k", type=int, default=None, help="latent factor size")
    parser.add_argument("--scale", type=float, default=None, help="ml-1m scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--tile-nnz", type=int, default=DEFAULT_TILE_NNZ)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_5.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)
    enable_telemetry_if_requested(ns)

    # check=False: the record must land (and be written below) even when
    # the bar is missed; the bar is applied explicitly for --check.
    params = {
        "quick": ns.quick, "check": False,
        "tile_nnz": ns.tile_nnz, "seed": ns.seed,
    }
    for name in ("scale", "k", "repeats"):
        if getattr(ns, name) is not None:
            params[name] = getattr(ns, name)
    if ns.repeats is not None:
        # An explicit --repeats historically applied to both variants.
        params["scatter_repeats"] = ns.repeats
    result = run_single_cell("implicit", params)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_5.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        required = 1.0 if ns.quick else 3.0
        failures = check_record(result, params)
        if failures:
            for message in failures:
                print(f"FAIL: {message}", file=sys.stderr)
            return 1
        print(
            f"OK: speedup {result['speedup']:.2f}x >= {required:.1f}x, "
            f"max diff {result['max_abs_diff']:.1e} <= 1e-10, peak tile "
            f"{result['peak_tile_bytes']:,.0f} B within bound"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
