#!/usr/bin/env python
"""Before/after benchmark of the implicit-feedback half-sweep.

Times the legacy scatter-assembled implicit update (the path that
materialized an ``(nnz, k, k)`` outer-product tensor — ~32 GB at
MovieLens-1M with k = 64) against the rebuilt sweep on the degree-binned,
nnz-tile-budgeted weighted assembly, and writes a JSON report —
``BENCH_5.json`` at the repo root records the committed numbers.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_implicit.py            # full ml-1m, k=64
    PYTHONPATH=src python benchmarks/bench_implicit.py --quick    # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_implicit.py --check    # exit 1 on regression

``--check`` verifies three things: the binned sweep beats the scatter
reference (>= 3x for the full configuration, per ISSUE 5's acceptance
criteria), the two variants agree to 1e-10, and the binned sweep's peak
assembly scratch stays under ``tile_bytes_bound(tile_nnz, k,
weighted=True)`` — the bounded-memory guarantee that makes paper-scale
implicit training possible at all.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.core.implicit import implicit_half_sweep
from repro.datasets.catalog import MOVIELENS1M
from repro.datasets.synthetic import generate_ratings
from repro.linalg.normal_equations import DEFAULT_TILE_NNZ, tile_bytes_bound
from repro.obs import metrics as obs_metrics
from repro.obs.spans import capture
from repro.sparse.csr import CSRMatrix

ALPHA = 40.0
LAM = 0.1


def _time_variant(R, Y, assembly, tile_nnz, repeats):
    """Min-of-N wall time, the S1/S2/S3 span split, gauges and the result."""
    best = float("inf")
    split = {}
    result = None
    for _ in range(repeats):
        obs_metrics.reset()
        with capture() as tracer:
            t0 = perf_counter()
            X = implicit_half_sweep(
                R, Y, LAM, ALPHA,
                assembly=assembly, tile_nnz=tile_nnz, solver="lapack",
            )
            elapsed = perf_counter() - t0
        result = X
        if elapsed < best:
            best = elapsed
            stage_seconds = {"S1": 0.0, "S2": 0.0, "S3": 0.0}
            for rec in tracer.records:
                stage = rec.attrs.get("stage")
                if stage in stage_seconds:
                    stage_seconds[stage] += rec.duration
            split = {
                "total_seconds": elapsed,
                "s1_seconds": stage_seconds["S1"],
                "s2_seconds": stage_seconds["S2"],
                "s3_seconds": stage_seconds["S3"],
                "gauges": obs_metrics.snapshot()["gauges"],
            }
    return split, result


def run_benchmark(
    scale: float, k: int, repeats: int, scatter_repeats: int,
    tile_nnz: int, seed: int,
) -> dict:
    spec = MOVIELENS1M.scaled(scale)
    coo = generate_ratings(spec, seed=seed)
    R = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(seed)
    Y = rng.standard_normal((R.ncols, k))
    # Warm the derived-structure caches (a training run reuses one matrix
    # across every sweep) so steady-state cost is what gets compared.
    R.expanded_rows()
    R.degree_bins()

    print(
        f"implicit half-sweep benchmark: {spec.abbr} scale={scale:g} "
        f"(m={R.nrows}, n={R.ncols}, nnz={R.nnz}), k={k}, alpha={ALPHA:g}, "
        f"tile_nnz={tile_nnz}, repeats={repeats}",
        flush=True,
    )
    binned, X_binned = _time_variant(R, Y, "binned", tile_nnz, repeats)
    print(f"  binned  : {binned['total_seconds']:8.3f} s "
          f"(S1 {binned['s1_seconds']:.3f}, S2 {binned['s2_seconds']:.3f}, "
          f"S3 {binned['s3_seconds']:.3f})", flush=True)
    scatter, X_scatter = _time_variant(R, Y, "scatter", tile_nnz, scatter_repeats)
    print(f"  scatter : {scatter['total_seconds']:8.3f} s "
          f"(S1 {scatter['s1_seconds']:.3f}, S2 {scatter['s2_seconds']:.3f}, "
          f"S3 {scatter['s3_seconds']:.3f})", flush=True)

    max_abs_diff = float(np.abs(X_binned - X_scatter).max())
    speedup = scatter["total_seconds"] / binned["total_seconds"]
    peak = binned["gauges"].get("assembly.implicit.peak_tile_bytes", 0.0)
    bound = tile_bytes_bound(tile_nnz, k, weighted=True)
    print(f"  speedup : {speedup:8.2f}x", flush=True)
    print(f"  max |binned - scatter| = {max_abs_diff:.3e}", flush=True)
    print(f"  peak tile bytes: {peak:,.0f} (bound {bound:,})", flush=True)
    return {
        "benchmark": "implicit_half_sweep",
        "dataset": spec.abbr,
        "scale": scale,
        "m": R.nrows,
        "n": R.ncols,
        "nnz": R.nnz,
        "k": k,
        "alpha": ALPHA,
        "lam": LAM,
        "tile_nnz": tile_nnz,
        "repeats": repeats,
        "scatter_repeats": scatter_repeats,
        "seed": seed,
        "scatter": scatter,
        "binned": binned,
        "speedup": speedup,
        "max_abs_diff": max_abs_diff,
        "peak_tile_bytes": peak,
        "peak_tile_bytes_bound": bound,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small configuration for CI (1/16-scale ml-1m, k=32, 1 repeat)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on regression: speedup below the bar (3x full / "
        "1x quick), variant mismatch beyond 1e-10, or peak assembly scratch "
        "above the weighted tile bound",
    )
    parser.add_argument("--k", type=int, default=None, help="latent factor size")
    parser.add_argument("--scale", type=float, default=None, help="ml-1m scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--tile-nnz", type=int, default=DEFAULT_TILE_NNZ)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_5.json for full "
        "runs, no file for --quick)",
    )
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)
    enable_telemetry_if_requested(ns)

    if ns.quick:
        scale = ns.scale if ns.scale is not None else 1 / 16
        k = ns.k if ns.k is not None else 32
        repeats = ns.repeats if ns.repeats is not None else 1
        scatter_repeats = repeats
    else:
        scale = ns.scale if ns.scale is not None else 1.0
        k = ns.k if ns.k is not None else 64
        repeats = ns.repeats if ns.repeats is not None else 2
        # The scatter reference takes minutes per pass at full scale (it
        # exists to be beaten); one pass is plenty at a >100x margin.
        scatter_repeats = ns.repeats if ns.repeats is not None else 1

    result = run_benchmark(scale, k, repeats, scatter_repeats, ns.tile_nnz, ns.seed)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_5.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        required = 1.0 if ns.quick else 3.0
        failures = []
        if result["speedup"] < required:
            failures.append(
                f"binned speedup {result['speedup']:.2f}x is below the "
                f"required {required:.1f}x"
            )
        if result["max_abs_diff"] > 1e-10:
            failures.append(
                f"binned and scatter sweeps disagree: max |diff| = "
                f"{result['max_abs_diff']:.3e} > 1e-10"
            )
        if not 0 < result["peak_tile_bytes"] <= result["peak_tile_bytes_bound"]:
            failures.append(
                f"peak tile bytes {result['peak_tile_bytes']:,.0f} outside "
                f"(0, {result['peak_tile_bytes_bound']:,}]"
            )
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        print(
            f"OK: speedup {result['speedup']:.2f}x >= {required:.1f}x, "
            f"max diff {result['max_abs_diff']:.1e} <= 1e-10, peak tile "
            f"{result['peak_tile_bytes']:,.0f} B within bound"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
