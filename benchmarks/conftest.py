"""Shared fixtures for the benchmark tree.

Each ``bench_*`` module regenerates one table/figure of the paper.  The
pytest-benchmark timings measure the harness itself (simulator + model
evaluation on full-scale dataset shapes); the *scientific* output is the
rendered table each module prints, mirroring the paper's artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import experiments
from repro.datasets import MOVIELENS10M, generate_ratings
from repro.sparse import CSCMatrix, CSRMatrix

# pytest-benchmark discovers test_* by default; this tree names its
# benchmark functions test_* inside bench_* modules.
collect_ignore_glob: list[str] = []


def pytest_collection_modifyitems(config, items):
    # Keep paper order when running the whole tree.
    order = [
        "bench_table1",
        "bench_fig1",
        "bench_fig6",
        "bench_fig7",
        "bench_fig8",
        "bench_fig9",
        "bench_fig10",
    ]

    def key(item):
        for i, stem in enumerate(order):
            if stem in str(item.fspath):
                return i
        return len(order)

    items.sort(key=key)


@pytest.fixture(scope="session")
def warm_sequences():
    """Generate the four full-scale degree sequences once per session."""
    return experiments._sequences()


@pytest.fixture(scope="session")
def movielens_small():
    """A materialized MovieLens-shaped matrix for functional benchmarks."""
    spec = MOVIELENS10M.scaled(1 / 64)
    coo = generate_ratings(spec, seed=7)
    csr = CSRMatrix.from_coo(coo)
    csc = CSCMatrix.from_csr(csr).transpose_as_csr()
    return coo, csr, csc


def emit(title: str, text: str) -> None:
    """Print a rendered experiment table under a banner."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")
