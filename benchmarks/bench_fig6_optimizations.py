"""Fig. 6 — incremental optimizations per architecture per dataset.

Paper shapes: on the GPU registers+local memory give up to 2.6× over
plain thread batching and vectors change nothing; on CPU/MIC local
memory boosts up to 1.6×/1.4× but combining it with registers degrades.
"""

from __future__ import annotations

from conftest import emit
from repro.bench import run_fig6
from repro.datasets import TABLE_I


def test_fig6_report(warm_sequences, benchmark):
    result = benchmark.pedantic(run_fig6, rounds=3, iterations=1)
    emit("Fig. 6", result.render())
    for spec in TABLE_I:
        gpu = result.times[spec.abbr]["gpu"]
        assert gpu["+local memory + register"] < gpu["thread batching"]
        for dev in ("cpu", "mic"):
            bars = result.times[spec.abbr][dev]
            assert bars["+local memory"] < bars["thread batching"]
            assert bars["+local memory + register"] > bars["+local memory"]
