"""Table I — dataset statistics.

Regenerates the paper's dataset table from the synthetic generators and
benchmarks full-scale degree-sequence generation (the substrate every
other experiment consumes).
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.bench import run_table1
from repro.datasets import TABLE_I, degree_sequences


def test_table1_report(warm_sequences, benchmark):
    result = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    emit("Table I", result.render())
    for _, _, _, _, nnz_spec, nnz_rows, nnz_cols in result.rows:
        assert nnz_rows == nnz_spec == nnz_cols


@pytest.mark.parametrize("spec", TABLE_I, ids=lambda s: s.abbr)
def test_degree_sequence_generation(spec, benchmark):
    rows, cols = benchmark.pedantic(
        degree_sequences, args=(spec,), kwargs={"seed": 99}, rounds=1, iterations=1
    )
    assert rows.sum() == cols.sum() == spec.nnz
