#!/usr/bin/env python
"""Out-of-core sharded training vs the in-RAM baseline.

Trains the same synthetic Netflix-shape ratings twice — once on in-RAM
CSR/CSC views, once streaming byte-budgeted shards from an on-disk
store — and compares wall time, loss trajectories and peak RSS.  Each
phase runs in its own subprocess because ``ru_maxrss`` is a monotonic
per-process high-water mark: a fresh interpreter per phase is the only
way to attribute a peak to one phase.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_outofcore.py           # NTFX/8, k=32
    PYTHONPATH=src python benchmarks/bench_outofcore.py --quick   # CI perf smoke
    PYTHONPATH=src python benchmarks/bench_outofcore.py --check   # exit 1 on failure

``--check`` verifies the tentpole claims: the sharded losses match the
in-RAM trajectory to 1e-10 relative, sharded throughput retains >= 70%
of in-RAM, and the sharded phase's peak-RSS delta stays under 50% of
the in-RAM delta.  Where the kernel enforces ``RLIMIT_DATA`` (Linux >=
4.7; probed, not assumed — the limit caps heap plus anonymous mmaps but
not file-backed maps, exactly the split out-of-core training exploits)
the sharded phase is additionally re-run under a hard cap sized to half
the in-RAM footprint and must complete; the in-RAM phase is run under
the same cap to demonstrate it cannot (recorded, and on Linux it dies
in the allocator).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro.bench.record import (
    add_telemetry_args,
    enable_telemetry_if_requested,
    write_record,
    write_telemetry,
)
from repro.datasets.catalog import NETFLIX

K = 32
LAM = 0.1
ITERATIONS = 2
_PHASE_MARKER = "PHASE_RESULT "

#: Probe allocation sizes: limit the data segment to 128 MB, then try to
#: grab 256 MB.  On kernels that enforce RLIMIT_DATA for anonymous maps
#: the allocation raises MemoryError; elsewhere it silently succeeds.
_PROBE = (
    "import resource\n"
    "resource.setrlimit(resource.RLIMIT_DATA, (1 << 27, 1 << 27))\n"
    "try:\n"
    "    b = bytearray(1 << 28)\n"
    "    print('UNENFORCED')\n"
    "except MemoryError:\n"
    "    print('ENFORCED')\n"
)


def rlimit_data_enforced() -> bool:
    """Whether this kernel applies RLIMIT_DATA to anonymous mappings."""
    try:
        out = subprocess.run(
            [sys.executable, "-c", _PROBE],
            capture_output=True, text=True, timeout=60,
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    return out.returncode == 0 and "ENFORCED" in out.stdout


# ----------------------------------------------------------------------
# child: one training phase in a fresh interpreter
# ----------------------------------------------------------------------
def run_phase(ns: argparse.Namespace) -> int:
    if ns.limit_bytes:
        import resource

        resource.setrlimit(resource.RLIMIT_DATA, (ns.limit_bytes, ns.limit_bytes))
    import numpy as np

    from repro.core.als import ALSConfig, train_als
    from repro.obs.resource import peak_rss_bytes
    from repro.sparse.shards import ShardStore

    baseline = peak_rss_bytes() or 0
    store = ShardStore.open(ns.store, shard_bytes=ns.shard_bytes)
    cfg = ALSConfig(k=ns.k, lam=LAM, iterations=ns.iterations, seed=ns.seed)
    t0 = perf_counter()
    if ns.run_phase == "ram":
        ratings = store.rows.to_csr()
        store.release_pages()
    else:
        ratings = store
    build_seconds = perf_counter() - t0
    t0 = perf_counter()
    model = train_als(ratings, cfg)
    train_seconds = perf_counter() - t0
    peak = peak_rss_bytes() or 0
    nnz = store.nnz
    result = {
        "phase": ns.run_phase,
        "build_seconds": build_seconds,
        "train_seconds": train_seconds,
        "ratings_per_sec": nnz * ns.iterations / max(train_seconds, 1e-9),
        "baseline_rss_bytes": baseline,
        "peak_rss_bytes": peak,
        "delta_rss_bytes": peak - baseline,
        "losses": [float(s.loss) for s in model.history],
        "final_rmse": float(model.history[-1].train_rmse),
        "limit_bytes": ns.limit_bytes,
        "x_check": float(np.sum(np.abs(model.X))),  # cheap cross-phase probe
    }
    print(_PHASE_MARKER + json.dumps(result), flush=True)
    return 0


def launch_phase(
    phase: str, store: str, ns: argparse.Namespace, limit_bytes: int = 0
) -> tuple[int, dict | None]:
    """Run one phase subprocess; returns (exit code, parsed result)."""
    cmd = [
        sys.executable, str(Path(__file__).resolve()),
        "--run-phase", phase, "--store", store,
        "--k", str(ns.k), "--iterations", str(ns.iterations),
        "--shard-bytes", str(ns.shard_bytes), "--seed", str(ns.seed),
    ]
    if limit_bytes:
        cmd += ["--limit-bytes", str(limit_bytes)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    result = None
    for line in proc.stdout.splitlines():
        if line.startswith(_PHASE_MARKER):
            result = json.loads(line[len(_PHASE_MARKER):])
    if proc.returncode != 0 and not limit_bytes:
        sys.stderr.write(proc.stderr)
    return proc.returncode, result


# ----------------------------------------------------------------------
# parent: build the store once, fan the phases out, compare
# ----------------------------------------------------------------------
def run_benchmark(ns: argparse.Namespace) -> dict:
    from repro.datasets.shardio import build_shard_store
    from repro.datasets.synthetic import generate_ratings_chunked

    spec = NETFLIX.scaled(ns.scale)
    store_dir = ns.store or str(
        Path(tempfile.mkdtemp(prefix="repro-bench-ooc-")) / "store"
    )
    print(
        f"out-of-core training benchmark: {spec.abbr} scale={ns.scale:g} "
        f"(m={spec.m}, n={spec.n}, nnz={spec.nnz}), k={ns.k}, "
        f"iterations={ns.iterations}, shard_bytes={ns.shard_bytes}",
        flush=True,
    )
    t0 = perf_counter()
    # The chunk factory streams the generator twice (count pass + scatter
    # pass); the parent never materializes the full rating matrix.
    store = build_shard_store(
        store_dir,
        lambda: generate_ratings_chunked(spec, seed=ns.seed),
        shape=(spec.m, spec.n),
        sorted_within_rows=True,
        overwrite=ns.store is None,
    )
    build_seconds = perf_counter() - t0
    print(f"  store   : {store.nnz} nnz packed in {build_seconds:.2f} s "
          f"at {store_dir}", flush=True)

    code, ram = launch_phase("ram", store_dir, ns)
    if code != 0 or ram is None:
        raise RuntimeError("in-RAM phase failed")
    print(f"  in-RAM  : {ram['train_seconds']:8.2f} s "
          f"({ram['ratings_per_sec']:,.0f} ratings/s), "
          f"peak RSS delta {ram['delta_rss_bytes'] / 2**20:,.1f} MB", flush=True)
    code, sharded = launch_phase("sharded", store_dir, ns)
    if code != 0 or sharded is None:
        raise RuntimeError("sharded phase failed")
    print(f"  sharded : {sharded['train_seconds']:8.2f} s "
          f"({sharded['ratings_per_sec']:,.0f} ratings/s), "
          f"peak RSS delta {sharded['delta_rss_bytes'] / 2**20:,.1f} MB",
          flush=True)

    retention = sharded["ratings_per_sec"] / ram["ratings_per_sec"]
    rss_ratio = (
        sharded["delta_rss_bytes"] / ram["delta_rss_bytes"]
        if ram["delta_rss_bytes"] > 0 else float("inf")
    )
    loss_rel = max(
        (
            abs(a - b) / max(1.0, abs(a))
            for a, b in zip(ram["losses"], sharded["losses"])
        ),
        default=float("inf"),
    )
    print(f"  retention {retention:.2f}x  RSS ratio {rss_ratio:.2f}  "
          f"loss parity {loss_rel:.2e}", flush=True)

    # The hard-cap demonstration: sharded must train inside a budget
    # sized to half the in-RAM footprint; in-RAM cannot.
    enforced = rlimit_data_enforced()
    cap_bytes = int(ram["baseline_rss_bytes"] + 0.5 * ram["delta_rss_bytes"])
    capped: dict = {"rlimit_data_enforced": enforced, "cap_bytes": cap_bytes}
    if enforced:
        code_s, res_s = launch_phase("sharded", store_dir, ns, limit_bytes=cap_bytes)
        capped["sharded_exit"] = code_s
        capped["sharded_ok"] = code_s == 0 and res_s is not None
        code_r, _ = launch_phase("ram", store_dir, ns, limit_bytes=cap_bytes)
        capped["ram_exit"] = code_r
        capped["ram_failed_as_expected"] = code_r != 0
        print(f"  capped  : RLIMIT_DATA={cap_bytes / 2**20:,.1f} MB -> "
              f"sharded exit {code_s}, in-RAM exit {code_r}", flush=True)
    else:
        print("  capped  : RLIMIT_DATA not enforced on this kernel; "
              "relying on the measured RSS deltas", flush=True)

    return {
        "benchmark": "outofcore_training",
        "dataset": spec.abbr,
        "scale": ns.scale,
        "m": spec.m,
        "n": spec.n,
        "nnz": store.nnz,
        "k": ns.k,
        "lam": LAM,
        "iterations": ns.iterations,
        "shard_bytes": ns.shard_bytes,
        "seed": ns.seed,
        "store_build_seconds": build_seconds,
        "ram": ram,
        "sharded": sharded,
        "throughput_retention": retention,
        "rss_delta_ratio": rss_ratio,
        "loss_rel_err": loss_rel,
        "capped": capped,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small configuration for CI (1/64-scale Netflix, k=32)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on failure: loss parity beyond 1e-10, "
        "throughput retention below 0.7, sharded RSS delta above half "
        "the in-RAM delta, or a capped sharded run dying",
    )
    parser.add_argument("--k", type=int, default=K)
    parser.add_argument("--scale", type=float, default=None, help="Netflix scale")
    parser.add_argument("--iterations", type=int, default=ITERATIONS)
    parser.add_argument("--shard-bytes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="build (and keep) the shard store here instead of a temp dir",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_7.json for full "
        "runs, no file for --quick)",
    )
    # internal: child-process mode
    parser.add_argument("--run-phase", choices=("ram", "sharded"), help=argparse.SUPPRESS)
    parser.add_argument("--limit-bytes", type=int, default=0, help=argparse.SUPPRESS)
    add_telemetry_args(parser)
    ns = parser.parse_args(argv)

    if ns.run_phase:
        if not ns.store:
            parser.error("--run-phase requires --store")
        if ns.scale is None:
            ns.scale = 1.0
        return run_phase(ns)

    enable_telemetry_if_requested(ns)
    if ns.scale is None:
        ns.scale = 1 / 64 if ns.quick else 1 / 8
    if ns.shard_bytes is None:
        ns.shard_bytes = (8 << 20) if ns.quick else (32 << 20)

    result = run_benchmark(ns)

    out = ns.out
    if out is None and not ns.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_7.json"
    if out:
        write_record(out, result)
        print(f"report written to {out}", flush=True)
    write_telemetry(ns, meta={"benchmark": result["benchmark"]})

    if ns.check:
        failures = []
        if result["loss_rel_err"] > 1e-10:
            failures.append(
                f"loss trajectories disagree: rel err "
                f"{result['loss_rel_err']:.3e} > 1e-10"
            )
        if result["throughput_retention"] < 0.7:
            failures.append(
                f"throughput retention {result['throughput_retention']:.2f} "
                f"is below the required 0.70"
            )
        if not result["rss_delta_ratio"] < 0.5:
            failures.append(
                f"sharded RSS delta is {result['rss_delta_ratio']:.2f}x the "
                f"in-RAM delta (need < 0.5)"
            )
        capped = result["capped"]
        if capped["rlimit_data_enforced"] and not capped.get("sharded_ok"):
            failures.append(
                f"sharded training died under the "
                f"{capped['cap_bytes'] / 2**20:,.1f} MB RLIMIT_DATA cap"
            )
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        print(
            f"OK: retention {result['throughput_retention']:.2f} >= 0.70, "
            f"RSS ratio {result['rss_delta_ratio']:.2f} < 0.5, loss parity "
            f"{result['loss_rel_err']:.1e} <= 1e-10"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
