"""Fig. 1 — motivation: SAC15 OpenMP (16-core CPU) vs SAC15 CUDA (K20c).

Paper shape: the baseline ALS runs faster on the CPU than on the GPU on
every dataset (8.4× on average in the paper's measurements).
"""

from __future__ import annotations

from conftest import emit
from repro.bench import run_fig1


def test_fig1_report(warm_sequences, benchmark):
    result = benchmark.pedantic(run_fig1, rounds=3, iterations=1)
    emit("Fig. 1", result.render())
    assert all(r > 1.0 for r in result.ratios.values())
    assert result.mean_ratio > 3.0
