"""Fig. 10 — sensitivity to the work-group (thread block) size.

Paper shapes: GPU optimum at 16/32 with penalties at 8 and ≥64; on the
CPU smaller blocks are better; on the MIC the optimum is
dataset-dependent (YMR4 → 8, YMR1 → 16).
"""

from __future__ import annotations

from conftest import emit
from repro.bench import run_fig10


def test_fig10_report(warm_sequences, benchmark):
    result = benchmark.pedantic(run_fig10, rounds=3, iterations=1)
    emit("Fig. 10", result.render())
    optima = result.optima()
    for abbr, per_dev in optima.items():
        assert per_dev["gpu"] in (16, 32), abbr
    assert optima["YMR4"]["mic"] == 8
    assert optima["YMR1"]["mic"] == 16
