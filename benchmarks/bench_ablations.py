"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one mechanism of the performance model and shows
which paper observation breaks — evidence that the reproduced shapes come
from the modelled mechanisms, not from per-experiment tuning.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.clsim import CostModel, OptFlags, default_calibration
from repro.clsim.device import (
    DeviceKind,
    INTEL_XEON_E5_2670_X2 as CPU,
    NVIDIA_TESLA_K20C as GPU,
)
from repro.datasets import NETFLIX, degree_sequences

K, WS, ITERS = 10, 32, 5


@pytest.fixture(scope="module")
def netflix():
    return degree_sequences(NETFLIX, seed=7)


def _gpu_fig6_ratio(calibration) -> float:
    """tb / (+local+reg) on Netflix/K20c — Fig. 6's headline GPU gain."""
    rows, cols = degree_sequences(NETFLIX, seed=7)
    cm = CostModel(GPU, calibration)
    tb = cm.training_time(rows, cols, K, WS, OptFlags(), ITERS)
    opt = cm.training_time(
        rows, cols, K, WS, OptFlags(registers=True, local_mem=True), ITERS
    )
    return tb / opt


def test_ablation_register_spill(netflix, benchmark):
    """Without the spill penalty, the registers optimization loses most of
    its Fig. 6 effect — spilling is what the rewrite of Fig. 3 fixes."""
    base = default_calibration()
    no_spill = base.with_kind(DeviceKind.GPU, spill_mult=1.0)
    with_model = benchmark(_gpu_fig6_ratio, base)
    without = _gpu_fig6_ratio(no_spill)
    emit(
        "Ablation: register spill",
        format_table(
            ["model", "tb / (+local+reg) on NTFX/K20c"],
            [["with spill penalty", with_model], ["spill disabled", without]],
        ),
    )
    assert with_model > without + 0.3


def test_ablation_divergence(netflix, benchmark):
    """Without window divergence, the flat CUDA baseline collapses toward
    the batched cost and Fig. 1's gap shrinks."""
    rows, cols = netflix
    cm = CostModel(GPU)
    flat = benchmark(lambda: cm.flat_half_sweep(rows, K).seconds)
    # Re-cost the same population with perfectly balanced windows.
    balanced = np.full_like(rows, max(1, int(rows.mean())))
    flat_balanced = cm.flat_half_sweep(balanced, K).seconds
    emit(
        "Ablation: divergence",
        format_table(
            ["row population", "flat half-sweep [s]"],
            [["real (skewed)", flat], ["balanced windows", flat_balanced]],
        ),
    )
    assert flat > 1.3 * flat_balanced


def test_ablation_scratchpad_thrash(netflix, benchmark):
    """Without the cache-thrash term, registers+local would (wrongly) help
    on the CPU — the §V-B degradation disappears."""
    rows, cols = netflix
    base = default_calibration()
    no_thrash = base.with_kind(DeviceKind.CPU, thrash_mult=1.0)

    def ratio(cal):
        cm = CostModel(CPU, cal)
        lm = cm.training_time(rows, cols, K, WS, OptFlags(local_mem=True), ITERS)
        both = cm.training_time(
            rows, cols, K, WS, OptFlags(local_mem=True, registers=True), ITERS
        )
        return both / lm

    with_model, without = benchmark(ratio, base), ratio(no_thrash)
    emit(
        "Ablation: L1 thrash on cache-emulated scratchpads",
        format_table(
            ["model", "(+local+reg) / (+local) on NTFX/CPU"],
            [["with thrash term", with_model], ["thrash disabled", without]],
        ),
    )
    assert with_model > 1.05
    assert without < with_model


def test_ablation_lane_utilization(netflix, benchmark):
    """Without warp-granularity accounting the Fig. 10 GPU optimum at
    ws=16/32 disappears (all block sizes would cost alike)."""
    rows, cols = netflix
    cm = CostModel(GPU)
    flags = OptFlags(registers=True, local_mem=True)
    sweep = benchmark(
        lambda: {
            ws: cm.training_time(rows, cols, K, ws, flags, ITERS)
            for ws in (8, 16, 32, 64, 128)
        }
    )
    emit(
        "Ablation: lane utilization (GPU block-size sweep)",
        format_table(
            ["ws", "seconds"], [[ws, s] for ws, s in sweep.items()]
        ),
    )
    assert min(sweep, key=sweep.get) in (16, 32)
    assert sweep[128] > 1.5 * sweep[32]


def test_ablation_cholesky_vs_elimination(netflix, benchmark):
    """§V-C: the Cholesky S3 must beat plain elimination end to end."""
    rows, cols = netflix
    cm = CostModel(GPU)
    chol = benchmark(
        cm.training_time,
        rows,
        cols,
        K,
        WS,
        OptFlags(registers=True, local_mem=True, cholesky=True),
        ITERS,
    )
    gauss = cm.training_time(
        rows, cols, K, WS, OptFlags(registers=True, local_mem=True, cholesky=False), ITERS
    )
    emit(
        "Ablation: S3 solver",
        format_table(
            ["S3 solver", "total [s]"],
            [["batched Cholesky", chol], ["serial elimination", gauss]],
        ),
    )
    assert chol < gauss
