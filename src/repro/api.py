"""High-level recommender facade.

Wraps dataset handling, training, evaluation, recommendation and model
persistence behind one object — the interface a downstream application
would actually use, with the paper's machinery underneath.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict

import numpy as np

from repro.core.als import ALSConfig, ALSModel, IterationStats, ratings_views, train_als
from repro.core.alswr import train_als_wr
from repro.core.implicit import ImplicitConfig, ImplicitModel, train_implicit_als
from repro.core.loss import mae, rmse
from repro.core.predict import predict_entries, recommend_top_n
from repro.obs.spans import span
from repro.serving.engine import TopNEngine, TopNResult
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["Recommender"]

_ALGORITHMS = {"als": train_als, "als-wr": train_als_wr, "implicit": train_implicit_als}


class Recommender:
    """Train-once, query-many recommender over explicit ratings.

    >>> rec = Recommender(k=10, lam=0.1, iterations=5)
    >>> rec.fit(ratings)                        # COOMatrix
    >>> rec.predict([0, 1], [5, 9])
    >>> rec.recommend(user=0, n_items=10)
    >>> rec.save("model.npz"); Recommender.load("model.npz")
    """

    def __init__(
        self,
        k: int = 10,
        lam: float = 0.1,
        iterations: int = 5,
        algorithm: str = "als",
        seed: int = 0,
        alpha: float = 40.0,
    ) -> None:
        if algorithm not in _ALGORITHMS:
            known = ", ".join(sorted(_ALGORITHMS))
            raise ValueError(f"unknown algorithm {algorithm!r}; known: {known}")
        if algorithm == "implicit":
            self.config: ALSConfig | ImplicitConfig = ImplicitConfig(
                k=k, lam=lam, iterations=iterations, seed=seed, alpha=alpha
            )
        else:
            self.config = ALSConfig(k=k, lam=lam, iterations=iterations, seed=seed)
        self.algorithm = algorithm
        self._model: ALSModel | ImplicitModel | None = None
        self._train_csr: CSRMatrix | None = None
        self._engine: TopNEngine | None = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, ratings: COOMatrix | CSRMatrix) -> "Recommender":
        """Train the factor model on observed ratings.

        The input is converted to CSR exactly once; the same view feeds
        the trainer and the ``exclude_seen`` filter of ``recommend``.
        """
        with span("recommender.fit", algorithm=self.algorithm, k=self.config.k):
            _, csr = ratings_views(ratings)
            self._model = _ALGORITHMS[self.algorithm](csr, self.config)
            self._train_csr = csr
            self._engine = None  # factors changed; rebuild lazily
        return self

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def model(self) -> ALSModel | ImplicitModel:
        if self._model is None:
            raise RuntimeError("call fit() first")
        return self._model

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def predict(self, users, items) -> np.ndarray:
        """Predicted ratings for parallel user/item index arrays."""
        with span("recommender.predict"):
            return predict_entries(self.model, np.asarray(users), np.asarray(items))

    def engine(self, **kwargs) -> TopNEngine:
        """The tiled top-N serving engine over the trained factors.

        Built lazily on first query and reused (item factors are cast to
        the scoring dtype once); pass knobs (``tile_bytes``, ``dtype``,
        ``user_block``, ``workers``) to rebuild with a new configuration.
        """
        if kwargs or self._engine is None:
            self._engine = TopNEngine.from_model(self.model, **kwargs)
        return self._engine

    def recommend(
        self, user: int, n_items: int = 10, exclude_seen: bool = True
    ) -> list[tuple[int, float]]:
        """Top-N items for a user, excluding training items by default.

        Truncated when the user has fewer than ``n_items`` unseen items
        (see :mod:`repro.core.predict` for the contract).
        """
        with span("recommender.recommend", n_items=n_items):
            exclude = self._train_csr if exclude_seen else None
            return recommend_top_n(
                self.model, user, n_items=n_items, exclude=exclude,
                engine=self.engine(),
            )

    def recommend_batch(
        self, users, n_items: int = 10, exclude_seen: bool = True
    ) -> TopNResult:
        """Top-N for many users at once, through the tiled engine.

        Returns a :class:`~repro.serving.engine.TopNResult` whose rows
        are padded with ``-1`` for users with fewer than ``n_items``
        unseen items.
        """
        with span("recommender.recommend_batch", n_items=n_items):
            exclude = self._train_csr if exclude_seen else None
            return self.engine().query(
                np.asarray(users), n=n_items, exclude=exclude
            )

    def evaluate_ranking(self, test: COOMatrix, n: int = 10):
        """Top-N ranking quality against a held-out split (engine-backed)."""
        from repro.core.ranking import evaluate_ranking

        if self._train_csr is None:
            raise RuntimeError(
                "ranking evaluation needs the training matrix; fit() this "
                "recommender rather than loading a persisted model"
            )
        with span("recommender.evaluate_ranking", n=n):
            return evaluate_ranking(
                self.model, self._train_csr, test, n=n, engine=self.engine()
            )

    def evaluate(self, ratings: COOMatrix) -> dict[str, float]:
        """RMSE/MAE on a rating set (e.g. the held-out split)."""
        with span("recommender.evaluate"):
            model = self.model
            return {
                "rmse": rmse(ratings, model.X, model.Y),
                "mae": mae(ratings, model.X, model.Y),
            }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Persist factors, hyper-parameters and the training history to
        one ``.npz`` file.

        Explicit (:class:`ALSModel`) and implicit
        (:class:`~repro.core.implicit.ImplicitModel`) models share the
        same envelope: ``X``/``Y`` factor arrays plus a JSON ``meta``
        buffer whose ``algorithm`` field selects the reconstruction path.
        Implicit history is the per-iteration weighted loss (floats);
        explicit history is the per-iteration :class:`IterationStats`.
        """
        model = self.model
        if isinstance(model, ImplicitModel):
            history: list = list(model.history)  # weighted loss floats
        else:
            history = [asdict(stats) for stats in model.history]
        meta = {
            "algorithm": self.algorithm,
            "config": asdict(self.config),
            "history": history,
        }
        np.savez_compressed(
            path,
            X=model.X,
            Y=model.Y,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Recommender":
        """Restore a saved recommender (query-ready; training data is not
        persisted, so ``recommend`` defaults to no exclusion).

        Raises :class:`ValueError` — not a bare ``KeyError`` — when the
        file is missing envelope entries, names an unknown algorithm, or
        holds factors whose shapes disagree with the stored config.
        """
        with np.load(path) as data:
            missing = [key for key in ("X", "Y", "meta") if key not in data.files]
            if missing:
                raise ValueError(
                    f"{path}: not a Recommender checkpoint — missing "
                    f"{', '.join(missing)} (has: {', '.join(data.files) or 'nothing'})"
                )
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
            X = data["X"]
            Y = data["Y"]
        algorithm = meta.get("algorithm")
        if algorithm not in _ALGORITHMS:
            known = ", ".join(sorted(_ALGORITHMS))
            raise ValueError(
                f"{path}: unknown algorithm {algorithm!r}; known: {known}"
            )
        cfg = meta.get("config")
        if not isinstance(cfg, dict) or "k" not in cfg:
            raise ValueError(f"{path}: meta block lacks a config with 'k'")
        k = cfg["k"]
        if X.ndim != 2 or Y.ndim != 2 or X.shape[1] != k or Y.shape[1] != k:
            raise ValueError(
                f"{path}: factor shapes {X.shape}/{Y.shape} do not match "
                f"the stored config (k={k})"
            )
        history = meta.get("history", [])
        if algorithm == "implicit":
            config = ImplicitConfig(**cfg)
            rec = cls(
                k=config.k, lam=config.lam, iterations=config.iterations,
                algorithm=algorithm, seed=config.seed, alpha=config.alpha,
            )
            rec.config = config  # keep persisted knobs (assembly, workers, …)
            rec._model = ImplicitModel(
                X=X, Y=Y, config=config, history=[float(h) for h in history]
            )
        else:
            config = ALSConfig(**cfg)
            rec = cls(
                k=config.k, lam=config.lam, iterations=config.iterations,
                algorithm=algorithm, seed=config.seed,
            )
            rec.config = config
            # Files written before history persistence lack the key; they
            # load with an empty history, as before.
            rec._model = ALSModel(
                X=X, Y=Y, config=config,
                history=[IterationStats(**stats) for stats in history],
            )
        return rec
