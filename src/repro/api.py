"""High-level recommender facade.

Wraps dataset handling, training, evaluation, recommendation and model
persistence behind one object — the interface a downstream application
would actually use, with the paper's machinery underneath.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path

import numpy as np
from numpy.lib.format import open_memmap

from repro.core.als import ALSConfig, ALSModel, IterationStats, ratings_views, train_als
from repro.core.alswr import train_als_wr
from repro.core.implicit import ImplicitConfig, ImplicitModel, train_implicit_als
from repro.core.loss import mae, rmse
from repro.core.predict import predict_entries, recommend_top_n
from repro.obs.spans import span
from repro.serving.engine import TopNEngine, TopNResult
from repro.serving.foldin import as_new_rows_csr, fold_in_factors
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.shards import ShardStore, ShardedCSR

__all__ = ["Recommender"]

#: Rows copied per chunk when writing factor checkpoints — bounds the
#: transient footprint of ``save`` to one chunk instead of a full second
#: copy of the factors (the ``.npz`` writer's compression buffer).
_SAVE_CHUNK_ROWS = 1 << 16

_ALGORITHMS = {"als": train_als, "als-wr": train_als_wr, "implicit": train_implicit_als}


def _append_rows(base: CSRMatrix, new: CSRMatrix) -> CSRMatrix:
    """Stack ``new`` under ``base`` in O(new) pointer arithmetic.

    CSR is row-major, so appending rows is three concatenations — no
    re-sort, no per-entry work on the existing matrix.
    """
    if base.ncols != new.ncols:
        raise ValueError(
            f"column mismatch: {base.ncols} vs {new.ncols}"
        )
    return CSRMatrix(
        (base.nrows + new.nrows, base.ncols),
        np.concatenate([base.value, new.value]),
        np.concatenate([base.col_idx, new.col_idx]),
        np.concatenate([base.row_ptr, base.nnz + new.row_ptr[1:]]),
    )


class Recommender:
    """Train-once, query-many recommender over explicit ratings.

    >>> rec = Recommender(k=10, lam=0.1, iterations=5)
    >>> rec.fit(ratings)                        # COOMatrix
    >>> rec.predict([0, 1], [5, 9])
    >>> rec.recommend(user=0, n_items=10)
    >>> rec.save("model.npz"); Recommender.load("model.npz")
    """

    def __init__(
        self,
        k: int = 10,
        lam: float = 0.1,
        iterations: int = 5,
        algorithm: str = "als",
        seed: int = 0,
        alpha: float = 40.0,
        block_size: int | str | None = None,
        block_schedule: str | None = None,
    ) -> None:
        if algorithm not in _ALGORITHMS:
            known = ", ".join(sorted(_ALGORITHMS))
            raise ValueError(f"unknown algorithm {algorithm!r}; known: {known}")
        knobs: dict = {}
        if block_size is not None:
            knobs["block_size"] = block_size
        if block_schedule is not None:
            knobs["block_schedule"] = block_schedule
        if algorithm == "implicit":
            self.config: ALSConfig | ImplicitConfig = ImplicitConfig(
                k=k, lam=lam, iterations=iterations, seed=seed, alpha=alpha,
                **knobs,
            )
        else:
            self.config = ALSConfig(
                k=k, lam=lam, iterations=iterations, seed=seed, **knobs
            )
        self.algorithm = algorithm
        self._model: ALSModel | ImplicitModel | None = None
        self._train_csr: CSRMatrix | ShardedCSR | None = None
        self._engine: TopNEngine | None = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, ratings: COOMatrix | CSRMatrix | ShardStore) -> "Recommender":
        """Train the factor model on observed ratings.

        An in-RAM input is converted to CSR exactly once; the same view
        feeds the trainer and the ``exclude_seen`` filter of
        ``recommend``.  A :class:`ShardStore` trains out of core and its
        memory-mapped row view serves the exclusion filter (per-user
        gathers touch only the pages holding those rows).
        """
        with span("recommender.fit", algorithm=self.algorithm, k=self.config.k):
            if isinstance(ratings, ShardStore):
                self._model = _ALGORITHMS[self.algorithm](ratings, self.config)
                self._train_csr = ratings.rows
            else:
                _, csr = ratings_views(ratings)
                self._model = _ALGORITHMS[self.algorithm](csr, self.config)
                self._train_csr = csr
            self._engine = None  # factors changed; rebuild lazily
        return self

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def model(self) -> ALSModel | ImplicitModel:
        if self._model is None:
            raise RuntimeError("call fit() first")
        return self._model

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def predict(self, users, items) -> np.ndarray:
        """Predicted ratings for parallel user/item index arrays."""
        with span("recommender.predict"):
            return predict_entries(self.model, np.asarray(users), np.asarray(items))

    def engine(self, **kwargs) -> TopNEngine:
        """The tiled top-N serving engine over the trained factors.

        Built lazily on first query and reused (item factors are cast to
        the scoring dtype once); pass knobs (``tile_bytes``, ``dtype``,
        ``user_block``, ``workers``) to rebuild with a new configuration.
        """
        if kwargs or self._engine is None:
            self._engine = TopNEngine.from_model(self.model, **kwargs)
        return self._engine

    def recommend(
        self, user: int, n_items: int = 10, exclude_seen: bool = True
    ) -> list[tuple[int, float]]:
        """Top-N items for a user, excluding training items by default.

        Truncated when the user has fewer than ``n_items`` unseen items
        (see :mod:`repro.core.predict` for the contract).
        """
        with span("recommender.recommend", n_items=n_items):
            exclude = self._train_csr if exclude_seen else None
            return recommend_top_n(
                self.model, user, n_items=n_items, exclude=exclude,
                engine=self.engine(),
            )

    def recommend_batch(
        self, users, n_items: int = 10, exclude_seen: bool = True
    ) -> TopNResult:
        """Top-N for many users at once, through the tiled engine.

        Returns a :class:`~repro.serving.engine.TopNResult` whose rows
        are padded with ``-1`` for users with fewer than ``n_items``
        unseen items.
        """
        with span("recommender.recommend_batch", n_items=n_items):
            exclude = self._train_csr if exclude_seen else None
            return self.engine().query(
                np.asarray(users), n=n_items, exclude=exclude
            )

    def evaluate_ranking(self, test: COOMatrix, n: int = 10):
        """Top-N ranking quality against a held-out split (engine-backed)."""
        from repro.core.ranking import evaluate_ranking

        if self._train_csr is None:
            raise RuntimeError(
                "ranking evaluation needs the training matrix; fit() this "
                "recommender rather than loading a persisted model"
            )
        with span("recommender.evaluate_ranking", n=n):
            return evaluate_ranking(
                self.model, self._train_csr, test, n=n, engine=self.engine()
            )

    def evaluate(self, ratings: COOMatrix) -> dict[str, float]:
        """RMSE/MAE on a rating set (e.g. the held-out split)."""
        with span("recommender.evaluate"):
            model = self.model
            return {
                "rmse": rmse(ratings, model.X, model.Y),
                "mae": mae(ratings, model.X, model.Y),
            }

    # ------------------------------------------------------------------
    # incremental fold-in / online updates
    # ------------------------------------------------------------------
    def _foldin_train_matrix(self) -> CSRMatrix | None:
        if isinstance(self._train_csr, ShardedCSR):
            raise ValueError(
                "fold-in over an out-of-core (sharded) training matrix is "
                "not supported; train in RAM or serve a loaded checkpoint"
            )
        return self._train_csr

    def fold_in_users(self, ratings: COOMatrix | CSRMatrix) -> np.ndarray:
        """Append new users without retraining — one batched k×k solve.

        ``ratings`` rows index the *new* users (0..h-1) and columns the
        existing items.  Each new user's factors are exactly the k×k
        ridge system a half-sweep solves per row, so they are assembled
        through the binned kernels and solved as one batched S3 call
        (:mod:`repro.serving.foldin`) and appended to ``model.X``; the
        item factors and every existing user row are untouched.  The
        training matrix gains the new rows (O(new nnz)) so
        ``exclude_seen`` keeps working.  Returns the assigned global
        user ids.
        """
        model = self.model
        train = self._foldin_train_matrix()
        n_items = int(model.Y.shape[0])
        R_new = as_new_rows_csr(ratings, n_items)
        with span("recommender.fold_in_users", rows=R_new.nrows, nnz=R_new.nnz):
            X_new = fold_in_factors(
                R_new, model.Y, self.config.lam, self.algorithm,
                getattr(self.config, "alpha", None),
            )
            m_old = int(model.X.shape[0])
            model.X = np.concatenate(
                [np.asarray(model.X, dtype=np.float64), X_new], axis=0
            )
            if train is None:
                # Loaded checkpoint: no training matrix persisted — the
                # existing users have no exclusion rows, the new ones do.
                train = CSRMatrix(
                    (m_old, n_items),
                    np.zeros(0, dtype=np.float32),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(m_old + 1, dtype=np.int64),
                )
            self._train_csr = _append_rows(train, R_new)
            self._engine = None  # row count changed; rebuild lazily
        return np.arange(m_old, m_old + R_new.nrows)

    def fold_in_items(self, ratings: COOMatrix | CSRMatrix) -> np.ndarray:
        """Append new items: the transpose of :meth:`fold_in_users`.

        ``ratings`` rows index the *new* items and columns the existing
        users; the new item factors solve against the fixed user factors
        and append to ``model.Y``.  The training matrix is rebuilt with
        the widened column space (O(total nnz) — column appends cannot
        reuse the row-major layout).  Returns the new global item ids.
        """
        model = self.model
        train = self._foldin_train_matrix()
        m_users = int(model.X.shape[0])
        R_new = as_new_rows_csr(ratings, m_users)
        with span("recommender.fold_in_items", rows=R_new.nrows, nnz=R_new.nnz):
            Y_new = fold_in_factors(
                R_new, model.X, self.config.lam, self.algorithm,
                getattr(self.config, "alpha", None),
            )
            n_old = int(model.Y.shape[0])
            model.Y = np.concatenate(
                [np.asarray(model.Y, dtype=np.float64), Y_new], axis=0
            )
            if train is not None:
                rows = np.concatenate([train.expanded_rows(), R_new.col_idx])
                cols = np.concatenate(
                    [train.col_idx, n_old + R_new.expanded_rows()]
                )
                vals = np.concatenate([train.value, R_new.value])
                self._train_csr = CSRMatrix.from_coo(COOMatrix(
                    (train.nrows, n_old + R_new.nrows), rows, cols, vals
                ))
            self._engine = None
        return np.arange(n_old, n_old + R_new.nrows)

    def update_ratings(self, updates: COOMatrix) -> np.ndarray:
        """Merge new/changed ratings of *existing* users; re-solve only
        their rows.

        ``updates`` entries address existing (user, item) coordinates;
        a duplicate coordinate overwrites the stored rating (last write
        wins, the same reconciliation rule as dataset loading).  The
        affected users' factor rows are recomputed through the fold-in
        path — each comes back bitwise-equal to the same row of a fresh
        serial float64 half-sweep over the merged matrix — and every
        other row is untouched.  Requires the training matrix (``fit``
        in RAM; a loaded checkpoint has none).  Returns the affected
        user ids.
        """
        model = self.model
        train = self._foldin_train_matrix()
        if train is None:
            raise RuntimeError(
                "update_ratings needs the training matrix; fit() this "
                "recommender rather than loading a persisted model"
            )
        if not isinstance(updates, COOMatrix):
            raise TypeError("updates must be a COOMatrix of (user, item, rating)")
        if updates.shape[0] > train.nrows or updates.shape[1] > train.ncols:
            raise ValueError(
                f"updates shape {updates.shape} exceeds the training matrix "
                f"{(train.nrows, train.ncols)}; use fold_in_users/"
                "fold_in_items for new entities"
            )
        with span("recommender.update_ratings", nnz=updates.nnz):
            rows = np.concatenate([train.expanded_rows(), updates.row])
            cols = np.concatenate([train.col_idx, updates.col])
            vals = np.concatenate([train.value, updates.value])
            merged = CSRMatrix.from_coo(
                COOMatrix((train.nrows, train.ncols), rows, cols, vals)
            )
            affected = np.unique(updates.row.astype(np.int64))
            X_rows = fold_in_factors(
                merged.take_rows(affected), model.Y, self.config.lam,
                self.algorithm, getattr(self.config, "alpha", None),
            )
            X = np.array(model.X, dtype=np.float64, copy=True)
            X[affected] = X_rows
            model.X = X
            self._train_csr = merged
            self._engine = None
        return affected

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Persist factors, hyper-parameters and the training history.

        The default format is a checkpoint *directory* — ``X.npy`` and
        ``Y.npy`` written through :func:`numpy.lib.format.open_memmap`
        in row chunks (peak transient memory is one chunk, and memmapped
        factors stream disk-to-disk without ever being resident), plus a
        ``meta.json`` sidecar.  A ``path`` ending in ``.npz`` selects
        the legacy single-file compressed envelope instead, which
        materializes a second copy of the factors while compressing.

        Explicit (:class:`ALSModel`) and implicit
        (:class:`~repro.core.implicit.ImplicitModel`) models share the
        same envelope: ``X``/``Y`` factor arrays plus JSON metadata
        whose ``algorithm`` field selects the reconstruction path.
        Implicit history is the per-iteration weighted loss (floats);
        explicit history is the per-iteration :class:`IterationStats`.
        """
        model = self.model
        if isinstance(model, ImplicitModel):
            history: list = list(model.history)  # weighted loss floats
        else:
            history = [asdict(stats) for stats in model.history]
        meta = {
            "algorithm": self.algorithm,
            "config": asdict(self.config),
            "history": history,
        }
        if isinstance(model, ImplicitModel) and model.stats:
            # Structured per-iteration tracking (loss + elapsed seconds)
            # rides alongside the historical float history.
            meta["stats"] = [asdict(stats) for stats in model.stats]
        if str(path).endswith(".npz"):
            np.savez_compressed(
                path,
                X=np.asarray(model.X),
                Y=np.asarray(model.Y),
                meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            )
            return
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        for name, arr in (("X", model.X), ("Y", model.Y)):
            dst = open_memmap(
                directory / f"{name}.npy", mode="w+",
                dtype=arr.dtype, shape=arr.shape,
            )
            for a in range(0, arr.shape[0], _SAVE_CHUNK_ROWS):
                b = min(a + _SAVE_CHUNK_ROWS, arr.shape[0])
                dst[a:b] = arr[a:b]
            dst.flush()
            del dst
        # meta.json is written last: a directory holding factor files but
        # no metadata is an interrupted save, and load() rejects it.
        (directory / "meta.json").write_text(json.dumps(meta))

    @classmethod
    def load(
        cls, path: str | os.PathLike, mmap_mode: str | None = None
    ) -> "Recommender":
        """Restore a saved recommender (query-ready; training data is not
        persisted, so ``recommend`` defaults to no exclusion).

        Directory checkpoints (the :meth:`save` default) support
        ``mmap_mode="r"``: the factors stay on disk and pages fault in
        as queries touch them, so a model larger than RAM can serve.
        Legacy ``.npz`` files load eagerly and reject ``mmap_mode``
        (a zip member cannot be mapped).

        Raises :class:`ValueError` — not a bare ``KeyError`` — when the
        file is missing envelope entries, names an unknown algorithm, or
        holds factors whose shapes disagree with the stored config.
        """
        p = Path(path)
        if p.is_dir():
            meta_path = p / "meta.json"
            missing = [
                f.name for f in (meta_path, p / "X.npy", p / "Y.npy")
                if not f.is_file()
            ]
            if missing:
                raise ValueError(
                    f"{path}: not a Recommender checkpoint directory — "
                    f"missing {', '.join(missing)}"
                )
            meta = json.loads(meta_path.read_text())
            X = np.load(p / "X.npy", mmap_mode=mmap_mode)
            Y = np.load(p / "Y.npy", mmap_mode=mmap_mode)
        else:
            if mmap_mode is not None:
                raise ValueError(
                    "mmap_mode requires a directory checkpoint; "
                    f"{path} is a legacy .npz file (members of a zip "
                    "archive cannot be memory-mapped)"
                )
            with np.load(path) as data:
                missing = [
                    key for key in ("X", "Y", "meta") if key not in data.files
                ]
                if missing:
                    raise ValueError(
                        f"{path}: not a Recommender checkpoint — missing "
                        f"{', '.join(missing)} "
                        f"(has: {', '.join(data.files) or 'nothing'})"
                    )
                meta = json.loads(bytes(data["meta"].tobytes()).decode())
                X = data["X"]
                Y = data["Y"]
        algorithm = meta.get("algorithm")
        if algorithm not in _ALGORITHMS:
            known = ", ".join(sorted(_ALGORITHMS))
            raise ValueError(
                f"{path}: unknown algorithm {algorithm!r}; known: {known}"
            )
        cfg = meta.get("config")
        if not isinstance(cfg, dict) or "k" not in cfg:
            raise ValueError(f"{path}: meta block lacks a config with 'k'")
        k = cfg["k"]
        if X.ndim != 2 or Y.ndim != 2 or X.shape[1] != k or Y.shape[1] != k:
            raise ValueError(
                f"{path}: factor shapes {X.shape}/{Y.shape} do not match "
                f"the stored config (k={k})"
            )
        history = meta.get("history", [])
        if algorithm == "implicit":
            config = ImplicitConfig(**cfg)
            rec = cls(
                k=config.k, lam=config.lam, iterations=config.iterations,
                algorithm=algorithm, seed=config.seed, alpha=config.alpha,
            )
            rec.config = config  # keep persisted knobs (assembly, workers, …)
            rec._model = ImplicitModel(
                X=X, Y=Y, config=config, history=[float(h) for h in history],
                stats=[
                    IterationStats(**stats) for stats in meta.get("stats", [])
                ],
            )
        else:
            config = ALSConfig(**cfg)
            rec = cls(
                k=config.k, lam=config.lam, iterations=config.iterations,
                algorithm=algorithm, seed=config.seed,
            )
            rec.config = config
            # Files written before history persistence lack the key; they
            # load with an empty history, as before.
            rec._model = ALSModel(
                X=X, Y=Y, config=config,
                history=[IterationStats(**stats) for stats in history],
            )
        return rec
