"""Prediction and recommendation on trained factors (Eq. 1)."""

from __future__ import annotations

import numpy as np

from repro.core.als import ALSModel
from repro.sparse.csr import CSRMatrix

__all__ = ["predict_rating", "predict_entries", "recommend_top_n", "recommend_top_n_batch"]


def predict_rating(model: ALSModel, user: int, item: int) -> float:
    """``r_ui = x_u · y_i`` (Eq. 1)."""
    m, n = model.shape
    if not 0 <= user < m:
        raise IndexError(f"user {user} out of range for {m} users")
    if not 0 <= item < n:
        raise IndexError(f"item {item} out of range for {n} items")
    return float(model.X[user] @ model.Y[item])


def predict_entries(
    model: ALSModel, users: np.ndarray, items: np.ndarray
) -> np.ndarray:
    """Vectorized predictions for parallel (user, item) arrays."""
    users = np.asarray(users)
    items = np.asarray(items)
    if users.shape != items.shape:
        raise ValueError("users and items must have the same shape")
    return np.einsum("ij,ij->i", model.X[users], model.Y[items])


def recommend_top_n(
    model: ALSModel,
    user: int,
    n_items: int = 10,
    exclude: CSRMatrix | None = None,
) -> list[tuple[int, float]]:
    """The user's top-N unseen items by predicted rating.

    ``exclude`` is typically the training matrix: items the user already
    rated are never recommended back.
    """
    m, _ = model.shape
    if not 0 <= user < m:
        raise IndexError(f"user {user} out of range for {m} users")
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    scores = model.Y @ model.X[user]
    if exclude is not None:
        seen, _ = exclude.row_slice(user)
        scores = scores.copy()
        scores[seen] = -np.inf
    n_items = min(n_items, scores.size)
    top = np.argpartition(scores, -n_items)[-n_items:]
    top = top[np.argsort(scores[top])[::-1]]
    return [(int(i), float(scores[i])) for i in top if np.isfinite(scores[i])]


def recommend_top_n_batch(
    model: ALSModel,
    users: np.ndarray,
    n_items: int = 10,
    exclude: CSRMatrix | None = None,
) -> np.ndarray:
    """Top-N item ids for many users at once (vectorized scoring).

    Returns an ``(len(users), n_items)`` int array, each row sorted by
    descending predicted rating; excluded (seen) items are replaced by
    the next-best candidates.  ``n_items`` must not exceed the number of
    recommendable items for any requested user.
    """
    users = np.asarray(users)
    if users.ndim != 1:
        raise ValueError("users must be a 1-D index array")
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    scores = model.X[users] @ model.Y.T  # (U, n)
    if exclude is not None:
        for pos, user in enumerate(users):
            seen, _ = exclude.row_slice(int(user))
            scores[pos, seen] = -np.inf
    if n_items > scores.shape[1]:
        raise ValueError("n_items exceeds the item catalog")
    top = np.argpartition(scores, -n_items, axis=1)[:, -n_items:]
    row_scores = np.take_along_axis(scores, top, axis=1)
    order = np.argsort(row_scores, axis=1)[:, ::-1]
    ranked = np.take_along_axis(top, order, axis=1)
    if exclude is not None and not np.isfinite(
        np.take_along_axis(scores, ranked, axis=1)
    ).all():
        raise ValueError(
            "a requested user has fewer than n_items unseen items"
        )
    return ranked
