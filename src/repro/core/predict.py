"""Prediction and recommendation on trained factors (Eq. 1).

The top-N paths are thin compatibility wrappers over the tiled serving
engine (:mod:`repro.serving.engine`): scoring runs in byte-budgeted item
tiles with vectorized CSR exclusion instead of a dense ``(U, n)`` score
matrix and a per-user Python masking loop.

Short-candidate contract (unified across both top-N entry points):
``n_items`` is clamped to the catalog size, and a user with fewer than
``n_items`` recommendable (unseen) items is *not* an error —

* :func:`recommend_top_n` returns a **truncated** list holding only the
  recommendable items;
* :func:`recommend_top_n_batch` returns fixed-width rows **padded** with
  :data:`repro.serving.PAD_ITEM` (``-1``) past each user's last
  recommendable item.

Rows are ordered by ``(score desc, item id asc)`` — a total order, so
results are deterministic under exact score ties.
"""

from __future__ import annotations

import numpy as np

from repro.core.als import ALSModel
from repro.serving.engine import TopNEngine
from repro.sparse.csr import CSRMatrix

__all__ = ["predict_rating", "predict_entries", "recommend_top_n", "recommend_top_n_batch"]


def _validate_indices(idx: np.ndarray, size: int, kind: str) -> None:
    """Reject out-of-range indices instead of letting numpy wrap them.

    Negative indices would silently select from the *end* of the factor
    matrix — in particular the ``-1`` rows :data:`repro.serving.PAD_ITEM`
    padding produces would score the last item instead of erroring.
    """
    if idx.size == 0:
        return
    if not np.issubdtype(idx.dtype, np.integer):
        raise IndexError(f"{kind} indices must be integers, got dtype {idx.dtype}")
    lo, hi = int(idx.min()), int(idx.max())
    if lo < 0 or hi >= size:
        bad = lo if lo < 0 else hi
        hint = (
            " (-1 is the PAD_ITEM padding recommend_top_n_batch uses for "
            "short rows; filter padded entries before predicting)"
            if bad == -1
            else ""
        )
        raise IndexError(f"{kind} index {bad} out of range for {size} {kind}s{hint}")


def predict_rating(model: ALSModel, user: int, item: int) -> float:
    """``r_ui = x_u · y_i`` (Eq. 1)."""
    m, n = model.shape
    if not 0 <= user < m:
        raise IndexError(f"user {user} out of range for {m} users")
    if not 0 <= item < n:
        raise IndexError(f"item {item} out of range for {n} items")
    return float(model.X[user] @ model.Y[item])


def predict_entries(
    model: ALSModel, users: np.ndarray, items: np.ndarray
) -> np.ndarray:
    """Vectorized predictions for parallel (user, item) arrays.

    Works on any model exposing ``(X, Y)`` factors (explicit
    :class:`ALSModel` or :class:`~repro.core.implicit.ImplicitModel`).
    Out-of-range indices — including the negative ones numpy would
    silently wrap — raise :class:`IndexError`.
    """
    users = np.asarray(users)
    items = np.asarray(items)
    if users.shape != items.shape:
        raise ValueError("users and items must have the same shape")
    _validate_indices(users, model.X.shape[0], "user")
    _validate_indices(items, model.Y.shape[0], "item")
    return np.einsum("ij,ij->i", model.X[users], model.Y[items])


def recommend_top_n(
    model: ALSModel,
    user: int,
    n_items: int = 10,
    exclude: CSRMatrix | None = None,
    engine: TopNEngine | None = None,
) -> list[tuple[int, float]]:
    """The user's top-N unseen items by predicted rating.

    ``exclude`` is typically the training matrix: items the user already
    rated are never recommended back.  Returns at most ``n_items``
    ``(item, score)`` pairs, truncated when the user has fewer
    recommendable items (see the module contract).
    """
    m, _ = model.shape
    if not 0 <= user < m:
        raise IndexError(f"user {user} out of range for {m} users")
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if engine is None:
        engine = TopNEngine.from_model(model)
    result = engine.query(np.array([user]), n=n_items, exclude=exclude)
    return result.row(0)


def recommend_top_n_batch(
    model: ALSModel,
    users: np.ndarray,
    n_items: int = 10,
    exclude: CSRMatrix | None = None,
    engine: TopNEngine | None = None,
) -> np.ndarray:
    """Top-N item ids for many users at once (tiled scoring).

    Returns a ``(len(users), min(n_items, catalog))`` int array, each
    row sorted by descending predicted rating with ties broken by item
    id; a user with fewer recommendable items than the row width gets
    ``-1`` padding past the last one (see the module contract).
    """
    users = np.asarray(users)
    if users.ndim != 1:
        raise ValueError("users must be a 1-D index array")
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if engine is None:
        engine = TopNEngine.from_model(model)
    return engine.query(users, n=n_items, exclude=exclude).items
