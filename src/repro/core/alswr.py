"""ALS-WR: weighted-λ regularization (Zhou et al. [3]).

Identical to plain ALS except the regularizer scales with each entity's
rating count: row u is solved with ``λ · n_u · I`` where ``n_u = |Ω_u|``.
This is the variant that won Netflix-Prize-era practice because the
effective shrinkage stays comparable between heavy and light raters.

The sweep itself is the shared ``sweep_occupied`` kernel with
``weighted=True``, which is what lets the multicore executor
(:mod:`repro.parallel`) shard ALS-WR exactly like plain ALS.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.als import ALSConfig, ALSModel, IterationStats, ratings_views
from repro.core.init import init_factors
from repro.core.loss import rmse
from repro.kernels.fastpath import sweep_occupied
from repro.obs import metrics as obs_metrics
from repro.obs.spans import span
from repro.parallel.executor import SweepExecutor
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["train_als_wr", "weighted_half_sweep"]


def weighted_half_sweep(
    R: CSRMatrix,
    Y: np.ndarray,
    lam: float,
    X_prev: np.ndarray | None = None,
    solver: str | None = None,
    assembly: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
) -> np.ndarray:
    """One ALS-WR half-sweep: ``x_u = (Y_ΩᵀY_Ω + λ·n_u·I)⁻¹ Y_Ωᵀ r_u``."""
    if lam <= 0:
        raise ValueError("lam must be positive")
    k = Y.shape[1]
    X = np.zeros((R.nrows, k), dtype=np.float64)
    if X_prev is not None:
        X[:] = X_prev
    rows, X_rows = sweep_occupied(
        R, Y, lam, weighted=True, solver=solver,
        assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
    )
    X[rows] = X_rows
    return X


def train_als_wr(
    ratings: COOMatrix | CSRMatrix, config: ALSConfig | None = None
) -> ALSModel:
    """Train with weighted-λ regularization; same driver shape as ALS."""
    config = config or ALSConfig()
    coo, R_rows = ratings_views(ratings)
    with span(
        "als.train",
        algorithm="als-wr",
        k=config.k,
        iterations=config.iterations,
        nnz=coo.nnz,
    ):
        with span("als.build_views"):
            R_cols = CSCMatrix.from_csr(R_rows).transpose_as_csr()
            m, n = R_rows.shape
            X, Y = init_factors(
                m, n, config.k, seed=config.seed, scale=config.init_scale
            )
        model = ALSModel(X=X, Y=Y, config=config)
        sweep_kw = dict(
            weighted=True, solver=config.solver, cholesky=config.cholesky,
            assembly=config.assembly, tile_nnz=config.tile_nnz,
            compute_dtype=config.assembly_dtype,
        )
        with SweepExecutor(config.workers) as executor:
            for it in range(1, config.iterations + 1):
                with span("als.iteration", iteration=it):
                    obs_metrics.inc("als.iterations")
                    t_hs = perf_counter()
                    with span("als.half_sweep", side="X", iteration=it):
                        X = executor.half_sweep(
                            R_rows, Y, config.lam, X_prev=X, **sweep_kw
                        )
                    obs_metrics.observe_latency(
                        "als.half_sweep.seconds", perf_counter() - t_hs
                    )
                    t_hs = perf_counter()
                    with span("als.half_sweep", side="Y", iteration=it):
                        Y = executor.half_sweep(
                            R_cols, X, config.lam, X_prev=Y, **sweep_kw
                        )
                    obs_metrics.observe_latency(
                        "als.half_sweep.seconds", perf_counter() - t_hs
                    )
                    if config.track_loss:
                        # The WR objective differs from Eq. 2; RMSE is the
                        # comparable metric, so loss tracking records the
                        # (unweighted) fit term.
                        with span("als.loss", iteration=it):
                            err_rmse = rmse(coo, X, Y)
                        model.history.append(
                            IterationStats(
                                iteration=it,
                                loss=err_rmse**2 * coo.nnz,
                                train_rmse=err_rmse,
                            )
                        )
        model.X, model.Y = X, Y
    return model
