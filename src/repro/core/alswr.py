"""ALS-WR: weighted-λ regularization (Zhou et al. [3]).

Identical to plain ALS except the regularizer scales with each entity's
rating count: row u is solved with ``λ · n_u · I`` where ``n_u = |Ω_u|``.
This is the variant that won Netflix-Prize-era practice because the
effective shrinkage stays comparable between heavy and light raters.

The sweep itself is the shared ``sweep_occupied`` kernel with
``weighted=True``, which is what lets the multicore executor
(:mod:`repro.parallel`) shard ALS-WR exactly like plain ALS.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.als import (
    ALSConfig,
    ALSModel,
    IterationStats,
    resolve_factor_dir,
    training_views,
)
from repro.core.init import init_factors
from repro.core.loss import rmse
from repro.core.subspace import (
    make_blocks,
    resolve_block_size,
    subspace_iteration,
)
from repro.kernels.fastpath import sweep_occupied
from repro.obs import metrics as obs_metrics
from repro.obs.spans import span
from repro.parallel.executor import SweepExecutor
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.shards import ShardStore, ShardedCSR

__all__ = ["train_als_wr", "weighted_half_sweep"]


def weighted_half_sweep(
    R: CSRMatrix | ShardedCSR,
    Y: np.ndarray,
    lam: float,
    X_prev: np.ndarray | None = None,
    solver: str | None = None,
    assembly: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
) -> np.ndarray:
    """One ALS-WR half-sweep: ``x_u = (Y_ΩᵀY_Ω + λ·n_u·I)⁻¹ Y_Ωᵀ r_u``."""
    if lam <= 0:
        raise ValueError("lam must be positive")
    if isinstance(R, ShardedCSR):
        with SweepExecutor(1) as ex:
            return ex.half_sweep(
                R, Y, lam, X_prev=X_prev, weighted=True, solver=solver,
                assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
            )
    k = Y.shape[1]
    X = np.zeros((R.nrows, k), dtype=np.float64)
    if X_prev is not None:
        X[:] = X_prev
    rows, X_rows = sweep_occupied(
        R, Y, lam, weighted=True, solver=solver,
        assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
    )
    X[rows] = X_rows
    return X


def train_als_wr(
    ratings: COOMatrix | CSRMatrix | ShardStore, config: ALSConfig | None = None
) -> ALSModel:
    """Train with weighted-λ regularization; same driver shape as ALS.

    A :class:`ShardStore` input runs the blocked out-of-core sweeps,
    exactly as :func:`train_als` does.
    """
    config = config or ALSConfig()
    R_rows, R_cols, loss_view = training_views(ratings)
    sharded = R_cols is not None
    with span(
        "als.train",
        algorithm="als-wr",
        k=config.k,
        iterations=config.iterations,
        nnz=R_rows.nnz,
        out_of_core=sharded,
    ):
        with span("als.build_views"):
            if R_cols is None:
                R_cols = CSCMatrix.from_csr(R_rows).transpose_as_csr()
            m, n = R_rows.shape
            X, Y = init_factors(
                m, n, config.k, seed=config.seed, scale=config.init_scale,
                memmap_dir=resolve_factor_dir(config),
            )
        model = ALSModel(X=X, Y=Y, config=config)
        inplace = config.factors == "memmap"
        sweep_kw = dict(
            weighted=True, solver=config.solver, cholesky=config.cholesky,
            assembly=config.assembly, tile_nnz=config.tile_nnz,
            compute_dtype=config.assembly_dtype,
        )
        block_d = resolve_block_size(
            config.block_size, config.k,
            nnz_per_row=R_rows.nnz / max(1, m),
            compute_dtype=config.assembly_dtype,
        )
        blocks = None if block_d is None else make_blocks(config.k, block_d)
        elapsed = 0.0
        with SweepExecutor(config.workers) as executor:
            for it in range(1, config.iterations + 1):
                with span("als.iteration", iteration=it):
                    obs_metrics.inc("als.iterations")
                    t_iter = perf_counter()
                    if blocks is None:
                        t_hs = perf_counter()
                        with span("als.half_sweep", side="X", iteration=it):
                            X = executor.half_sweep(
                                R_rows, Y, config.lam, X_prev=X,
                                out=X if inplace else None, **sweep_kw
                            )
                        obs_metrics.observe_latency(
                            "als.half_sweep.seconds", perf_counter() - t_hs
                        )
                        t_hs = perf_counter()
                        with span("als.half_sweep", side="Y", iteration=it):
                            Y = executor.half_sweep(
                                R_cols, X, config.lam, X_prev=Y,
                                out=Y if inplace else None, **sweep_kw
                            )
                        obs_metrics.observe_latency(
                            "als.half_sweep.seconds", perf_counter() - t_hs
                        )
                    else:
                        X, Y = subspace_iteration(
                            executor, R_rows, R_cols, X, Y, config.lam,
                            blocks, config.block_schedule, sweep_kw,
                            inplace=inplace, iteration=it,
                        )
                    elapsed += perf_counter() - t_iter
                    if config.track_loss:
                        # The WR objective differs from Eq. 2; RMSE is the
                        # comparable metric, so loss tracking records the
                        # (unweighted) fit term.
                        with span("als.loss", iteration=it):
                            err_rmse = rmse(loss_view, X, Y)
                        model.history.append(
                            IterationStats(
                                iteration=it,
                                loss=err_rmse**2 * R_rows.nnz,
                                train_rmse=err_rmse,
                                elapsed_seconds=elapsed,
                            )
                        )
        model.X, model.Y = X, Y
    return model
