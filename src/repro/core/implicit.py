"""Implicit-feedback ALS (Hu, Koren & Volinsky) on the optimized substrate.

The paper's introduction credits ALS with being able to "incorporate
implicit ratings" [1]; this module implements that variant.  Observations
become binary preferences ``p_ui = 1`` with confidence
``c_ui = 1 + α·r_ui``, and each row solves

    x_u = (YᵀY + Yᵀ(C_u − I)Y + λI)⁻¹ Yᵀ C_u p_u

using the classic trick: the dense ``YᵀY`` is computed once per
half-sweep and only the sparse correction ``Yᵀ(C_u − I)Y`` is assembled
per row.

Historically that correction was built by materializing every per-rating
outer product as an ``(nnz, k, k)`` tensor and scatter-adding it — ~32 GB
at MovieLens-1M with k = 64, an out-of-memory crash on exactly the
datasets the paper benchmarks.  The sweep now runs on the shared
machinery the explicit path uses:

* the correction ``Σ α·r · y yᵀ`` and the RHS ``Σ (1 + α·r) · y`` ride
  the degree-binned, nnz-tile-budgeted assembly of
  :mod:`repro.linalg.normal_equations` (per-nnz weight vector; the
  ``(nnz, k, k)`` intermediate is gone and peak scratch is bounded by
  the ``tile_nnz`` budget / ``REPRO_TILE_NNZ``);
* S3 goes through the :mod:`repro.linalg.solvers` registry (LAPACK-class
  batched Cholesky available), with the shared ``YᵀY`` broadcast kept;
* half-sweeps shard over :class:`repro.parallel.SweepExecutor` with the
  same bitwise-equal-to-serial guarantee as explicit ALS (weights derive
  from each shard's own values);
* instrumented runs emit ``als.implicit.s1``/``s2``/``s3`` spans plus
  the ``assembly.implicit.peak_tile_bytes`` gauge.

The retained scatter reference is one knob away (``assembly="scatter"``)
for parity tests and ``benchmarks/bench_implicit.py``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.als import FACTOR_MODES, IterationStats, training_views
from repro.core.init import init_factors
from repro.core.subspace import (
    BLOCK_SCHEDULES,
    make_blocks,
    resolve_block_size,
    subspace_iteration,
    validate_block_size,
)
from repro.linalg.normal_equations import ASSEMBLY_MODES
from repro.linalg.solvers import SOLVER_MODES
from repro.obs import metrics as obs_metrics
from repro.obs.spans import span
from repro.parallel.executor import SweepExecutor, _parse_workers
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.shards import ShardStore, ShardedCSR

__all__ = ["ImplicitConfig", "ImplicitModel", "implicit_half_sweep", "train_implicit_als"]


@dataclass(frozen=True)
class ImplicitConfig:
    """Hyper-parameters of implicit-feedback ALS.

    The assembly/solver/parallelism knobs mirror :class:`ALSConfig` —
    ``None`` defers to the configured / environment defaults of the
    respective subsystem, exactly as the explicit trainer does.
    """

    k: int = 10
    lam: float = 0.1
    alpha: float = 40.0  # confidence slope: c = 1 + α·r
    iterations: int = 5
    # Early stopping, with ALSConfig's exact semantics: stop once the
    # relative weighted-loss improvement between iterations falls below
    # `tol` (0 disables); `track_loss` gates the per-iteration loss
    # evaluation that stopping (and the history) depends on.
    tol: float = 0.0
    track_loss: bool = True
    seed: int = 0
    init_scale: float = 0.1
    # S1/S2 assembly code variant; None defers to configure_assembly /
    # REPRO_ASSEMBLY, then the built-in binned default.
    assembly: str | None = None  # "binned" | "scatter" | "auto"
    tile_nnz: int | None = None  # nnz budget per assembly tile
    assembly_dtype: str | None = None  # "float32" | "float64" compute mode
    # S3 solver code variant; None defers to configure_solver / REPRO_SOLVER.
    solver: str | None = None  # "cholesky" | "gaussian" | "lapack" | "auto"
    # Half-sweep parallelism: "auto" = one worker per core, N = exactly N
    # threads; None defers to configure_workers / REPRO_WORKERS (serial).
    workers: int | str | None = None
    # Factor-matrix backing: "ram" or "memmap" (see ALSConfig).
    factors: str = "ram"
    factors_dir: str | None = None
    # iALS++ subspace descent knobs (see ALSConfig / core.subspace).
    block_size: int | str | None = None
    block_schedule: str = "paired"

    def __post_init__(self) -> None:
        if self.k <= 0 or self.iterations <= 0:
            raise ValueError("k and iterations must be positive")
        if self.lam <= 0 or self.alpha <= 0:
            raise ValueError("lam and alpha must be positive")
        if self.tol < 0:
            raise ValueError("tol must be non-negative")
        if self.tol > 0 and not self.track_loss:
            raise ValueError("tol-based stopping requires track_loss")
        if self.assembly is not None and self.assembly not in ASSEMBLY_MODES:
            raise ValueError(
                f"assembly must be one of {ASSEMBLY_MODES}, got {self.assembly!r}"
            )
        if self.tile_nnz is not None and self.tile_nnz < 1:
            raise ValueError("tile_nnz must be >= 1")
        if self.assembly_dtype is not None and self.assembly_dtype not in (
            "float32",
            "float64",
        ):
            raise ValueError(
                f"assembly_dtype must be 'float32' or 'float64', "
                f"got {self.assembly_dtype!r}"
            )
        if self.solver is not None and self.solver not in SOLVER_MODES:
            raise ValueError(
                f"solver must be one of {SOLVER_MODES}, got {self.solver!r}"
            )
        if self.workers is not None:
            _parse_workers(self.workers)  # raises on bad specs
        if self.factors not in FACTOR_MODES:
            raise ValueError(
                f"factors must be one of {FACTOR_MODES}, got {self.factors!r}"
            )
        validate_block_size(self.block_size)
        if self.block_schedule not in BLOCK_SCHEDULES:
            raise ValueError(
                f"block_schedule must be one of {BLOCK_SCHEDULES}, "
                f"got {self.block_schedule!r}"
            )


@dataclass
class ImplicitModel:
    X: np.ndarray
    Y: np.ndarray
    config: ImplicitConfig
    history: list[float] = field(default_factory=list)  # weighted loss per iter
    # Structured per-iteration tracking (loss + cumulative training
    # seconds); `history` keeps the historical plain-float surface.
    stats: list[IterationStats] = field(default_factory=list)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.X.shape[0], self.Y.shape[0])

    @property
    def k(self) -> int:
        return self.X.shape[1]

    def score(self, user: int) -> np.ndarray:
        """Preference scores of one user over all items."""
        return self.Y @ self.X[user]


def implicit_half_sweep(
    R: CSRMatrix | ShardedCSR,
    Y: np.ndarray,
    lam: float,
    alpha: float,
    *,
    solver: str | None = None,
    assembly: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
    executor: SweepExecutor | None = None,
    workers: int | str | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Update all row factors of ``R`` for implicit feedback.

    Empty rows resolve to zero (their preference vector is all-zero and
    the system is ``(YᵀY + λI) x = 0``).  The shared dense ``YᵀY`` is
    computed once here and broadcast onto every occupied row's system
    (the Hu-Koren trick); the sparse correction assembles through the
    binned/tiled weighted kernel, so peak scratch is bounded by the
    ``tile_nnz`` budget instead of growing with ``nnz·k²``.

    Pass an ``executor`` to reuse a training run's thread pool; with
    ``workers`` (or neither) a transient executor handles this sweep.
    The parallel result is bitwise-identical to the serial one, as is
    the blocked out-of-core sweep a :class:`ShardedCSR` ``R`` selects.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    Y = np.ascontiguousarray(Y, dtype=np.float64)
    YtY = Y.T @ Y  # shared dense part, computed once (the Hu-Koren trick)
    kw = dict(
        implicit_alpha=float(alpha), base_gram=YtY, solver=solver,
        assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
        out=out,
    )
    if executor is not None:
        return executor.half_sweep(R, Y, lam, **kw)
    with SweepExecutor(workers) as ex:
        return ex.half_sweep(R, Y, lam, **kw)


def _weighted_loss(
    ratings: COOMatrix | ShardedCSR,
    X: np.ndarray,
    Y: np.ndarray,
    lam: float,
    alpha: float,
) -> float:
    """Confidence-weighted objective over observed entries plus penalty.

    The full implicit objective also sums over *unobserved* cells; this
    tracker omits that constant-heavy term (standard practice for
    monitoring convergence direction cheaply).  A :class:`ShardedCSR`
    streams resident shards and accumulates partial sums (matching the
    in-RAM value to float64 rounding).
    """
    if isinstance(ratings, ShardedCSR):
        fit = 0.0
        for sp, mat in ratings.iter_resident(prefetch=False):
            rows = sp.row_start + mat.expanded_rows()
            pred = np.einsum("ij,ij->i", X[rows], Y[mat.col_idx])
            conf = 1.0 + alpha * mat.value.astype(np.float64)
            err = 1.0 - pred
            fit += float(conf @ (err * err))
    else:
        pred = np.einsum("ij,ij->i", X[ratings.row], Y[ratings.col])
        conf = 1.0 + alpha * ratings.value.astype(np.float64)
        err = 1.0 - pred
        fit = float(conf @ (err * err))
    return fit + lam * (float(np.sum(X * X)) + float(np.sum(Y * Y)))


def train_implicit_als(
    ratings: COOMatrix | CSRMatrix | ShardStore, config: ImplicitConfig | None = None
) -> ImplicitModel:
    """Train implicit-feedback factors on interaction counts/strengths.

    Accepts COO (deduplicated and converted once), a prebuilt CSR
    matrix, or an on-disk :class:`ShardStore` (the blocked out-of-core
    path), like :func:`train_als`.  Each iteration runs the two
    half-sweeps through one shared :class:`SweepExecutor`, so the
    ``workers`` knob shards both sides over a reusable thread pool.
    """
    config = config or ImplicitConfig()
    R_rows, R_cols, loss_view = training_views(ratings)
    sharded = R_cols is not None
    if sharded:
        if R_rows.nnz and R_rows.min_value() < 0:
            raise ValueError("implicit feedback must be non-negative")
    elif loss_view.nnz and loss_view.value.min() < 0:
        raise ValueError("implicit feedback must be non-negative")
    with span(
        "als.train",
        algorithm="implicit",
        k=config.k,
        iterations=config.iterations,
        nnz=R_rows.nnz,
        out_of_core=sharded,
    ):
        with span("als.build_views"):
            if R_cols is None:
                R_cols = CSCMatrix.from_csr(R_rows).transpose_as_csr()
            m, n = R_rows.shape
            memmap_dir = None
            if config.factors == "memmap":
                memmap_dir = config.factors_dir or tempfile.mkdtemp(
                    prefix="repro-factors-"
                )
            X, Y = init_factors(
                m, n, config.k, seed=config.seed, scale=config.init_scale,
                memmap_dir=memmap_dir,
            )
        model = ImplicitModel(X=X, Y=Y, config=config)
        inplace = config.factors == "memmap"
        sweep_kw = dict(
            solver=config.solver, assembly=config.assembly,
            tile_nnz=config.tile_nnz, compute_dtype=config.assembly_dtype,
        )
        block_d = resolve_block_size(
            config.block_size, config.k,
            nnz_per_row=R_rows.nnz / max(1, m),
            compute_dtype=config.assembly_dtype,
        )
        blocks = None if block_d is None else make_blocks(config.k, block_d)
        grams: dict = {}  # per-side GramCache, persistent across iterations
        elapsed = 0.0
        with SweepExecutor(config.workers) as executor:
            for it in range(1, config.iterations + 1):
                with span("als.iteration", iteration=it):
                    obs_metrics.inc("als.iterations")
                    t_iter = perf_counter()
                    if blocks is None:
                        t_hs = perf_counter()
                        with span("als.half_sweep", side="X", iteration=it):
                            X = implicit_half_sweep(
                                R_rows, Y, config.lam, config.alpha,
                                executor=executor, out=X if inplace else None,
                                **sweep_kw,
                            )
                        obs_metrics.observe_latency(
                            "als.half_sweep.seconds", perf_counter() - t_hs
                        )
                        t_hs = perf_counter()
                        with span("als.half_sweep", side="Y", iteration=it):
                            Y = implicit_half_sweep(
                                R_cols, X, config.lam, config.alpha,
                                executor=executor, out=Y if inplace else None,
                                **sweep_kw,
                            )
                        obs_metrics.observe_latency(
                            "als.half_sweep.seconds", perf_counter() - t_hs
                        )
                    else:
                        X, Y = subspace_iteration(
                            executor, R_rows, R_cols, X, Y, config.lam,
                            blocks, config.block_schedule, sweep_kw,
                            implicit_alpha=float(config.alpha), grams=grams,
                            inplace=inplace, iteration=it,
                        )
                    elapsed += perf_counter() - t_iter
                    if config.track_loss:
                        with span("als.loss", iteration=it):
                            wl = _weighted_loss(
                                loss_view, X, Y, config.lam, config.alpha
                            )
                        model.history.append(wl)
                        model.stats.append(
                            IterationStats(
                                iteration=it,
                                loss=wl,
                                train_rmse=None,
                                elapsed_seconds=elapsed,
                            )
                        )
                if config.track_loss and config.tol > 0 and len(model.history) >= 2:
                    prev = model.history[-2]
                    cur = model.history[-1]
                    if prev > 0 and (prev - cur) / prev < config.tol:
                        break
        model.X, model.Y = X, Y
    return model
