"""Implicit-feedback ALS (Hu, Koren & Volinsky).

The paper's introduction credits ALS with being able to "incorporate
implicit ratings" [1]; this module implements that variant.  Observations
become binary preferences ``p_ui = 1`` with confidence
``c_ui = 1 + α·r_ui``, and each row solves

    x_u = (YᵀY + Yᵀ(C_u − I)Y + λI)⁻¹ Yᵀ C_u p_u

using the classic trick: the dense ``YᵀY`` is computed once per
half-sweep and only the sparse correction ``Yᵀ(C_u − I)Y`` is assembled
per row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.init import init_factors
from repro.linalg.cholesky import batched_cholesky_solve
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["ImplicitConfig", "ImplicitModel", "implicit_half_sweep", "train_implicit_als"]


@dataclass(frozen=True)
class ImplicitConfig:
    """Hyper-parameters of implicit-feedback ALS."""

    k: int = 10
    lam: float = 0.1
    alpha: float = 40.0  # confidence slope: c = 1 + α·r
    iterations: int = 5
    seed: int = 0
    init_scale: float = 0.1

    def __post_init__(self) -> None:
        if self.k <= 0 or self.iterations <= 0:
            raise ValueError("k and iterations must be positive")
        if self.lam <= 0 or self.alpha <= 0:
            raise ValueError("lam and alpha must be positive")


@dataclass
class ImplicitModel:
    X: np.ndarray
    Y: np.ndarray
    config: ImplicitConfig
    history: list[float] = field(default_factory=list)  # weighted loss per iter

    def score(self, user: int) -> np.ndarray:
        """Preference scores of one user over all items."""
        return self.Y @ self.X[user]


def implicit_half_sweep(
    R: CSRMatrix, Y: np.ndarray, lam: float, alpha: float
) -> np.ndarray:
    """Update all user factors for implicit feedback.

    Empty rows resolve to zero (their preference vector is all-zero and
    the system is ``(YᵀY + λI) x = 0``).
    """
    m = R.nrows
    k = Y.shape[1]
    YtY = Y.T @ Y  # shared dense part, computed once (the Hu-Koren trick)
    A = np.broadcast_to(YtY + lam * np.eye(k), (m, k, k)).copy()
    b = np.zeros((m, k), dtype=np.float64)

    rows = R.expanded_rows()
    gathered = Y[R.col_idx]  # (nnz, k)
    conf_minus_1 = (alpha * R.value).astype(np.float64)  # c_ui − 1
    # A_u += Σ (c−1) y yᵀ ;  b_u = Σ c · y   (p_ui = 1 on observed entries)
    outer = gathered[:, :, None] * gathered[:, None, :] * conf_minus_1[:, None, None]
    np.add.at(A, rows, outer)
    np.add.at(b, rows, gathered * (conf_minus_1 + 1.0)[:, None])
    return batched_cholesky_solve(A, b)


def _weighted_loss(
    coo: COOMatrix, X: np.ndarray, Y: np.ndarray, lam: float, alpha: float
) -> float:
    """Confidence-weighted objective over observed entries plus penalty.

    The full implicit objective also sums over *unobserved* cells; this
    tracker omits that constant-heavy term (standard practice for
    monitoring convergence direction cheaply).
    """
    pred = np.einsum("ij,ij->i", X[coo.row], Y[coo.col])
    conf = 1.0 + alpha * coo.value.astype(np.float64)
    err = 1.0 - pred
    return float(conf @ (err * err)) + lam * (
        float(np.sum(X * X)) + float(np.sum(Y * Y))
    )


def train_implicit_als(
    ratings: COOMatrix, config: ImplicitConfig | None = None
) -> ImplicitModel:
    """Train implicit-feedback factors on interaction counts/strengths."""
    config = config or ImplicitConfig()
    coo = ratings.deduplicate()
    if coo.nnz and coo.value.min() < 0:
        raise ValueError("implicit feedback must be non-negative")
    R_rows = CSRMatrix.from_coo(coo)
    R_cols = CSCMatrix.from_csr(R_rows).transpose_as_csr()
    m, n = R_rows.shape
    X, Y = init_factors(m, n, config.k, seed=config.seed, scale=config.init_scale)
    model = ImplicitModel(X=X, Y=Y, config=config)
    for _ in range(config.iterations):
        X = implicit_half_sweep(R_rows, Y, config.lam, config.alpha)
        Y = implicit_half_sweep(R_cols, X, config.lam, config.alpha)
        model.history.append(_weighted_loss(coo, X, Y, config.lam, config.alpha))
    model.X, model.Y = X, Y
    return model
