"""Core ALS library: the user-facing matrix-factorization API.

Implements Algorithm 1 of the paper (explicit-feedback ALS with the
regularized squared loss of Eq. 2), plus the two classic extensions the
surrounding literature uses: ALS-WR's weighted-λ regularization (Zhou et
al. [3]) and implicit-feedback ALS (the "can incorporate implicit
ratings" property the paper's introduction credits ALS with).
"""

from repro.core.als import ALSConfig, ALSModel, IterationStats, train_als
from repro.core.init import init_factors
from repro.core.loss import regularized_loss, rmse, mae
from repro.core.predict import (
    predict_entries,
    predict_rating,
    recommend_top_n,
    recommend_top_n_batch,
)
from repro.core.ranking import RankingMetrics, evaluate_ranking
from repro.core.alswr import train_als_wr
from repro.core.implicit import (
    ImplicitConfig,
    ImplicitModel,
    implicit_half_sweep,
    train_implicit_als,
)
from repro.core.subspace import (
    BLOCK_SCHEDULES,
    make_blocks,
    pass_cost,
    resolve_block_size,
    subspace_iteration,
    validate_block_size,
)
from repro.core.tuning import GridPoint, GridSearchResult, grid_search

__all__ = [
    "BLOCK_SCHEDULES",
    "make_blocks",
    "pass_cost",
    "resolve_block_size",
    "subspace_iteration",
    "validate_block_size",
    "ALSConfig",
    "ALSModel",
    "IterationStats",
    "train_als",
    "init_factors",
    "regularized_loss",
    "rmse",
    "mae",
    "predict_entries",
    "predict_rating",
    "recommend_top_n",
    "recommend_top_n_batch",
    "RankingMetrics",
    "evaluate_ranking",
    "train_als_wr",
    "ImplicitConfig",
    "ImplicitModel",
    "implicit_half_sweep",
    "train_implicit_als",
    "GridPoint",
    "GridSearchResult",
    "grid_search",
]
