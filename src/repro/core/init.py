"""Factor initialization (Algorithm 1 line 2).

"X ← 0, Y ← random initial guess ... We initialize Y with small random
numbers instead of zeros when starting to update the X matrix."  X may
start at zero because the first half-sweep overwrites every occupied row
from Y alone; Y must not be zero or the first normal system would be λI
with a zero right-hand side.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
from numpy.lib.format import open_memmap

__all__ = ["init_factors"]

#: Rows drawn per chunk when filling a memory-mapped Y.  The Generator
#: consumes its bit stream element-by-element in C order, so sequential
#: row-chunk draws reproduce the single-call initialization bit for bit
#: (asserted by tests/core/test_init.py) while bounding transient RAM.
_FILL_CHUNK_ROWS = 1 << 16


def init_factors(
    m: int,
    n: int,
    k: int,
    seed: int = 0,
    scale: float = 0.1,
    memmap_dir: str | os.PathLike | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(X, Y)`` initialized per Algorithm 1.

    ``scale`` sets the magnitude of Y's entries ("small random numbers");
    predictions start near zero and grow as the sweeps fit the data.

    With ``memmap_dir`` the factors are ``.npy``-backed memory maps
    (``X.npy``/``Y.npy``) instead of heap arrays — the out-of-core
    trainers' optional factor spill.  ``X`` relies on fresh-file pages
    reading as zero (writing zeros would dirty every page for nothing)
    and ``Y`` is filled in row chunks, drawing the identical random
    sequence as the in-RAM path.
    """
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError("m, n and k must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    if memmap_dir is None:
        X = np.zeros((m, k), dtype=np.float64)
        Y = rng.uniform(-scale, scale, size=(n, k))
        return X, Y
    directory = Path(memmap_dir)
    directory.mkdir(parents=True, exist_ok=True)
    X = open_memmap(directory / "X.npy", mode="w+", dtype=np.float64, shape=(m, k))
    Y = open_memmap(directory / "Y.npy", mode="w+", dtype=np.float64, shape=(n, k))
    for a in range(0, n, _FILL_CHUNK_ROWS):
        b = min(a + _FILL_CHUNK_ROWS, n)
        Y[a:b] = rng.uniform(-scale, scale, size=(b - a, k))
    return X, Y
