"""Factor initialization (Algorithm 1 line 2).

"X ← 0, Y ← random initial guess ... We initialize Y with small random
numbers instead of zeros when starting to update the X matrix."  X may
start at zero because the first half-sweep overwrites every occupied row
from Y alone; Y must not be zero or the first normal system would be λI
with a zero right-hand side.
"""

from __future__ import annotations

import numpy as np

__all__ = ["init_factors"]


def init_factors(
    m: int,
    n: int,
    k: int,
    seed: int = 0,
    scale: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(X, Y)`` initialized per Algorithm 1.

    ``scale`` sets the magnitude of Y's entries ("small random numbers");
    predictions start near zero and grow as the sweeps fit the data.
    """
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError("m, n and k must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    X = np.zeros((m, k), dtype=np.float64)
    Y = rng.uniform(-scale, scale, size=(n, k))
    return X, Y
