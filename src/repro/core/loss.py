"""Loss and error metrics.

``regularized_loss`` is Eq. 2 of the paper — the objective ALS minimizes:

    L(X, Y) = Σ_{(u,i)∈Ω} (r_ui − x_uᵀ y_i)² + λ (Σ_u |x_u|² + Σ_i |y_i|²)

Note the regularizer sums over *all* factor rows once (the standard ALS
objective); each half-sweep is an exact minimizer of L in its own block,
which gives the monotone-descent property the tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix

__all__ = ["regularized_loss", "rmse", "mae"]


def _predicted(ratings: COOMatrix, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    if X.shape[0] != ratings.shape[0] or Y.shape[0] != ratings.shape[1]:
        raise ValueError(
            f"factor shapes {X.shape}/{Y.shape} do not match ratings {ratings.shape}"
        )
    return np.einsum("ij,ij->i", X[ratings.row], Y[ratings.col])


def regularized_loss(
    ratings: COOMatrix, X: np.ndarray, Y: np.ndarray, lam: float
) -> float:
    """Eq. 2: squared error over observed entries plus the λ penalty."""
    err = ratings.value.astype(np.float64) - _predicted(ratings, X, Y)
    penalty = lam * (float(np.sum(X * X)) + float(np.sum(Y * Y)))
    return float(err @ err) + penalty


def rmse(ratings: COOMatrix, X: np.ndarray, Y: np.ndarray) -> float:
    """Root-mean-square error over the given ratings (train or held-out)."""
    if ratings.nnz == 0:
        return 0.0
    err = ratings.value.astype(np.float64) - _predicted(ratings, X, Y)
    return float(np.sqrt(err @ err / ratings.nnz))


def mae(ratings: COOMatrix, X: np.ndarray, Y: np.ndarray) -> float:
    """Mean absolute error over the given ratings."""
    if ratings.nnz == 0:
        return 0.0
    err = ratings.value.astype(np.float64) - _predicted(ratings, X, Y)
    return float(np.abs(err).mean())
