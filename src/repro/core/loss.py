"""Loss and error metrics.

``regularized_loss`` is Eq. 2 of the paper — the objective ALS minimizes:

    L(X, Y) = Σ_{(u,i)∈Ω} (r_ui − x_uᵀ y_i)² + λ (Σ_u |x_u|² + Σ_i |y_i|²)

Note the regularizer sums over *all* factor rows once (the standard ALS
objective); each half-sweep is an exact minimizer of L in its own block,
which gives the monotone-descent property the tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.shards import ShardedCSR

__all__ = ["regularized_loss", "rmse", "mae"]


def _predicted(ratings: COOMatrix, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    if X.shape[0] != ratings.shape[0] or Y.shape[0] != ratings.shape[1]:
        raise ValueError(
            f"factor shapes {X.shape}/{Y.shape} do not match ratings {ratings.shape}"
        )
    return np.einsum("ij,ij->i", X[ratings.row], Y[ratings.col])


def _err_reductions(
    ratings: COOMatrix | ShardedCSR, X: np.ndarray, Y: np.ndarray
) -> tuple[float, float]:
    """``(Σ err², Σ |err|)`` over observed entries, for either view.

    A :class:`ShardedCSR` streams one resident row-range shard at a
    time (no prefetch — loss is off the hot path), accumulating partial
    sums; each partial matches the in-RAM reduction to float64 rounding,
    which is why the trainers' loss trajectories agree to 1e-10 rather
    than bitwise.
    """
    if isinstance(ratings, ShardedCSR):
        if X.shape[0] != ratings.shape[0] or Y.shape[0] != ratings.shape[1]:
            raise ValueError(
                f"factor shapes {X.shape}/{Y.shape} do not match "
                f"ratings {ratings.shape}"
            )
        sq = 0.0
        ab = 0.0
        for sp, mat in ratings.iter_resident(prefetch=False):
            rows = sp.row_start + mat.expanded_rows()
            pred = np.einsum("ij,ij->i", X[rows], Y[mat.col_idx])
            err = mat.value.astype(np.float64) - pred
            sq += float(err @ err)
            ab += float(np.abs(err).sum())
        return sq, ab
    err = ratings.value.astype(np.float64) - _predicted(ratings, X, Y)
    return float(err @ err), float(np.abs(err).sum())


def regularized_loss(
    ratings: COOMatrix | ShardedCSR, X: np.ndarray, Y: np.ndarray, lam: float
) -> float:
    """Eq. 2: squared error over observed entries plus the λ penalty."""
    sq, _ = _err_reductions(ratings, X, Y)
    penalty = lam * (float(np.sum(X * X)) + float(np.sum(Y * Y)))
    return sq + penalty


def rmse(ratings: COOMatrix | ShardedCSR, X: np.ndarray, Y: np.ndarray) -> float:
    """Root-mean-square error over the given ratings (train or held-out)."""
    if ratings.nnz == 0:
        return 0.0
    sq, _ = _err_reductions(ratings, X, Y)
    return float(np.sqrt(sq / ratings.nnz))


def mae(ratings: COOMatrix | ShardedCSR, X: np.ndarray, Y: np.ndarray) -> float:
    """Mean absolute error over the given ratings."""
    if ratings.nnz == 0:
        return 0.0
    _, ab = _err_reductions(ratings, X, Y)
    return float(ab / ratings.nnz)
