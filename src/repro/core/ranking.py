"""Top-N ranking metrics for recommender evaluation.

RMSE measures rating reconstruction; deployed recommenders are judged on
ranking quality.  This module provides the standard set — hit rate,
precision@N, recall@N, NDCG@N — computed against a held-out interaction
set, with the training items excluded from each user's candidate ranking.

Evaluation runs on the tiled serving engine: all evaluated users are
ranked in batched, byte-budgeted item tiles with vectorized exclusion
(:mod:`repro.serving.engine`) instead of the historical one-user-at-a-
time loop over Python sets.  Pass the trained :class:`ALSModel` directly
for the fast factor-scoring path; a legacy ``score_matrix_fn(user)``
callable is still accepted and routed through the same selection
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.als import ALSModel
from repro.core.implicit import ImplicitModel
from repro.serving.engine import TopNEngine, topn_from_scores
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["RankingMetrics", "evaluate_ranking"]


@dataclass(frozen=True)
class RankingMetrics:
    """Aggregate top-N quality over all evaluated users."""

    n: int  # the N of top-N
    users: int  # users with at least one held-out item
    hit_rate: float  # fraction of held-out items recovered in top-N
    precision: float  # mean per-user |top-N ∩ held-out| / N
    recall: float  # mean per-user |top-N ∩ held-out| / |held-out|
    ndcg: float  # mean per-user normalized DCG@N

    def __str__(self) -> str:
        return (
            f"top-{self.n} over {self.users} users: HR {self.hit_rate:.3f}, "
            f"P {self.precision:.3f}, R {self.recall:.3f}, NDCG {self.ndcg:.3f}"
        )


def _dcg(relevances: np.ndarray) -> float:
    if relevances.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, relevances.size + 2))
    return float(relevances @ discounts)


def _held_out_csr(test: COOMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(users, indptr, cols)`` of the deduplicated held-out items.

    ``users`` are the evaluated users (ascending); ``cols[indptr[i]:
    indptr[i+1]]`` are user ``users[i]``'s held-out items, sorted.
    """
    if test.row.size == 0:
        raise ValueError("test set is empty")
    pairs = np.unique(
        np.stack([np.asarray(test.row, dtype=np.int64),
                  np.asarray(test.col, dtype=np.int64)]),
        axis=1,
    )
    rows, cols = pairs[0], pairs[1]
    users, counts = np.unique(rows, return_counts=True)
    indptr = np.zeros(users.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return users, indptr, cols


def evaluate_ranking(
    scorer,
    train: CSRMatrix,
    test: COOMatrix,
    n: int = 10,
    engine: TopNEngine | None = None,
) -> RankingMetrics:
    """Evaluate top-N quality of a scoring model.

    ``scorer`` is either a trained factor model — :class:`ALSModel` or
    :class:`~repro.core.implicit.ImplicitModel`, scored through the
    tiled engine (the fast path) — or a legacy callable
    ``score_matrix_fn(user) -> np.ndarray`` returning the user's scores
    over all items (e.g. ``lambda u: model.Y @ model.X[u]``).  Training
    items are masked out of each ranking; every user with held-out items
    is evaluated.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if train.shape != test.shape:
        raise ValueError("train and test must share a shape")
    users, held_indptr, held_cols = _held_out_csr(test)

    n_catalog = train.shape[1]
    top_n = min(n, n_catalog)
    if isinstance(scorer, (ALSModel, ImplicitModel)):
        if engine is None:
            engine = TopNEngine.from_model(scorer)
        result = engine.query(users, n=top_n, exclude=train)
    else:
        block = engine.user_block if engine is not None else 1024
        tile_bytes = engine.tile_bytes if engine is not None else None
        rows = []
        for lo in range(0, users.size, block):
            block_users = users[lo : lo + block]
            S = np.stack(
                [
                    np.asarray(scorer(int(u)), dtype=np.float64)
                    for u in block_users
                ]
            )
            rows.append(
                topn_from_scores(
                    S, n=top_n, users=block_users, exclude=train,
                    tile_bytes=tile_bytes,
                )
            )
        result = rows[0] if len(rows) == 1 else _concat_results(rows)

    # Membership of each recommended id in its user's held-out set, in
    # one vectorized pass: (user, item) pairs collapse to unique integer
    # keys on an (n_catalog + 1)-wide grid; PAD_ITEM maps to the
    # never-held column ``n_catalog`` so padding scores zero relevance.
    held_lengths = np.diff(held_indptr)
    width = n_catalog + 1
    user_rows = np.repeat(np.arange(users.size, dtype=np.int64), held_lengths)
    held_keys = user_rows * width + held_cols
    ids = result.items.copy()
    ids[ids < 0] = n_catalog
    query_keys = (
        np.arange(users.size, dtype=np.int64)[:, None] * width + ids
    )
    rel = np.isin(query_keys, held_keys).astype(np.float64)

    got = rel.sum(axis=1)
    discounts = 1.0 / np.log2(np.arange(2, top_n + 2, dtype=np.float64))
    ideal_prefix = np.cumsum(discounts)
    dcgs = rel @ discounts
    ideals = ideal_prefix[np.minimum(held_lengths, top_n) - 1]
    return RankingMetrics(
        n=n,
        users=int(users.size),
        hit_rate=float(got.sum() / held_lengths.sum()),
        precision=float(np.mean(got / n)),
        recall=float(np.mean(got / held_lengths)),
        ndcg=float(np.mean(dcgs / ideals)),
    )


def _concat_results(rows):
    from repro.serving.engine import TopNResult

    return TopNResult(
        items=np.concatenate([r.items for r in rows], axis=0),
        scores=np.concatenate([r.scores for r in rows], axis=0),
    )
