"""Top-N ranking metrics for recommender evaluation.

RMSE measures rating reconstruction; deployed recommenders are judged on
ranking quality.  This module provides the standard set — hit rate,
precision@N, recall@N, NDCG@N — computed against a held-out interaction
set, with the training items excluded from each user's candidate ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["RankingMetrics", "evaluate_ranking"]


@dataclass(frozen=True)
class RankingMetrics:
    """Aggregate top-N quality over all evaluated users."""

    n: int  # the N of top-N
    users: int  # users with at least one held-out item
    hit_rate: float  # fraction of held-out items recovered in top-N
    precision: float  # mean per-user |top-N ∩ held-out| / N
    recall: float  # mean per-user |top-N ∩ held-out| / |held-out|
    ndcg: float  # mean per-user normalized DCG@N

    def __str__(self) -> str:
        return (
            f"top-{self.n} over {self.users} users: HR {self.hit_rate:.3f}, "
            f"P {self.precision:.3f}, R {self.recall:.3f}, NDCG {self.ndcg:.3f}"
        )


def _dcg(relevances: np.ndarray) -> float:
    if relevances.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, relevances.size + 2))
    return float(relevances @ discounts)


def evaluate_ranking(
    score_matrix_fn,
    train: CSRMatrix,
    test: COOMatrix,
    n: int = 10,
) -> RankingMetrics:
    """Evaluate top-N quality of a scoring model.

    ``score_matrix_fn(user) -> np.ndarray`` returns the user's scores over
    all items (e.g. ``lambda u: model.Y @ model.X[u]``).  Training items
    are masked out of each ranking; every user with held-out items is
    evaluated.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if train.shape != test.shape:
        raise ValueError("train and test must share a shape")
    held_out: dict[int, set[int]] = {}
    for u, i in zip(test.row, test.col):
        held_out.setdefault(int(u), set()).add(int(i))
    if not held_out:
        raise ValueError("test set is empty")

    hits = total_held = 0
    precisions: list[float] = []
    recalls: list[float] = []
    ndcgs: list[float] = []
    for user, items in held_out.items():
        scores = np.asarray(score_matrix_fn(user), dtype=np.float64).copy()
        seen, _ = train.row_slice(user)
        scores[seen] = -np.inf
        top_n = min(n, scores.size)
        top = np.argpartition(scores, -top_n)[-top_n:]
        top = top[np.argsort(scores[top])[::-1]]
        rel = np.array([1.0 if int(i) in items else 0.0 for i in top])
        got = int(rel.sum())
        hits += got
        total_held += len(items)
        precisions.append(got / n)
        recalls.append(got / len(items))
        ideal = _dcg(np.ones(min(len(items), n)))
        ndcgs.append(_dcg(rel) / ideal if ideal else 0.0)
    return RankingMetrics(
        n=n,
        users=len(held_out),
        hit_rate=hits / total_held,
        precision=float(np.mean(precisions)),
        recall=float(np.mean(recalls)),
        ndcg=float(np.mean(ndcgs)),
    )
