"""Hyper-parameter search for the ALS model (k, λ).

Grid search over validation RMSE — the model-quality complement to
:mod:`repro.autotune`, which tunes the *implementation* for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.als import ALSConfig, ALSModel, train_als
from repro.core.loss import rmse
from repro.datasets.splits import train_test_split
from repro.sparse.coo import COOMatrix

__all__ = ["GridPoint", "GridSearchResult", "grid_search"]


@dataclass(frozen=True)
class GridPoint:
    """One evaluated hyper-parameter combination."""

    k: int
    lam: float
    validation_rmse: float
    train_rmse: float

    @property
    def overfit_gap(self) -> float:
        return self.validation_rmse - self.train_rmse


@dataclass(frozen=True)
class GridSearchResult:
    """All evaluated points plus the winner and its refit model."""

    points: tuple[GridPoint, ...]
    best: GridPoint
    model: ALSModel  # refit on all data with the best settings

    def ranking(self) -> list[GridPoint]:
        return sorted(self.points, key=lambda p: p.validation_rmse)


def grid_search(
    ratings: COOMatrix,
    ks: tuple[int, ...] = (5, 10, 20),
    lams: tuple[float, ...] = (0.01, 0.1, 1.0),
    iterations: int = 8,
    validation_fraction: float = 0.2,
    seed: int = 0,
) -> GridSearchResult:
    """Pick (k, λ) by held-out RMSE, then refit on all ratings.

    The split is made once so every grid point sees the same validation
    set; the returned model is retrained on the full data with the
    winning settings.
    """
    if not ks or not lams:
        raise ValueError("need at least one k and one lambda candidate")
    if any(k <= 0 for k in ks) or any(lam <= 0 for lam in lams):
        raise ValueError("k and lambda candidates must be positive")
    split = train_test_split(ratings, test_fraction=validation_fraction, seed=seed)
    points: list[GridPoint] = []
    for k in ks:
        for lam in lams:
            model = train_als(
                split.train,
                ALSConfig(k=k, lam=lam, iterations=iterations, seed=seed),
            )
            points.append(
                GridPoint(
                    k=k,
                    lam=lam,
                    validation_rmse=rmse(split.test, model.X, model.Y),
                    train_rmse=model.history[-1].train_rmse,
                )
            )
    best = min(points, key=lambda p: p.validation_rmse)
    final = train_als(
        ratings, ALSConfig(k=best.k, lam=best.lam, iterations=iterations, seed=seed)
    )
    return GridSearchResult(points=tuple(points), best=best, model=final)
