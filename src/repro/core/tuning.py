"""Hyper-parameter search for the ALS model (k, λ).

Grid search over validation RMSE — the model-quality complement to
:mod:`repro.autotune`, which tunes the *implementation* for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.als import ALSConfig, ALSModel, train_als
from repro.core.loss import rmse
from repro.datasets.splits import train_test_split
from repro.sparse.coo import COOMatrix

__all__ = ["GridPoint", "GridSearchResult", "grid_search"]


@dataclass(frozen=True)
class GridPoint:
    """One evaluated hyper-parameter combination."""

    k: int
    lam: float
    validation_rmse: float
    train_rmse: float

    @property
    def overfit_gap(self) -> float:
        return self.validation_rmse - self.train_rmse


@dataclass(frozen=True)
class GridSearchResult:
    """All evaluated points plus the winner and its refit model."""

    points: tuple[GridPoint, ...]
    best: GridPoint
    model: ALSModel  # refit on all data with the best settings

    def ranking(self) -> list[GridPoint]:
        return sorted(self.points, key=lambda p: p.validation_rmse)


def _last_train_rmse(model: ALSModel) -> float:
    if not model.history:
        raise RuntimeError(
            "grid_search needs the per-iteration history to report "
            "train_rmse, but the model trained with track_loss disabled — "
            "run grid_search with track_loss=True (the default)"
        )
    return model.history[-1].train_rmse


def grid_search(
    ratings: COOMatrix,
    ks: tuple[int, ...] = (5, 10, 20),
    lams: tuple[float, ...] = (0.01, 0.1, 1.0),
    iterations: int = 8,
    validation_fraction: float = 0.2,
    seed: int = 0,
    *,
    solver: str | None = None,
    workers: int | str | None = None,
    block_size: int | str | None = None,
    block_schedule: str | None = None,
    track_loss: bool = True,
) -> GridSearchResult:
    """Pick (k, λ) by held-out RMSE, then refit on all ratings.

    The split is made once so every grid point sees the same validation
    set; the returned model is retrained on the full data with the
    winning settings.  The trainer knobs — ``solver`` (S3 variant),
    ``workers`` (half-sweep parallelism), ``block_size``/
    ``block_schedule`` (iALS++ subspace descent) — forward to every grid
    point and the final refit, so the search runs on the same optimized
    configuration the production training will.  ``track_loss`` must
    stay enabled: the reported ``train_rmse`` comes from the iteration
    history.
    """
    if not ks or not lams:
        raise ValueError("need at least one k and one lambda candidate")
    if any(k <= 0 for k in ks) or any(lam <= 0 for lam in lams):
        raise ValueError("k and lambda candidates must be positive")
    if not track_loss:
        raise ValueError(
            "grid_search requires track_loss=True: train_rmse is read "
            "from the per-iteration history"
        )
    knobs = dict(solver=solver, workers=workers, track_loss=track_loss)
    if block_size is not None:
        knobs["block_size"] = block_size
    if block_schedule is not None:
        knobs["block_schedule"] = block_schedule
    split = train_test_split(ratings, test_fraction=validation_fraction, seed=seed)
    points: list[GridPoint] = []
    for k in ks:
        for lam in lams:
            model = train_als(
                split.train,
                ALSConfig(k=k, lam=lam, iterations=iterations, seed=seed, **knobs),
            )
            points.append(
                GridPoint(
                    k=k,
                    lam=lam,
                    validation_rmse=rmse(split.test, model.X, model.Y),
                    train_rmse=_last_train_rmse(model),
                )
            )
    best = min(points, key=lambda p: p.validation_rmse)
    final = train_als(
        ratings,
        ALSConfig(k=best.k, lam=best.lam, iterations=iterations, seed=seed, **knobs),
    )
    return GridSearchResult(points=tuple(points), best=best, model=final)
