"""Device-precision study: float32 training vs float64 reference.

The paper's kernels compute in single precision (OpenCL ``float``
throughout, Fig. 3).  This module quantifies what that costs in model
quality: a float32 half-sweep pipeline whose every intermediate —
Gram matrices, right-hand sides, Cholesky, factors — is truncated to
float32, mirroring the on-device arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.init import init_factors
from repro.core.loss import rmse
from repro.linalg.cholesky import batched_cholesky_solve
from repro.linalg.normal_equations import batched_normal_equations
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["PrecisionComparison", "float32_half_sweep", "compare_precision"]


def float32_half_sweep(
    R: CSRMatrix, Y: np.ndarray, lam: float, X_prev: np.ndarray | None = None
) -> np.ndarray:
    """One ALS half-sweep with float32 intermediates (device arithmetic).

    The assembly runs in the float32 compute mode (the gathers and GEMMs
    the device kernels perform in ``float``), the solve in float64, and
    every stage boundary truncates to float32 — the precision that
    crosses kernel boundaries on the device.
    """
    Y32 = np.ascontiguousarray(Y, dtype=np.float32)
    A, b = batched_normal_equations(R, Y32, lam, compute_dtype="float32")
    A = A.astype(np.float32).astype(np.float64)  # smat stored as float
    b = b.astype(np.float32).astype(np.float64)  # svec stored as float
    occupied = R.row_lengths() > 0
    X = np.zeros((R.nrows, Y.shape[1]), dtype=np.float32)
    if X_prev is not None:
        X[:] = X_prev
    if occupied.any():
        X[occupied] = batched_cholesky_solve(A[occupied], b[occupied]).astype(
            np.float32
        )
    return X


@dataclass(frozen=True)
class PrecisionComparison:
    """Quality gap between float32 and float64 training."""

    rmse_float32: float
    rmse_float64: float
    factor_max_abs_diff: float

    @property
    def rmse_gap(self) -> float:
        return abs(self.rmse_float32 - self.rmse_float64)


def compare_precision(
    ratings: COOMatrix,
    k: int = 10,
    lam: float = 0.1,
    iterations: int = 5,
    seed: int = 0,
) -> PrecisionComparison:
    """Train twice — float32 pipeline vs float64 — from identical inits."""
    from repro.kernels.fastpath import fast_half_sweep

    coo = ratings.deduplicate()
    R_rows = CSRMatrix.from_coo(coo)
    R_cols = CSCMatrix.from_csr(R_rows).transpose_as_csr()
    X0, Y0 = init_factors(R_rows.nrows, R_rows.ncols, k, seed=seed)

    X32 = X0.astype(np.float32)
    Y32 = Y0.astype(np.float32)
    X64, Y64 = X0.copy(), Y0.copy()
    for _ in range(iterations):
        X32 = float32_half_sweep(R_rows, Y32, lam, X_prev=X32)
        Y32 = float32_half_sweep(R_cols, X32, lam, X_prev=Y32)
        X64 = fast_half_sweep(R_rows, Y64, lam, X_prev=X64)
        Y64 = fast_half_sweep(R_cols, X64, lam, X_prev=Y64)
    return PrecisionComparison(
        rmse_float32=rmse(coo, X32.astype(np.float64), Y32.astype(np.float64)),
        rmse_float64=rmse(coo, X64, Y64),
        factor_max_abs_diff=float(
            np.abs(X32.astype(np.float64) - X64).max()
        ),
    )
