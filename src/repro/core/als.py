"""The ALS driver (Algorithm 1).

Alternates exact least-squares updates of X (rows, CSR sweep) and Y
(columns, CSC sweep) until the iteration budget is reached — the same
fixed-iteration regime the paper benchmarks (5 iterations, k = 10,
λ = 0.1 unless stated, §IV-B).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.init import init_factors
from repro.core.loss import regularized_loss, rmse
from repro.core.subspace import (
    BLOCK_SCHEDULES,
    make_blocks,
    resolve_block_size,
    subspace_iteration,
    validate_block_size,
)
from repro.linalg.normal_equations import ASSEMBLY_MODES
from repro.linalg.solvers import SOLVER_MODES
from repro.parallel.executor import SweepExecutor, _parse_workers
from repro.obs import metrics as obs_metrics
from repro.obs.spans import span
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.shards import ShardStore, ShardedCSR

__all__ = [
    "ALSConfig",
    "IterationStats",
    "ALSModel",
    "train_als",
    "ratings_views",
    "training_views",
]

FACTOR_MODES = ("ram", "memmap")


@dataclass(frozen=True)
class ALSConfig:
    """Hyper-parameters of Algorithm 1.

    Algorithm 1 "iterates until it reaches the maximum specified cycles
    or error rate": ``iterations`` is the cycle budget and ``tol`` the
    error-rate criterion — training stops early once the relative loss
    improvement between iterations falls below it (0 disables).
    """

    k: int = 10  # latent factor dimensionality (paper default)
    lam: float = 0.1  # regularization λ (paper default)
    iterations: int = 5  # sweeps (paper's benchmark setting)
    tol: float = 0.0  # relative-improvement stopping threshold
    seed: int = 0
    cholesky: bool = True  # legacy S3 toggle (§V-C); `solver` wins when set
    init_scale: float = 0.1
    track_loss: bool = True  # compute Eq. 2 after every iteration
    # S1/S2 assembly code variant (§III-D analogue); None defers to the
    # configured/environment defaults of repro.linalg.normal_equations.
    assembly: str | None = None  # "binned" | "scatter" | "auto"
    tile_nnz: int | None = None  # nnz budget per assembly tile
    assembly_dtype: str | None = None  # "float32" | "float64" compute mode
    # S3 solver code variant; None defers to configure_solver /
    # REPRO_SOLVER, then the legacy `cholesky` boolean above.
    solver: str | None = None  # "cholesky" | "gaussian" | "lapack" | "auto"
    # Half-sweep parallelism: "auto" = one worker per core, N = exactly N
    # threads; None defers to configure_workers / REPRO_WORKERS (serial).
    workers: int | str | None = None
    # Factor-matrix backing: "ram" (heap arrays, the default) or "memmap"
    # (.npy-backed maps with per-shard spill — the out-of-core trainers'
    # option for shapes where even X and Y strain memory).
    factors: str = "ram"
    factors_dir: str | None = None  # memmap location; None = fresh temp dir
    # iALS++ subspace descent: update the factors in column blocks of
    # width `block_size` — an int, "auto" (the measured tune-blocks
    # selector), or None for the historical full-k sweeps.  A full-width
    # block reproduces the full sweep bitwise.  `block_schedule` orders
    # the updates: "paired" interleaves X/Y per block (iALS++), "sweep"
    # finishes all X blocks before any Y block.
    block_size: int | str | None = None
    block_schedule: str = "paired"

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.lam <= 0:
            raise ValueError("lam must be positive (λI keeps smat SPD)")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.tol < 0:
            raise ValueError("tol must be non-negative")
        if self.tol > 0 and not self.track_loss:
            raise ValueError("tol-based stopping requires track_loss")
        if self.assembly is not None and self.assembly not in ASSEMBLY_MODES:
            raise ValueError(
                f"assembly must be one of {ASSEMBLY_MODES}, got {self.assembly!r}"
            )
        if self.tile_nnz is not None and self.tile_nnz < 1:
            raise ValueError("tile_nnz must be >= 1")
        if self.assembly_dtype is not None and self.assembly_dtype not in (
            "float32",
            "float64",
        ):
            raise ValueError(
                f"assembly_dtype must be 'float32' or 'float64', "
                f"got {self.assembly_dtype!r}"
            )
        if self.solver is not None and self.solver not in SOLVER_MODES:
            raise ValueError(
                f"solver must be one of {SOLVER_MODES}, got {self.solver!r}"
            )
        if self.workers is not None:
            _parse_workers(self.workers)  # raises on bad specs
        if self.factors not in FACTOR_MODES:
            raise ValueError(
                f"factors must be one of {FACTOR_MODES}, got {self.factors!r}"
            )
        validate_block_size(self.block_size)
        if self.block_schedule not in BLOCK_SCHEDULES:
            raise ValueError(
                f"block_schedule must be one of {BLOCK_SCHEDULES}, "
                f"got {self.block_schedule!r}"
            )


@dataclass(frozen=True)
class IterationStats:
    """Objective tracking for one ALS iteration.

    ``elapsed_seconds`` is the cumulative monotonic training time up to
    and including this iteration's sweeps — loss/validation evaluation
    is excluded, so the history doubles as a loss-vs-wall-seconds curve
    (checkpoints written before this field existed load as 0.0).
    """

    iteration: int
    loss: float
    train_rmse: float | None
    validation_rmse: float | None = None
    elapsed_seconds: float = 0.0


@dataclass
class ALSModel:
    """Trained factors plus the per-iteration history."""

    X: np.ndarray  # (m, k) user factors
    Y: np.ndarray  # (n, k) item factors
    config: ALSConfig
    history: list[IterationStats] = field(default_factory=list)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.X.shape[0], self.Y.shape[0])

    @property
    def k(self) -> int:
        return self.X.shape[1]

    def losses(self) -> list[float]:
        return [s.loss for s in self.history]


def ratings_views(ratings: COOMatrix | CSRMatrix) -> tuple[COOMatrix, CSRMatrix]:
    """Canonical ``(deduplicated COO, CSR)`` views of a rating input.

    The single conversion point every trainer (and the ``Recommender``
    facade) shares: COO inputs are deduplicated and converted exactly
    once; a prebuilt CSR passes through untouched.
    """
    if isinstance(ratings, COOMatrix):
        coo = ratings.deduplicate()
        return coo, CSRMatrix.from_coo(coo)
    if isinstance(ratings, CSRMatrix):
        return ratings.to_coo(), ratings
    raise TypeError(f"ratings must be COOMatrix or CSRMatrix, got {type(ratings)}")


def training_views(
    ratings: COOMatrix | CSRMatrix | ShardStore,
) -> tuple[CSRMatrix | ShardedCSR, CSRMatrix | ShardedCSR | None, object]:
    """``(R_rows, R_cols, loss_view)`` for in-RAM or out-of-core input.

    A :class:`ShardStore` contributes both pre-materialized orientations
    (nothing to transpose at train time) and its row view doubles as the
    streaming loss view.  For in-RAM input ``R_cols`` comes back ``None``
    — the trainer builds the CSC view inside its ``als.build_views``
    span, where the conversion cost is attributed.
    """
    if isinstance(ratings, ShardStore):
        return ratings.rows, ratings.cols, ratings.rows
    coo, R_rows = ratings_views(ratings)
    return R_rows, None, coo


def resolve_factor_dir(config: "ALSConfig") -> str | None:
    """The memmap directory for factor spill (``None`` for RAM factors)."""
    if config.factors != "memmap":
        return None
    return config.factors_dir or tempfile.mkdtemp(prefix="repro-factors-")


def train_als(
    ratings: COOMatrix | CSRMatrix | ShardStore,
    config: ALSConfig | None = None,
    validation: COOMatrix | None = None,
) -> ALSModel:
    """Factorize ``ratings ≈ X Yᵀ`` with alternating least squares.

    Accepts COO (converted once), a prebuilt CSR matrix, or an on-disk
    :class:`ShardStore` — the out-of-core path, where each half-sweep
    streams byte-budgeted row-range shards of its natural orientation
    and the loss is accumulated the same way.  Each iteration performs
    the two half-sweeps of Algorithm 1: rows over the CSR view, columns
    over the CSC view (as the paper stores them, §III-A).  When a
    ``validation`` set is given its RMSE is tracked per iteration.
    """
    config = config or ALSConfig()
    R_rows, R_cols, loss_view = training_views(ratings)
    sharded = R_cols is not None
    with span(
        "als.train",
        algorithm="als",
        k=config.k,
        iterations=config.iterations,
        nnz=R_rows.nnz,
        out_of_core=sharded,
    ):
        with span("als.build_views"):
            if R_cols is None:
                R_cols = CSCMatrix.from_csr(R_rows).transpose_as_csr()
            m, n = R_rows.shape
            X, Y = init_factors(
                m, n, config.k, seed=config.seed, scale=config.init_scale,
                memmap_dir=resolve_factor_dir(config),
            )

        model = ALSModel(X=X, Y=Y, config=config)
        inplace = config.factors == "memmap"
        sweep_kw = dict(
            solver=config.solver, cholesky=config.cholesky,
            assembly=config.assembly, tile_nnz=config.tile_nnz,
            compute_dtype=config.assembly_dtype,
        )
        block_d = resolve_block_size(
            config.block_size, config.k,
            nnz_per_row=R_rows.nnz / max(1, m),
            compute_dtype=config.assembly_dtype,
        )
        blocks = None if block_d is None else make_blocks(config.k, block_d)
        elapsed = 0.0
        with SweepExecutor(config.workers) as executor:
            for it in range(1, config.iterations + 1):
                with span("als.iteration", iteration=it):
                    obs_metrics.inc("als.iterations")
                    t_iter = perf_counter()
                    if blocks is None:
                        t_hs = perf_counter()
                        with span("als.half_sweep", side="X", iteration=it):
                            X = executor.half_sweep(
                                R_rows, Y, config.lam, X_prev=X,
                                out=X if inplace else None, **sweep_kw
                            )
                        obs_metrics.observe_latency(
                            "als.half_sweep.seconds", perf_counter() - t_hs
                        )
                        t_hs = perf_counter()
                        with span("als.half_sweep", side="Y", iteration=it):
                            Y = executor.half_sweep(
                                R_cols, X, config.lam, X_prev=Y,
                                out=Y if inplace else None, **sweep_kw
                            )
                        obs_metrics.observe_latency(
                            "als.half_sweep.seconds", perf_counter() - t_hs
                        )
                    else:
                        X, Y = subspace_iteration(
                            executor, R_rows, R_cols, X, Y, config.lam,
                            blocks, config.block_schedule, sweep_kw,
                            inplace=inplace, iteration=it,
                        )
                    elapsed += perf_counter() - t_iter
                    if config.track_loss:
                        with span("als.loss", iteration=it):
                            model.history.append(
                                IterationStats(
                                    iteration=it,
                                    loss=regularized_loss(
                                        loss_view, X, Y, config.lam
                                    ),
                                    train_rmse=rmse(loss_view, X, Y),
                                    validation_rmse=(
                                        rmse(validation, X, Y)
                                        if validation is not None
                                        else None
                                    ),
                                    elapsed_seconds=elapsed,
                                )
                            )
                if config.track_loss and config.tol > 0 and len(model.history) >= 2:
                    prev = model.history[-2].loss
                    cur = model.history[-1].loss
                    if prev > 0 and (prev - cur) / prev < config.tol:
                        break
        model.X, model.Y = X, Y
    return model
