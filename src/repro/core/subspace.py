"""iALS++ subspace block coordinate descent (Rendle et al. 2021).

A full ALS half-sweep solves every row's k×k normal equations; the cost
per coordinate step is O(k²) in assembly and O(k³) in the solve.  iALS++
observes that updating only a *block* of ``d ≪ k`` factor coordinates at
a time — holding the complement fixed and folding its contribution into
the right-hand side — drops those to O(d·k) and O(d³) per block while
converging to the same stationary point, so on large k the loss falls
much faster per wall-second.  This module is the schedule layer: it
walks the column blocks of the factor matrices and drives the existing
degree-binned, tile-budgeted kernels (:func:`sweep_occupied` with
``col_block``) through the shared :class:`SweepExecutor`, which keeps
every downstream optimization — binned assembly, solver registry,
nnz-balanced sharding, blocked out-of-core streaming — in play
unchanged.

Two schedules are provided:

* ``"paired"`` — the iALS++ ordering: for each block, update the user
  factors then the item factors before moving on.  Freshly-updated user
  coordinates are visible to the very next item update, which is what
  gives iALS++ its convergence edge.
* ``"sweep"`` — finish every user block, then every item block; the
  closest analogue of the classical alternating sweep.

With one full-width block both schedules reduce to the historical
trainers *bitwise* (asserted by tests/core/test_subspace.py): the kernel
skips every complement term, the executor scatters whole rows, and the
implicit Gramian cache degenerates to the per-half-sweep recompute.

For the implicit trainer the dense ``FᵀF`` Gramians are maintained
incrementally by :class:`~repro.linalg.normal_equations.GramCache` —
after a block update only the affected ``d`` rows/columns are
recomputed (O(m·d·k) instead of O(m·k²)).
"""

from __future__ import annotations

import numpy as np

from repro.linalg.normal_equations import GramCache
from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled, span

__all__ = [
    "BLOCK_SCHEDULES",
    "make_blocks",
    "pass_cost",
    "resolve_block_size",
    "subspace_iteration",
    "validate_block_size",
]

BLOCK_SCHEDULES = ("paired", "sweep")


def validate_block_size(value: int | str | None) -> None:
    """Raise on a malformed ``block_size`` spec (config validation)."""
    if value is None:
        return
    if isinstance(value, str):
        if value.strip().lower() != "auto":
            raise ValueError(
                f"block_size must be 'auto' or a positive integer, got {value!r}"
            )
        return
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(
            f"block_size must be 'auto' or a positive integer, got {value!r}"
        )
    if int(value) < 1:
        raise ValueError(f"block_size must be >= 1, got {int(value)}")


def resolve_block_size(
    block_size: int | str | None,
    k: int,
    *,
    nnz_per_row: float | None = None,
    compute_dtype: object | None = None,
) -> int | None:
    """The effective subspace size: ``None`` (full sweeps), an explicit
    ``d`` clamped to ``k``, or the measured ``"auto"`` selection per
    (k, nnz/row, dtype) from :mod:`repro.autotune.blocks`."""
    if block_size is None:
        return None
    if isinstance(block_size, str):
        from repro.autotune.blocks import select_block_size

        return min(k, select_block_size(
            k, nnz_per_row=nnz_per_row, compute_dtype=compute_dtype
        ))
    return min(k, int(block_size))


def make_blocks(k: int, d: int) -> tuple[tuple[int, int], ...]:
    """Contiguous column blocks of width ``d`` covering ``[0, k)``; the
    last block absorbs the remainder when ``d`` does not divide ``k``."""
    if not 1 <= d <= k:
        raise ValueError(f"block size must be in [1, {k}], got {d}")
    return tuple((s, min(s + d, k)) for s in range(0, k, d))


def pass_cost(k: int, d: int, nnz: int, rows: int) -> float:
    """Flop-count proxy for one full subspace pass (both half-sweeps).

    Per block of width ``d``: the Gram tiles cost ``nnz·d²``, the
    complement predictions ``nnz·(k−d)``, the RHS segment-sum ``nnz·d``,
    and the batched solve ``rows·(d³/3 + 2d²)``.  Summed over the
    ``⌈k/d⌉`` blocks this is the wall-clock proxy the convergence tests
    use (machine-independent, monotone in the real cost).
    """
    nblocks = -(-k // d)
    comp = (k - d) if d < k else 0
    assembly = nblocks * nnz * (d * d + comp + d)
    solve = nblocks * rows * (d ** 3 / 3.0 + 2.0 * d * d)
    return float(assembly + solve)


def _zero_unoccupied(F: np.ndarray, R, cache: GramCache | None) -> None:
    """Zero the factor rows with no observations, syncing ``cache``.

    The full implicit half-sweep resolves empty rows to zero (their
    system is ``(FᵀF + λI)x = 0``); the in-place block updates skip them
    entirely, so the driver zeroes them once up front.  When that
    actually changes values (the initializer's random rows, first
    iteration only) the Gramian cache is refreshed so its complement
    entries do not carry stale contributions.
    """
    empty = np.asarray(R.row_lengths()) == 0
    if not np.any(empty):
        return
    if not np.any(F[empty]):
        return
    F[empty] = 0.0
    if cache is not None:
        cache.refresh(F)


def subspace_iteration(
    executor,
    R_rows,
    R_cols,
    X: np.ndarray,
    Y: np.ndarray,
    lam: float,
    blocks: tuple[tuple[int, int], ...],
    schedule: str,
    sweep_kw: dict,
    *,
    implicit_alpha: float | None = None,
    grams: dict | None = None,
    inplace: bool = False,
    iteration: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """One training iteration as a sequence of subspace block updates.

    ``sweep_kw`` carries the trainer's solver/assembly knobs (plus
    ``weighted=True`` for ALS-WR) verbatim into
    :meth:`SweepExecutor.half_sweep`.  For the implicit trainer pass
    ``implicit_alpha`` and a persistent ``grams`` dict (one per training
    run): the driver creates and block-refreshes the ``X``/``Y``
    :class:`GramCache` entries in it.

    Updates run in place on working copies (or on the memmapped factors
    themselves when ``inplace``), so each block reads the freshest
    complement coordinates — Gauss–Seidel across blocks, Jacobi within
    one (see the executor's snapshot contract).
    """
    if schedule not in BLOCK_SCHEDULES:
        raise ValueError(
            f"block_schedule must be one of {BLOCK_SCHEDULES}, got {schedule!r}"
        )
    implicit = implicit_alpha is not None
    if implicit and grams is None:
        raise ValueError("implicit subspace descent needs a persistent grams dict")
    call_kw = dict(sweep_kw)
    if implicit:
        call_kw["implicit_alpha"] = float(implicit_alpha)
    Xw = X if inplace else X.copy()
    Yw = Y if inplace else Y.copy()
    d = max(e - s for s, e in blocks)
    if is_enabled():
        obs_metrics.set_gauge("subspace.block_size", d)
        obs_metrics.set_gauge("subspace.blocks", len(blocks))

    def gram_for(side: str, F: np.ndarray) -> np.ndarray | None:
        if not implicit:
            return None
        cache = grams.get(side)
        if cache is None:
            cache = grams[side] = GramCache(F)
        return cache.matrix

    def fresh_gram(side: str, F: np.ndarray) -> None:
        cache = grams.get(side)
        if cache is None:
            grams[side] = GramCache(F)
        else:
            cache.refresh(F)

    def update(side: str, R, F_fixed: np.ndarray, F_upd: np.ndarray,
               s: int, e: int, base_gram: np.ndarray | None) -> None:
        with span(
            "als.subspace.block", side=side, start=s, stop=e,
            iteration=iteration,
        ):
            executor.half_sweep(
                R, F_fixed, lam, X_prev=F_upd, out=F_upd,
                col_block=(s, e), base_gram=base_gram, **call_kw,
            )
        if implicit:
            cache = grams.get(side)
            if cache is None:
                # First touch of this side: a fresh Gramian of the
                # just-updated factor is exact by construction.
                grams[side] = GramCache(F_upd)
            else:
                cache.update_block(F_upd, s, e)

    if schedule == "paired":
        first_y = True
        if implicit:
            # The Y Gramian must predate the X zeroing order below, like
            # the full trainer's first YᵀY (computed from the raw
            # initializer output).
            gram_for("Y", Yw)
            _zero_unoccupied(Xw, R_rows, grams.get("X"))
        for s, e in blocks:
            update("X", R_rows, Yw, Xw, s, e, gram_for("Y", Yw))
            if implicit and first_y:
                _zero_unoccupied(Yw, R_cols, grams.get("Y"))
                first_y = False
            update("Y", R_cols, Xw, Yw, s, e, gram_for("X", Xw))
    else:  # "sweep"
        if implicit:
            fresh_gram("Y", Yw)
            _zero_unoccupied(Xw, R_rows, grams.get("X"))
        for s, e in blocks:
            update("X", R_rows, Yw, Xw, s, e, gram_for("Y", Yw))
        if implicit:
            fresh_gram("X", Xw)
            _zero_unoccupied(Yw, R_cols, grams.get("Y"))
        for s, e in blocks:
            update("Y", R_cols, Xw, Yw, s, e, gram_for("X", Xw))
    return Xw, Yw
