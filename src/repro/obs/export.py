"""Serialization of spans + metrics to Chrome-trace / Perfetto JSON.

One trace format for both time domains: measured host spans
(:mod:`repro.obs.spans`) and simulated device launches
(:class:`repro.clsim.runtime.CommandQueue`) become ``ph:"X"`` complete
events on separate process tracks of a single timeline, so Perfetto
(https://ui.perfetto.dev) shows "what the host actually did" next to
"what the cost model says the device would do" — the side-by-side the
paper's hotspot methodology implies.  ``repro.clsim.tracing`` delegates
its queue export here so there is exactly one serializer.

Track layout:

* pid ``HOST_PID`` (1) — measured spans; one tid per host thread.
* pid ``SIM_PID_BASE`` (100) + i — the i-th simulated command queue;
  in-order queue semantics lay launches end to end from t = 0.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecord

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.clsim.runtime import CommandQueue

__all__ = [
    "HOST_PID",
    "SIM_PID_BASE",
    "spans_to_events",
    "queue_to_events",
    "trace_payload",
    "write_trace",
    "metrics_payload",
    "write_metrics",
]

HOST_PID = 1
SIM_PID_BASE = 100


def _process_name(pid: int, name: str) -> dict:
    """Perfetto track label (metadata event)."""
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def spans_to_events(
    records: Sequence[SpanRecord],
    pid: int = HOST_PID,
    base: float | None = None,
) -> list[dict]:
    """Span records as Chrome-trace complete events.

    Timestamps are microseconds relative to ``base`` (default: the
    earliest span start), so traces start at t = 0 regardless of the
    clock's origin.  Thread idents are remapped to small stable tids in
    order of first appearance.
    """
    if not records:
        return []
    if base is None:
        base = min(r.start for r in records)
    tids: dict[int, int] = {}
    events = []
    for r in sorted(records, key=lambda r: (r.start, r.depth)):
        tid = tids.setdefault(r.tid, len(tids) + 1)
        args: dict[str, object] = {"self_us": r.self_duration * 1e6}
        args.update(r.attrs)
        events.append(
            {
                "name": r.name,
                "cat": r.cat,
                "ph": "X",
                "ts": (r.start - base) * 1e6,
                "dur": r.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return events


def queue_to_events(
    queue: "CommandQueue",
    pid: int = 0,
    tid: int = 0,
    base_us: float = 0.0,
) -> list[dict]:
    """Simulated queue launches as Chrome-trace complete events.

    In-order queue semantics: each launch starts when the previous one
    finishes.  Timestamps are microseconds of *simulated* device time.
    """
    events = []
    cursor_us = base_us
    for event in queue.events:
        duration_us = event.seconds * 1e6
        events.append(
            {
                "name": event.kernel_name,
                "cat": "kernel",
                "ph": "X",
                "ts": cursor_us,
                "dur": duration_us,
                "pid": pid,
                "tid": tid,
                "args": {
                    "compute_s": event.cost.compute_s,
                    "memory_s": event.cost.memory_s,
                    "overhead_s": event.cost.overhead_s,
                    "bound": event.cost.bound,
                },
            }
        )
        cursor_us += duration_us
    return events


def trace_payload(
    span_records: Sequence[SpanRecord] = (),
    queues: Iterable["CommandQueue"] = (),
    meta: dict | None = None,
) -> dict:
    """The merged Chrome-trace document (host + simulated tracks)."""
    events: list[dict] = []
    if span_records:
        events.append(_process_name(HOST_PID, "host (measured)"))
        events.extend(spans_to_events(span_records))
    for i, queue in enumerate(queues):
        pid = SIM_PID_BASE + i
        events.append(_process_name(pid, f"sim:{queue.device.name}"))
        events.extend(queue_to_events(queue, pid=pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": meta or {},
    }


def write_trace(
    path: str | os.PathLike,
    span_records: Sequence[SpanRecord] = (),
    queues: Iterable["CommandQueue"] = (),
    meta: dict | None = None,
) -> None:
    """Write the merged timeline as a Perfetto-loadable JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_payload(span_records, queues, meta), fh)


def metrics_payload(
    registry: MetricsRegistry | dict,
    span_records: Sequence[SpanRecord] = (),
    meta: dict | None = None,
) -> dict:
    """Flat metrics document: registry snapshot + per-span-name totals."""
    snap = registry.snapshot() if isinstance(registry, MetricsRegistry) else registry
    by_name: dict[str, dict[str, float]] = {}
    for r in span_records:
        agg = by_name.setdefault(r.name, {"calls": 0, "seconds": 0.0, "self_seconds": 0.0})
        agg["calls"] += 1
        agg["seconds"] += r.duration
        agg["self_seconds"] += r.self_duration
    return {"meta": meta or {}, "metrics": snap, "spans": by_name}


def write_metrics(
    path: str | os.PathLike,
    registry: MetricsRegistry | dict,
    span_records: Sequence[SpanRecord] = (),
    meta: dict | None = None,
) -> None:
    """Write the flat metrics JSON (the ``BENCH_*.json`` seed format)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_payload(registry, span_records, meta), fh, indent=2)
