"""A stdlib-only background HTTP endpoint serving the metrics registry.

The serving roadmap turns the library into a long-lived process; a
long-lived process needs a scrape target.  :class:`MetricsEndpoint`
runs a ``ThreadingHTTPServer`` on a daemon thread and serves

* ``GET /metrics`` — the registry in Prometheus text format
  (:func:`repro.obs.exporter.render_prometheus`),
* ``GET /healthz`` — a small JSON liveness document (status, uptime,
  pid), the probe a supervisor points at.

Everything else is a JSON 404.  ``port=0`` binds an ephemeral port
(read it back from :attr:`port` — the tests' idiom); the handler reads
the registry through its consistent ``snapshot()``, so scrapes during a
training sweep are never torn.

Usage::

    from repro.obs.endpoint import MetricsEndpoint

    with MetricsEndpoint(port=9100) as ep:      # starts on enter
        ...                                     # train / serve
    # or explicitly: ep = MetricsEndpoint(); ep.start(); ... ep.stop()

The CLI exposes the same thing as ``repro-als serve-metrics`` and via
``--metrics-port`` on long-running commands.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.exporter import render_prometheus
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["PROMETHEUS_CONTENT_TYPE", "MetricsEndpoint"]

#: Content type of the text exposition format, version pinned as the
#: format spec requires.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsEndpoint:
    """Background ``/metrics`` + ``/healthz`` server over one registry."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry or get_registry()
        self.host = host
        self._requested_port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "MetricsEndpoint":
        if self._server is not None:
            return self
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                endpoint._handle(self)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # scrapes should not spam the training process's stderr

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-endpoint",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None
        self._started_at = None

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.registry).encode("utf-8")
            self._respond(request, 200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/healthz":
            uptime = (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            payload = {
                "status": "ok",
                "pid": os.getpid(),
                "uptime_seconds": round(uptime, 3),
            }
            self._respond_json(request, 200, payload)
        else:
            self._respond_json(
                request, 404,
                {"status": "not found", "path": path,
                 "endpoints": ["/metrics", "/healthz"]},
            )

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler, code: int, ctype: str, body: bytes
    ) -> None:
        request.send_response(code)
        request.send_header("Content-Type", ctype)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)

    def _respond_json(
        self, request: BaseHTTPRequestHandler, code: int, payload: dict
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._respond(request, code, "application/json; charset=utf-8", body)
