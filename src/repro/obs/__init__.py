"""Observability: spans, metrics and unified Perfetto trace export.

The hotspot-guided companion to the cost model: the same S1/S2/S3
decomposition the paper derives from device profiles (§V, Fig. 8),
measured on the real NumPy execution path and exportable — together
with simulated command-queue timelines — as one Chrome-trace/Perfetto
JSON.  See ``docs/observability.md``.

* :mod:`repro.obs.spans` — hierarchical wall-clock spans (disabled by
  default; ~zero-cost no-ops until :func:`enable`/:func:`capture`).
* :mod:`repro.obs.metrics` — named counters/gauges/histograms, plus
  log-bucketed :class:`QuantileHistogram` latency sketches (p50/p95/p99).
* :mod:`repro.obs.export` — Chrome-trace + flat metrics JSON.
* :mod:`repro.obs.exporter` — Prometheus text rendering + JSONL event log.
* :mod:`repro.obs.endpoint` — background ``/metrics`` + ``/healthz`` HTTP
  endpoint (stdlib-only).
* :mod:`repro.obs.resource` — background RSS/CPU resource sampler.
* :mod:`repro.obs.gate` — perf-regression gate over the BENCH trajectory.
* :mod:`repro.obs.hotspot` — measured S1/S2/S3 tables, top-N spans.
* :mod:`repro.obs.profiler` — the ``repro-als profile`` runner (import
  explicitly; it pulls in the training stack).
"""

from repro.obs.export import (
    metrics_payload,
    queue_to_events,
    spans_to_events,
    trace_payload,
    write_metrics,
    write_trace,
)
from repro.obs.hotspot import (
    render_hotspot_table,
    render_top_spans,
    stage_breakdown,
    sweep_seconds,
    top_spans,
)
from repro.obs.endpoint import MetricsEndpoint
from repro.obs.exporter import EventLog, render_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileHistogram,
    get_registry,
    inc,
    observe,
    observe_latency,
    observe_quantile,
    set_gauge,
)
from repro.obs.resource import ResourceSampler
from repro.obs.spans import (
    SpanRecord,
    Tracer,
    capture,
    clear,
    current_span,
    disable,
    enable,
    get_tracer,
    is_enabled,
    set_clock,
    span,
    traced,
)

__all__ = [
    # spans
    "SpanRecord",
    "Tracer",
    "span",
    "traced",
    "enable",
    "disable",
    "is_enabled",
    "capture",
    "current_span",
    "get_tracer",
    "set_clock",
    "clear",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileHistogram",
    "MetricsRegistry",
    "get_registry",
    "inc",
    "set_gauge",
    "observe",
    "observe_quantile",
    "observe_latency",
    # exporter / endpoint / resource
    "render_prometheus",
    "EventLog",
    "MetricsEndpoint",
    "ResourceSampler",
    # export
    "spans_to_events",
    "queue_to_events",
    "trace_payload",
    "write_trace",
    "metrics_payload",
    "write_metrics",
    # hotspot
    "stage_breakdown",
    "sweep_seconds",
    "top_spans",
    "render_hotspot_table",
    "render_top_spans",
]
