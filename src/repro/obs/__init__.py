"""Observability: spans, metrics and unified Perfetto trace export.

The hotspot-guided companion to the cost model: the same S1/S2/S3
decomposition the paper derives from device profiles (§V, Fig. 8),
measured on the real NumPy execution path and exportable — together
with simulated command-queue timelines — as one Chrome-trace/Perfetto
JSON.  See ``docs/observability.md``.

* :mod:`repro.obs.spans` — hierarchical wall-clock spans (disabled by
  default; ~zero-cost no-ops until :func:`enable`/:func:`capture`).
* :mod:`repro.obs.metrics` — named counters/gauges/histograms.
* :mod:`repro.obs.export` — Chrome-trace + flat metrics JSON.
* :mod:`repro.obs.hotspot` — measured S1/S2/S3 tables, top-N spans.
* :mod:`repro.obs.profiler` — the ``repro-als profile`` runner (import
  explicitly; it pulls in the training stack).
"""

from repro.obs.export import (
    metrics_payload,
    queue_to_events,
    spans_to_events,
    trace_payload,
    write_metrics,
    write_trace,
)
from repro.obs.hotspot import (
    render_hotspot_table,
    render_top_spans,
    stage_breakdown,
    sweep_seconds,
    top_spans,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    inc,
    observe,
    set_gauge,
)
from repro.obs.spans import (
    SpanRecord,
    Tracer,
    capture,
    clear,
    disable,
    enable,
    get_tracer,
    is_enabled,
    set_clock,
    span,
    traced,
)

__all__ = [
    # spans
    "SpanRecord",
    "Tracer",
    "span",
    "traced",
    "enable",
    "disable",
    "is_enabled",
    "capture",
    "get_tracer",
    "set_clock",
    "clear",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "inc",
    "set_gauge",
    "observe",
    # export
    "spans_to_events",
    "queue_to_events",
    "trace_payload",
    "write_trace",
    "metrics_payload",
    "write_metrics",
    # hotspot
    "stage_breakdown",
    "sweep_seconds",
    "top_spans",
    "render_hotspot_table",
    "render_top_spans",
]
