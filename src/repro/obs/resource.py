"""Background RSS / CPU-time sampling during training and serving.

The out-of-core roadmap item claims "train Table I's shapes on a
laptop-class memory budget" — a claim that needs a recorded memory
trajectory, not a guess.  :class:`ResourceSampler` runs a daemon thread
that periodically reads the process's resident set size and CPU time
and records them into the metrics registry:

* ``proc.rss_bytes`` (gauge) — current resident set,
* ``proc.peak_rss_bytes`` (gauge) — the kernel's high-water mark
  (``ru_maxrss``), which catches spikes between samples,
* ``proc.cpu_seconds`` (gauge) — user+system CPU time,
* ``proc.samples`` (counter), and
* ``proc.rss.sampled_bytes`` (summary histogram) — the sampled RSS
  distribution over the run (min/mean/max).

Readings are stdlib-only: ``/proc/self/statm`` on Linux, falling back
to ``resource.getrusage`` where ``/proc`` is absent; on platforms with
neither, RSS gauges are simply not emitted.  The sampler writes
directly to its registry (not through the enable-gated helpers) —
starting one is already the explicit opt-in.
"""

from __future__ import annotations

import os
import threading

from repro.obs.metrics import MetricsRegistry, get_registry

try:  # Unix-only stdlib module; Windows runs without peak-RSS readings.
    import resource as _resource
except ImportError:  # pragma: no cover - non-Unix platforms
    _resource = None

__all__ = [
    "ResourceSampler",
    "rss_bytes",
    "peak_rss_bytes",
    "cpu_seconds",
]

_STATM_PATH = "/proc/self/statm"
try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def rss_bytes() -> int | None:
    """Current resident set size in bytes (``None`` when unreadable)."""
    try:
        with open(_STATM_PATH, "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def peak_rss_bytes() -> int | None:
    """Peak resident set size in bytes (``ru_maxrss``; ``None`` unknown).

    Linux reports ``ru_maxrss`` in kilobytes, macOS in bytes — the one
    platform quirk this module has to know about.
    """
    if _resource is None:  # pragma: no cover - non-Unix platforms
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    import sys

    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def cpu_seconds() -> float:
    """User + system CPU seconds consumed by this process."""
    t = os.times()
    return t.user + t.system


class ResourceSampler:
    """Daemon thread recording RSS / peak-RSS / CPU gauges at an interval.

    Use as a context manager around a training or serving block, or
    :meth:`start`/:meth:`stop` explicitly.  :meth:`sample` takes one
    reading synchronously (the tests' entry point, and also called once
    on ``start`` and once on ``stop`` so even a shorter-than-interval
    run records its footprint).
    """

    DEFAULT_INTERVAL = 0.05

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        registry: MetricsRegistry | None = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive seconds")
        self.interval = float(interval)
        self.registry = registry or get_registry()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def sample(self) -> dict[str, float]:
        """Take one reading and record it; returns what was recorded."""
        reg = self.registry
        recorded: dict[str, float] = {}
        rss = rss_bytes()
        if rss is not None:
            reg.gauge("proc.rss_bytes").set(rss)
            reg.histogram("proc.rss.sampled_bytes").observe(rss)
            recorded["proc.rss_bytes"] = float(rss)
        peak = peak_rss_bytes()
        if peak is not None:
            reg.gauge("proc.peak_rss_bytes").set(peak)
            recorded["proc.peak_rss_bytes"] = float(peak)
        cpu = cpu_seconds()
        reg.gauge("proc.cpu_seconds").set(cpu)
        recorded["proc.cpu_seconds"] = cpu
        reg.counter("proc.samples").inc()
        return recorded

    def start(self) -> "ResourceSampler":
        if self.running:
            return self
        self._stop.clear()
        self.sample()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.sample()  # closing reading: final CPU time and peak RSS

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
