"""Named counters, gauges and histograms for the real execution path.

The registry is the numeric companion to :mod:`repro.obs.spans`: spans
say *where* the time went, metrics say *how much work* was done there
(``als.sweep.rows``, ``solver.cholesky.calls``, ``sparse.nnz_touched``),
which is what turns a hotspot table into an arithmetic-intensity
argument (cf. the paper's roofline discussion).

Two histogram flavors coexist:

* :class:`Histogram` — bucket-free streaming summary
  (count/sum/min/max/mean); merges trivially and is what the
  ``BENCH_*.json`` reports record.
* :class:`QuantileHistogram` — fixed log-bucketed latency sketch with
  bounded memory, mergeable across shards/processes, answering the
  serving question summaries cannot: p50/p95/p99.  The quantile error
  is bounded by the bucket resolution (one geometric bucket width).

Instrumented code calls the module-level helpers (:func:`inc`,
:func:`set_gauge`, :func:`observe`, :func:`observe_quantile`,
:func:`observe_latency`), which are gated on the same enable flag as
spans and early-return when tracing is off.  The registry objects
themselves always work — tests and exporters use them directly.

Every instrument carries its own lock and :meth:`MetricsRegistry.snapshot`
reads all of them in a single pass under the registry lock, so snapshots
taken while ``SweepExecutor`` workers are writing are never torn.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator, Sequence

from repro.obs.spans import SpanRecord, is_enabled, set_span_observer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileHistogram",
    "DEFAULT_QUANTILES",
    "MetricsRegistry",
    "get_registry",
    "inc",
    "set_gauge",
    "observe",
    "observe_quantile",
    "observe_latency",
    "snapshot",
    "reset",
]

#: The percentiles every quantile sketch reports by default — the
#: latency triple the serving roadmap (and every SRE dashboard) asks for.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class Counter:
    """Monotonically increasing count (calls, rows, bytes...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins value (sizes, configuration, temperatures...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming summary of observed samples (count/sum/min/max/mean).

    Deliberately bucket-free: the consumers here want summary rows in a
    metrics JSON, not quantile sketches, and summaries merge trivially.
    Quantiles live in :class:`QuantileHistogram`.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        with self._lock:
            if not self.count:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count,
            }


class QuantileHistogram:
    """Fixed log-bucketed histogram: bounded memory, mergeable, p50/p95/p99.

    Buckets are geometrically spaced — ``buckets_per_decade`` per factor
    of ten between ``lo`` and ``hi`` — plus one underflow and one
    overflow bucket, so the footprint is fixed at construction no matter
    how many samples arrive (the HdrHistogram/Prometheus-native-histogram
    idea, stdlib-only).  A quantile estimate is the geometric midpoint of
    the bucket holding the nearest-rank sample, clamped to the observed
    ``[min, max]``; its relative error is therefore bounded by one bucket
    width, i.e. a factor of :attr:`growth` (≈1.21 at the default 12
    buckets/decade).

    Two sketches with the same layout merge by adding bucket counts,
    which is what lets per-shard or per-process latency distributions
    aggregate without losing the tail.
    """

    __slots__ = (
        "name", "lo", "hi", "buckets_per_decade",
        "count", "total", "min", "max",
        "_counts", "_log_lo", "_inv_log_growth", "_lock",
        "_win_counts", "_win_count", "_win_total", "_win_min", "_win_max",
    )

    #: Default range: 100 ns .. ~28 h, aimed at wall-clock seconds.
    DEFAULT_LO = 1e-7
    DEFAULT_HI = 1e5
    DEFAULT_BUCKETS_PER_DECADE = 12

    def __init__(
        self,
        name: str,
        lo: float | None = None,
        hi: float | None = None,
        buckets_per_decade: int | None = None,
    ):
        lo = self.DEFAULT_LO if lo is None else float(lo)
        hi = self.DEFAULT_HI if hi is None else float(hi)
        bpd = (
            self.DEFAULT_BUCKETS_PER_DECADE
            if buckets_per_decade is None
            else int(buckets_per_decade)
        )
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi for log-spaced buckets")
        if bpd < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.buckets_per_decade = bpd
        n = int(math.ceil(math.log10(hi / lo) * bpd - 1e-9))
        # index 0 = underflow (< lo); 1..n = log buckets; n+1 = overflow.
        self._counts = [0] * (n + 2)
        self._log_lo = math.log(lo)
        self._inv_log_growth = bpd / math.log(10.0)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # Window state: same layout, reset on every window_summary(reset=
        # True) — what lets a /metrics scrape report *per-interval*
        # percentiles instead of lifetime-cumulative ones.
        self._win_counts = [0] * len(self._counts)
        self._win_count = 0
        self._win_total = 0.0
        self._win_min = float("inf")
        self._win_max = float("-inf")
        self._lock = threading.Lock()

    @property
    def growth(self) -> float:
        """Upper/lower edge ratio of one bucket — the resolution bound."""
        return 10.0 ** (1.0 / self.buckets_per_decade)

    def layout(self) -> tuple[float, float, int]:
        return (self.lo, self.hi, self.buckets_per_decade)

    def _bucket_index(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return len(self._counts) - 1
        i = int((math.log(value) - self._log_lo) * self._inv_log_growth) + 1
        return min(max(i, 1), len(self._counts) - 2)

    def _upper_edge(self, index: int) -> float:
        """Upper bound of bucket ``index`` (underflow → lo, overflow → inf)."""
        if index <= 0:
            return self.lo
        if index >= len(self._counts) - 1:
            return float("inf")
        return self.lo * self.growth ** index

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            i = self._bucket_index(value)
            self._counts[i] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._win_counts[i] += 1
            self._win_count += 1
            self._win_total += value
            if value < self._win_min:
                self._win_min = value
            if value > self._win_max:
                self._win_max = value

    def merge(self, other: "QuantileHistogram") -> None:
        """Fold another sketch of identical layout into this one.

        Merged samples count toward the current window too — a shard's
        distribution folded in between scrapes is interval activity.
        """
        if other.layout() != self.layout():
            raise ValueError(
                f"cannot merge layouts {other.layout()} into {self.layout()}"
            )
        counts, count, total, mn, mx = other._state()
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
                self._win_counts[i] += c
            self.count += count
            self.total += total
            self._win_count += count
            self._win_total += total
            if mn < self.min:
                self.min = mn
            if mx > self.max:
                self.max = mx
            if mn < self._win_min:
                self._win_min = mn
            if mx > self._win_max:
                self._win_max = mx

    def _state(self) -> tuple[list[int], int, float, float, float]:
        with self._lock:
            return (list(self._counts), self.count, self.total, self.min, self.max)

    def _quantile_from(
        self, counts: list[int], count: int, mn: float, mx: float, q: float
    ) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if count == 0:
            return 0.0
        target = max(1, math.ceil(q * count))
        cum = 0
        for i, c in enumerate(counts):
            cum += c
            if cum >= target:
                if i == 0:
                    return mn  # everything here is below lo
                if i == len(counts) - 1:
                    return mx  # everything here is at/above hi
                # Geometric midpoint of bucket i = [lo·g^(i-1), lo·g^i),
                # clamped to the observed range (which the nearest-rank
                # sample also lies in, so the clamp only tightens).
                est = self.lo * self.growth ** (i - 0.5)
                return min(max(est, mn), mx)
        return mx  # unreachable: cum == count >= target by the last bucket

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (0 with no samples)."""
        counts, count, total, mn, mx = self._state()
        return self._quantile_from(counts, count, mn, mx, q)

    def percentiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., ...}`` from one consistent pass."""
        counts, count, total, mn, mx = self._state()
        return {
            f"p{q * 100:g}": self._quantile_from(counts, count, mn, mx, q)
            for q in qs
        }

    def _summary_from(
        self, counts: list[int], count: int, total: float, mn: float, mx: float
    ) -> dict[str, float]:
        if not count:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        out = {
            "count": count,
            "sum": total,
            "min": mn,
            "max": mx,
            "mean": total / count,
        }
        for q in DEFAULT_QUANTILES:
            out[f"p{round(q * 100):d}"] = self._quantile_from(
                counts, count, mn, mx, q
            )
        return out

    def summary(self) -> dict[str, float]:
        counts, count, total, mn, mx = self._state()
        return self._summary_from(counts, count, total, mn, mx)

    def window_summary(self, reset: bool = True) -> dict[str, float]:
        """Summary of the samples observed since the last window reset.

        The delta-since-last-scrape view: a monitoring endpoint calling
        this once per scrape reports *per-interval* p50/p95/p99 instead
        of lifetime-cumulative percentiles that stop moving once the
        sample count dwarfs the interval.  ``reset=True`` (the default)
        starts the next window atomically with the read; ``reset=False``
        peeks without consuming.  Cumulative state is never touched.
        """
        with self._lock:
            counts = list(self._win_counts)
            count = self._win_count
            total = self._win_total
            mn = self._win_min
            mx = self._win_max
            if reset:
                for i in range(len(self._win_counts)):
                    self._win_counts[i] = 0
                self._win_count = 0
                self._win_total = 0.0
                self._win_min = float("inf")
                self._win_max = float("-inf")
        return self._summary_from(counts, count, total, mn, mx)

    def buckets(self) -> list[tuple[float, int]]:
        """Non-empty ``(upper_edge, count)`` pairs, ascending by edge."""
        counts, _, _, _, _ = self._state()
        return [
            (self._upper_edge(i), c) for i, c in enumerate(counts) if c
        ]


class MetricsRegistry:
    """Get-or-create store of named instruments, snapshot-able to JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._quantiles: dict[str, QuantileHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            try:
                return self._counters[name]
            except KeyError:
                inst = self._counters[name] = Counter(name)
                return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            try:
                return self._gauges[name]
            except KeyError:
                inst = self._gauges[name] = Gauge(name)
                return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            try:
                return self._histograms[name]
            except KeyError:
                inst = self._histograms[name] = Histogram(name)
                return inst

    def quantile(
        self,
        name: str,
        lo: float | None = None,
        hi: float | None = None,
        buckets_per_decade: int | None = None,
    ) -> QuantileHistogram:
        """Get-or-create a quantile sketch (layout args apply on creation)."""
        with self._lock:
            try:
                return self._quantiles[name]
            except KeyError:
                inst = self._quantiles[name] = QuantileHistogram(
                    name, lo=lo, hi=hi, buckets_per_decade=buckets_per_decade
                )
                return inst

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(
                sorted(
                    {
                        *self._counters,
                        *self._gauges,
                        *self._histograms,
                        *self._quantiles,
                    }
                )
            )

    def snapshot(self) -> dict[str, dict]:
        """A plain-dict view, ready for ``json.dump``.

        One consistent pass: the registry lock is held for the whole
        walk (no instruments appear or vanish mid-snapshot) and every
        instrument is read under its own lock (no torn count/sum pairs).
        """
        with self._lock:
            counters = {}
            for n, c in sorted(self._counters.items()):
                with c._lock:
                    counters[n] = c.value
            gauges = {}
            for n, g in sorted(self._gauges.items()):
                with g._lock:
                    gauges[n] = g.value
            return {
                "counters": counters,
                "gauges": gauges,
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
                "quantiles": {
                    n: q.summary() for n, q in sorted(self._quantiles.items())
                },
            }

    def window_snapshot(self, reset: bool = True) -> dict[str, dict]:
        """Like :meth:`snapshot`, with *windowed* quantile summaries.

        Counters, gauges and plain histograms stay cumulative (their
        Prometheus types expect that — rate() handles the delta); the
        quantile sketches report delta-since-last-window summaries and,
        with ``reset=True``, open a new window.  The long-lived serving
        endpoint scrapes this for per-interval latency percentiles.
        """
        snap = self.snapshot()
        with self._lock:
            sketches = sorted(self._quantiles.items())
        snap["quantiles"] = {
            n: q.window_summary(reset=reset) for n, q in sketches
        }
        return snap

    def quantile_histograms(self) -> dict[str, QuantileHistogram]:
        """A stable-ordered copy of the live quantile sketches."""
        with self._lock:
            return dict(sorted(self._quantiles.items()))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._quantiles.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry the gated helpers write to."""
    return _REGISTRY


def inc(name: str, amount: float = 1.0) -> None:
    """Bump a counter — no-op while instrumentation is disabled."""
    if is_enabled():
        _REGISTRY.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge — no-op while instrumentation is disabled."""
    if is_enabled():
        _REGISTRY.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample — no-op while instrumentation is disabled."""
    if is_enabled():
        _REGISTRY.histogram(name).observe(value)


def observe_quantile(name: str, value: float) -> None:
    """Record into a quantile sketch — no-op while disabled."""
    if is_enabled():
        _REGISTRY.quantile(name).observe(value)


def observe_latency(name: str, seconds: float) -> None:
    """Record a latency sample into both histogram flavors.

    The summary keeps BENCH JSONs small and mergeable; the quantile
    sketch under the same name answers p50/p95/p99.  Gated like every
    other helper.
    """
    if is_enabled():
        _REGISTRY.histogram(name).observe(seconds)
        _REGISTRY.quantile(name).observe(seconds)


def snapshot() -> dict[str, dict]:
    """Snapshot the global registry."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Clear every instrument in the global registry."""
    _REGISTRY.reset()


# -- stage latency wiring ---------------------------------------------------
#
# The S1/S2/S3 kernels already run inside stage-tagged spans (see
# repro.linalg.normal_equations and repro.kernels.fastpath); rather than
# duplicating timers at every call site, a span-end observer on the
# global tracer folds those measured durations into per-stage latency
# distributions.  Only measured host spans count — simulated kernel
# launches carry cat="kernel" and are excluded.

_STAGE_SERIES = {"S1": "stage.s1.seconds", "S2": "stage.s2.seconds",
                 "S3": "stage.s3.seconds"}


def _span_end_observer(record: SpanRecord) -> None:
    if record.cat != "host":
        return
    name = _STAGE_SERIES.get(record.attrs.get("stage"))
    if name is not None:
        _REGISTRY.histogram(name).observe(record.duration)
        _REGISTRY.quantile(name).observe(record.duration)


set_span_observer(_span_end_observer)
