"""Named counters, gauges and histograms for the real execution path.

The registry is the numeric companion to :mod:`repro.obs.spans`: spans
say *where* the time went, metrics say *how much work* was done there
(``als.sweep.rows``, ``solver.cholesky.calls``, ``sparse.nnz_touched``),
which is what turns a hotspot table into an arithmetic-intensity
argument (cf. the paper's roofline discussion).

Instrumented code calls the module-level helpers (:func:`inc`,
:func:`set_gauge`, :func:`observe`), which are gated on the same enable
flag as spans and early-return when tracing is off.  The registry
objects themselves always work — tests and exporters use them directly.
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.obs.spans import is_enabled

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "reset",
]


class Counter:
    """Monotonically increasing count (calls, rows, bytes...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """Last-write-wins value (sizes, configuration, temperatures...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed samples (count/sum/min/max/mean).

    Deliberately bucket-free: the consumers here want summary rows in a
    metrics JSON, not quantile sketches, and summaries merge trivially.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create store of named instruments, snapshot-able to JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            try:
                return self._counters[name]
            except KeyError:
                inst = self._counters[name] = Counter(name)
                return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            try:
                return self._gauges[name]
            except KeyError:
                inst = self._gauges[name] = Gauge(name)
                return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            try:
                return self._histograms[name]
            except KeyError:
                inst = self._histograms[name] = Histogram(name)
                return inst

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(
                sorted({*self._counters, *self._gauges, *self._histograms})
            )

    def snapshot(self) -> dict[str, dict]:
        """A plain-dict view, ready for ``json.dump``."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry the gated helpers write to."""
    return _REGISTRY


def inc(name: str, amount: float = 1.0) -> None:
    """Bump a counter — no-op while instrumentation is disabled."""
    if is_enabled():
        _REGISTRY.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge — no-op while instrumentation is disabled."""
    if is_enabled():
        _REGISTRY.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample — no-op while instrumentation is disabled."""
    if is_enabled():
        _REGISTRY.histogram(name).observe(value)


def snapshot() -> dict[str, dict]:
    """Snapshot the global registry."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Clear every instrument in the global registry."""
    _REGISTRY.reset()
