"""Hotspot aggregation: measured S1/S2/S3 breakdown and top spans.

The measured counterpart of :mod:`repro.kernels.steps` (which derives
the Fig. 8 decomposition from the *cost model*): instrumented runs tag
their stage spans with ``stage="S1" | "S2" | "S3"``, and this module
folds the collected records into the same three-way table, plus a
generic top-N span ranking for everything that is not an ALS stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.obs.spans import SpanRecord

__all__ = [
    "STAGES",
    "SWEEP_SPAN",
    "StageStat",
    "SpanStat",
    "stage_breakdown",
    "sweep_seconds",
    "top_spans",
    "render_hotspot_table",
    "render_top_spans",
]

#: The paper's step decomposition (§III-B): Gram assembly, RHS, solve.
STAGES: tuple[str, ...] = ("S1", "S2", "S3")

#: Span name of the parent half-sweep in the instrumented ALS driver.
SWEEP_SPAN = "als.half_sweep"


@dataclass(frozen=True)
class StageStat:
    """Aggregate of one ALS stage over a run."""

    stage: str
    calls: int
    seconds: float


@dataclass(frozen=True)
class SpanStat:
    """Aggregate of one span name over a run."""

    name: str
    calls: int
    seconds: float
    self_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


def stage_breakdown(records: Sequence[SpanRecord]) -> dict[str, StageStat]:
    """Measured wall-clock per stage, keyed S1/S2/S3.

    Stages always appear in the result (zero-filled when absent) so the
    table shape is stable even for runs that skipped a stage.
    """
    calls = {s: 0 for s in STAGES}
    seconds = {s: 0.0 for s in STAGES}
    for r in records:
        stage = r.attrs.get("stage")
        if stage in calls:
            calls[stage] += 1
            seconds[stage] += r.duration
    return {s: StageStat(s, calls[s], seconds[s]) for s in STAGES}


def sweep_seconds(records: Sequence[SpanRecord]) -> float:
    """Total wall-clock spent inside half-sweep spans (the parent scope)."""
    return sum(r.duration for r in records if r.name == SWEEP_SPAN)


def top_spans(records: Sequence[SpanRecord], n: int = 10) -> list[SpanStat]:
    """The n span names with the largest total wall-clock."""
    agg: dict[str, list[float]] = {}
    for r in records:
        entry = agg.setdefault(r.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += r.duration
        entry[2] += r.self_duration
    stats = [SpanStat(name, int(c), s, ss) for name, (c, s, ss) in agg.items()]
    stats.sort(key=lambda s: s.seconds, reverse=True)
    return stats[:n]


def render_hotspot_table(records: Sequence[SpanRecord]) -> str:
    """The measured Fig. 8-style table: per-stage seconds and shares.

    Shares are relative to the parent half-sweep time; the residual row
    shows sweep bookkeeping outside S1/S2/S3 (masking, factor copies), so
    the three stages plus the residual sum to the sweep total.
    """
    # Imported here: pulling bench in at module scope would cycle back
    # through solvers → core → obs while repro.obs is still initializing.
    from repro.bench.report import format_table

    stages = stage_breakdown(records)
    sweep = sweep_seconds(records)
    stage_total = sum(s.seconds for s in stages.values())
    denominator = sweep if sweep > 0 else stage_total
    rows: list[tuple[object, ...]] = []
    for stat in stages.values():
        share = stat.seconds / denominator if denominator > 0 else 0.0
        rows.append((stat.stage, stat.calls, stat.seconds, f"{share:.1%}"))
    rows.append(("S1+S2+S3", "", stage_total, _share(stage_total, denominator)))
    if sweep > 0:
        rows.append(
            ("sweep residual", "", sweep - stage_total, _share(sweep - stage_total, sweep))
        )
        rows.append(("half-sweep total", "", sweep, "100.0%"))
    return format_table(
        ["stage", "calls", "seconds", "share"],
        rows,
        title="Measured hotspot breakdown (wall-clock, all iterations)",
        float_fmt="{:.4f}",
    )


def render_top_spans(records: Sequence[SpanRecord], n: int = 10) -> str:
    """A table of the n hottest span names (total / self / mean)."""
    from repro.bench.report import format_table

    rows = [
        (s.name, s.calls, s.seconds, s.self_seconds, s.mean_seconds)
        for s in top_spans(records, n)
    ]
    return format_table(
        ["span", "calls", "total [s]", "self [s]", "mean [s]"],
        rows,
        title=f"Top {min(n, len(rows))} spans by total wall-clock",
        float_fmt="{:.4f}",
    )


def _share(value: float, total: float) -> str:
    return f"{value / total:.1%}" if total > 0 else "n/a"
