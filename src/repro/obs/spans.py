"""Hierarchical wall-clock spans for the real execution path.

The paper's methodology is *hotspot-guided*: measure where the time goes
(S1 `YᵀY + λI`, S2 `Yᵀ·r_u`, S3 the solve — §V, Fig. 8), then pick a
code variant from that breakdown.  The cost model gives that visibility
for *simulated* device time; this module gives it for *measured* host
time, with the same span granularity, so the two can sit side by side in
one trace (:mod:`repro.obs.export`).

Design constraints:

* **Zero-cost when disabled.**  A module-level flag gates everything;
  ``span(...)`` returns a shared no-op context manager and the metric
  helpers early-return, so instrumented hot paths pay one attribute
  lookup and one branch.
* **Deterministic in tests.**  The clock is injectable
  (:func:`set_clock`), so nesting and aggregation tests run against a
  fake clock instead of ``perf_counter`` jitter.
* **Zero dependencies.**  stdlib only; exporters live elsewhere.

Usage::

    from repro.obs import capture, span, traced

    with capture() as tracer:                 # enable + collect
        with span("als.iteration", iteration=1):
            with span("als.s3.solve", stage="S3"):
                ...
    tracer.records                            # finished SpanRecords
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "traced",
    "enable",
    "disable",
    "is_enabled",
    "capture",
    "current_span",
    "get_tracer",
    "set_clock",
    "set_span_observer",
    "clear",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named interval on one thread's span stack."""

    span_id: int
    name: str
    cat: str
    start: float  # clock() at entry (seconds; clock-relative, not epoch)
    duration: float  # wall-clock seconds, children included
    self_duration: float  # seconds minus direct children
    tid: int
    depth: int  # 0 = root of its thread's stack
    parent_id: int | None
    attrs: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _ActiveSpan:
    """A span that is currently open; becomes a SpanRecord on exit."""

    __slots__ = ("_tracer", "name", "cat", "attrs", "span_id", "start", "_child")

    def __init__(self, tracer: "Tracer", name: str, cat: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.span_id = 0
        self.start = 0.0
        self._child = 0.0

    def set(self, **attrs: object) -> "_ActiveSpan":
        """Attach attributes after entry (e.g. results known at exit)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        tracer._stack().append(self)
        self.start = tracer.clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        duration = tracer.clock() - self.start
        stack = tracer._stack()
        stack.pop()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent._child += duration
        record = SpanRecord(
            span_id=self.span_id,
            name=self.name,
            cat=self.cat,
            start=self.start,
            duration=duration,
            self_duration=max(0.0, duration - self._child),
            tid=threading.get_ident(),
            depth=len(stack),
            parent_id=parent.span_id if parent is not None else None,
            attrs=self.attrs,
        )
        tracer._record(record)
        observer = tracer.observer
        if observer is not None:
            observer(record)
        return False


class Tracer:
    """Collects finished spans from all threads; clock is injectable."""

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.records: list[SpanRecord] = []
        #: Optional callback invoked with every finished SpanRecord.  The
        #: metrics registry installs one on the global tracer to fold
        #: stage-tagged span durations into latency histograms.
        self.observer: Callable[[SpanRecord], None] | None = None
        self._lock = threading.Lock()
        self._local = threading.local()
        self._id = 0

    def current(self) -> "_ActiveSpan | None":
        """The innermost open span on this thread's stack, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def span(self, name: str, cat: str = "host", **attrs: object) -> _ActiveSpan:
        return _ActiveSpan(self, name, cat, attrs)

    def clear(self) -> None:
        with self._lock:
            self.records.clear()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self.records.append(record)


_ENABLED = False
_TRACER = Tracer()


def is_enabled() -> bool:
    """Whether spans (and the gated metric helpers) are recording."""
    return _ENABLED


def enable() -> None:
    """Turn instrumentation on (spans record into the global tracer)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn instrumentation off (``span`` hands out a shared no-op)."""
    global _ENABLED
    _ENABLED = False


def get_tracer() -> Tracer:
    """The process-global tracer the module-level ``span`` records into."""
    return _TRACER


def clear() -> None:
    """Drop all collected spans."""
    _TRACER.clear()


def set_clock(clock: Callable[[], float] | None) -> None:
    """Swap the global tracer's clock (``None`` restores perf_counter)."""
    _TRACER.clock = clock or time.perf_counter


def set_span_observer(observer: "Callable[[SpanRecord], None] | None") -> None:
    """Install (or clear) the global tracer's span-end callback."""
    _TRACER.observer = observer


def current_span():
    """The innermost open span on this thread (``None`` when idle/disabled).

    Event logs use this to attach span context (``name``/``span_id``) to
    structured events emitted from inside instrumented code.
    """
    return _TRACER.current()


def span(name: str, cat: str = "host", **attrs: object):
    """Open a wall-clock span (context manager); no-op while disabled."""
    if not _ENABLED:
        return _NOOP
    return _TRACER.span(name, cat, **attrs)


def traced(name: str | None = None, cat: str = "host", **attrs: object):
    """Decorator form of :func:`span`, named after the function by default."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object):
            if not _ENABLED:
                return fn(*args, **kwargs)
            with _TRACER.span(span_name, cat, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


@contextmanager
def capture(clear_first: bool = True):
    """Enable tracing for a block and yield the global tracer.

    Restores the previous enabled state on exit; by default starts from
    an empty record list so the block's spans are exactly what is
    collected (the profiler's and the tests' idiom).
    """
    global _ENABLED
    previous = _ENABLED
    if clear_first:
        _TRACER.clear()
    _ENABLED = True
    try:
        yield _TRACER
    finally:
        _ENABLED = previous
