"""Perf-regression gate over the committed ``BENCH_*.json`` trajectory.

Every perf PR so far committed a benchmark record (BENCH_2..5) and CI
re-ran a quick-mode smoke against a hand-picked bar.  This module turns
that into a *trajectory* check: load all committed records, match a
fresh run against the most recent comparable record, and fail when a
gated metric regresses beyond a tolerance — "did we regress versus our
own history" instead of "did the bar pass".

Comparability rules:

* Records match by **benchmark name** and **shape** (dataset, scale, k):
  a 1/16-scale quick run is never judged against a full-scale record —
  absolute numbers do not transfer across shapes (the quick implicit
  smoke runs at a fraction of the full run's 376× speedup).
* The gated metrics are **speedup ratios** (binned/scatter, engine/dense,
  lapack/reference) — before/after on the same host, which is the metric
  class that survives a machine change at all.  Each record carries a
  **host fingerprint** (stamped by :mod:`repro.bench.record`); when the
  current host does not match the baseline's, the tolerance is widened
  by ``host_slack`` — cross-host ratios drift with core counts and BLAS
  builds, so only large regressions are actionable there.

CLI: ``repro-als perf-gate current.json [...]`` (exit 1 on regression).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "GATE_METRICS",
    "GateCheck",
    "load_trajectory",
    "check_record",
    "run_gate",
    "render_checks",
]

#: benchmark name -> dotted path of the gated (higher-is-better) metric.
#: Records may override with an explicit ``"gate_metric"`` key.
GATE_METRICS = {
    "s1s2_assembly": "speedup",
    "s3_solve_and_parallel_sweep": "lapack_speedup",
    "tiled_topn_serving": "best_speedup",
    "implicit_half_sweep": "speedup",
    "outofcore_training": "throughput_retention",
    "subspace_convergence": "time_to_target_speedup",
    "serving_service": "batching_speedup",
}

#: Fingerprint fields that must agree for two hosts to count as "same".
_FINGERPRINT_KEYS = ("cpu_count", "machine", "system", "blas")


@dataclass(frozen=True)
class GateCheck:
    """One metric comparison: current run vs its trajectory baseline."""

    benchmark: str
    metric: str
    current: float | None
    baseline: float | None
    baseline_file: str | None
    tolerance: float  # effective fractional regression allowed
    same_host: bool
    ok: bool
    reason: str

    @property
    def ratio(self) -> float | None:
        if self.current is None or not self.baseline:
            return None
        return self.current / self.baseline


def extract_metric(record: dict, path: str) -> float | None:
    """Resolve a dotted path (``"sweep.speedup"``) into a record."""
    node: object = record
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def shape_key(record: dict) -> tuple:
    """What must agree for two records' numbers to be comparable."""
    return (
        record.get("dataset"),
        record.get("scale"),
        record.get("k"),
    )


def gate_metric_for(record: dict) -> str | None:
    """The dotted metric path this record is gated on (``None`` = ungated)."""
    explicit = record.get("gate_metric")
    if explicit:
        return str(explicit)
    return GATE_METRICS.get(record.get("benchmark", ""))


def fingerprints_match(a: dict | None, b: dict | None) -> bool:
    """Same-host heuristic; unknown fingerprints never match."""
    if not a or not b:
        return False
    return all(
        a.get(key) is not None and a.get(key) == b.get(key)
        for key in _FINGERPRINT_KEYS
    )


def _bench_sort_key(path: Path) -> tuple:
    """``BENCH_2 < BENCH_10``: numeric components compare numerically.

    Every element is a type-stable ``(is_number, value)`` pair — ``(0,
    str)`` for text runs, ``(1, int)`` for digit runs — so filenames
    that mix digit and non-digit components in the same position
    (``BENCH_quick.json`` next to ``BENCH_10.json``) always compare
    cleanly, and numbers sort after text at the same position.  Digit
    runs come from the regex split itself rather than ``str.isdigit``,
    which accepts characters ``int()`` rejects (e.g. ``'²'``).
    """
    parts = re.split(r"([0-9]+)", path.name)
    return tuple(
        (1, int(p)) if i % 2 else (0, p) for i, p in enumerate(parts)
    )


def _records_of(payload: object, source: str) -> list[dict]:
    records = payload if isinstance(payload, list) else [payload]
    out = []
    for rec in records:
        if isinstance(rec, dict) and rec.get("benchmark"):
            rec = dict(rec)
            rec["_file"] = source
            out.append(rec)
    return out


def load_trajectory(root: str | os.PathLike = ".") -> list[dict]:
    """All committed benchmark records, oldest file first.

    Each ``BENCH_*.json`` holds either one record (the PR 2–5 format) or
    a list of records (the shared-writer format); files that fail to
    parse are skipped rather than wedging the gate.
    """
    trajectory: list[dict] = []
    for path in sorted(Path(root).glob("BENCH_*.json"), key=_bench_sort_key):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        trajectory.extend(_records_of(payload, path.name))
    return trajectory


def _is_current_record(current: dict, candidate: dict) -> bool:
    """Whether a trajectory record *is* the record being gated.

    A fresh record can leak into its own baseline pool two ways: the
    file under test sits in the gate root as ``BENCH_*.json``, or the
    same payload was appended to a trajectory file before gating.
    Comparing a record against itself passes vacuously, so exclude on
    identity, on matching source filename, or on the whole payload
    (everything but the ``_file`` bookkeeping key) being equal.
    """
    if candidate is current:
        return True
    cur_file, cand_file = current.get("_file"), candidate.get("_file")
    if cur_file and cand_file and Path(str(cur_file)).name == Path(str(cand_file)).name:
        return True
    strip = lambda rec: {k: v for k, v in rec.items() if k != "_file"}  # noqa: E731
    return strip(current) == strip(candidate)


def check_record(
    current: dict,
    trajectory: list[dict],
    tolerance: float = 0.2,
    host_slack: float = 2.0,
    strict: bool = False,
) -> GateCheck:
    """Judge one fresh benchmark record against the trajectory.

    ``tolerance`` is the allowed fractional regression on a same-host,
    same-shape comparison (0.2 = current may be down to 80% of the
    baseline).  A host mismatch multiplies it by ``host_slack`` (capped
    at 0.95 so the gate never becomes a no-op).  No comparable baseline
    means the check is skipped — or failed under ``strict``.
    """
    benchmark = str(current.get("benchmark", "?"))
    metric = gate_metric_for(current)
    if metric is None:
        return GateCheck(
            benchmark, "-", None, None, None, tolerance, False, True,
            "no gated metric for this benchmark",
        )
    value = extract_metric(current, metric)
    if value is None:
        return GateCheck(
            benchmark, metric, None, None, None, tolerance, False, False,
            f"current record has no {metric!r}",
        )
    candidates = [
        rec
        for rec in trajectory
        if rec.get("benchmark") == benchmark
        and shape_key(rec) == shape_key(current)
        and extract_metric(rec, metric) is not None
        and not _is_current_record(current, rec)
    ]
    if not candidates:
        ok = not strict
        return GateCheck(
            benchmark, metric, value, None, None, tolerance, False, ok,
            "no comparable baseline (benchmark/shape mismatch)"
            + ("" if ok else " [strict]"),
        )
    baseline = candidates[-1]  # most recent *prior* committed record wins
    baseline_value = extract_metric(baseline, metric)
    same_host = fingerprints_match(current.get("host"), baseline.get("host"))
    eff_tolerance = (
        tolerance if same_host else min(0.95, tolerance * host_slack)
    )
    floor = baseline_value * (1.0 - eff_tolerance)
    ok = value >= floor
    reason = (
        f"{metric} {value:.3f} vs baseline {baseline_value:.3f} "
        f"(floor {floor:.3f}, {'same' if same_host else 'different'} host)"
    )
    return GateCheck(
        benchmark, metric, value, baseline_value,
        baseline.get("_file"), eff_tolerance, same_host, ok, reason,
    )


def run_gate(
    current_paths: list[str | os.PathLike],
    root: str | os.PathLike = ".",
    tolerance: float = 0.2,
    host_slack: float = 2.0,
    strict: bool = False,
) -> tuple[list[GateCheck], bool]:
    """Gate every record in the given files; ``(checks, all_ok)``."""
    trajectory = load_trajectory(root)
    checks: list[GateCheck] = []
    for path in current_paths:
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            checks.append(
                GateCheck(
                    str(path), "-", None, None, None, tolerance, False,
                    False, f"unreadable record: {exc}",
                )
            )
            continue
        records = _records_of(payload, str(path))
        if not records:
            checks.append(
                GateCheck(
                    str(path), "-", None, None, None, tolerance, False,
                    False, "no benchmark records in file",
                )
            )
            continue
        for record in records:
            checks.append(
                check_record(
                    record, trajectory,
                    tolerance=tolerance, host_slack=host_slack, strict=strict,
                )
            )
    return checks, all(c.ok for c in checks)


def render_checks(checks: list[GateCheck]) -> str:
    """Terminal table: one verdict line per check."""
    lines = ["perf gate vs BENCH trajectory:"]
    for c in checks:
        verdict = "OK  " if c.ok else "FAIL"
        base = f" [{c.baseline_file}]" if c.baseline_file else ""
        lines.append(
            f"  {verdict} {c.benchmark:28s} {c.reason}{base} "
            f"(tolerance {c.tolerance:.0%})"
        )
    return "\n".join(lines)
