"""End-to-end profiling runs behind ``repro-als profile``.

Trains a real (NumPy) ALS model on a catalog dataset — scaled down so a
profile run takes seconds, not core-hours — with instrumentation
enabled, and optionally simulates the same-shape run on one of the
paper's devices so the exported trace shows measured host spans and
simulated kernel launches on one timeline.

Kept out of ``repro.obs.__init__`` on purpose: this module imports the
training stack, which itself imports ``repro.obs`` for spans.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.clsim.device import DeviceSpec, device_by_name
from repro.clsim.runtime import CommandQueue
from repro.core.als import ALSConfig, ALSModel, train_als
from repro.core.alswr import train_als_wr
from repro.core.implicit import ImplicitConfig, ImplicitModel, train_implicit_als
from repro.datasets.catalog import DatasetSpec, dataset_by_name
from repro.datasets.synthetic import generate_ratings
from repro.obs import export, hotspot
from repro.obs import metrics as obs_metrics
from repro.obs.resource import ResourceSampler
from repro.obs.spans import SpanRecord, capture, span
from repro.solvers.base import SimulatedRun
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["MAX_PROFILE_NNZ", "ProfileReport", "profile_training", "render_report"]

#: Auto-scale ceiling: datasets are shrunk until their training non-zeros
#: fit under this, keeping a 5-iteration profile run in seconds.  (Memory
#: is no longer the binding constraint: the degree-binned assembly caps
#: its scratch at the tile budget regardless of dataset size.)
MAX_PROFILE_NNZ = 150_000

_TRAINERS = {"als": train_als, "als-wr": train_als_wr, "implicit": train_implicit_als}


@dataclass(frozen=True)
class ProfileReport:
    """Everything one instrumented training run produced."""

    spec: DatasetSpec  # the (scaled) spec that was actually trained
    scale: float
    algorithm: str
    config: ALSConfig | ImplicitConfig
    model: ALSModel | ImplicitModel
    records: tuple[SpanRecord, ...]
    metrics: dict
    device: DeviceSpec | None = None
    sim_run: SimulatedRun | None = None
    sim_queue: CommandQueue | None = None

    @property
    def train_seconds(self) -> float:
        """Measured wall-clock of the root training span."""
        return sum(r.duration for r in self.records if r.name == "als.train")

    def write_trace(self, path: str | os.PathLike) -> None:
        """Merged Perfetto trace: host spans + simulated queue (if any)."""
        queues = (self.sim_queue,) if self.sim_queue is not None else ()
        export.write_trace(path, self.records, queues, meta=self._meta())

    def write_metrics(self, path: str | os.PathLike) -> None:
        export.write_metrics(path, self.metrics, self.records, meta=self._meta())

    def _meta(self) -> dict:
        from repro.linalg.normal_equations import assembly_defaults
        from repro.linalg.solvers import resolve_solver
        from repro.parallel.executor import resolve_workers

        meta = {
            "dataset": self.spec.abbr,
            "scale": self.scale,
            "algorithm": self.algorithm,
            "k": self.config.k,
            "lam": self.config.lam,
            "iterations": self.config.iterations,
            "assembly": self.config.assembly or assembly_defaults()["mode"],
            "solver": resolve_solver(
                self.config.solver, getattr(self.config, "cholesky", True)
            ),
            "workers": resolve_workers(self.config.workers),
        }
        if isinstance(self.config, ImplicitConfig):
            meta["alpha"] = self.config.alpha
        if self.device is not None:
            meta["device"] = self.device.name
        return meta


def profile_training(
    dataset: str | DatasetSpec,
    device: str | DeviceSpec | None = None,
    k: int = 10,
    lam: float = 0.1,
    iterations: int = 5,
    scale: float | None = None,
    seed: int = 7,
    algorithm: str = "als",
    solver: str | None = None,
    workers: int | str | None = None,
    alpha: float = 40.0,
) -> ProfileReport:
    """Run one instrumented training and (optionally) its simulation.

    ``scale=None`` auto-shrinks the dataset spec so its non-zeros stay
    under :data:`MAX_PROFILE_NNZ`; pass ``scale=1.0`` to force the full
    published shape.  The simulation, when a device is given, uses the
    *materialized* (scaled) matrix's degree sequences, so both time
    domains in the trace describe the same problem instance.
    """
    if algorithm not in _TRAINERS:
        known = ", ".join(sorted(_TRAINERS))
        raise ValueError(f"unknown algorithm {algorithm!r}; known: {known}")
    full = dataset_by_name(dataset) if isinstance(dataset, str) else dataset
    if scale is None:
        scale = min(1.0, MAX_PROFILE_NNZ / full.nnz)
    spec = full.scaled(scale)
    ratings = generate_ratings(spec, seed=seed)
    if algorithm == "implicit":
        config: ALSConfig | ImplicitConfig = ImplicitConfig(
            k=k, lam=lam, iterations=iterations, seed=seed,
            solver=solver, workers=workers, alpha=alpha,
        )
    else:
        config = ALSConfig(
            k=k, lam=lam, iterations=iterations, seed=seed,
            solver=solver, workers=workers,
        )

    obs_metrics.reset()
    with capture() as tracer:
        # The sampler runs only for the profiled window so the
        # proc.rss/cpu gauges in the snapshot describe this training
        # run, not whatever the process did before it.
        with ResourceSampler():
            with span(
                "profile.run", cat="profile", dataset=spec.abbr, scale=scale
            ):
                model = _TRAINERS[algorithm](ratings, config)
    records = tuple(tracer.records)
    snapshot = obs_metrics.snapshot()

    device_spec = device_by_name(device) if isinstance(device, str) else device
    sim_run = sim_queue = None
    if device_spec is not None:
        from repro.solvers.portable import PortableALS

        R = CSRMatrix.from_coo(ratings.deduplicate())
        cols = CSCMatrix.from_csr(R).col_lengths()
        solver = PortableALS(device_spec)
        sim_queue = solver.context.create_queue()
        sim_run = solver.simulate(
            R.row_lengths(),
            cols,
            k=k,
            iterations=iterations,
            dataset=spec.abbr,
            queue=sim_queue,
        )
    return ProfileReport(
        spec=spec,
        scale=scale,
        algorithm=algorithm,
        config=config,
        model=model,
        records=records,
        metrics=snapshot,
        device=device_spec,
        sim_run=sim_run,
        sim_queue=sim_queue,
    )


def render_report(report: ProfileReport, top: int = 10) -> str:
    """Terminal rendering: header, hotspot table, top spans, counters."""
    spec = report.spec
    lines = [
        f"profile: {spec.name} ({spec.abbr})  m={spec.m} n={spec.n} nnz={spec.nnz}"
        f"  scale={report.scale:g}",
        f"algorithm={report.algorithm}  k={report.config.k} "
        f"lam={report.config.lam} iterations={report.config.iterations}",
        f"measured training wall-clock: {report.train_seconds:.3f} s",
    ]
    if report.model.history:
        last = report.model.history[-1]
        if hasattr(last, "train_rmse"):
            lines.append(f"final train RMSE: {last.train_rmse:.4f}")
        else:  # implicit: history tracks the confidence-weighted loss
            lines.append(f"final weighted loss: {float(last):.4f}")
    if report.sim_run is not None:
        lines.append(
            f"simulated on {report.device.name}: {report.sim_run.seconds:.3f} s "
            f"({report.sim_run.solver}, ws={report.sim_run.ws})"
        )
    lines.append("")
    lines.append(hotspot.render_hotspot_table(report.records))
    lines.append("")
    lines.append(hotspot.render_top_spans(report.records, n=top))
    counters = report.metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        lines.extend(f"  {name} = {value:g}" for name, value in counters.items())
    quantiles = report.metrics.get("quantiles", {})
    if quantiles:
        lines.append("")
        lines.append("latency percentiles (log-bucketed sketch):")
        for name in sorted(quantiles):
            q = quantiles[name]
            if not q.get("count"):
                continue
            lines.append(
                f"  {name:28s} n={q['count']:<5d} "
                f"p50={q['p50']:.6f}s p95={q['p95']:.6f}s p99={q['p99']:.6f}s"
            )
    gauges = report.metrics.get("gauges", {})
    rss = gauges.get("proc.peak_rss_bytes") or gauges.get("proc.rss_bytes")
    if rss:
        cpu = gauges.get("proc.cpu_seconds")
        line = f"peak RSS: {rss / 2**20:.1f} MiB"
        if cpu is not None:
            line += f"  cpu time: {cpu:.2f} s"
        lines.append("")
        lines.append(line)
    from repro.autotune.solver import cached_solver_decisions

    decisions = cached_solver_decisions()
    if decisions:
        lines.append("")
        lines.append("solver autotune (cached S3 verdicts):")
        lines.extend(
            f"  k={d.k:<4d} batch<={d.batch_bucket:<8d} -> {d.solver} "
            f"({d.speedup:.2f}x over the slowest)"
            for d in decisions
        )
    return "\n".join(lines)
