"""Continuous-telemetry exporters: Prometheus text and a JSONL event log.

:mod:`repro.obs.export` serializes one *finished* run (Chrome trace +
flat metrics JSON).  This module serializes the *live* registry, the way
a long-running serving process reports:

* :func:`render_prometheus` — the registry in Prometheus text exposition
  format (v0.0.4), which is what :mod:`repro.obs.endpoint` serves at
  ``/metrics``.  Counters become ``_total`` counter families, gauges map
  1:1, summary histograms expand to ``_count``/``_sum``/``_min``/
  ``_max``/``_mean`` gauge families, and quantile sketches render as
  Prometheus summaries with ``quantile="0.5|0.95|0.99"`` labels — the
  p50/p95/p99 series the serving roadmap asks for.
* :class:`EventLog` — an append-only JSONL stream of structured events
  with run and span context, the machine-readable companion to the
  terminal output (one line per event, stable key order, injectable
  clock so golden tests are exact).

Both are stdlib-only and deterministic given a deterministic registry.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from typing import IO, Sequence

from repro.obs.metrics import DEFAULT_QUANTILES, MetricsRegistry, get_registry
from repro.obs.spans import current_span

__all__ = [
    "PROM_NAMESPACE",
    "prometheus_name",
    "escape_label_value",
    "render_prometheus",
    "EventLog",
]

#: Every exported series is prefixed with this namespace, the Prometheus
#: convention for "which process family do these belong to".
PROM_NAMESPACE = "repro"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_DIGIT = re.compile(r"^[0-9]")


def prometheus_name(name: str, suffix: str = "") -> str:
    """A registry metric name as a valid Prometheus metric name.

    Dots (the registry's namespacing convention) and any other invalid
    characters become underscores: ``serve.topn.seconds`` →
    ``repro_serve_topn_seconds``.
    """
    cleaned = _INVALID_NAME_CHARS.sub("_", name)
    if _LEADING_DIGIT.match(cleaned):
        cleaned = "_" + cleaned
    return f"{PROM_NAMESPACE}_{cleaned}{suffix}"


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the text exposition format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    """Floats in repr precision; infinities in Prometheus spelling."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Family:
    """One metric family: HELP/TYPE header plus its sample lines."""

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: list[str] = []

    def add(self, value: float, labels: str = "", suffix: str = "") -> None:
        self.samples.append(
            f"{self.name}{suffix}{labels} {_format_value(value)}"
        )

    def render(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
            *self.samples,
        ]


def render_prometheus(
    registry: MetricsRegistry | dict | None = None,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> str:
    """The registry (or a snapshot dict) in Prometheus text format.

    Families are emitted in sorted output-name order so the rendering is
    stable across runs — the property the golden-file test locks in.
    When the same registry name carries both a summary histogram and a
    quantile sketch (the :func:`repro.obs.metrics.observe_latency`
    idiom), the sketch wins: it already exposes ``_count``/``_sum`` plus
    the quantile series, and emitting both would collide.
    """
    if registry is None:
        registry = get_registry()
    snap = registry.snapshot() if isinstance(registry, MetricsRegistry) else registry
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    histograms = snap.get("histograms", {})
    qsketches = snap.get("quantiles", {})

    families: dict[str, _Family] = {}

    def family(name: str, kind: str, help_text: str) -> _Family:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = _Family(name, kind, help_text)
        return fam

    for name, value in counters.items():
        fam = family(
            prometheus_name(name, "_total"), "counter",
            f"Monotonic counter {name}",
        )
        fam.add(value)
    for name, value in gauges.items():
        fam = family(prometheus_name(name), "gauge", f"Gauge {name}")
        fam.add(value)
    for name, summary in histograms.items():
        if name in qsketches:
            continue  # the quantile sketch of the same name supersedes
        base = prometheus_name(name)
        for stat in ("count", "sum", "min", "max", "mean"):
            fam = family(
                f"{base}_{stat}", "gauge",
                f"Summary {stat} of histogram {name}",
            )
            fam.add(summary.get(stat, 0.0))
    for name, summary in qsketches.items():
        base = prometheus_name(name)
        fam = family(
            base, "summary",
            f"Log-bucketed quantile sketch {name}",
        )
        for q in quantiles:
            key = f"p{round(q * 100):d}"
            fam.add(
                summary.get(key, 0.0),
                labels=f'{{quantile="{escape_label_value(f"{q:g}")}"}}',
            )
        fam.add(summary.get("count", 0), suffix="_count")
        fam.add(summary.get("sum", 0.0), suffix="_sum")

    lines: list[str] = []
    for name in sorted(families):
        lines.extend(families[name].render())
    return "\n".join(lines) + ("\n" if lines else "")


class EventLog:
    """Append-only JSONL log of structured telemetry events.

    Each line is one JSON object with a fixed envelope::

        {"event": ..., "run": ..., "seq": N, "ts": ..., "span": ...?, ...}

    ``run`` identifies the emitting process/run, ``seq`` is a per-log
    monotone sequence number, ``ts`` comes from the injectable clock
    (``time.time`` by default), and ``span`` carries the innermost open
    span's ``{"name", "id"}`` when instrumentation is on — the context
    that lets a log line be joined back to a trace.  Keys are sorted so
    the rendering is byte-stable for golden tests.
    """

    def __init__(
        self,
        sink: str | os.PathLike | IO[str],
        run_id: str | None = None,
        clock=None,
    ):
        if hasattr(sink, "write"):
            self._fh: IO[str] = sink  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(sink, "a", encoding="utf-8")
            self._owns = True
        self.run_id = run_id if run_id is not None else f"run-{os.getpid()}"
        self._clock = clock or time.time
        self._lock = threading.Lock()
        self._seq = 0

    def emit(self, event: str, **fields: object) -> dict:
        """Write one event line; returns the record that was written."""
        record: dict[str, object] = {
            "event": event,
            "run": self.run_id,
            "ts": round(float(self._clock()), 6),
        }
        active = current_span()
        if active is not None:
            record["span"] = {"name": active.name, "id": active.span_id}
        record.update(fields)
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._fh.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._fh.flush()
        return record

    def emit_snapshot(
        self, registry: MetricsRegistry | None = None, event: str = "metrics"
    ) -> dict:
        """Emit the full registry snapshot as one event."""
        registry = registry or get_registry()
        return self.emit(event, metrics=registry.snapshot())

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
