"""``python -m repro`` — alias for the repro-als CLI."""

from repro.cli import _entry

if __name__ == "__main__":
    raise SystemExit(_entry())
