"""Declarative experiment-grid harness over the sqlite results store.

The PyExperimenter-shaped workflow the ROADMAP asks for: a config
declares the grid (benchmark × parameter axes), :func:`expand_config`
turns it into cells, :meth:`~repro.bench.store.ResultsStore.ensure_cells`
lands them in the sqlite table, and :func:`run_grid` pulls open cells —
claimed atomically, so interrupted or parallel runs resume for free —
executes the registered benchmark function for each, and writes the
stamped record (host fingerprint + resource snapshot via
:mod:`repro.bench.record`) back onto the row.

Benchmark functions register through :func:`register`; the bundled
workloads (:mod:`repro.bench.workloads`) cover the ``benchmarks/``
scripts, whose ``--quick``/``--check`` entry points are thin wrappers
over :func:`run_single_cell`.  Exporters render the store to
``BENCH_*.json`` trajectory records (gate-compatible, ``gate_metric``
stamped from :data:`repro.obs.gate.GATE_METRICS`) and to the
``EXPERIMENTS.md``-style markdown tables.

Config format (JSON file, or a builtin name from :data:`BUILTIN_GRIDS`)::

    {
      "name": "ci-quick",
      "experiments": [
        {"benchmark": "assembly",
         "params": {"k": [32, 64]},          # axes: cartesian product
         "fixed": {"quick": true}}           # constants merged into every cell
      ]
    }

CLI: ``repro-als grid run|status|export|reset-errors`` — see
``docs/experiments.md``.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.bench.store import Cell, ResultsStore, canonical_params

__all__ = [
    "BUILTIN_GRIDS",
    "GridError",
    "Workload",
    "register",
    "get_workload",
    "workload_names",
    "load_config",
    "expand_config",
    "ensure_grid",
    "run_grid",
    "run_single_cell",
    "export_records",
    "export_markdown",
    "render_status",
]


class GridError(RuntimeError):
    """A grid-level failure (bad config, unknown benchmark, ...)."""


@dataclass(frozen=True)
class Workload:
    """One registered grid benchmark function.

    ``run(**params)`` returns the benchmark record (or a list of
    records); ``check(record, params)``, when present, returns a list of
    failure strings — a non-empty list marks the cell ``error`` while
    still landing the record, so a regression is visible *and* kept.
    """

    name: str
    run: Callable[..., dict | list]
    check: Callable[[dict | list, dict], list[str]] | None = None


_REGISTRY: dict[str, Workload] = {}
_WORKLOADS_LOADED = False


def register(
    name: str,
    run: Callable[..., dict | list] | None = None,
    *,
    check: Callable[[dict | list, dict], list[str]] | None = None,
):
    """Register a grid benchmark function (usable as a decorator)."""
    def _register(fn):
        _REGISTRY[name] = Workload(name=name, run=fn, check=check)
        return fn

    return _register(run) if run is not None else _register


def _ensure_workloads() -> None:
    """Import the bundled workloads exactly once (self-registering)."""
    global _WORKLOADS_LOADED
    if not _WORKLOADS_LOADED:
        _WORKLOADS_LOADED = True
        import repro.bench.workloads  # noqa: F401  (registers on import)


def get_workload(name: str) -> Workload:
    _ensure_workloads()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise GridError(
            f"unknown grid benchmark {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        ) from None


def workload_names() -> list[str]:
    _ensure_workloads()
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# configs
# ----------------------------------------------------------------------

#: Builtin grid configs, runnable by name.  ``ci-quick`` is the single
#: config CI's perf-smoke runs instead of seven bespoke steps.
BUILTIN_GRIDS: dict[str, dict] = {
    "ci-quick": {
        "name": "ci-quick",
        "experiments": [
            {"benchmark": name, "fixed": {"quick": True}}
            for name in (
                "assembly", "solve", "topn", "implicit",
                "outofcore", "convergence", "serving",
            )
        ],
    },
    "quick-core": {
        "name": "quick-core",
        "experiments": [
            {"benchmark": name, "fixed": {"quick": True}}
            for name in ("assembly", "solve", "topn", "implicit", "serving")
        ],
    },
}


def load_config(source: str | os.PathLike | dict) -> dict:
    """A grid config from a dict, a builtin name, or a JSON file path."""
    if isinstance(source, dict):
        config = source
    elif str(source) in BUILTIN_GRIDS:
        config = BUILTIN_GRIDS[str(source)]
    else:
        path = Path(source)
        if not path.exists():
            raise GridError(
                f"no grid config at {path} and no builtin named "
                f"{path.name!r} (builtins: {', '.join(BUILTIN_GRIDS)})"
            )
        try:
            config = json.loads(path.read_text())
        except ValueError as exc:
            raise GridError(f"unparseable grid config {path}: {exc}") from exc
    if not isinstance(config, dict) or not config.get("name"):
        raise GridError("grid config needs a top-level 'name'")
    if not isinstance(config.get("experiments"), list):
        raise GridError("grid config needs an 'experiments' list")
    return config


def expand_config(config: dict) -> list[tuple[str, dict]]:
    """Expand a config into ``(benchmark, params)`` cells.

    Each experiment entry contributes the cartesian product of its
    ``params`` axes (name → list of values), merged over its ``fixed``
    constants.  Cell identity is the canonical JSON of the merged
    params, so re-expanding the same config maps onto the same rows.
    """
    cells: list[tuple[str, dict]] = []
    seen: set[str] = set()
    for entry in config["experiments"]:
        if not isinstance(entry, dict) or "benchmark" not in entry:
            raise GridError(f"experiment entry needs a 'benchmark': {entry!r}")
        benchmark = str(entry["benchmark"])
        axes = entry.get("params", {})
        fixed = entry.get("fixed", {})
        if not isinstance(axes, dict) or not isinstance(fixed, dict):
            raise GridError(
                f"'params' must map name -> list and 'fixed' name -> value "
                f"in {entry!r}"
            )
        for name, values in axes.items():
            if not isinstance(values, list):
                raise GridError(
                    f"axis {name!r} of {benchmark!r} must be a list "
                    f"(got {values!r}); use 'fixed' for constants"
                )
        names = list(axes)
        for combo in itertools.product(*(axes[n] for n in names)) if names else [()]:
            params = {**fixed, **dict(zip(names, combo))}
            key = f"{benchmark}|{canonical_params(params)}"
            if key not in seen:  # duplicate axes entries collapse
                seen.add(key)
                cells.append((benchmark, params))
    if not cells:
        raise GridError(f"grid {config['name']!r} expands to zero cells")
    return cells


def ensure_grid(store: ResultsStore, config: dict) -> int:
    """Expand the config into the store; returns newly created cells."""
    cells = expand_config(config)
    for benchmark, _ in cells:
        get_workload(benchmark)  # fail fast on unknown benchmarks
    return store.ensure_cells(config["name"], cells)


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------

def _execute_cell(store: ResultsStore, cell: Cell, log: Callable) -> bool:
    """Run one claimed cell to ``done``/``error``; True when done."""
    from repro.bench.record import stamp

    workload = get_workload(cell.benchmark)
    log(f"[{cell.grid}] cell {cell.id} {cell.benchmark} "
        f"{canonical_params(cell.params)}")
    t0 = time.perf_counter()
    try:
        payload = workload.run(**cell.params)
    except Exception as exc:  # noqa: BLE001 — any cell failure lands in the row
        store.fail(
            cell.id,
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=8)}",
        )
        log(f"  -> ERROR {type(exc).__name__}: {exc}")
        return False
    if isinstance(payload, list):
        stamped: dict | list = [stamp(rec) for rec in payload]
    else:
        stamped = stamp(payload)
    failures: list[str] = []
    if workload.check is not None and cell.params.get("check", True):
        failures = list(workload.check(payload, cell.params))
    if failures:
        store.fail(cell.id, "; ".join(failures), record=stamped)
        log(f"  -> CHECK FAILED ({time.perf_counter() - t0:.1f} s): "
            + "; ".join(failures))
        return False
    store.finish(cell.id, stamped)
    log(f"  -> done ({time.perf_counter() - t0:.1f} s)")
    return True


def run_grid(
    store: ResultsStore,
    config: dict,
    max_cells: int | None = None,
    log: Callable[[str], None] = lambda msg: print(msg, flush=True),
) -> dict[str, int]:
    """Pull-and-run open cells until the grid drains (or ``max_cells``).

    Re-invoking after a crash or SIGKILL resumes: ``ensure_cells`` is
    idempotent, stale ``running`` claims from dead same-host processes
    are reopened, and only cells still ``open`` execute.  Returns the
    final status counts for this grid.
    """
    ensure_grid(store, config)
    reclaimed = store.reclaim_stale()
    if reclaimed:
        log(f"[{config['name']}] reclaimed {reclaimed} stale running cell(s)")
    ran = 0
    while max_cells is None or ran < max_cells:
        cell = store.claim_next(config["name"])
        if cell is None:
            break
        _execute_cell(store, cell, log)
        ran += 1
    counts = store.status_counts(config["name"])
    log(f"[{config['name']}] ran {ran} cell(s); " + render_status(counts))
    return counts


def run_single_cell(benchmark: str, params: dict) -> dict | list:
    """One cell through the full grid machinery, on a throwaway store.

    This is what the standalone ``benchmarks/bench_*.py`` entry points
    call: the same claim → run → stamp → land path as a real grid, with
    an in-memory store.  Returns the stamped record; raises
    :class:`GridError` when the cell errored.
    """
    with ResultsStore(":memory:") as store:
        config = {
            "name": "single",
            "experiments": [{"benchmark": benchmark, "fixed": params}],
        }
        run_grid(store, config, log=lambda msg: None)
        (cell,) = store.cells("single")
        if cell.status != "done":
            raise GridError(
                f"cell {benchmark} {canonical_params(params)} failed: "
                f"{cell.error}"
            )
        assert cell.record is not None
        return cell.record


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------

def _with_gate_metric(record: dict) -> dict:
    """The record with ``gate_metric`` stamped (gate-compatible export)."""
    from repro.obs.gate import GATE_METRICS

    out = {k: v for k, v in record.items() if k != "_file"}
    if "gate_metric" not in out:
        metric = GATE_METRICS.get(str(out.get("benchmark", "")))
        if metric:
            out["gate_metric"] = metric
    return out


def export_records(
    store: ResultsStore,
    out_dir: str | os.PathLike,
    grid: str | None = None,
) -> list[Path]:
    """Render done cells to ``BENCH_grid_<benchmark>.json`` trajectory files.

    One file per benchmark name, each holding the list-of-records format
    :func:`repro.obs.gate.load_trajectory` understands, every record
    stamped with its ``gate_metric`` so ``repro-als perf-gate`` can
    judge the export directly against the committed BENCH trajectory.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    by_name: dict[str, list[dict]] = {}
    for record in store.records(grid):
        name = str(record.get("benchmark", "unnamed"))
        by_name.setdefault(name, []).append(_with_gate_metric(record))
    written: list[Path] = []
    for name in sorted(by_name):
        safe = "".join(c if c.isalnum() else "_" for c in name)
        path = out_dir / f"BENCH_grid_{safe}.json"
        path.write_text(json.dumps(by_name[name], indent=2) + "\n")
        written.append(path)
    return written


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def export_markdown(store: ResultsStore, grid: str | None = None) -> str:
    """EXPERIMENTS.md-style tables: one per benchmark, one row per cell."""
    from repro.obs.gate import extract_metric, gate_metric_for

    cells = [c for c in store.cells(grid) if c.status in ("done", "error")]
    by_name: dict[str, list[Cell]] = {}
    for cell in cells:
        by_name.setdefault(cell.benchmark, []).append(cell)
    lines: list[str] = ["# Experiment grid results", ""]
    if grid:
        lines[0] += f" — `{grid}`"
    if not by_name:
        lines.append("_no completed cells_")
        return "\n".join(lines) + "\n"
    for name in sorted(by_name):
        group = by_name[name]
        param_keys = sorted({k for c in group for k in c.params})
        lines.append(f"## {name}")
        lines.append("")
        header = param_keys + ["status", "gate metric", "value"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for cell in group:
            first = cell.record[0] if isinstance(cell.record, list) else cell.record
            metric = gate_metric_for(first) if first else None
            value = extract_metric(first, metric) if first and metric else None
            row = [_fmt(cell.params.get(k, "")) for k in param_keys]
            row += [
                cell.status,
                metric or "-",
                _fmt(value) if value is not None else "-",
            ]
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    return "\n".join(lines) + "\n"


def render_status(counts: dict[str, int]) -> str:
    total = sum(counts.values())
    return (
        f"{total} cell(s): {counts.get('done', 0)} done, "
        f"{counts.get('open', 0)} open, {counts.get('running', 0)} running, "
        f"{counts.get('error', 0)} error"
    )
