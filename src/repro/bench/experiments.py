"""Experiment runners: one per table/figure of the paper's evaluation.

Every runner returns a structured result object with the same rows/series
the paper reports, and a ``render()`` string for terminal output.  The
``benchmarks/`` tree and the CLI both call through this module, so the
numbers recorded in EXPERIMENTS.md are regenerated from one code path.

Paper configuration throughout: k = 10, λ = 0.1, 5 iterations, thread
configuration 8192 × 32 (§IV-B, §V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.search import WS_CANDIDATES
from repro.bench.report import format_table, write_metrics_json
from repro.obs import metrics as obs_metrics
from repro.obs.export import metrics_payload
from repro.obs.spans import capture, span
from repro.clsim.costmodel import CostModel
from repro.clsim.device import (
    ALL_DEVICES,
    INTEL_XEON_E5_2670_X2,
    NVIDIA_TESLA_K20C,
    DeviceSpec,
)
from repro.datasets.catalog import TABLE_I, DatasetSpec
from repro.datasets.synthetic import degree_sequences
from repro.kernels.steps import FIG8_STAGES, StepProfile, profile_steps
from repro.kernels.variants import FIG6_BARS, recommended_variant
from repro.solvers.baseline_sac15 import Sac15Baseline
from repro.solvers.cumf import CuMF
from repro.solvers.portable import PortableALS

__all__ = [
    "K",
    "WS",
    "ITERATIONS",
    "run_table1",
    "run_fig1",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_ksweep",
    "run_quality",
    "run_reorder",
    "run_with_metrics",
    "EXPERIMENTS",
]

K = 10
WS = 32
ITERATIONS = 5


_SEQ_CACHE: dict[int, dict[str, tuple[np.ndarray, np.ndarray]]] = {}


def _sequences(seed: int = 7) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    # YahooMusic R1 alone has ~2M rows; generate each seed's sequences
    # once per process (treated as read-only by every runner).
    if seed not in _SEQ_CACHE:
        _SEQ_CACHE[seed] = {
            spec.abbr: degree_sequences(spec, seed=seed) for spec in TABLE_I
        }
    return _SEQ_CACHE[seed]


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Result:
    rows: list[tuple[str, str, int, int, int, int, int]]

    def render(self) -> str:
        return format_table(
            ["Abbr", "Dataset", "m", "n", "Nz (spec)", "Nz (rows)", "Nz (cols)"],
            self.rows,
            title="Table I — datasets (spec vs generated shape)",
        )


def run_table1(seed: int = 7) -> Table1Result:
    """Regenerate Table I and verify the generators hit the spec shape."""
    rows = []
    seqs = _sequences(seed)
    for spec in TABLE_I:
        r, c = seqs[spec.abbr]
        rows.append(
            (spec.abbr, spec.name, spec.m, spec.n, spec.nnz, int(r.sum()), int(c.sum()))
        )
    return Table1Result(rows)


# ----------------------------------------------------------------------
# Fig. 1 — motivation: SAC15 OpenMP (CPU) vs SAC15 CUDA (K20c)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig1Result:
    openmp_s: dict[str, float]
    cuda_s: dict[str, float]

    @property
    def ratios(self) -> dict[str, float]:
        return {d: self.cuda_s[d] / self.openmp_s[d] for d in self.openmp_s}

    @property
    def mean_ratio(self) -> float:
        return float(np.mean(list(self.ratios.values())))

    def render(self) -> str:
        rows = [
            (d, self.openmp_s[d], self.cuda_s[d], self.ratios[d])
            for d in self.openmp_s
        ]
        table = format_table(
            ["Dataset", "OpenMP 16-core [s]", "CUDA K20c [s]", "CUDA/OpenMP"],
            rows,
            title="Fig. 1 — baseline ALS: CPU vs GPU (5 iters, k=10)",
        )
        return table + (
            f"\nmean ratio = {self.mean_ratio:.2f}x "
            f"(paper: ALS baseline runs on average 8.4x faster on the CPU)"
        )


def run_fig1(seed: int = 7) -> Fig1Result:
    seqs = _sequences(seed)
    cpu = Sac15Baseline(INTEL_XEON_E5_2670_X2)
    gpu = Sac15Baseline(NVIDIA_TESLA_K20C)
    openmp, cuda = {}, {}
    for spec in TABLE_I:
        rows, cols = seqs[spec.abbr]
        openmp[spec.abbr] = cpu.simulate(rows, cols, K, ITERATIONS, spec.abbr).seconds
        cuda[spec.abbr] = gpu.simulate(rows, cols, K, ITERATIONS, spec.abbr).seconds
    return Fig1Result(openmp, cuda)


# ----------------------------------------------------------------------
# Fig. 6 — optimization study per device per dataset
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Result:
    # times[dataset][device kind][bar label] = seconds
    times: dict[str, dict[str, dict[str, float]]]

    def render(self) -> str:
        parts = []
        for abbr, per_dev in self.times.items():
            rows = []
            for label, _ in FIG6_BARS:
                rows.append(
                    (label,)
                    + tuple(per_dev[d.kind.value][label] for d in ALL_DEVICES)
                )
            parts.append(
                format_table(
                    ["variant"] + [d.kind.value.upper() for d in ALL_DEVICES],
                    rows,
                    title=f"Fig. 6 ({abbr}) — execution time [s], 5 iters, ws=32, k=10",
                )
            )
        return "\n\n".join(parts)


def run_fig6(seed: int = 7) -> Fig6Result:
    seqs = _sequences(seed)
    times: dict[str, dict[str, dict[str, float]]] = {}
    for spec in TABLE_I:
        rows, cols = seqs[spec.abbr]
        times[spec.abbr] = {}
        for device in ALL_DEVICES:
            cm = CostModel(device)
            per_bar = {}
            for label, variant in FIG6_BARS:
                per_bar[label] = cm.training_time(
                    rows, cols, K, WS, variant.flags, ITERATIONS
                )
            times[spec.abbr][device.kind.value] = per_bar
    return Fig6Result(times)


# ----------------------------------------------------------------------
# Fig. 7 — speedup vs SAC15 (CPU, GPU) and vs cuMF/HPDC16 (GPU)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig7Result:
    vs_sac15_cpu: dict[str, float]
    vs_sac15_gpu: dict[str, float]
    vs_hpdc16_gpu: dict[str, float]

    def render(self) -> str:
        rows = [
            (
                d,
                self.vs_sac15_cpu[d],
                self.vs_sac15_gpu[d],
                self.vs_hpdc16_gpu[d],
            )
            for d in self.vs_sac15_cpu
        ]
        table = format_table(
            ["Dataset", "vs SAC15 on E5-2670", "vs SAC15 on K20c", "vs HPDC16 on K20c"],
            rows,
            title="Fig. 7 — speedup of our solver (x)",
            float_fmt="{:.2f}",
        )
        means = (
            float(np.mean(list(self.vs_sac15_cpu.values()))),
            float(np.mean(list(self.vs_sac15_gpu.values()))),
            float(np.mean(list(self.vs_hpdc16_gpu.values()))),
        )
        return table + (
            f"\nmeans = {means[0]:.2f}x / {means[1]:.2f}x / {means[2]:.2f}x"
            f"  (paper: 5.5x / 21.2x / 2.2-6.8x)"
        )


def run_fig7(seed: int = 7) -> Fig7Result:
    seqs = _sequences(seed)
    ours_cpu = PortableALS(INTEL_XEON_E5_2670_X2, ws=WS)
    ours_gpu = PortableALS(NVIDIA_TESLA_K20C, ws=WS)
    sac_cpu = Sac15Baseline(INTEL_XEON_E5_2670_X2)
    sac_gpu = Sac15Baseline(NVIDIA_TESLA_K20C)
    cumf = CuMF()
    a, b, c = {}, {}, {}
    for spec in TABLE_I:
        rows, cols = seqs[spec.abbr]
        args = (rows, cols, K, ITERATIONS, spec.abbr)
        ours_cpu_s = ours_cpu.simulate(*args).seconds
        ours_gpu_s = ours_gpu.simulate(*args).seconds
        a[spec.abbr] = sac_cpu.simulate(*args).seconds / ours_cpu_s
        b[spec.abbr] = sac_gpu.simulate(*args).seconds / ours_gpu_s
        c[spec.abbr] = cumf.simulate(*args).seconds / ours_gpu_s
    return Fig7Result(a, b, c)


# ----------------------------------------------------------------------
# Fig. 8 — step shares along the tuning pipeline (Netflix, K20c)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig8Result:
    profiles: list[StepProfile]

    def render(self) -> str:
        rows = [
            (p.label,)
            + tuple(f"{share:.1%}" for share in p.shares)
            + (p.total_seconds,)
            for p in self.profiles
        ]
        return format_table(
            ["stage", "S1", "S2", "S3", "total [s]"],
            rows,
            title="Fig. 8 — hotspot-guided tuning (Netflix on K20c, 5 iters)",
            float_fmt="{:.2f}",
        )


def run_fig8(
    spec: DatasetSpec | None = None,
    device: DeviceSpec = NVIDIA_TESLA_K20C,
    seed: int = 7,
) -> Fig8Result:
    from repro.datasets.catalog import NETFLIX

    spec = spec or NETFLIX
    if spec.abbr in {s.abbr for s in TABLE_I}:
        rows, cols = _sequences(seed)[spec.abbr]
    else:
        rows, cols = degree_sequences(spec, seed=seed)
    cm = CostModel(device)
    profiles = [
        profile_steps(cm, rows, cols, K, WS, flags, label, ITERATIONS)
        for label, flags in FIG8_STAGES
    ]
    return Fig8Result(profiles)


# ----------------------------------------------------------------------
# Fig. 9 — cross-architecture comparison (best variant per device)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig9Result:
    seconds: dict[str, dict[str, float]]  # dataset → device kind → s

    def slowdowns(self) -> dict[str, dict[str, float]]:
        out = {}
        for abbr, per_dev in self.seconds.items():
            fastest = min(per_dev.values())
            out[abbr] = {dev: s / fastest for dev, s in per_dev.items()}
        return out

    def render(self) -> str:
        slow = self.slowdowns()
        rows = []
        for abbr, per_dev in self.seconds.items():
            rows.append(
                (abbr,)
                + tuple(per_dev[d.kind.value] for d in ALL_DEVICES)
                + tuple(slow[abbr][d.kind.value] for d in ALL_DEVICES)
            )
        table = format_table(
            ["Dataset"]
            + [f"{d.kind.value} [s]" for d in ALL_DEVICES]
            + [f"{d.kind.value} slow" for d in ALL_DEVICES],
            rows,
            title="Fig. 9 — our solver across architectures (best variant each)",
            float_fmt="{:.2f}",
        )
        gpu_mean = float(
            np.mean([slow[a]["gpu"] for a in self.seconds])
        )
        mic_mean = float(np.mean([slow[a]["mic"] for a in self.seconds]))
        return table + (
            f"\nmean slowdown vs CPU: GPU {gpu_mean:.2f}x, MIC {mic_mean:.2f}x "
            f"(paper: 1.5x and 4.1x; GPU wins on YMR1)"
        )


def run_fig9(seed: int = 7) -> Fig9Result:
    seqs = _sequences(seed)
    seconds: dict[str, dict[str, float]] = {}
    for spec in TABLE_I:
        rows, cols = seqs[spec.abbr]
        seconds[spec.abbr] = {}
        for device in ALL_DEVICES:
            solver = PortableALS(device, ws=WS)
            seconds[spec.abbr][device.kind.value] = solver.simulate(
                rows, cols, K, ITERATIONS, spec.abbr
            ).seconds
    return Fig9Result(seconds)


# ----------------------------------------------------------------------
# Fig. 10 — sensitivity to the work-group size
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig10Result:
    # times[dataset][device kind][ws] = seconds
    times: dict[str, dict[str, dict[int, float]]]

    def optima(self) -> dict[str, dict[str, int]]:
        return {
            abbr: {
                dev: min(per_ws, key=per_ws.get) for dev, per_ws in per_dev.items()
            }
            for abbr, per_dev in self.times.items()
        }

    def render(self) -> str:
        parts = []
        for abbr, per_dev in self.times.items():
            rows = [
                (d.kind.value.upper(),)
                + tuple(per_dev[d.kind.value][ws] for ws in WS_CANDIDATES)
                for d in ALL_DEVICES
            ]
            parts.append(
                format_table(
                    ["device"] + [f"ws={ws}" for ws in WS_CANDIDATES],
                    rows,
                    title=f"Fig. 10 ({abbr}) — execution time [s] over block size",
                    float_fmt="{:.2f}",
                )
            )
        opt = self.optima()
        summary = "; ".join(
            f"{abbr}: " + ", ".join(f"{d}→{w}" for d, w in per.items())
            for abbr, per in opt.items()
        )
        return "\n\n".join(parts) + "\noptimal ws: " + summary


def run_fig10(seed: int = 7) -> Fig10Result:
    seqs = _sequences(seed)
    times: dict[str, dict[str, dict[int, float]]] = {}
    for spec in TABLE_I:
        rows, cols = seqs[spec.abbr]
        times[spec.abbr] = {}
        for device in ALL_DEVICES:
            # Per-device recommended variant, as the Fig. 10 caption states.
            flags = recommended_variant(device).flags
            cm = CostModel(device)
            times[spec.abbr][device.kind.value] = {
                ws: cm.training_time(rows, cols, K, ws, flags, ITERATIONS)
                for ws in WS_CANDIDATES
            }
    return Fig10Result(times)


# ----------------------------------------------------------------------
# Extension: sensitivity to the latent factor k (§V-A's discussion)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KSweepResult:
    """Ours vs cuMF over k — the tuned-for-k=100 story, quantified."""

    ks: tuple[int, ...]
    ours_s: dict[int, float]
    cumf_s: dict[int, float]

    def speedups(self) -> dict[int, float]:
        return {k: self.cumf_s[k] / self.ours_s[k] for k in self.ks}

    def render(self) -> str:
        speed = self.speedups()
        rows = [
            (k, self.ours_s[k], self.cumf_s[k], speed[k]) for k in self.ks
        ]
        table = format_table(
            ["k", "ours on K20c [s]", "cuMF [s]", "ours speedup"],
            rows,
            title="Extension — latent-factor sweep on Netflix/K20c (5 iters)",
            float_fmt="{:.2f}",
        )
        return table + (
            "\n(§V-A: cuMF is specially tuned for k=100; its disadvantage "
            "should shrink as k grows)"
        )


def run_ksweep(
    ks: tuple[int, ...] = (10, 20, 50, 100),
    seed: int = 7,
) -> KSweepResult:
    from repro.datasets.catalog import NETFLIX

    rows, cols = _sequences(seed)[NETFLIX.abbr]
    ours = PortableALS(NVIDIA_TESLA_K20C, ws=WS)
    cumf = CuMF()
    ours_s, cumf_s = {}, {}
    for k in ks:
        ours_s[k] = ours.simulate(rows, cols, k, ITERATIONS, "NTFX").seconds
        cumf_s[k] = cumf.simulate(rows, cols, k, ITERATIONS, "NTFX").seconds
    return KSweepResult(tuple(ks), ours_s, cumf_s)


# ----------------------------------------------------------------------
# Extension: quality vs simulated time (functional + timing combined)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QualityResult:
    """Held-out RMSE after each iteration, with per-device time axes."""

    rmse_per_iteration: tuple[float, ...]
    iteration_seconds: dict[str, float]  # device kind → s per iteration

    def curve(self, device_kind: str) -> list[tuple[float, float]]:
        dt = self.iteration_seconds[device_kind]
        return [
            ((i + 1) * dt, r) for i, r in enumerate(self.rmse_per_iteration)
        ]

    def time_to(self, device_kind: str, target_rmse: float) -> float | None:
        for t, r in self.curve(device_kind):
            if r <= target_rmse:
                return t
        return None

    def render(self) -> str:
        rows = []
        for i, r in enumerate(self.rmse_per_iteration, 1):
            rows.append(
                (i, r)
                + tuple(
                    i * self.iteration_seconds[d.kind.value] for d in ALL_DEVICES
                )
            )
        return format_table(
            ["iter", "held-out RMSE"]
            + [f"{d.kind.value} time [s]" for d in ALL_DEVICES],
            rows,
            title="Extension — held-out RMSE vs simulated time (planted rank-8)",
            float_fmt="{:.4f}",
        )


def run_quality(iterations: int = 12, seed: int = 7) -> QualityResult:
    from repro.core.als import ALSConfig, train_als
    from repro.datasets.planted import planted_problem
    from repro.datasets.splits import train_test_split
    from repro.kernels.variants import recommended_variant
    from repro.sparse.csc import CSCMatrix
    from repro.sparse.csr import CSRMatrix

    # A planted low-rank problem: the RMSE axis is meaningful (it decays
    # toward the 0.1 noise floor), while the time axis comes from the
    # device cost models on the very same matrix shape.
    problem = planted_problem(
        m=1500, n=1000, rank=8, density=0.1, noise_std=0.1, seed=seed
    )
    split = train_test_split(problem.ratings, test_fraction=0.2, seed=seed)
    model = train_als(
        split.train,
        ALSConfig(k=8, lam=0.05, iterations=iterations),
        validation=split.test,
    )
    curve = tuple(s.validation_rmse for s in model.history)

    R = CSRMatrix.from_coo(split.train)
    cols = CSCMatrix.from_csr(R).col_lengths()
    per_device = {}
    for device in ALL_DEVICES:
        cm = CostModel(device)
        flags = recommended_variant(device).flags
        per_device[device.kind.value] = (
            cm.half_sweep(R.row_lengths(), 8, WS, flags).seconds
            + cm.half_sweep(cols, 8, WS, flags).seconds
        )
    return QualityResult(curve, per_device)


# ----------------------------------------------------------------------
# Extension: row reordering as a divergence mitigation for the baseline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReorderResult:
    """Flat-baseline times with original vs degree-sorted row order."""

    original_s: dict[str, float]  # dataset → seconds (GPU flat)
    sorted_s: dict[str, float]
    efficiency_before: dict[str, float]
    efficiency_after: dict[str, float]

    def gains(self) -> dict[str, float]:
        return {d: self.original_s[d] / self.sorted_s[d] for d in self.original_s}

    def render(self) -> str:
        gains = self.gains()
        rows = [
            (
                d,
                self.original_s[d],
                self.sorted_s[d],
                gains[d],
                f"{self.efficiency_before[d]:.0%}",
                f"{self.efficiency_after[d]:.0%}",
            )
            for d in self.original_s
        ]
        return format_table(
            ["Dataset", "flat [s]", "sorted flat [s]", "gain", "lane eff before", "after"],
            rows,
            title="Extension — degree-sorting the rows of the flat CUDA baseline",
            float_fmt="{:.2f}",
        ) + (
            "\n(sorting removes warp-window divergence but not the baseline's"
            "\n scattered accesses or spills — thread batching still wins)"
        )


def run_reorder(seed: int = 7) -> ReorderResult:
    from repro.clsim.divergence import analyze_divergence, sort_rows_by_length
    from repro.solvers.baseline_sac15 import Sac15Baseline

    gpu = Sac15Baseline(NVIDIA_TESLA_K20C)
    seqs = _sequences(seed)
    orig, sort, eff_b, eff_a = {}, {}, {}, {}
    for spec in TABLE_I:
        rows, cols = seqs[spec.abbr]
        rows_sorted = sort_rows_by_length(rows)
        cols_sorted = sort_rows_by_length(cols)
        orig[spec.abbr] = gpu.simulate(rows, cols, K, ITERATIONS, spec.abbr).seconds
        sort[spec.abbr] = gpu.simulate(
            rows_sorted, cols_sorted, K, ITERATIONS, spec.abbr
        ).seconds
        eff_b[spec.abbr] = analyze_divergence(rows, NVIDIA_TESLA_K20C).efficiency
        eff_a[spec.abbr] = analyze_divergence(
            rows_sorted, NVIDIA_TESLA_K20C
        ).efficiency
    return ReorderResult(orig, sort, eff_b, eff_a)


def run_with_metrics(
    name: str, metrics_path: str | None = None
) -> tuple[object, dict]:
    """Run one experiment instrumented; return ``(result, payload)``.

    The payload carries the run's wall-clock, counters and per-span
    aggregates; with ``metrics_path`` it is also written as JSON — the
    machine-readable record a perf trajectory (``BENCH_*.json``) is
    accumulated from.  Experiments that train real models (``quality``)
    get the full S1/S2/S3 span detail; pure cost-model experiments
    record their wall-clock and whatever the simulator touches.
    """
    runner = EXPERIMENTS.get(name)
    if runner is None:
        raise KeyError(f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}")
    obs_metrics.reset()
    with capture() as tracer:
        with span(f"experiment.{name}", cat="bench"):
            result = runner()
    records = tuple(tracer.records)
    wall = sum(r.duration for r in records if r.name == f"experiment.{name}")
    payload = metrics_payload(
        obs_metrics.get_registry(),
        records,
        meta={"experiment": name, "wall_seconds": wall},
    )
    if metrics_path is not None:
        write_metrics_json(metrics_path, payload)
    return result, payload


#: Registry used by the CLI and the benchmark tree.
EXPERIMENTS = {
    "table1": run_table1,
    "fig1": run_fig1,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "ksweep": run_ksweep,
    "quality": run_quality,
    "reorder": run_reorder,
}
