"""Grid workload: implicit-feedback half-sweep, binned vs scatter.

The benchmark body behind ``benchmarks/bench_implicit.py``.
``BENCH_5.json`` records the committed numbers; the gate metric is
``speedup``.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.bench import grid
from repro.core.implicit import implicit_half_sweep
from repro.datasets.catalog import MOVIELENS1M
from repro.datasets.synthetic import generate_ratings
from repro.linalg.normal_equations import DEFAULT_TILE_NNZ, tile_bytes_bound
from repro.obs import metrics as obs_metrics
from repro.obs.spans import capture
from repro.sparse.csr import CSRMatrix

__all__ = ["resolve", "run_benchmark", "run_cell", "check_record"]

ALPHA = 40.0
LAM = 0.1


def _time_variant(R, Y, assembly, tile_nnz, repeats):
    """Min-of-N wall time, the S1/S2/S3 span split, gauges and the result."""
    best = float("inf")
    split = {}
    result = None
    for _ in range(repeats):
        obs_metrics.reset()
        with capture() as tracer:
            t0 = perf_counter()
            X = implicit_half_sweep(
                R, Y, LAM, ALPHA,
                assembly=assembly, tile_nnz=tile_nnz, solver="lapack",
            )
            elapsed = perf_counter() - t0
        result = X
        if elapsed < best:
            best = elapsed
            stage_seconds = {"S1": 0.0, "S2": 0.0, "S3": 0.0}
            for rec in tracer.records:
                stage = rec.attrs.get("stage")
                if stage in stage_seconds:
                    stage_seconds[stage] += rec.duration
            split = {
                "total_seconds": elapsed,
                "s1_seconds": stage_seconds["S1"],
                "s2_seconds": stage_seconds["S2"],
                "s3_seconds": stage_seconds["S3"],
                "gauges": obs_metrics.snapshot()["gauges"],
            }
    return split, result


def run_benchmark(
    scale: float, k: int, repeats: int, scatter_repeats: int,
    tile_nnz: int, seed: int,
) -> dict:
    spec = MOVIELENS1M.scaled(scale)
    coo = generate_ratings(spec, seed=seed)
    R = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(seed)
    Y = rng.standard_normal((R.ncols, k))
    # Warm the derived-structure caches (a training run reuses one matrix
    # across every sweep) so steady-state cost is what gets compared.
    R.expanded_rows()
    R.degree_bins()

    print(
        f"implicit half-sweep benchmark: {spec.abbr} scale={scale:g} "
        f"(m={R.nrows}, n={R.ncols}, nnz={R.nnz}), k={k}, alpha={ALPHA:g}, "
        f"tile_nnz={tile_nnz}, repeats={repeats}",
        flush=True,
    )
    binned, X_binned = _time_variant(R, Y, "binned", tile_nnz, repeats)
    print(f"  binned  : {binned['total_seconds']:8.3f} s "
          f"(S1 {binned['s1_seconds']:.3f}, S2 {binned['s2_seconds']:.3f}, "
          f"S3 {binned['s3_seconds']:.3f})", flush=True)
    scatter, X_scatter = _time_variant(R, Y, "scatter", tile_nnz, scatter_repeats)
    print(f"  scatter : {scatter['total_seconds']:8.3f} s "
          f"(S1 {scatter['s1_seconds']:.3f}, S2 {scatter['s2_seconds']:.3f}, "
          f"S3 {scatter['s3_seconds']:.3f})", flush=True)

    max_abs_diff = float(np.abs(X_binned - X_scatter).max())
    speedup = scatter["total_seconds"] / binned["total_seconds"]
    peak = binned["gauges"].get("assembly.implicit.peak_tile_bytes", 0.0)
    bound = tile_bytes_bound(tile_nnz, k, weighted=True)
    print(f"  speedup : {speedup:8.2f}x", flush=True)
    print(f"  max |binned - scatter| = {max_abs_diff:.3e}", flush=True)
    print(f"  peak tile bytes: {peak:,.0f} (bound {bound:,})", flush=True)
    return {
        "benchmark": "implicit_half_sweep",
        "dataset": spec.abbr,
        "scale": scale,
        "m": R.nrows,
        "n": R.ncols,
        "nnz": R.nnz,
        "k": k,
        "alpha": ALPHA,
        "lam": LAM,
        "tile_nnz": tile_nnz,
        "repeats": repeats,
        "scatter_repeats": scatter_repeats,
        "seed": seed,
        "scatter": scatter,
        "binned": binned,
        "speedup": speedup,
        "max_abs_diff": max_abs_diff,
        "peak_tile_bytes": peak,
        "peak_tile_bytes_bound": bound,
    }


def resolve(
    quick: bool = True,
    scale: float | None = None,
    k: int | None = None,
    repeats: int | None = None,
    scatter_repeats: int | None = None,
    tile_nnz: int | None = None,
    seed: int = 7,
) -> dict:
    if repeats is None:
        repeats = 1 if quick else 2
    if scatter_repeats is None:
        # The scatter reference takes minutes per pass at full scale (it
        # exists to be beaten); one pass is plenty at a >100x margin.
        scatter_repeats = repeats if quick else 1
    return {
        "scale": scale if scale is not None else (1 / 16 if quick else 1.0),
        "k": k if k is not None else (32 if quick else 64),
        "repeats": repeats,
        "scatter_repeats": scatter_repeats,
        "tile_nnz": tile_nnz if tile_nnz is not None else DEFAULT_TILE_NNZ,
        "seed": seed,
    }


def run_cell(quick: bool = True, check: bool = True, **overrides) -> dict:
    return run_benchmark(**resolve(quick, **overrides))


def check_record(record: dict, params: dict) -> list[str]:
    """The ``--check`` bars: speedup (3x full / 1x quick), 1e-10 variant
    agreement, and peak assembly scratch within the weighted tile bound."""
    required = 1.0 if params.get("quick", True) else 3.0
    failures = []
    if record["speedup"] < required:
        failures.append(
            f"binned speedup {record['speedup']:.2f}x is below the "
            f"required {required:.1f}x"
        )
    if record["max_abs_diff"] > 1e-10:
        failures.append(
            f"binned and scatter sweeps disagree: max |diff| = "
            f"{record['max_abs_diff']:.3e} > 1e-10"
        )
    if not 0 < record["peak_tile_bytes"] <= record["peak_tile_bytes_bound"]:
        failures.append(
            f"peak tile bytes {record['peak_tile_bytes']:,.0f} outside "
            f"(0, {record['peak_tile_bytes_bound']:,}]"
        )
    return failures


grid.register("implicit", run_cell, check=check_record)
