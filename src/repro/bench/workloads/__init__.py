"""Grid-registered benchmark workloads.

Importing this package registers every bundled workload with
:mod:`repro.bench.grid`:

* ``assembly`` — S1+S2 normal-equations assembly, binned vs scatter
  (:mod:`repro.bench.workloads.assembly`);
* ``solve`` — S3 batched solvers and the parallel half-sweep
  (:mod:`repro.bench.workloads.solve`);
* ``topn`` — tiled top-N serving vs the dense batch path
  (:mod:`repro.bench.workloads.topn`);
* ``implicit`` — implicit-feedback half-sweep, binned vs scatter
  (:mod:`repro.bench.workloads.implicit`);
* ``serving`` — the long-lived RecommendService load test
  (:mod:`repro.bench.workloads.serving`);
* ``outofcore`` / ``convergence`` — adapters over the remaining
  ``benchmarks/bench_*.py`` scripts
  (:mod:`repro.bench.workloads.scripts`).

Every workload takes ``quick``/``check`` plus per-benchmark overrides
and returns the same record dict its ``benchmarks/bench_*.py`` wrapper
writes, so grid cells and standalone runs land identical evidence.
"""

from repro.bench.workloads import (  # noqa: F401  (self-registering)
    assembly,
    implicit,
    scripts,
    serving,
    solve,
    topn,
)
