"""Grid workloads backed by standalone benchmark scripts.

``benchmarks/bench_outofcore.py`` and ``benchmarks/bench_convergence.py``
spawn their own subprocess children (per-phase RSS attribution, RLIMIT
caps) and so cannot be lifted into plain library functions the way the
single-process benchmarks were.  Instead each gets a thin adapter: the
script module is loaded once by file path, its ``main(argv)`` runs
in-process with ``--out`` pointed at a temp file, and the written record
becomes the cell payload.  The children stay correct because the
scripts re-launch themselves via ``Path(__file__).resolve()``, which
importlib preserves.

The ``--check`` bars are mirrored here as pure functions of the record
(running ``main --check`` instead would collapse "which bar failed"
into a single exit code and lose the record on failure).
"""

from __future__ import annotations

import importlib.util
import json
import sys
import tempfile
from pathlib import Path

from repro.bench import grid

__all__ = [
    "benchmarks_dir",
    "load_script",
    "run_outofcore",
    "check_outofcore",
    "run_convergence",
    "check_convergence",
]

_MODULES: dict[str, object] = {}


def benchmarks_dir() -> Path:
    """The repo's ``benchmarks/`` directory (this file lives under
    ``src/repro/bench/workloads/``)."""
    candidates = (
        Path(__file__).resolve().parents[4] / "benchmarks",
        Path.cwd() / "benchmarks",
    )
    for cand in candidates:
        if cand.is_dir():
            return cand
    raise FileNotFoundError(
        "benchmarks/ directory not found near "
        + " or ".join(str(c) for c in candidates)
    )


def load_script(stem: str):
    """Import ``benchmarks/<stem>.py`` by path, once per process."""
    if stem not in _MODULES:
        path = benchmarks_dir() / f"{stem}.py"
        spec = importlib.util.spec_from_file_location(
            f"repro_bench_script_{stem}", path
        )
        module = importlib.util.module_from_spec(spec)
        # Register before exec so the script's own dataclasses/pickling
        # (and any self-re-import) resolve.
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        _MODULES[stem] = module
    return _MODULES[stem]


def _run_script(stem: str, quick: bool, flags: dict) -> dict:
    """Run a script's ``main`` in-process and return the record it wrote."""
    module = load_script(stem)
    with tempfile.TemporaryDirectory(prefix=f"{stem}-") as tmp:
        out = Path(tmp) / "record.json"
        argv = ["--out", str(out)]
        if quick:
            argv.append("--quick")
        for key, val in flags.items():
            if val is not None:
                argv += [f"--{key.replace('_', '-')}", str(val)]
        rc = module.main(argv)
        if rc != 0:
            raise grid.GridError(f"{stem} exited with status {rc}")
        payload = json.loads(out.read_text())
    return payload


def run_outofcore(
    quick: bool = True,
    check: bool = True,
    k: int | None = None,
    scale: float | None = None,
    iterations: int | None = None,
    shard_bytes: int | None = None,
    seed: int | None = None,
) -> dict:
    return _run_script(
        "bench_outofcore", quick,
        dict(k=k, scale=scale, iterations=iterations,
             shard_bytes=shard_bytes, seed=seed),
    )


def check_outofcore(record: dict, params: dict) -> list[str]:
    """Mirror of ``bench_outofcore.py --check``: loss parity to 1e-10,
    >= 70% throughput retention, sharded RSS delta < half of in-RAM,
    and survival under the RLIMIT_DATA cap where enforced."""
    failures = []
    if record["loss_rel_err"] > 1e-10:
        failures.append(
            f"loss trajectories disagree: rel err "
            f"{record['loss_rel_err']:.3e} > 1e-10"
        )
    if record["throughput_retention"] < 0.7:
        failures.append(
            f"throughput retention {record['throughput_retention']:.2f} "
            f"is below the required 0.70"
        )
    if not record["rss_delta_ratio"] < 0.5:
        failures.append(
            f"sharded RSS delta is {record['rss_delta_ratio']:.2f}x the "
            f"in-RAM delta (need < 0.5)"
        )
    capped = record["capped"]
    if capped["rlimit_data_enforced"] and not capped.get("sharded_ok"):
        failures.append(
            f"sharded training died under the "
            f"{capped['cap_bytes'] / 2**20:,.1f} MB RLIMIT_DATA cap"
        )
    return failures


def run_convergence(
    quick: bool = True,
    check: bool = True,
    k: int | None = None,
    scale: float | None = None,
    iterations: int | None = None,
    block_size: int | None = None,
    block_schedule: str | None = None,
    seed: int | None = None,
) -> dict:
    return _run_script(
        "bench_convergence", quick,
        dict(k=k, scale=scale, iterations=iterations, block_size=block_size,
             block_schedule=block_schedule, seed=seed),
    )


def check_convergence(record: dict, params: dict) -> list[str]:
    """Mirror of ``bench_convergence.py --check``: time-to-target speedup
    (1.5 full / 0.7 quick), 1e-6 final-loss parity, bitwise d==k and
    sharded agreement."""
    bar = 0.7 if params.get("quick", True) else 1.5
    failures = []
    if record["time_to_target_speedup"] < bar:
        failures.append(
            f"time-to-target speedup {record['time_to_target_speedup']:.2f} "
            f"is below the required {bar:.2f}"
        )
    if record["final_loss_rel_gap"] > 1e-6:
        failures.append(
            f"subspace final loss misses full-k by "
            f"{record['final_loss_rel_gap']:.3e} relative (need <= 1e-6)"
        )
    for alg, ok in record["dk_bitwise"].items():
        if not ok:
            failures.append(
                f"{alg}: block_size==k is not bitwise-equal to the full sweep"
            )
    for alg, ok in record["sharded_bitwise"].items():
        if not ok:
            failures.append(
                f"{alg}: sharded subspace training diverges from in-RAM bitwise"
            )
    return failures


grid.register("outofcore", run_outofcore, check=check_outofcore)
grid.register("convergence", run_convergence, check=check_convergence)
