"""Grid workload: S3 batched solvers and the parallel half-sweep.

The benchmark body behind ``benchmarks/bench_solve.py``.
``BENCH_3.json`` records the committed numbers; the gate metric is
``lapack_speedup``.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from repro.bench import grid
from repro.datasets.catalog import MOVIELENS1M
from repro.datasets.synthetic import generate_ratings
from repro.kernels.fastpath import fast_half_sweep
from repro.linalg.normal_equations import batched_normal_equations
from repro.linalg.solvers import SOLVERS
from repro.parallel import SweepExecutor
from repro.sparse.csr import CSRMatrix

__all__ = ["resolve", "run_benchmark", "run_cell", "check_record"]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def run_benchmark(
    scale: float, k: int, repeats: int, seed: int, skip: tuple[str, ...] = ()
) -> dict:
    spec = MOVIELENS1M.scaled(scale)
    coo = generate_ratings(spec, seed=seed)
    R = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(seed)
    Y = rng.standard_normal((R.ncols, k))
    # Warm the derived-structure caches (a training run reuses one matrix
    # across every sweep) and assemble the S3 input once: the solve
    # comparison isolates S3, the sweep comparison covers S1+S2+S3.
    rows, sub = R.occupied_submatrix()
    A, b = batched_normal_equations(sub, Y, 0.1)
    batch = A.shape[0]

    print(
        f"solve benchmark: {spec.abbr} scale={scale:g} "
        f"(m={R.nrows}, n={R.ncols}, nnz={R.nnz}), k={k}, "
        f"batch={batch}, repeats={repeats}, cores={os.cpu_count()}",
        flush=True,
    )

    solve_seconds: dict[str, float] = {}
    for name, fn in SOLVERS.items():
        if name in skip:
            continue
        solve_seconds[name] = _best_of(lambda: fn(A, b), repeats)
        print(f"  s3 {name:9s}: {solve_seconds[name]:8.3f} s", flush=True)
    lapack_speedup = solve_seconds["cholesky"] / solve_seconds["lapack"]
    print(f"  lapack speedup over reference: {lapack_speedup:8.2f}x", flush=True)

    X_serial = fast_half_sweep(R, Y, 0.1, solver="lapack")  # untimed warm-up
    serial_seconds = _best_of(
        lambda: fast_half_sweep(R, Y, 0.1, solver="lapack"), repeats
    )
    with SweepExecutor("auto") as executor:
        workers = executor.workers
        parallel_seconds = _best_of(
            lambda: executor.half_sweep(R, Y, 0.1, solver="lapack"), repeats
        )
        X_parallel = executor.half_sweep(R, Y, 0.1, solver="lapack")
    bitwise = bool(np.array_equal(X_serial, X_parallel))
    sweep_speedup = serial_seconds / parallel_seconds
    print(f"  sweep workers=1   : {serial_seconds:8.3f} s", flush=True)
    print(f"  sweep workers={workers:<4d}: {parallel_seconds:8.3f} s "
          f"({sweep_speedup:.2f}x, bitwise identical: {bitwise})", flush=True)

    return {
        "benchmark": "s3_solve_and_parallel_sweep",
        "dataset": spec.abbr,
        "scale": scale,
        "m": R.nrows,
        "n": R.ncols,
        "nnz": R.nnz,
        "k": k,
        "batch": batch,
        "repeats": repeats,
        "seed": seed,
        "cores": os.cpu_count(),
        "s3_seconds": solve_seconds,
        "lapack_speedup": lapack_speedup,
        "sweep": {
            "solver": "lapack",
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "workers": workers,
            "speedup": sweep_speedup,
            "bitwise_identical": bitwise,
        },
    }


def resolve(
    quick: bool = True,
    scale: float | None = None,
    k: int | None = None,
    repeats: int | None = None,
    seed: int = 7,
) -> dict:
    """Quick keeps the full solve shape (the 3x bar is only honest on
    the real ml-1m batch) but one repeat and no gaussian timing."""
    return {
        "scale": scale if scale is not None else 1.0,
        "k": k if k is not None else 64,
        "repeats": repeats if repeats is not None else (1 if quick else 2),
        "seed": seed,
        "skip": ("gaussian",) if quick else (),
    }


def run_cell(quick: bool = True, check: bool = True, **overrides) -> dict:
    return run_benchmark(**resolve(quick, **overrides))


def check_record(record: dict, params: dict) -> list[str]:
    """The ``--check`` bars: lapack >= 3x at k >= 32, bitwise parallel
    sweep, and (multi-core only) parallel faster than serial."""
    failures = []
    if record["k"] >= 32 and record["lapack_speedup"] < 3.0:
        failures.append(
            f"lapack speedup {record['lapack_speedup']:.2f}x is below the "
            f"required 3.0x at k={record['k']}"
        )
    if not record["sweep"]["bitwise_identical"]:
        failures.append("parallel sweep result differs from serial")
    cores = os.cpu_count() or 1
    if cores > 1 and record["sweep"]["speedup"] <= 1.0:
        failures.append(
            f"parallel sweep ({record['sweep']['workers']} workers on "
            f"{cores} cores) not faster than serial "
            f"({record['sweep']['speedup']:.2f}x)"
        )
    return failures


grid.register("solve", run_cell, check=check_record)
