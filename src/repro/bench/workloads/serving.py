"""Grid workload: the long-lived RecommendService load test.

The benchmark body behind ``benchmarks/bench_serving.py``: batched vs
unbatched closed loops, warm vs cold cache, open-loop Poisson
percentiles, and bitwise fold-in parity with the trainers disarmed.
``BENCH_9.json`` records the committed numbers; returns **two** records
— ``serving_service`` (gated on ``batching_speedup``) plus a
``serving_throughput`` record explicitly gated on absolute
``serve_throughput`` (a ratio would mask a uniform slowdown of both
arms).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.bench import grid
from repro.datasets.catalog import MOVIELENS1M

__all__ = ["resolve", "run_benchmark", "run_cell", "check_record", "ALGORITHMS"]

K = 64
LAM = 0.1
ALPHA = 40.0
ITERATIONS = 3
N_TOP = 10
MAX_BATCH = 32
BATCH_WINDOW = 0.002
ALGORITHMS = ("als", "als-wr", "implicit")


def _train(ratings, *, k: int, iterations: int, seed: int, algorithm: str = "als"):
    from repro.api import Recommender

    return Recommender(
        k=k, lam=LAM, iterations=iterations, seed=seed,
        algorithm=algorithm, alpha=ALPHA,
    ).fit(ratings)


def _closed(service, users, ns, *, concurrency=None) -> dict:
    from repro.serving.loadgen import run_closed_loop

    report = run_closed_loop(
        service, users, n=N_TOP,
        concurrency=concurrency or ns.concurrency,
        requests_per_worker=ns.requests, seed=ns.seed,
    )
    return report.to_dict()


def _measure_batching(rec, users, ns) -> dict:
    """Closed-loop throughput, micro-batched vs one-request-at-a-time.

    Cache off in both services so coalescing is the only difference.
    """
    from repro.serving.service import RecommendService

    out: dict = {}
    for label, kwargs in (
        ("unbatched", dict(max_batch=1, batch_window=0.0, cache_size=0)),
        ("batched", dict(max_batch=ns.max_batch, batch_window=ns.batch_window,
                         cache_size=0)),
    ):
        with RecommendService(rec, **kwargs) as service:
            out[label] = _closed(service, users, ns)
            out[label]["mean_batch_size"] = (
                service.stats.snapshot()["mean_batch_size"]
            )
        lat = out[label]["latency"]
        print(
            f"  {label:9s}: {out[label]['throughput']:9.0f} req/s "
            f"(batch {out[label]['mean_batch_size']:5.1f}, "
            f"p50={lat['p50'] * 1e3:.2f} ms p95={lat['p95'] * 1e3:.2f} ms "
            f"p99={lat['p99'] * 1e3:.2f} ms)",
            flush=True,
        )
    out["batching_speedup"] = (
        out["batched"]["throughput"] / out["unbatched"]["throughput"]
        if out["unbatched"]["throughput"] > 0 else 0.0
    )
    print(f"  batching speedup {out['batching_speedup']:.2f}x", flush=True)
    return out


def _measure_cache(rec, users, ns) -> dict:
    """The same closed-loop stream twice; pass two answers from the LRU."""
    from repro.serving.service import RecommendService

    pool = users[: max(8, users.size // 8)]  # small pool -> guaranteed reuse
    with RecommendService(
        rec, max_batch=ns.max_batch, batch_window=ns.batch_window,
        cache_size=max(4096, 2 * pool.size),
    ) as service:
        cold = _closed(service, pool, ns)
        warm = _closed(service, pool, ns)  # same seed: identical picks
        stats = service.stats.snapshot()
    hits = stats["cache_hits"]
    hit_rate = hits / stats["requests"] if stats["requests"] else 0.0
    speedup = (
        warm["throughput"] / cold["throughput"]
        if cold["throughput"] > 0 else 0.0
    )
    print(
        f"  cache: cold {cold['throughput']:9.0f} req/s, "
        f"warm {warm['throughput']:9.0f} req/s -> {speedup:.2f}x "
        f"(hit rate {hit_rate:.0%})",
        flush=True,
    )
    return {
        "cold": cold,
        "warm": warm,
        "cache_speedup": speedup,
        "hit_rate": hit_rate,
    }


def _measure_open_loop(rec, users, ns) -> dict:
    """Poisson arrivals at a fixed offered rate; tail includes queueing."""
    from repro.serving.loadgen import run_open_loop
    from repro.serving.service import RecommendService

    with RecommendService(
        rec, max_batch=ns.max_batch, batch_window=ns.batch_window, cache_size=0
    ) as service:
        report = run_open_loop(
            service, users, n=N_TOP, rate=ns.rate, duration=ns.duration,
            seed=ns.seed,
        ).to_dict()
    lat = report["latency"]
    print(
        f"  open loop @ {ns.rate:.0f}/s for {ns.duration:.1f} s: "
        f"{report['throughput']:9.0f} req/s served "
        f"(p50={lat['p50'] * 1e3:.2f} ms p95={lat['p95'] * 1e3:.2f} ms "
        f"p99={lat['p99'] * 1e3:.2f} ms)",
        flush=True,
    )
    return report


def _check_foldin(ratings, ns) -> tuple[dict, bool]:
    """Bitwise fold-in parity per algorithm, with the trainers disarmed.

    After ``fold_in_users`` the recommender's training matrix *is* the
    augmented matrix, so the reference is a fresh serial float64
    half-sweep over it; the folded rows must equal its tail rows bit for
    bit.  The trainer registry is swapped for tripwires during fold-in:
    any retrain attempt raises.
    """
    import repro.api as api_mod
    from repro.core.alswr import weighted_half_sweep
    from repro.core.implicit import implicit_half_sweep
    from repro.kernels.fastpath import fast_half_sweep
    from repro.sparse.coo import COOMatrix

    rng = np.random.default_rng(ns.seed + 1)
    m, n = ratings.shape
    h = 8
    rows = np.repeat(np.arange(h), 6)
    cols = rng.integers(0, n, rows.size)
    vals = rng.integers(1, 6, rows.size).astype(np.float32)
    new_users = COOMatrix((h, n), rows, cols, vals)

    parity: dict = {}
    no_retrain = True
    for algorithm in ALGORITHMS:
        rec = _train(
            ratings, k=ns.check_k, iterations=2, seed=ns.seed,
            algorithm=algorithm,
        )
        armed = dict(api_mod._ALGORITHMS)

        def _tripwire(*a, **kw):
            raise AssertionError("fold-in must not retrain")

        api_mod._ALGORITHMS = {name: _tripwire for name in armed}
        try:
            ids = rec.fold_in_users(new_users)
        except AssertionError:
            no_retrain = False
            parity[algorithm] = False
            continue
        finally:
            api_mod._ALGORITHMS = armed
        aug = rec._train_csr
        Y = np.asarray(rec.model.Y)
        if algorithm == "als":
            ref = fast_half_sweep(aug, Y, LAM)
        elif algorithm == "als-wr":
            ref = weighted_half_sweep(aug, Y, LAM, None)
        else:
            ref = implicit_half_sweep(aug, Y, LAM, ALPHA)
        parity[algorithm] = bool(
            np.array_equal(np.asarray(rec.model.X)[ids], ref[ids])
        )
    print(f"  fold-in bitwise: {parity} (no retrain: {no_retrain})", flush=True)
    return parity, no_retrain


def run_benchmark(
    scale: float,
    k: int,
    iterations: int,
    concurrency: int,
    max_batch: int,
    requests: int,
    rate: float,
    duration: float,
    batch_window: float,
    seed: int,
    check_scale: float,
    check_k: int,
) -> list[dict]:
    from repro.datasets.synthetic import generate_ratings

    ns = SimpleNamespace(
        scale=scale, k=k, iterations=iterations, concurrency=concurrency,
        max_batch=max_batch, requests=requests, rate=rate, duration=duration,
        batch_window=batch_window, seed=seed, check_scale=check_scale,
        check_k=check_k,
    )
    spec = MOVIELENS1M.scaled(ns.scale)
    ratings = generate_ratings(spec, seed=ns.seed)
    print(
        f"serving benchmark: {spec.abbr} scale={ns.scale:g} "
        f"(m={spec.m}, n={spec.n}, nnz={ratings.nnz}), k={ns.k}, "
        f"top-{N_TOP}, max_batch={ns.max_batch}, "
        f"window={ns.batch_window * 1e3:g} ms, "
        f"concurrency={ns.concurrency} x {ns.requests} requests",
        flush=True,
    )
    rec = _train(ratings, k=ns.k, iterations=ns.iterations, seed=ns.seed)
    users = np.arange(spec.m, dtype=np.int64)

    batching = _measure_batching(rec, users, ns)
    cache = _measure_cache(rec, users, ns)
    open_loop = _measure_open_loop(rec, users, ns)

    check_spec = MOVIELENS1M.scaled(ns.check_scale)
    check_ratings = generate_ratings(check_spec, seed=ns.seed)
    foldin_bitwise, no_retrain = _check_foldin(check_ratings, ns)

    batched_lat = batching["batched"]["latency"]
    shape = {
        "dataset": spec.abbr,
        "scale": ns.scale,
        "m": spec.m,
        "n": spec.n,
        "nnz": ratings.nnz,
        "k": ns.k,
        "lam": LAM,
        "alpha": ALPHA,
        "iterations": ns.iterations,
        "seed": ns.seed,
    }
    main_record = {
        "benchmark": "serving_service",
        **shape,
        "n_top": N_TOP,
        "max_batch": ns.max_batch,
        "batch_window": ns.batch_window,
        "concurrency": ns.concurrency,
        "requests_per_worker": ns.requests,
        "batching": batching,
        "cache": cache,
        "open_loop": open_loop,
        "batching_speedup": batching["batching_speedup"],
        "cache_speedup": cache["cache_speedup"],
        "cache_hit_rate": cache["hit_rate"],
        "serve_throughput": batching["batched"]["throughput"],
        "serve_p50_latency": batched_lat["p50"],
        "serve_p95_latency": batched_lat["p95"],
        "serve_p99_latency": batched_lat["p99"],
        "foldin_bitwise": foldin_bitwise,
        "foldin_no_retrain": no_retrain,
    }
    # A second, explicitly-keyed record gates absolute served throughput
    # at this shape (batching_speedup is a ratio and would mask a uniform
    # slowdown of both arms).
    throughput_record = {
        "benchmark": "serving_throughput",
        "gate_metric": "serve_throughput",
        **shape,
        "n_top": N_TOP,
        "max_batch": ns.max_batch,
        "batch_window": ns.batch_window,
        "concurrency": ns.concurrency,
        "serve_throughput": batching["batched"]["throughput"],
        "serve_p95_latency": batched_lat["p95"],
    }
    return [main_record, throughput_record]


def resolve(
    quick: bool = True,
    scale: float | None = None,
    k: int | None = None,
    iterations: int | None = None,
    concurrency: int | None = None,
    max_batch: int | None = None,
    requests: int | None = None,
    rate: float | None = None,
    duration: float | None = None,
    batch_window: float = BATCH_WINDOW,
    seed: int = 7,
) -> dict:
    scale = scale if scale is not None else (1 / 64 if quick else 1 / 8)
    k = k if k is not None else (16 if quick else K)
    concurrency = concurrency if concurrency is not None else (8 if quick else 32)
    return {
        "scale": scale,
        "k": k,
        "iterations": iterations if iterations is not None else (2 if quick else ITERATIONS),
        "concurrency": concurrency,
        # Match concurrency by default, so a batch closes the moment
        # every in-flight client has arrived instead of always waiting
        # out the window.
        "max_batch": max_batch if max_batch is not None else min(MAX_BATCH, concurrency),
        "requests": requests if requests is not None else (40 if quick else 200),
        "rate": rate if rate is not None else (200.0 if quick else 500.0),
        "duration": duration if duration is not None else (1.0 if quick else 4.0),
        "batch_window": batch_window,
        "seed": seed,
        "check_scale": min(scale, 1 / 64),
        "check_k": min(k, 16),
    }


def run_cell(quick: bool = True, check: bool = True, **overrides) -> list[dict]:
    return run_benchmark(**resolve(quick, **overrides))


def check_record(records: dict | list, params: dict) -> list[str]:
    """The ``--check`` bars: batching speedup (1.5 full / 1.2 quick),
    bitwise no-retrain fold-in, non-zero throughput, zero loop errors."""
    result = records[0] if isinstance(records, list) else records
    bar = 1.2 if params.get("quick", True) else 1.5
    failures = []
    if result["batching_speedup"] < bar:
        failures.append(
            f"batching speedup {result['batching_speedup']:.2f} is below "
            f"the required {bar:.2f}"
        )
    for alg, ok in result["foldin_bitwise"].items():
        if not ok:
            failures.append(
                f"{alg}: folded-in factors are not bitwise-equal to a "
                f"fresh augmented-matrix half-sweep"
            )
    if not result["foldin_no_retrain"]:
        failures.append("fold_in_users triggered a trainer call")
    for label in ("batched", "unbatched"):
        if result["batching"][label]["throughput"] <= 0:
            failures.append(f"{label} closed loop served nothing")
        if result["batching"][label]["errors"]:
            failures.append(
                f"{label} closed loop had "
                f"{result['batching'][label]['errors']} errors"
            )
    if result["open_loop"]["throughput"] <= 0:
        failures.append("open loop served nothing")
    if result["open_loop"]["errors"]:
        failures.append(
            f"open loop had {result['open_loop']['errors']} errors"
        )
    return failures


grid.register("serving", run_cell, check=check_record)
