"""Grid workload: S1+S2 normal-equations assembly, binned vs scatter.

The benchmark body behind ``benchmarks/bench_assembly.py`` (which is
now a thin single-cell wrapper).  ``BENCH_2.json`` records the
committed full-scale numbers; the gate metric is ``speedup``.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.bench import grid
from repro.datasets.catalog import MOVIELENS1M
from repro.datasets.synthetic import generate_ratings
from repro.linalg.normal_equations import (
    DEFAULT_TILE_NNZ,
    binned_normal_equations,
    scatter_normal_equations,
)
from repro.obs import metrics as obs_metrics
from repro.obs.spans import capture
from repro.sparse.csr import CSRMatrix

__all__ = ["resolve", "run_benchmark", "run_cell", "check_record"]


def _time_variant(fn, R, Y, lam, repeats):
    """Min-of-N wall time plus the run's S1/S2 span split and gauges."""
    best = float("inf")
    split = {}
    for _ in range(repeats):
        obs_metrics.reset()
        with capture() as tracer:
            t0 = perf_counter()
            fn(R, Y, lam)
            elapsed = perf_counter() - t0
        if elapsed < best:
            best = elapsed
            stage_seconds = {"S1": 0.0, "S2": 0.0}
            for rec in tracer.records:
                stage = rec.attrs.get("stage")
                if stage in stage_seconds:
                    stage_seconds[stage] += rec.duration
            split = {
                "total_seconds": elapsed,
                "s1_seconds": stage_seconds["S1"],
                "s2_seconds": stage_seconds["S2"],
                "gauges": obs_metrics.snapshot()["gauges"],
            }
    return split


def run_benchmark(
    scale: float, k: int, repeats: int, tile_nnz: int, seed: int
) -> dict:
    spec = MOVIELENS1M.scaled(scale)
    coo = generate_ratings(spec, seed=seed)
    R = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(seed)
    Y = rng.standard_normal((R.ncols, k))
    # Warm the derived-structure caches: a training run reuses one matrix
    # across every sweep, so steady-state cost is the honest comparison.
    R.expanded_rows()
    R.degree_bins()

    print(
        f"assembly benchmark: {spec.abbr} scale={scale:g} "
        f"(m={R.nrows}, n={R.ncols}, nnz={R.nnz}), k={k}, "
        f"tile_nnz={tile_nnz}, repeats={repeats}",
        flush=True,
    )
    binned = _time_variant(
        lambda R_, Y_, lam: binned_normal_equations(R_, Y_, lam, tile_nnz=tile_nnz),
        R, Y, 0.1, repeats,
    )
    print(f"  binned  : {binned['total_seconds']:8.3f} s "
          f"(S1 {binned['s1_seconds']:.3f}, S2 {binned['s2_seconds']:.3f})",
          flush=True)
    scatter = _time_variant(scatter_normal_equations, R, Y, 0.1, repeats)
    print(f"  scatter : {scatter['total_seconds']:8.3f} s "
          f"(S1 {scatter['s1_seconds']:.3f}, S2 {scatter['s2_seconds']:.3f})",
          flush=True)
    speedup = scatter["total_seconds"] / binned["total_seconds"]
    print(f"  speedup : {speedup:8.2f}x", flush=True)
    return {
        "benchmark": "s1s2_assembly",
        "dataset": spec.abbr,
        "scale": scale,
        "m": R.nrows,
        "n": R.ncols,
        "nnz": R.nnz,
        "k": k,
        "tile_nnz": tile_nnz,
        "repeats": repeats,
        "seed": seed,
        "scatter": scatter,
        "binned": binned,
        "speedup": speedup,
    }


def resolve(
    quick: bool = True,
    scale: float | None = None,
    k: int | None = None,
    repeats: int | None = None,
    tile_nnz: int | None = None,
    seed: int = 7,
) -> dict:
    """Concrete benchmark params from quick/full defaults + overrides."""
    return {
        "scale": scale if scale is not None else (1 / 16 if quick else 1.0),
        "k": k if k is not None else (32 if quick else 64),
        "repeats": repeats if repeats is not None else (1 if quick else 2),
        "tile_nnz": tile_nnz if tile_nnz is not None else DEFAULT_TILE_NNZ,
        "seed": seed,
    }


def run_cell(quick: bool = True, check: bool = True, **overrides) -> dict:
    return run_benchmark(**resolve(quick, **overrides))


def check_record(record: dict, params: dict) -> list[str]:
    """The ``--check`` bar: binned must beat scatter (3x at full scale)."""
    required = 1.0 if params.get("quick", True) else 3.0
    if record["speedup"] < required:
        return [
            f"binned speedup {record['speedup']:.2f}x is below the "
            f"required {required:.1f}x"
        ]
    return []


grid.register("assembly", run_cell, check=check_record)
