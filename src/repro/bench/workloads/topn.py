"""Grid workload: tiled top-N serving vs the dense batch path.

The benchmark body behind ``benchmarks/bench_topn.py``.
``BENCH_4.json`` records the committed numbers; the gate metric is
``best_speedup``.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from repro.bench import grid
from repro.datasets.catalog import MOVIELENS1M
from repro.datasets.synthetic import generate_ratings
from repro.serving.engine import DEFAULT_TILE_BYTES, TopNEngine
from repro.sparse.csr import CSRMatrix

__all__ = ["resolve", "run_benchmark", "run_cell", "check_record"]


def naive_topn_batch(X, Y, users, n, exclude):
    """The pre-engine ``recommend_top_n_batch`` body, verbatim."""
    scores = X[users] @ Y.T  # (U, n_items), the dense matrix the engine avoids
    if exclude is not None:
        for pos, user in enumerate(users):
            seen, _ = exclude.row_slice(int(user))
            scores[pos, seen] = -np.inf
    top = np.argpartition(scores, -n, axis=1)[:, -n:]
    row_scores = np.take_along_axis(scores, top, axis=1)
    order = np.argsort(row_scores, axis=1)[:, ::-1]
    ranked = np.take_along_axis(top, order, axis=1)
    return ranked, np.take_along_axis(row_scores, order, axis=1), scores.nbytes


def _interleaved_best(fns: dict[str, object], repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` wall time per candidate, measured round-robin.

    Interleaving keeps every candidate exposed to the same machine
    conditions within each round — timing all repeats of one candidate
    back-to-back lets a load spike land entirely on one side of the
    before/after ratio.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            t0 = perf_counter()
            fn()
            best[name] = min(best[name], perf_counter() - t0)
    return best


def run_benchmark(scale: float, k: int, top_n: int, repeats: int, seed: int) -> dict:
    spec = MOVIELENS1M.scaled(scale)
    coo = generate_ratings(spec, seed=seed)
    R = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((R.nrows, k))
    Y = rng.standard_normal((R.ncols, k))
    users = np.arange(R.nrows)

    print(
        f"top-N benchmark: {spec.abbr} scale={scale:g} "
        f"(m={R.nrows}, n={R.ncols}, nnz={R.nnz}), k={k}, N={top_n}, "
        f"repeats={repeats}, cores={os.cpu_count()}",
        flush=True,
    )

    ref_items, ref_scores, dense_bytes = naive_topn_batch(X, Y, users, top_n, R)
    # Where the dense path ran out of unseen items it emits arbitrary
    # -inf-scored ids; the engine pads those slots with -1 (the
    # documented contract), so identity is asserted on finite slots only.
    ref_valid = np.isfinite(ref_scores)

    configs = [
        ("engine-f64", dict(tile_bytes=DEFAULT_TILE_BYTES, dtype="float64")),
        ("engine-f32", dict(tile_bytes=4 << 20, dtype="float32")),
    ]
    built = {
        name: TopNEngine(X, Y, user_block=2048, **kwargs)
        for name, kwargs in configs
    }
    f64_identical = None
    for name, kwargs in configs:
        engine = built[name]
        result = engine.query(users, n=top_n, exclude=R)  # warm-up + parity
        if kwargs["dtype"] == "float64":
            f64_identical = bool(
                np.array_equal(result.items[ref_valid], ref_items[ref_valid])
                and ((result.items == -1) == ~ref_valid).all()
            )

    timings = _interleaved_best(
        {
            "dense": lambda: naive_topn_batch(X, Y, users, top_n, R),
            **{
                name: (lambda e=built[name]: e.query(users, n=top_n, exclude=R))
                for name, _ in configs
            },
        },
        repeats,
    )
    naive_seconds = timings["dense"]
    naive_ups = users.size / naive_seconds
    print(
        f"  dense batch      : {naive_seconds:8.3f} s  {naive_ups:10,.0f} u/s  "
        f"peak {dense_bytes / 2**20:8.1f} MB",
        flush=True,
    )

    engines: dict[str, dict] = {}
    for name, kwargs in configs:
        engine = built[name]
        seconds = timings[name]
        ups = users.size / seconds
        engines[name] = {
            **{key: val for key, val in kwargs.items()},
            "seconds": seconds,
            "users_per_sec": ups,
            "speedup": ups / naive_ups,
            "peak_scoring_bytes": engine.peak_tile_bytes,
        }
        print(
            f"  {name:17s}: {seconds:8.3f} s  {ups:10,.0f} u/s  "
            f"peak {engine.peak_tile_bytes / 2**20:8.1f} MB  "
            f"({ups / naive_ups:.2f}x)",
            flush=True,
        )

    from repro.autotune.serving import select_serving

    decision = select_serving(R.ncols, k)
    print(
        f"  autotune picks   : tile_bytes={decision.tile_bytes} "
        f"dtype={decision.dtype}",
        flush=True,
    )

    best = max(engines.values(), key=lambda e: e["users_per_sec"])
    return {
        "benchmark": "tiled_topn_serving",
        "dataset": spec.abbr,
        "scale": scale,
        "m": R.nrows,
        "n": R.ncols,
        "nnz": R.nnz,
        "k": k,
        "top_n": top_n,
        "repeats": repeats,
        "seed": seed,
        "cores": os.cpu_count(),
        "dense_batch": {
            "seconds": naive_seconds,
            "users_per_sec": naive_ups,
            "peak_scoring_bytes": dense_bytes,
        },
        "engines": engines,
        "autotune": {"tile_bytes": decision.tile_bytes, "dtype": decision.dtype},
        "best_speedup": best["speedup"],
        "best_peak_fraction_of_dense": best["peak_scoring_bytes"] / dense_bytes,
        "f64_identical_to_dense": f64_identical,
    }


def resolve(
    quick: bool = True,
    scale: float | None = None,
    k: int | None = None,
    top_n: int | None = None,
    repeats: int | None = None,
    seed: int = 7,
) -> dict:
    """Quick and full share the full ml-1m serving shape (the 2x bar is
    only honest there); only the --check bar differs."""
    return {
        "scale": scale if scale is not None else 1.0,
        "k": k if k is not None else 64,
        "top_n": top_n if top_n is not None else 10,
        "repeats": repeats if repeats is not None else 3,
        "seed": seed,
    }


def run_cell(quick: bool = True, check: bool = True, **overrides) -> dict:
    return run_benchmark(**resolve(quick, **overrides))


def check_record(record: dict, params: dict) -> list[str]:
    """The ``--check`` bars: speedup (1.8x quick / 2.0x full, the quick
    margin tolerating CI timing noise around the ~2.0-2.1x true ratio),
    peak memory <= 1/4 of dense, bit-identical float64 result."""
    bar = 1.8 if params.get("quick", True) else 2.0
    failures = []
    if record["best_speedup"] < bar:
        failures.append(
            f"best engine speedup {record['best_speedup']:.2f}x is below "
            f"the required {bar:.1f}x"
        )
    if record["best_peak_fraction_of_dense"] > 0.25:
        failures.append(
            f"peak scoring memory is "
            f"{record['best_peak_fraction_of_dense']:.2%} of the dense "
            f"matrix (bar: <= 25%)"
        )
    if not record["f64_identical_to_dense"]:
        failures.append("float64 engine result differs from dense reference")
    return failures


grid.register("topn", run_cell, check=check_record)
