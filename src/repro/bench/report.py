"""ASCII rendering of experiment results (the "same rows the paper
reports", printed instead of plotted)."""

from __future__ import annotations

import json
import os
from typing import Sequence

__all__ = ["format_table", "format_bar", "write_metrics_json"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a fixed-width table; floats use ``float_fmt``."""
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    ncols = len(rendered[0])
    if any(len(r) != ncols for r in rendered):
        raise ValueError("all rows must match the header width")
    widths = [max(len(r[c]) for r in rendered) for c in range(ncols)]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for i, r in enumerate(rendered):
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(r, widths)))
        if i == 0:
            lines.append(sep)
    return "\n".join(lines)


def format_bar(value: float, scale: float, width: int = 40) -> str:
    """A crude horizontal bar for log-free visual comparison."""
    if scale <= 0:
        return ""
    n = max(0, min(width, round(value / scale * width)))
    return "#" * n


def write_metrics_json(path: str | os.PathLike, payload: dict) -> None:
    """Write one experiment run's machine-readable metrics document.

    The payload comes from :func:`repro.bench.experiments.run_with_metrics`
    (counters + per-span aggregates + meta) — the per-run record a
    ``BENCH_*.json`` perf trajectory is built from.
    """
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
