"""Shared ``BENCH_*.json`` writer: schema version, host fingerprint, gauges.

PRs 2–5 each wrote their benchmark JSON ad hoc; the perf-gate
(:mod:`repro.obs.gate`) needs records it can compare *across machines*,
which requires knowing what machine produced each one.  Every
``benchmarks/bench_*.py`` now writes through :func:`write_record`, which
stamps the payload with

* ``schema_version`` — bumped when the envelope changes,
* ``host`` — the fingerprint (CPU count, machine/system, Python, NumPy
  version, BLAS build, default dtype behavior) the gate uses to decide
  whether a baseline is same-host comparable, and
* ``gauges`` — the global metrics registry's gauge snapshot at write
  time, so assembly/serving peak-scratch readings travel with the
  record, and
* ``resources`` — the process's RSS / peak-RSS / CPU readings from
  :mod:`repro.obs.resource`, so every record documents the memory
  footprint of the run that produced it (the out-of-core benchmarks'
  headline claim).

The optional ``--metrics``/``--trace`` flags added by
:func:`add_telemetry_args` dump the run's full registry snapshot and
span trace next to the record — the artifacts CI uploads from the
perf-smoke steps.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.export import write_metrics, write_trace
from repro.obs.spans import SpanRecord, enable, get_tracer

__all__ = [
    "SCHEMA_VERSION",
    "host_fingerprint",
    "resource_snapshot",
    "stamp",
    "write_record",
    "add_telemetry_args",
    "enable_telemetry_if_requested",
    "write_telemetry",
]

SCHEMA_VERSION = 1


def _blas_name() -> str:
    """Best-effort name of the BLAS backing NumPy ("unknown" if opaque)."""
    try:
        cfg = np.show_config(mode="dicts")  # numpy >= 1.26
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name")
        if name:
            return str(name)
    except (TypeError, AttributeError, ValueError):
        pass
    try:  # older numpy: module attributes like blas_opt_info
        info = getattr(np.__config__, "blas_opt_info", None)
        if info and info.get("libraries"):
            return str(info["libraries"][0])
    except AttributeError:
        pass
    return "unknown"


def host_fingerprint() -> dict:
    """What the perf-gate compares to decide "same host"."""
    return {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "blas": _blas_name(),
        "float_dtype_itemsize": int(np.dtype(np.float64).itemsize),
    }


def resource_snapshot() -> dict:
    """Current process resource readings (keys omitted where unreadable)."""
    from repro.obs import resource as obs_resource

    snap: dict = {"cpu_seconds": obs_resource.cpu_seconds()}
    rss = obs_resource.rss_bytes()
    if rss is not None:
        snap["rss_bytes"] = int(rss)
    peak = obs_resource.peak_rss_bytes()
    if peak is not None:
        snap["peak_rss_bytes"] = int(peak)
    return snap


def stamp(payload: dict, gauges: bool = True, resources: bool = True) -> dict:
    """The payload plus the shared envelope fields (input not mutated)."""
    stamped = dict(payload)
    stamped["schema_version"] = SCHEMA_VERSION
    stamped["host"] = host_fingerprint()
    if gauges and "gauges" not in stamped:
        snap = obs_metrics.snapshot()
        if snap["gauges"]:
            stamped["gauges"] = snap["gauges"]
    if resources and "resources" not in stamped:
        stamped["resources"] = resource_snapshot()
    return stamped


def write_record(path: str | os.PathLike, payload: dict | list[dict]) -> dict | list:
    """Stamp and write one record (or a list of them) as pretty JSON."""
    if isinstance(payload, list):
        stamped: dict | list = [stamp(rec) for rec in payload]
    else:
        stamped = stamp(payload)
    Path(path).write_text(json.dumps(stamped, indent=2) + "\n")
    return stamped


def add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """The ``--metrics``/``--trace`` artifact flags every bench shares."""
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the run's metrics-registry snapshot JSON here",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the run's span trace (Perfetto/Chrome JSON) here",
    )


def enable_telemetry_if_requested(ns: argparse.Namespace) -> bool:
    """Turn instrumentation on when ``--metrics``/``--trace`` were passed.

    Benchmarks run uninstrumented by default (spans in the timed loop
    would perturb the numbers they exist to measure); asking for the
    artifacts opts into the overhead.  Call right after ``parse_args``.
    """
    wanted = bool(getattr(ns, "metrics", None) or getattr(ns, "trace", None))
    if wanted:
        enable()
    return wanted


def write_telemetry(
    ns: argparse.Namespace,
    meta: dict | None = None,
    records: Sequence[SpanRecord] | None = None,
) -> None:
    """Honor ``--metrics``/``--trace`` after a benchmark run.

    ``records`` defaults to whatever the global tracer collected while
    :func:`enable_telemetry_if_requested` had instrumentation on.
    """
    if records is None:
        records = tuple(get_tracer().records)
    if getattr(ns, "metrics", None):
        write_metrics(ns.metrics, obs_metrics.get_registry(), records, meta=meta)
        print(f"metrics written to {ns.metrics}", flush=True)
    if getattr(ns, "trace", None):
        write_trace(ns.trace, records, meta=meta)
        print(f"trace written to {ns.trace}", flush=True)
