"""Automated paper-vs-measured scorecard.

Runs every experiment, extracts the quantities the paper reports, and
checks each against its published value with an explicit tolerance —
the EXPERIMENTS.md summary table, regenerated rather than transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.experiments import (
    run_fig1,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_ksweep,
    run_table1,
)
from repro.bench.report import format_table
from repro.datasets.catalog import TABLE_I

__all__ = ["Anchor", "collect_anchors", "render_scorecard"]


@dataclass(frozen=True)
class Anchor:
    """One published quantity and its measured counterpart."""

    experiment: str
    description: str
    paper: str
    measured: str
    holds: bool


def _mean(d: dict) -> float:
    return float(np.mean(list(d.values())))


def collect_anchors(seed: int = 7) -> list[Anchor]:
    """Run all experiments and evaluate every anchor."""
    anchors: list[Anchor] = []

    t1 = run_table1(seed)
    exact = all(r[4] == r[5] == r[6] for r in t1.rows)
    anchors.append(
        Anchor("table1", "generated Nz == spec (all 4 datasets)", "exact",
               "exact" if exact else "mismatch", exact)
    )

    f1 = run_fig1(seed)
    anchors.append(
        Anchor(
            "fig1",
            "baseline: CUDA slower than OpenMP on every dataset",
            "yes (8.4x mean)",
            f"yes ({f1.mean_ratio:.2f}x mean)",
            all(r > 1 for r in f1.ratios.values()),
        )
    )

    f6 = run_fig6(seed)
    gpu_gain = max(
        f6.times[s.abbr]["gpu"]["thread batching"]
        / f6.times[s.abbr]["gpu"]["+local memory + register"]
        for s in TABLE_I
    )
    cpu_gain = max(
        f6.times[s.abbr]["cpu"]["thread batching"]
        / f6.times[s.abbr]["cpu"]["+local memory"]
        for s in TABLE_I
    )
    mic_gain = max(
        f6.times[s.abbr]["mic"]["thread batching"]
        / f6.times[s.abbr]["mic"]["+local memory"]
        for s in TABLE_I
    )
    degrade = all(
        f6.times[s.abbr][dev]["+local memory + register"]
        > f6.times[s.abbr][dev]["+local memory"]
        for s in TABLE_I
        for dev in ("cpu", "mic")
    )
    anchors.append(
        Anchor("fig6", "GPU gain from regs+local", "upto 2.6x",
               f"upto {gpu_gain:.2f}x", 2.0 < gpu_gain < 3.3)
    )
    anchors.append(
        Anchor("fig6", "CPU/MIC gain from local memory", "upto 1.6x / 1.4x",
               f"upto {cpu_gain:.2f}x / {mic_gain:.2f}x",
               1.2 < cpu_gain < 1.9 and 1.15 < mic_gain < 1.7)
    )
    anchors.append(
        Anchor("fig6", "regs+local degrade on CPU & MIC", "yes",
               "yes" if degrade else "no", degrade)
    )

    f7 = run_fig7(seed)
    cpu_speed = _mean(f7.vs_sac15_cpu)
    gpu_speed = _mean(f7.vs_sac15_gpu)
    cumf = f7.vs_hpdc16_gpu
    anchors.append(
        Anchor("fig7", "ours vs SAC15 on E5-2670 (mean)", "5.5x",
               f"{cpu_speed:.2f}x", 4.0 < cpu_speed < 7.5)
    )
    anchors.append(
        Anchor("fig7", "ours vs SAC15 on K20c (mean)", "21.2x",
               f"{gpu_speed:.2f}x", 15.0 < gpu_speed < 28.0)
    )
    anchors.append(
        Anchor("fig7", "ours vs cuMF range, max on YMR4", "2.2-6.8x",
               f"{min(cumf.values()):.2f}-{max(cumf.values()):.2f}x",
               2.0 < min(cumf.values())
               and max(cumf.values()) < 8.0
               and max(cumf, key=cumf.get) == "YMR4")
    )

    f8 = run_fig8(seed=seed)
    by_label = {p.label: p for p in f8.profiles}
    rotation = (
        by_label["thread batching"].shares[0] > 0.5
        and by_label["optimizing S1"].shares[1]
        > by_label["thread batching"].shares[1]
        and by_label["optimizing S2"].shares[0]
        > max(by_label["optimizing S2"].shares[1:])
    )
    anchors.append(
        Anchor("fig8", "hotspot rotation S1->S2->S1; Cholesky shrinks S3",
               "yes", "yes" if rotation else "no", rotation)
    )

    f9 = run_fig9(seed)
    slow = f9.slowdowns()
    gpu_slow = float(np.mean([slow[a]["gpu"] for a in slow]))
    mic_slow = float(np.mean([slow[a]["mic"] for a in slow]))
    ymr1_win = f9.seconds["YMR1"]["gpu"] <= f9.seconds["YMR1"]["cpu"]
    anchors.append(
        Anchor("fig9", "GPU / MIC slowdown vs CPU (mean)", "1.5x / 4.1x",
               f"{gpu_slow:.2f}x / {mic_slow:.2f}x",
               1.0 <= gpu_slow < 2.0 and 3.0 < mic_slow < 5.5)
    )
    anchors.append(
        Anchor("fig9", "GPU beats CPU on YMR1", "yes",
               "yes" if ymr1_win else "no", ymr1_win)
    )

    f10 = run_fig10(seed)
    optima = f10.optima()
    gpu_opt = all(optima[s.abbr]["gpu"] in (16, 32) for s in TABLE_I)
    mic_opt = optima["YMR4"]["mic"] == 8 and optima["YMR1"]["mic"] == 16
    anchors.append(
        Anchor("fig10", "GPU block-size optimum", "16 or 32",
               str({optima[s.abbr]["gpu"] for s in TABLE_I}), gpu_opt)
    )
    anchors.append(
        Anchor("fig10", "MIC optimum dataset-dependent (YMR4/YMR1)",
               "8 / 16", f"{optima['YMR4']['mic']} / {optima['YMR1']['mic']}",
               mic_opt)
    )

    ks = run_ksweep(seed=seed)
    speed = ks.speedups()
    k_order = sorted(speed)
    monotone = all(speed[a] >= speed[b] for a, b in zip(k_order, k_order[1:]))
    anchors.append(
        Anchor("ksweep", "cuMF gap closes toward its tuned k=100",
               "monotone to ~1x",
               f"{speed[k_order[0]]:.2f}x -> {speed[k_order[-1]]:.2f}x",
               monotone and abs(speed[k_order[-1]] - 1.0) < 0.3)
    )
    return anchors


def render_scorecard(anchors: list[Anchor] | None = None) -> str:
    anchors = anchors if anchors is not None else collect_anchors()
    rows = [
        (a.experiment, a.description, a.paper, a.measured, "OK" if a.holds else "FAIL")
        for a in anchors
    ]
    held = sum(a.holds for a in anchors)
    table = format_table(
        ["exp", "anchor", "paper", "measured", "status"],
        rows,
        title="Paper-vs-measured scorecard",
    )
    return table + f"\n{held}/{len(anchors)} anchors hold"
