"""SQLite-backed results store for the experiment grid.

One row per **cell** — a (grid, benchmark, params) triple.  The store is
the PyExperimenter-style substrate the grid harness
(:mod:`repro.bench.grid`) runs on:

* ``ensure_cells`` inserts the expanded grid idempotently (re-running a
  config never duplicates or resets work);
* ``claim_next`` flips one ``open`` cell to ``running`` inside a single
  ``BEGIN IMMEDIATE`` transaction, so concurrent runners (processes or
  threads, even on different machines sharing the file) never execute
  the same cell twice;
* ``finish``/``fail`` land the stamped benchmark record (or the error)
  back on the row;
* ``reclaim_stale`` reopens ``running`` cells whose claiming process is
  dead — that is all crash-resume takes: kill a run mid-grid, run
  again, and only the remaining cells execute.

Everything is stdlib ``sqlite3``; the schema is documented in
``docs/experiments.md``.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Cell", "ResultsStore", "canonical_params"]

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS grid_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    grid TEXT NOT NULL,
    benchmark TEXT NOT NULL,
    params TEXT NOT NULL,
    cell_key TEXT NOT NULL UNIQUE,
    status TEXT NOT NULL DEFAULT 'open'
        CHECK (status IN ('open', 'running', 'done', 'error')),
    claimed_host TEXT,
    claimed_pid INTEGER,
    claimed_at REAL,
    finished_at REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    record TEXT
);
CREATE INDEX IF NOT EXISTS cells_status ON cells (grid, status, id);
"""


def canonical_params(params: dict) -> str:
    """Deterministic JSON for a params dict (the cell identity)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Cell:
    """One grid cell as read from the store."""

    id: int
    grid: str
    benchmark: str
    params: dict
    status: str
    attempts: int
    error: str | None = None
    record: dict | list | None = None

    @property
    def key(self) -> str:
        return f"{self.grid}|{self.benchmark}|{canonical_params(self.params)}"


def _cell_of(row: sqlite3.Row) -> Cell:
    return Cell(
        id=row["id"],
        grid=row["grid"],
        benchmark=row["benchmark"],
        params=json.loads(row["params"]),
        status=row["status"],
        attempts=row["attempts"],
        error=row["error"],
        record=json.loads(row["record"]) if row["record"] else None,
    )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


class ResultsStore:
    """The sqlite results table behind the experiment grid.

    ``path`` may be ``":memory:"`` for throwaway single-cell runs (the
    standalone ``benchmarks/bench_*.py`` wrappers use that); anything
    else is created on first open.  The connection runs in autocommit
    (``isolation_level=None``) with explicit ``BEGIN IMMEDIATE`` around
    the claim, which is the only multi-statement critical section.
    """

    def __init__(self, path: str | os.PathLike = "grid.sqlite"):
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, timeout=30.0, isolation_level=None,
            check_same_thread=False,
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR IGNORE INTO grid_meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- populating ----------------------------------------------------
    def ensure_cells(
        self, grid: str, cells: list[tuple[str, dict]]
    ) -> int:
        """Insert any (benchmark, params) cells not already present.

        Returns how many were newly created; existing cells keep their
        status and results untouched, which is what makes re-running a
        config a resume instead of a restart.
        """
        created = 0
        for benchmark, params in cells:
            key = f"{grid}|{benchmark}|{canonical_params(params)}"
            cur = self._conn.execute(
                "INSERT OR IGNORE INTO cells (grid, benchmark, params, cell_key)"
                " VALUES (?, ?, ?, ?)",
                (grid, benchmark, canonical_params(params), key),
            )
            created += cur.rowcount
        return created

    # -- claiming ------------------------------------------------------
    def claim_next(self, grid: str | None = None) -> Cell | None:
        """Atomically flip the oldest ``open`` cell to ``running``.

        The claim is stamped with this process's host and pid so a later
        run can tell a live concurrent claim from a crashed one.  Returns
        ``None`` when no open cells remain.
        """
        where = "status = 'open'" + ("" if grid is None else " AND grid = ?")
        args = () if grid is None else (grid,)
        while True:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    f"SELECT * FROM cells WHERE {where} ORDER BY id LIMIT 1",
                    args,
                ).fetchone()
                if row is None:
                    return None
                self._conn.execute(
                    "UPDATE cells SET status = 'running', claimed_host = ?,"
                    " claimed_pid = ?, claimed_at = ?,"
                    " attempts = attempts + 1 WHERE id = ? AND status = 'open'",
                    (socket.gethostname(), os.getpid(), time.time(), row["id"]),
                )
            finally:
                self._conn.execute("COMMIT")
            claimed = self._conn.execute(
                "SELECT * FROM cells WHERE id = ?", (row["id"],)
            ).fetchone()
            if (
                claimed["status"] == "running"
                and claimed["claimed_pid"] == os.getpid()
            ):
                return _cell_of(claimed)
            # lost a race (shouldn't happen under BEGIN IMMEDIATE) — retry

    def finish(self, cell_id: int, record: dict | list) -> None:
        """Mark a claimed cell ``done`` and land its stamped record."""
        self._conn.execute(
            "UPDATE cells SET status = 'done', finished_at = ?, error = NULL,"
            " record = ? WHERE id = ?",
            (time.time(), json.dumps(record), cell_id),
        )

    def fail(
        self, cell_id: int, error: str, record: dict | list | None = None
    ) -> None:
        """Mark a claimed cell ``error``; a partial record may ride along."""
        self._conn.execute(
            "UPDATE cells SET status = 'error', finished_at = ?, error = ?,"
            " record = ? WHERE id = ?",
            (
                time.time(), error,
                json.dumps(record) if record is not None else None, cell_id,
            ),
        )

    # -- resume / repair ----------------------------------------------
    def reclaim_stale(self) -> int:
        """Reopen ``running`` cells whose claiming process is gone.

        Only same-host claims can be probed (``kill -0``); a claim from
        another host is left alone — it may still be live.  Returns how
        many cells were reopened.
        """
        host = socket.gethostname()
        rows = self._conn.execute(
            "SELECT id, claimed_host, claimed_pid FROM cells"
            " WHERE status = 'running'"
        ).fetchall()
        reopened = 0
        for row in rows:
            if row["claimed_host"] != host:
                continue
            pid = row["claimed_pid"]
            if pid is not None and pid != os.getpid() and not _pid_alive(pid):
                self._conn.execute(
                    "UPDATE cells SET status = 'open', claimed_host = NULL,"
                    " claimed_pid = NULL, claimed_at = NULL"
                    " WHERE id = ? AND status = 'running'",
                    (row["id"],),
                )
                reopened += 1
        return reopened

    def reset_errors(self, grid: str | None = None) -> int:
        """Flip ``error`` cells back to ``open`` for a retry pass."""
        where = "status = 'error'" + ("" if grid is None else " AND grid = ?")
        args = () if grid is None else (grid,)
        cur = self._conn.execute(
            f"UPDATE cells SET status = 'open', claimed_host = NULL,"
            f" claimed_pid = NULL, claimed_at = NULL, error = NULL"
            f" WHERE {where}",
            args,
        )
        return cur.rowcount

    # -- reading -------------------------------------------------------
    def cells(self, grid: str | None = None) -> list[Cell]:
        where = "1=1" if grid is None else "grid = ?"
        args = () if grid is None else (grid,)
        rows = self._conn.execute(
            f"SELECT * FROM cells WHERE {where} ORDER BY id", args
        ).fetchall()
        return [_cell_of(row) for row in rows]

    def status_counts(self, grid: str | None = None) -> dict[str, int]:
        where = "1=1" if grid is None else "grid = ?"
        args = () if grid is None else (grid,)
        counts = {"open": 0, "running": 0, "done": 0, "error": 0}
        for row in self._conn.execute(
            f"SELECT status, COUNT(*) AS n FROM cells WHERE {where}"
            " GROUP BY status",
            args,
        ):
            counts[row["status"]] = row["n"]
        return counts

    def records(self, grid: str | None = None) -> list[dict]:
        """All landed benchmark records, flattened, oldest cell first.

        Cells whose workload returned a list (e.g. the serving workload
        emits a main record plus a throughput-gate record) contribute
        every element.
        """
        out: list[dict] = []
        for cell in self.cells(grid):
            if cell.record is None:
                continue
            payload = cell.record
            for rec in payload if isinstance(payload, list) else [payload]:
                if isinstance(rec, dict):
                    out.append(rec)
        return out
