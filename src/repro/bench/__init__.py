"""Benchmark harness: experiment runners and report rendering."""

from repro.bench.experiments import (
    EXPERIMENTS,
    run_table1,
    run_fig1,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_ksweep,
    run_quality,
    run_reorder,
)
from repro.bench.report import format_table
from repro.bench.summary import Anchor, collect_anchors, render_scorecard

__all__ = [
    "EXPERIMENTS",
    "run_table1",
    "run_fig1",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_ksweep",
    "run_quality",
    "run_reorder",
    "format_table",
    "Anchor",
    "collect_anchors",
    "render_scorecard",
]
