"""Feature extraction for the learned variant selector.

The execution context = target architecture + input dataset (§III-D).
Device features capture what the optimizations interact with (scratchpad
presence, SIMT vs SIMD width, register budget); dataset features capture
the workload shape the kernels see (mean/max row length, skew, size).
All features are log- or indicator-scaled so distances are meaningful
across datasets that differ by orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.clsim.device import DeviceSpec
from repro.sparse.stats import degree_stats

__all__ = ["FEATURE_NAMES", "context_features"]

FEATURE_NAMES: tuple[str, ...] = (
    "log_rows",
    "log_cols",
    "log_nnz",
    "log_mean_row_nnz",
    "log_mean_col_nnz",
    "row_gini",
    "col_gini",
    "log_hw_width",
    "has_scratchpad",
    "log_registers",
    "log_compute_units",
    "log_clock",
    "log_bandwidth",
)


def context_features(
    device: DeviceSpec,
    row_lengths: np.ndarray,
    col_lengths: np.ndarray,
) -> np.ndarray:
    """Feature vector for one (device, dataset) execution context."""
    rows = degree_stats(np.asarray(row_lengths))
    cols = degree_stats(np.asarray(col_lengths))
    if rows.nnz != cols.nnz:
        raise ValueError(
            f"row/col degree sequences disagree on nnz: {rows.nnz} vs {cols.nnz}"
        )
    eps = 1e-12
    feats = np.array(
        [
            np.log10(rows.count + eps),
            np.log10(cols.count + eps),
            np.log10(rows.nnz + eps),
            np.log10(rows.mean + eps),
            np.log10(cols.mean + eps),
            rows.gini,
            cols.gini,
            np.log2(device.hw_width),
            1.0 if device.has_scratchpad else 0.0,
            np.log2(device.registers_per_thread),
            np.log2(device.compute_units),
            np.log2(device.clock_ghz),
            np.log2(device.global_bandwidth_gbs),
        ],
        dtype=np.float64,
    )
    assert feats.size == len(FEATURE_NAMES)
    return feats
