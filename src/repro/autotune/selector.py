"""Learned code-variant selector (the paper's stated future work, §VII).

"We will introduce the machine learning technique to select an
appropriate code variant according to the target architecture and input
dataset."  Implemented as a k-nearest-neighbour classifier over
standardized context features, trained on exhaustive-search outcomes for
a grid of synthetic dataset shapes on each device — small, dependency-free
and easily inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.features import context_features
from repro.autotune.search import exhaustive_search
from repro.clsim.calibration import Calibration
from repro.clsim.device import ALL_DEVICES, DeviceSpec
from repro.datasets.catalog import DatasetSpec
from repro.datasets.synthetic import degree_sequences
from repro.kernels.variants import Variant

__all__ = ["VariantSelector", "train_default_selector"]


@dataclass(frozen=True)
class _Example:
    features: np.ndarray
    label: tuple[str, int]  # (variant name, ws)
    variant: Variant
    ws: int


class VariantSelector:
    """k-NN classifier from context features to (variant, ws)."""

    def __init__(self, n_neighbors: int = 3) -> None:
        if n_neighbors <= 0:
            raise ValueError("n_neighbors must be positive")
        self.n_neighbors = n_neighbors
        self._examples: list[_Example] = []
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        contexts: list[tuple[DeviceSpec, np.ndarray, np.ndarray]],
        k: int = 10,
        calibration: Calibration | None = None,
    ) -> "VariantSelector":
        """Label each context by exhaustive search and memorize it."""
        if not contexts:
            raise ValueError("need at least one training context")
        self._examples = []
        for device, rows, cols in contexts:
            result = exhaustive_search(
                device, rows, cols, k=k, calibration=calibration
            )
            self._examples.append(
                _Example(
                    features=context_features(device, rows, cols),
                    label=(result.best_variant.name, result.best_ws),
                    variant=result.best_variant,
                    ws=result.best_ws,
                )
            )
        feats = np.stack([e.features for e in self._examples])
        self._mean = feats.mean(axis=0)
        self._std = feats.std(axis=0)
        self._std[self._std == 0] = 1.0
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._examples)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        device: DeviceSpec,
        row_lengths: np.ndarray,
        col_lengths: np.ndarray,
    ) -> tuple[Variant, int]:
        """Predicted (variant, work-group size) for a new context."""
        if not self.is_fitted:
            raise RuntimeError("selector is not fitted")
        query = (context_features(device, row_lengths, col_lengths) - self._mean) / self._std
        feats = (np.stack([e.features for e in self._examples]) - self._mean) / self._std
        dists = np.linalg.norm(feats - query, axis=1)
        kn = min(self.n_neighbors, len(self._examples))
        nearest = np.argsort(dists)[:kn]
        # Majority vote over (variant, ws) labels, distance-weighted ties.
        votes: dict[tuple[str, int], float] = {}
        for idx in nearest:
            e = self._examples[idx]
            votes[e.label] = votes.get(e.label, 0.0) + 1.0 / (1.0 + dists[idx])
        best_label = max(votes, key=votes.get)
        for idx in nearest:
            e = self._examples[idx]
            if e.label == best_label:
                return e.variant, e.ws
        raise AssertionError("unreachable: winning label must come from a neighbour")


def _training_grid(seed: int = 13) -> list[DatasetSpec]:
    """A grid of synthetic dataset shapes spanning the recommender regime."""
    shapes = [
        (5_000, 8_000, 120_000),
        (20_000, 4_000, 900_000),
        (60_000, 60_000, 4_000_000),
        (200_000, 20_000, 20_000_000),
        (800_000, 50_000, 40_000_000),
        (30_000, 2_000, 2_500_000),
        (2_000, 30_000, 300_000),
    ]
    specs = []
    for i, (m, n, nnz) in enumerate(shapes):
        specs.append(
            DatasetSpec(
                name=f"grid-{i}",
                abbr=f"G{i}",
                m=m,
                n=n,
                nnz=nnz,
                row_alpha=0.7 + 0.05 * (i % 3),
                col_alpha=0.9 + 0.05 * (i % 4),
                rating_min=1.0,
                rating_max=5.0,
            )
        )
    return specs


def train_default_selector(
    k: int = 10,
    devices: tuple[DeviceSpec, ...] = ALL_DEVICES,
    calibration: Calibration | None = None,
    seed: int = 13,
) -> VariantSelector:
    """Train a selector on the synthetic grid across all devices."""
    contexts = []
    for spec in _training_grid(seed):
        rows, cols = degree_sequences(spec, seed=seed)
        for device in devices:
            contexts.append((device, rows, cols))
    return VariantSelector().fit(contexts, k=k, calibration=calibration)
