"""Empirical code-variant selection (§III-D).

"In this context, we use an empirical approach to select a right code
variant.  In total, we provide 8 code variants of the ALS solver by
combining different optimizations."  The search measures every variant
(and optionally every work-group size) on the target execution context —
here, measuring = evaluating the device cost model on the dataset shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clsim.calibration import Calibration
from repro.clsim.costmodel import CostModel
from repro.clsim.device import DeviceSpec
from repro.kernels.variants import Variant, all_variants

__all__ = ["SearchResult", "exhaustive_search", "WS_CANDIDATES"]

#: The work-group sizes swept in Fig. 10.
WS_CANDIDATES: tuple[int, ...] = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of an exhaustive variant × work-group-size sweep."""

    best_variant: Variant
    best_ws: int
    best_seconds: float
    table: dict[tuple[str, int], float]  # (variant name, ws) → seconds

    def ranking(self) -> list[tuple[str, int, float]]:
        """All configurations, fastest first."""
        return sorted(
            ((name, ws, t) for (name, ws), t in self.table.items()),
            key=lambda row: row[2],
        )

    def speedup_over_worst(self) -> float:
        worst = max(self.table.values())
        return worst / self.best_seconds if self.best_seconds > 0 else 1.0


def exhaustive_search(
    device: DeviceSpec,
    row_lengths: np.ndarray,
    col_lengths: np.ndarray,
    k: int = 10,
    iterations: int = 5,
    ws_candidates: tuple[int, ...] = WS_CANDIDATES,
    variants: tuple[Variant, ...] | None = None,
    calibration: Calibration | None = None,
) -> SearchResult:
    """Evaluate every (variant, ws) pair and return the fastest."""
    if not ws_candidates:
        raise ValueError("need at least one work-group size candidate")
    variants = variants or all_variants()
    cm = CostModel(device, calibration)
    table: dict[tuple[str, int], float] = {}
    best: tuple[float, Variant, int] | None = None
    for variant in variants:
        if variant.is_baseline:
            continue  # the flat mapping is not a tuning candidate
        for ws in ws_candidates:
            seconds = cm.training_time(
                row_lengths, col_lengths, k, ws, variant.flags, iterations
            )
            table[variant.name, ws] = seconds
            if best is None or seconds < best[0]:
                best = (seconds, variant, ws)
    assert best is not None
    return SearchResult(
        best_variant=best[1], best_ws=best[2], best_seconds=best[0], table=table
    )
