"""Empirical selection between the host-side assembly code variants.

The paper picks device code variants by *measuring* them on the target
execution context (§III-D) rather than predicting from first principles.
This module applies the same loop to the two host assembly strategies —
``scatter`` (legacy ``np.add.at``) vs ``binned`` (degree-binned batched
GEMM) — by timing both on a small row-prefix sample of the actual rating
matrix and caching the verdict per (shape, nnz, k) context, so an
``mode="auto"`` training run pays the measurement once, not per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.linalg import normal_equations as ne
from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled
from repro.sparse.csr import CSRMatrix

__all__ = [
    "AssemblyDecision",
    "measure_assembly",
    "select_assembly",
    "clear_decision_cache",
    "DEFAULT_SAMPLE_NNZ",
]

#: Non-zeros in the timing sample (further capped so the scatter probe's
#: (nnz, k, k) tensor stays under ~64 MB — the probe must never cost more
#: than the sweep it is trying to speed up).
DEFAULT_SAMPLE_NNZ = 40_000

_SCATTER_PROBE_BYTES = 64 << 20

_CACHE: dict[tuple[tuple[int, int], int, int, bool], "AssemblyDecision"] = {}


@dataclass(frozen=True)
class AssemblyDecision:
    """One measured scatter-vs-binned verdict for an execution context."""

    mode: str  # "binned" or "scatter" — the faster of the two
    binned_seconds: float
    scatter_seconds: float
    sample_rows: int
    sample_nnz: int
    weighted: bool = False  # measured the confidence-weighted (implicit) kernel

    @property
    def speedup(self) -> float:
        """How much faster the winner ran (>= 1)."""
        lo = min(self.binned_seconds, self.scatter_seconds)
        hi = max(self.binned_seconds, self.scatter_seconds)
        return hi / lo if lo > 0 else float("inf")


def _sample_rows(R: CSRMatrix, sample_nnz: int) -> CSRMatrix:
    """A row-prefix submatrix with roughly ``sample_nnz`` non-zeros."""
    if R.nnz <= sample_nnz:
        return R
    cut = max(1, int(np.searchsorted(R.row_ptr, sample_nnz, side="left")))
    end = int(R.row_ptr[cut])
    return CSRMatrix(
        (cut, R.ncols),
        R.value[:end],
        R.col_idx[:end],
        R.row_ptr[: cut + 1],
    )


def measure_assembly(
    R: CSRMatrix,
    k: int,
    lam: float = 0.1,
    sample_nnz: int | None = None,
    repeats: int = 1,
    seed: int = 0,
    weighted: bool = False,
) -> AssemblyDecision:
    """Time both assembly variants on a sample of ``R`` and pick a winner.

    The sample's derived structures (degree bins, expanded rows) are
    built before timing: a real training run reuses one matrix across
    every iteration, so the steady-state per-sweep cost is what matters.

    ``weighted=True`` times the confidence-weighted (implicit) kernels
    instead — the variants do the same work per non-zero either way, but
    the verdict is measured, not assumed, exactly like the paper's
    per-context variant selection.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if sample_nnz is None:
        sample_nnz = max(
            2048, min(DEFAULT_SAMPLE_NNZ, _SCATTER_PROBE_BYTES // max(1, k * k * 8))
        )
    S = _sample_rows(R, sample_nnz)
    rng = np.random.default_rng(seed)
    Y = rng.standard_normal((S.ncols, k))
    S.degree_bins(ne.DEFAULT_BIN_GROWTH)
    S.expanded_rows()
    kw = {}
    if weighted:
        # α = 1 probe weights: the kernels' cost does not depend on the
        # weight values, only on their presence.
        w = S.value.astype(np.float64)
        kw = dict(nnz_weight=w, rhs_nnz_value=w + 1.0)

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = perf_counter()
            fn(S, Y, lam, **kw)
            best = min(best, perf_counter() - t0)
        return best

    binned_seconds = best_of(ne.binned_normal_equations)
    scatter_seconds = best_of(ne.scatter_normal_equations)
    mode = "binned" if binned_seconds <= scatter_seconds else "scatter"
    return AssemblyDecision(
        mode=mode,
        binned_seconds=binned_seconds,
        scatter_seconds=scatter_seconds,
        sample_rows=S.nrows,
        sample_nnz=S.nnz,
        weighted=weighted,
    )


def select_assembly(
    R: CSRMatrix, k: int, lam: float = 0.1, weighted: bool = False
) -> str:
    """The measured-best assembly mode for ``(R, k)``, cached per context.

    Weighted (implicit) and unweighted kernels cache separate verdicts —
    they are different code variants with different constants.
    """
    key = (R.shape, R.nnz, int(k), bool(weighted))
    decision = _CACHE.get(key)
    if decision is None:
        decision = measure_assembly(R, k, lam, weighted=weighted)
        _CACHE[key] = decision
        if is_enabled():
            obs_metrics.inc("assembly.auto.measurements")
            obs_metrics.inc(f"assembly.auto.chose_{decision.mode}")
    return decision.mode


def clear_decision_cache() -> None:
    """Forget all cached verdicts (tests and re-tuning)."""
    _CACHE.clear()
