"""Empirical selection of the iALS++ subspace block size.

The right block width ``d`` is a hardware *and* shape question: smaller
blocks cut per-pass flops (``nnz·k·d`` assembly, ``d³`` solves) but pay
complement-prediction overhead (``nnz·(k−d)`` per block) and make less
progress per pass, and where the balance lands depends on k, the matrix
density, and the BLAS the host runs.  Following the paper's
measure-then-pick loop (§III-D) — the same scheme the assembly, solver,
and sharding autotuners use — this module *trains* a small synthetic
probe at every candidate width, reads the loss-vs-seconds curve each run
records (``IterationStats.elapsed_seconds``), and picks the width that
reached the common target loss fastest.  Verdicts are cached per
``(k, nnz/row bucket, dtype)`` so an ``"auto"`` training run pays the
measurement once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled

__all__ = [
    "BlockDecision",
    "block_candidates",
    "measure_blocks",
    "select_block_size",
    "cached_block_decisions",
    "clear_block_cache",
]

#: Probe corpus shape: large enough that per-iteration cost dominates
#: Python dispatch, small enough that a full candidate scan stays well
#: under a second at ML-scale k.
PROBE_ROWS = 384

_CACHE: dict[tuple[int, int, str], "BlockDecision"] = {}


@dataclass(frozen=True)
class BlockDecision:
    """One measured subspace-width verdict for a shape context."""

    block_size: int  # winning width (== k means full sweeps win)
    seconds_to_target: dict[int, float]  # probe time-to-target per width
    target_loss: float  # the common loss bar every candidate reached
    k: int
    nnz_bucket: int  # power-of-two nnz/row bucket
    dtype: str

    @property
    def speedup(self) -> float:
        """Winner's margin over full-k sweeps on the probe (>= 1 when
        a strict subspace wins)."""
        full = self.seconds_to_target.get(self.k)
        best = self.seconds_to_target[self.block_size]
        if full is None or best <= 0:
            return 1.0
        return full / best


def block_candidates(k: int) -> tuple[int, ...]:
    """Power-of-two widths below ``k`` plus ``k`` itself (full sweeps)."""
    if k <= 0:
        raise ValueError("k must be positive")
    cands = [d for d in (4, 8, 16, 32, 64) if d < k]
    return tuple(cands[-4:]) + (k,)


def _nnz_bucket(nnz_per_row: float) -> int:
    per_row = max(1, int(round(nnz_per_row)))
    return 1 << min(10, max(0, int(per_row - 1).bit_length()))


def _time_to_target(history, target: float) -> float:
    for stats in history:
        if stats.loss <= target:
            return max(stats.elapsed_seconds, 1e-9)
    return float("inf")


def measure_blocks(
    k: int,
    nnz_per_row: float,
    *,
    candidates: tuple[int, ...] | None = None,
    lam: float = 0.1,
    iterations: int = 4,
    probe_rows: int = PROBE_ROWS,
    seed: int = 0,
    compute_dtype: object | None = None,
) -> BlockDecision:
    """Train a synthetic probe at every candidate width; pick by
    measured time-to-target-loss.

    The target is the *loosest* final loss across candidates, so every
    width reached it and the comparison is purely about wall-seconds.
    """
    # Imported here: core.subspace resolves "auto" through this module.
    from repro.core.als import ALSConfig, train_als
    from repro.datasets.catalog import DatasetSpec
    from repro.datasets.synthetic import generate_ratings

    if k <= 0:
        raise ValueError("k must be positive")
    if nnz_per_row <= 0:
        raise ValueError("nnz_per_row must be positive")
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    cands = candidates if candidates is not None else block_candidates(k)
    cands = tuple(sorted({min(k, int(d)) for d in cands}))
    if any(d < 1 for d in cands):
        raise ValueError(f"block candidates must be >= 1, got {cands}")
    m = max(64, int(probe_rows))
    n = max(32, m // 3)
    nnz = int(min(m * max(1.0, nnz_per_row), m * n * 0.5))
    spec = DatasetSpec(
        name=f"blockprobe-k{k}", abbr="BPRB", m=m, n=n, nnz=nnz,
        row_alpha=0.9, col_alpha=0.9, rating_min=1.0, rating_max=5.0,
    )
    ratings = generate_ratings(spec, seed=seed)
    dtype = "float64" if compute_dtype is None else str(compute_dtype)
    histories: dict[int, list] = {}
    for d in cands:
        config = ALSConfig(
            k=k, lam=lam, iterations=iterations, seed=seed,
            assembly_dtype=None if compute_dtype is None else str(compute_dtype),
            block_size=None if d == k else d,
        )
        histories[d] = train_als(ratings, config).history
    target = max(h[-1].loss for h in histories.values())
    seconds = {d: _time_to_target(h, target) for d, h in histories.items()}
    winner = min(seconds, key=lambda d: (seconds[d], d))
    return BlockDecision(
        block_size=int(winner),
        seconds_to_target=seconds,
        target_loss=float(target),
        k=int(k),
        nnz_bucket=_nnz_bucket(nnz_per_row),
        dtype=dtype,
    )


def select_block_size(
    k: int,
    *,
    nnz_per_row: float | None = None,
    compute_dtype: object | None = None,
) -> int:
    """The measured-best subspace width for this shape, cached per
    ``(k, nnz/row bucket, dtype)``."""
    per_row = 64.0 if not nnz_per_row or nnz_per_row <= 0 else float(nnz_per_row)
    dtype = "float64" if compute_dtype is None else str(compute_dtype)
    key = (int(k), _nnz_bucket(per_row), dtype)
    decision = _CACHE.get(key)
    if decision is None:
        decision = measure_blocks(
            k, per_row, compute_dtype=compute_dtype
        )
        _CACHE[key] = decision
        if is_enabled():
            obs_metrics.inc("blocks.auto.measurements")
            obs_metrics.set_gauge("blocks.auto.block_size", decision.block_size)
    return decision.block_size


def cached_block_decisions() -> tuple[BlockDecision, ...]:
    """Every verdict this process has measured (profile output reads it)."""
    return tuple(_CACHE[key] for key in sorted(_CACHE))


def clear_block_cache() -> None:
    """Forget all cached verdicts (tests and re-tuning)."""
    _CACHE.clear()
