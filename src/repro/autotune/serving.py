"""Empirical selection of the serving engine's tile size and dtype.

The paper picks device code variants by *measuring* them on the target
execution context (§III-D); PRs 2–3 applied that loop to the host
assembly and the S3 solve.  This module applies it to the query path:
time the tiled top-N engine over a grid of ``(tile_bytes, dtype)``
candidates on synthetic factors shaped like the real catalog — the
verdict is the configuration with the highest users/sec, cached per
``(k, catalog-bucket)`` so a ``tile_bytes="auto"`` engine pays the
measurement once, not per query.

Catalog sizes are bucketed to powers of two: the best tile is driven by
cache footprint relative to the score-buffer working set, which moves
with ``k`` and only coarsely with the exact item count.

Note the dtype verdict is a *throughput* verdict: float32 scoring halves
memory traffic but rounds scores, so near-tied items can swap ranks
versus the float64 reference.  Engines default to float64; ``"auto"``
opts into the measured winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled

__all__ = [
    "ServingDecision",
    "measure_serving",
    "select_serving",
    "cached_serving_decisions",
    "clear_serving_cache",
    "TILE_CANDIDATES",
    "DTYPE_CANDIDATES",
    "PROBE_USERS",
]

#: Score-buffer budgets probed, spanning L2-resident to LLC-sized tiles.
TILE_CANDIDATES = (1 << 20, 1 << 22, 1 << 23, 1 << 24)

DTYPE_CANDIDATES = ("float32", "float64")

#: Users in the probe block: enough to amortize per-tile constants, small
#: enough that the probe never costs more than a handful of real queries.
PROBE_USERS = 512

_CACHE: dict[tuple[int, int], "ServingDecision"] = {}


@dataclass(frozen=True)
class ServingDecision:
    """One measured serving verdict for a ``(k, catalog-bucket)`` context."""

    tile_bytes: int  # winning score-buffer budget
    dtype: str  # winning scoring precision
    users_per_sec: dict[tuple[int, str], float]  # throughput per candidate
    n_items: int  # catalog size actually probed
    k: int
    n_bucket: int  # power-of-two bucket the catalog size hashed to

    @property
    def speedup(self) -> float:
        """Winner's margin over the slowest candidate (>= 1)."""
        hi = self.users_per_sec[(self.tile_bytes, self.dtype)]
        lo = min(self.users_per_sec.values())
        return hi / lo if lo > 0 else float("inf")


def _n_bucket(n_items: int) -> int:
    """Round up to a power of two (1 for empty catalogs)."""
    return 1 << max(0, int(n_items - 1).bit_length())


def measure_serving(
    n_items: int,
    k: int,
    top_n: int = 10,
    repeats: int = 2,
    seed: int = 0,
    tile_candidates: tuple[int, ...] = TILE_CANDIDATES,
    dtype_candidates: tuple[str, ...] = DTYPE_CANDIDATES,
) -> ServingDecision:
    """Time the engine over the candidate grid on synthetic factors."""
    from repro.serving.engine import TopNEngine

    if n_items <= 0 or k <= 0:
        raise ValueError("n_items and k must be positive")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    rng = np.random.default_rng(seed)
    users = min(PROBE_USERS, max(1, n_items))
    X = rng.standard_normal((users, k))
    Y = rng.standard_normal((n_items, k))
    ids = np.arange(users)
    throughput: dict[tuple[int, str], float] = {}
    for dtype in dtype_candidates:
        for tile_bytes in tile_candidates:
            engine = TopNEngine(X, Y, tile_bytes=tile_bytes, dtype=dtype)
            engine.query(ids[:8], n=top_n)  # warm the cast + first tiles
            best = float("inf")
            for _ in range(repeats):
                t0 = perf_counter()
                engine.query(ids, n=top_n)
                best = min(best, perf_counter() - t0)
            throughput[(int(tile_bytes), dtype)] = users / best if best > 0 else 0.0
    tile_bytes, dtype = max(throughput, key=throughput.get)
    return ServingDecision(
        tile_bytes=tile_bytes,
        dtype=dtype,
        users_per_sec=throughput,
        n_items=int(n_items),
        k=int(k),
        n_bucket=_n_bucket(n_items),
    )


def select_serving(n_items: int, k: int) -> ServingDecision:
    """The measured-best serving config for ``(n_items, k)``, cached."""
    key = (int(k), _n_bucket(n_items))
    decision = _CACHE.get(key)
    if decision is None:
        decision = measure_serving(n_items, k)
        _CACHE[key] = decision
        if is_enabled():
            obs_metrics.inc("serve.auto.measurements")
            obs_metrics.inc(f"serve.auto.chose_{decision.dtype}")
    return decision


def cached_serving_decisions() -> tuple[ServingDecision, ...]:
    """Every verdict this process has measured (profile output reads it)."""
    return tuple(_CACHE[key] for key in sorted(_CACHE))


def clear_serving_cache() -> None:
    """Forget all cached verdicts (tests and re-tuning)."""
    _CACHE.clear()
