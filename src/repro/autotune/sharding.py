"""Empirical selection of the out-of-core shard byte budget.

The paper picks device code variants by *measuring* candidates on the
target execution context (§III-D); earlier PRs applied that loop to the
host assembly, the S3 solve and the serving tile.  This module applies
it to the out-of-core training path: the shard byte budget trades IO
batching (big shards amortize memmap page faults and prefetch overhead)
against residency (small shards keep the sweep's working set inside the
cache hierarchy and the process inside its memory cap).  The sweet spot
depends on the store's shape and ``k``, so it is measured, not guessed:
time one X half-sweep per candidate budget on the actual store and keep
the fastest.

Budgets whose whole-row span plan collapses to the same shard count as
an already-measured candidate are skipped — on a store smaller than the
budget every candidate degenerates to one resident shard and there is
nothing to compare.

Verdicts cache per ``(k, nnz-bucket)`` like the other autotuners, so a
``tune-sharding``-style probe pays the measurement once per context.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled
from repro.parallel.executor import solve_bytes_per_row
from repro.sparse.shards import MIN_SHARD_BYTES, ShardStore

__all__ = [
    "ShardingDecision",
    "measure_sharding",
    "select_sharding",
    "cached_sharding_decisions",
    "clear_sharding_cache",
    "SHARD_CANDIDATES",
]

#: Shard byte budgets probed, spanning cache-resident to IO-amortizing.
SHARD_CANDIDATES = (16 << 20, 64 << 20, 256 << 20, 1 << 30)

_CACHE: dict[tuple[int, int], "ShardingDecision"] = {}


@dataclass(frozen=True)
class ShardingDecision:
    """One measured shard-budget verdict for a ``(k, nnz-bucket)`` context."""

    shard_bytes: int  # winning byte budget
    seconds: dict[int, float]  # sweep time per measured candidate
    shards: dict[int, int]  # resident-shard count per measured candidate
    nnz: int
    k: int
    nnz_bucket: int  # power-of-two bucket the store's nnz hashed to

    @property
    def speedup(self) -> float:
        """Winner's margin over the slowest candidate (>= 1)."""
        lo = self.seconds[self.shard_bytes]
        hi = max(self.seconds.values())
        return hi / lo if lo > 0 else float("inf")


def _nnz_bucket(nnz: int) -> int:
    """Round up to a power of two (1 for empty stores)."""
    return 1 << max(0, int(nnz - 1).bit_length())


def measure_sharding(
    store: ShardStore,
    k: int = 10,
    repeats: int = 1,
    seed: int = 0,
    candidates: tuple[int, ...] = SHARD_CANDIDATES,
) -> ShardingDecision:
    """Time one X half-sweep per candidate budget on the actual store."""
    from repro.kernels.fastpath import fast_half_sweep

    if k <= 0:
        raise ValueError("k must be positive")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if not candidates:
        raise ValueError("candidates must be non-empty")
    rng = np.random.default_rng(seed)
    n = store.shape[1]
    Y = rng.uniform(-0.1, 0.1, size=(n, k))
    extra = solve_bytes_per_row(k)
    seconds: dict[int, float] = {}
    shards: dict[int, int] = {}
    seen_plans: set[int] = set()
    for budget in sorted(int(b) for b in candidates):
        if budget < MIN_SHARD_BYTES:
            raise ValueError(
                f"candidate budgets must be >= {MIN_SHARD_BYTES}, got {budget}"
            )
        view = ShardStore.open(store.directory, shard_bytes=budget).rows
        n_spans = len(view.shards(extra))
        if n_spans in seen_plans:
            continue  # identical span plan — nothing new to measure
        seen_plans.add(n_spans)
        fast_half_sweep(view, Y, 0.1)  # warm the page cache / first faults
        best = float("inf")
        for _ in range(repeats):
            t0 = perf_counter()
            fast_half_sweep(view, Y, 0.1)
            best = min(best, perf_counter() - t0)
        view.release_pages()
        seconds[budget] = best
        shards[budget] = n_spans
    winner = min(seconds, key=seconds.get)
    return ShardingDecision(
        shard_bytes=winner,
        seconds=seconds,
        shards=shards,
        nnz=store.nnz,
        k=int(k),
        nnz_bucket=_nnz_bucket(store.nnz),
    )


def select_sharding(store: ShardStore, k: int = 10) -> ShardingDecision:
    """The measured-best shard budget for this store and ``k``, cached."""
    key = (int(k), _nnz_bucket(store.nnz))
    decision = _CACHE.get(key)
    if decision is None:
        decision = measure_sharding(store, k)
        _CACHE[key] = decision
        if is_enabled():
            obs_metrics.inc("shard.auto.measurements")
    return decision


def cached_sharding_decisions() -> tuple[ShardingDecision, ...]:
    """Every verdict this process has measured."""
    return tuple(_CACHE[key] for key in sorted(_CACHE))


def clear_sharding_cache() -> None:
    """Forget all cached verdicts (tests and re-tuning)."""
    _CACHE.clear()
