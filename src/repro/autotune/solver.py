"""Empirical selection between the S3 batched-solve code variants.

The paper picks device code variants by *measuring* them on the target
execution context (§III-D); PR 2 applied that loop to the host S1/S2
assembly, and this module applies it to S3: time the ``cholesky``
reference, the ``gaussian`` comparator and the ``lapack`` batched
variant on a synthetic SPD stack shaped like the real solve —
``(batch, k, k)`` normal matrices ``WᵀW + λI`` — and cache the verdict
per ``(k, batch-bucket)`` context, so a ``solver="auto"`` training run
pays the measurement once, not per sweep.

Batch sizes are bucketed to powers of two: the crossover between the
variants moves with ``k`` (flops per system) and only coarsely with the
batch (fixed per-call overhead amortized), so neighboring batch sizes
share a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.linalg.solvers import SOLVERS
from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled

__all__ = [
    "SolverDecision",
    "measure_solvers",
    "select_solver",
    "cached_solver_decisions",
    "clear_solver_cache",
    "MAX_PROBE_BATCH",
]

#: Probe stacks are capped at this many systems: per-system cost is what
#: the measurement estimates, and a 512-system stack already amortizes
#: every per-call constant the variants differ in.
MAX_PROBE_BATCH = 512

_CACHE: dict[tuple[int, int], "SolverDecision"] = {}


@dataclass(frozen=True)
class SolverDecision:
    """One measured S3 verdict for a ``(k, batch-bucket)`` context."""

    solver: str  # the fastest variant's name
    seconds: dict[str, float]  # best-of-N probe time per variant
    k: int
    batch_bucket: int  # power-of-two bucket the batch size hashed to
    probe_batch: int  # systems actually timed

    @property
    def speedup(self) -> float:
        """Winner's margin over the slowest variant (>= 1)."""
        lo = self.seconds[self.solver]
        hi = max(self.seconds.values())
        return hi / lo if lo > 0 else float("inf")


def _batch_bucket(batch: int) -> int:
    """Round up to a power of two (1 for empty batches)."""
    return 1 << max(0, int(batch - 1).bit_length())


def _spd_stack(
    k: int, batch: int, lam: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    W = rng.standard_normal((batch, k + 3, k))
    A = W.transpose(0, 2, 1) @ W
    idx = np.arange(k)
    A[:, idx, idx] += lam
    b = rng.standard_normal((batch, k))
    return A, b


def measure_solvers(
    k: int,
    batch: int,
    lam: float = 0.1,
    repeats: int = 2,
    seed: int = 0,
) -> SolverDecision:
    """Time every registered S3 variant on an ALS-shaped SPD stack."""
    if k <= 0:
        raise ValueError("k must be positive")
    if batch <= 0:
        raise ValueError("batch must be positive")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    probe_batch = min(int(batch), MAX_PROBE_BATCH)
    A, b = _spd_stack(k, probe_batch, lam, seed)
    seconds: dict[str, float] = {}
    for name, fn in SOLVERS.items():
        best = float("inf")
        for _ in range(repeats):
            t0 = perf_counter()
            fn(A, b)
            best = min(best, perf_counter() - t0)
        seconds[name] = best
    winner = min(seconds, key=seconds.get)
    return SolverDecision(
        solver=winner,
        seconds=seconds,
        k=int(k),
        batch_bucket=_batch_bucket(batch),
        probe_batch=probe_batch,
    )


def select_solver(k: int, batch: int, lam: float = 0.1) -> str:
    """The measured-best S3 solver for ``(k, batch)``, cached per bucket."""
    key = (int(k), _batch_bucket(batch))
    decision = _CACHE.get(key)
    if decision is None:
        decision = measure_solvers(k, batch, lam)
        _CACHE[key] = decision
        if is_enabled():
            obs_metrics.inc("solver.auto.measurements")
            obs_metrics.inc(f"solver.auto.chose_{decision.solver}")
    return decision.solver


def cached_solver_decisions() -> tuple[SolverDecision, ...]:
    """Every verdict this process has measured (profile output reads it)."""
    return tuple(_CACHE[key] for key in sorted(_CACHE))


def clear_solver_cache() -> None:
    """Forget all cached verdicts (tests and re-tuning)."""
    _CACHE.clear()
