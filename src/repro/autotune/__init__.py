"""Code-variant selection (§III-D + the paper's stated future work).

``search`` implements the paper's empirical approach: run every variant ×
work-group size on the target execution context and keep the fastest.
``selector`` implements the machine-learning approach the paper proposes
as future work: learn the best configuration from (device, dataset)
features so new contexts don't need an exhaustive sweep.
``assembly`` applies the measure-then-pick loop to the *host* assembly
variants (scatter vs degree-binned normal equations); ``serving``
applies it to the query path (top-N tile size and scoring precision).
"""

from repro.autotune.search import SearchResult, exhaustive_search, WS_CANDIDATES
from repro.autotune.features import context_features, FEATURE_NAMES
from repro.autotune.selector import VariantSelector, train_default_selector
from repro.autotune.assembly import (
    AssemblyDecision,
    measure_assembly,
    select_assembly,
    clear_decision_cache,
)
from repro.autotune.solver import (
    SolverDecision,
    measure_solvers,
    select_solver,
    cached_solver_decisions,
    clear_solver_cache,
)
from repro.autotune.serving import (
    ServingDecision,
    measure_serving,
    select_serving,
    cached_serving_decisions,
    clear_serving_cache,
)
from repro.autotune.sharding import (
    ShardingDecision,
    measure_sharding,
    select_sharding,
    cached_sharding_decisions,
    clear_sharding_cache,
)
from repro.autotune.blocks import (
    BlockDecision,
    block_candidates,
    measure_blocks,
    select_block_size,
    cached_block_decisions,
    clear_block_cache,
)

__all__ = [
    "BlockDecision",
    "block_candidates",
    "measure_blocks",
    "select_block_size",
    "cached_block_decisions",
    "clear_block_cache",
    "ShardingDecision",
    "measure_sharding",
    "select_sharding",
    "cached_sharding_decisions",
    "clear_sharding_cache",
    "ServingDecision",
    "measure_serving",
    "select_serving",
    "cached_serving_decisions",
    "clear_serving_cache",
    "SolverDecision",
    "measure_solvers",
    "select_solver",
    "cached_solver_decisions",
    "clear_solver_cache",
    "SearchResult",
    "exhaustive_search",
    "WS_CANDIDATES",
    "context_features",
    "FEATURE_NAMES",
    "VariantSelector",
    "train_default_selector",
    "AssemblyDecision",
    "measure_assembly",
    "select_assembly",
    "clear_decision_cache",
]
