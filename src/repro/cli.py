"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    repro-als list                 # available experiments
    repro-als fig7                 # reproduce Fig. 7
    repro-als fig7 --metrics m.json  # + machine-readable metrics dump
    repro-als all                  # everything, in paper order
    repro-als tune gpu NTFX        # exhaustive variant search (§III-D)
    repro-als tune-assembly ML1M   # measure scatter vs binned host assembly
    repro-als tune-solver ML1M     # measure the S3 solver variants
    repro-als tune-serving ML1M    # measure serving tile size x dtype
    repro-als recommend ML1M --n 10 --tile-bytes 8388608
                                   # train on a synthetic ML1M sample and
                                   # serve top-N through the tiled engine
    repro-als recommend ML1M --algorithm implicit --alpha 40
                                   # implicit-feedback (Hu-Koren) training
                                   # on the same binned/tiled substrate
    repro-als profile ML10M --device gpu --trace t.json --metrics m.json
                                   # instrumented real training run:
                                   # measured S1/S2/S3 hotspot table, top
                                   # spans, and a merged Perfetto trace of
                                   # host spans + simulated kernels

The host S1/S2 assembly variant is selectable everywhere via
``--assembly {binned,scatter,auto}``, ``--tile-nnz N`` and
``--assembly-dtype {float32,float64}`` (or the ``REPRO_ASSEMBLY``,
``REPRO_TILE_NNZ``, ``REPRO_ASSEMBLY_DTYPE`` environment variables).
The S3 solve and the half-sweep parallelism are selectable the same
way: ``--solver {cholesky,gaussian,lapack,auto}`` (``REPRO_SOLVER``)
and ``--workers {auto,N}`` (``REPRO_WORKERS``).  The serving engine's
tile budget and score precision follow the same pattern:
``--tile-bytes {B,auto}`` (``REPRO_SERVE_TILE_BYTES``) and
``--serve-dtype {float32,float64,auto}`` (``REPRO_SERVE_DTYPE``).
"""

from __future__ import annotations

import argparse
import sys

from repro.autotune.search import exhaustive_search
from repro.bench.experiments import EXPERIMENTS, run_with_metrics
from repro.clsim.device import device_by_name
from repro.datasets.catalog import dataset_by_name
from repro.datasets.synthetic import degree_sequences
from repro.kernels.opencl_source import generate_program
from repro.kernels.variants import recommended_variant

__all__ = ["main"]


def _run_experiment(name: str, metrics_path: str | None = None) -> int:
    runner = EXPERIMENTS.get(name)
    if runner is None:
        print(f"unknown experiment {name!r}; try: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if metrics_path is not None:
        result, _ = run_with_metrics(name, metrics_path)
        print(result.render())
        print(f"metrics written to {metrics_path}")
    else:
        print(runner().render())
    return 0


def _run_tune(device_name: str, dataset_name: str, k: int) -> int:
    device = device_by_name(device_name)
    spec = dataset_by_name(dataset_name)
    rows, cols = degree_sequences(spec)
    result = exhaustive_search(device, rows, cols, k=k)
    print(f"exhaustive search on {device} / {spec.abbr} (k={k}):")
    for name, ws, seconds in result.ranking()[:10]:
        print(f"  {name:28s} ws={ws:<4d} {seconds:9.3f} s")
    print(
        f"best: {result.best_variant.name} @ ws={result.best_ws} "
        f"({result.best_seconds:.3f} s, {result.speedup_over_worst():.2f}x over worst)"
    )
    return 0


def _run_tune_assembly(ns: argparse.Namespace) -> int:
    if len(ns.args) != 1:
        print("usage: repro-als tune-assembly <dataset> [--k K] [--scale S]",
              file=sys.stderr)
        return 2
    from repro.autotune.assembly import measure_assembly
    from repro.sparse.csr import CSRMatrix

    try:
        spec = dataset_by_name(ns.args[0])
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    scale = ns.scale if ns.scale is not None else min(1.0, 500_000 / spec.nnz)
    spec = spec.scaled(scale)
    from repro.datasets.synthetic import generate_ratings as _gen

    R = CSRMatrix.from_coo(_gen(spec, seed=ns.seed))
    decision = measure_assembly(R, k=ns.k)
    print(f"assembly variants on {spec.abbr} (scale={scale:g}, k={ns.k}), "
          f"measured on a {decision.sample_rows}-row / "
          f"{decision.sample_nnz}-nnz sample:")
    print(f"  binned  {decision.binned_seconds * 1e3:9.2f} ms")
    print(f"  scatter {decision.scatter_seconds * 1e3:9.2f} ms")
    print(f"best: {decision.mode} ({decision.speedup:.2f}x over the other)")
    return 0


def _run_tune_solver(ns: argparse.Namespace) -> int:
    if len(ns.args) > 1:
        print("usage: repro-als tune-solver [<dataset>] [--k K] [--batch N]",
              file=sys.stderr)
        return 2
    from repro.autotune.solver import measure_solvers

    batch = ns.batch
    label = f"batch={batch}" if batch is not None else None
    if ns.args:
        try:
            spec = dataset_by_name(ns.args[0])
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if batch is None:
            batch = spec.m  # one system per (occupied) row of the sweep
        label = f"{spec.abbr} (m={spec.m}, batch={batch})"
    elif batch is None:
        batch = 4096
        label = f"batch={batch}"
    decision = measure_solvers(k=ns.k, batch=batch, seed=ns.seed)
    print(f"S3 solver variants for {label}, k={ns.k}, "
          f"measured on a {decision.probe_batch}-system probe:")
    for name, seconds in sorted(decision.seconds.items(), key=lambda kv: kv[1]):
        per = seconds / decision.probe_batch * 1e6
        print(f"  {name:9s} {seconds * 1e3:9.2f} ms  ({per:8.2f} us/system)")
    print(f"best: {decision.solver} ({decision.speedup:.2f}x over the slowest); "
          f"cached for (k={decision.k}, batch<={decision.batch_bucket})")
    return 0


def _run_tune_serving(ns: argparse.Namespace) -> int:
    if len(ns.args) > 1:
        print("usage: repro-als tune-serving [<dataset>] [--k K]", file=sys.stderr)
        return 2
    from repro.autotune.serving import measure_serving

    if ns.args:
        try:
            spec = dataset_by_name(ns.args[0])
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        n_items, label = spec.n, f"{spec.abbr} (n={spec.n})"
    else:
        n_items, label = 4096, "n=4096"
    decision = measure_serving(n_items, ns.k, top_n=ns.n, seed=ns.seed)
    print(f"serving engine candidates for {label}, k={ns.k}, top-{ns.n}:")
    ranked = sorted(
        decision.users_per_sec.items(), key=lambda kv: kv[1], reverse=True
    )
    for (tile_bytes, dtype), ups in ranked:
        print(f"  tile={tile_bytes >> 20:3d} MB  {dtype:8s} {ups:12.0f} users/s")
    print(
        f"best: tile={decision.tile_bytes} bytes, {decision.dtype} "
        f"({decision.speedup:.2f}x over the slowest); cached for "
        f"(k={decision.k}, n<={decision.n_bucket})"
    )
    return 0


def _run_recommend(ns: argparse.Namespace) -> int:
    if len(ns.args) != 1:
        print("usage: repro-als recommend <dataset> [--n N] [--users U] [--k K]"
              " [--algorithm als|als-wr|implicit] [--alpha A]"
              " [--tile-bytes B] [--serve-dtype D] [--scale S] [--iterations I]",
              file=sys.stderr)
        return 2
    from time import perf_counter

    from repro.api import Recommender
    from repro.datasets.synthetic import generate_ratings

    try:
        spec = dataset_by_name(ns.args[0])
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    scale = ns.scale if ns.scale is not None else min(1.0, 500_000 / spec.nnz)
    spec = spec.scaled(scale)
    ratings = generate_ratings(spec, seed=ns.seed)
    rec = Recommender(
        k=ns.k, iterations=ns.iterations, seed=ns.seed,
        algorithm=ns.algorithm, alpha=ns.alpha,
    ).fit(ratings)
    engine = rec.engine()
    users = list(range(min(ns.users, spec.m)))
    t0 = perf_counter()
    result = rec.recommend_batch(users, n_items=ns.n)
    seconds = perf_counter() - t0
    print(
        f"top-{ns.n} on {spec.abbr} scale={scale:g} (m={spec.m}, n={spec.n}), "
        f"k={ns.k}: tile={engine.tile_items()} items "
        f"({engine.tile_bytes} B budget, {engine.dtype_name})"
    )
    for pos, user in enumerate(users):
        row = ", ".join(f"{i}:{s:.2f}" for i, s in result.row(pos)[: ns.n])
        print(f"  user {user:>6d}: {row}")
    if seconds > 0:
        print(f"{len(users)} users in {seconds * 1e3:.1f} ms "
              f"({len(users) / seconds:,.0f} users/s, "
              f"peak tile {engine.peak_tile_bytes} B)")
    return 0


def _run_profile(ns: argparse.Namespace) -> int:
    if len(ns.args) != 1:
        print("usage: repro-als profile <dataset> [--device D] [--trace T.json]"
              " [--metrics M.json] [--scale S] [--iterations N]", file=sys.stderr)
        return 2
    from repro.obs.profiler import profile_training, render_report

    try:
        report = profile_training(
            ns.args[0],
            device=ns.device,
            k=ns.k,
            iterations=ns.iterations,
            scale=ns.scale,
            seed=ns.seed,
            algorithm=ns.algorithm,
            solver=ns.solver,
            workers=ns.workers,
            alpha=ns.alpha,
        )
    except (KeyError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_report(report, top=ns.top))
    if ns.trace:
        report.write_trace(ns.trace)
        print(f"\ntrace written to {ns.trace} (open at https://ui.perfetto.dev)")
    if ns.metrics:
        report.write_metrics(ns.metrics)
        print(f"metrics written to {ns.metrics}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-als",
        description="Reproduce the IPDPSW'17 portable-ALS evaluation.",
    )
    parser.add_argument(
        "command",
        help="experiment id (table1, fig1, fig6..fig10, ksweep), 'all', 'list', "
        "'summary', 'tune', 'tune-assembly', 'tune-solver', 'tune-serving', "
        "'recommend', 'emit-cl' or 'profile'",
    )
    parser.add_argument(
        "args", nargs="*",
        help="for tune: <device> <dataset>; for profile/tune-assembly/"
        "tune-solver/tune-serving/recommend: <dataset>",
    )
    parser.add_argument("--k", type=int, default=10, help="latent factor (default 10)")
    parser.add_argument(
        "--device", default=None, help="profile: also simulate on this device (cpu/gpu/mic)"
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="profile: write the merged Perfetto/Chrome trace JSON here",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the run's metrics JSON here (profile and experiments)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="profile: dataset scale in (0,1]; default auto-shrinks to a fast run",
    )
    parser.add_argument(
        "--iterations", type=int, default=5, help="profile: ALS iterations (default 5)"
    )
    parser.add_argument(
        "--algorithm", default="als", choices=("als", "als-wr", "implicit"),
        help="profile/recommend: trainer (default als; 'implicit' = "
        "confidence-weighted implicit feedback)",
    )
    parser.add_argument(
        "--alpha", type=float, default=40.0,
        help="implicit: confidence slope c = 1 + alpha*r (default 40)",
    )
    parser.add_argument("--seed", type=int, default=7, help="profile: RNG seed")
    parser.add_argument(
        "--top", type=int, default=10, help="profile: top-N spans to print (default 10)"
    )
    parser.add_argument(
        "--assembly", default=None, choices=("binned", "scatter", "auto"),
        help="S1/S2 assembly code variant (default: binned)",
    )
    parser.add_argument(
        "--tile-nnz", type=int, default=None, metavar="N",
        help="assembly tile budget: max non-zeros gathered per tile",
    )
    parser.add_argument(
        "--assembly-dtype", default=None, choices=("float32", "float64"),
        help="assembly compute precision (accumulation stays float64)",
    )
    parser.add_argument(
        "--solver", default=None, choices=("cholesky", "gaussian", "lapack", "auto"),
        help="S3 batched-solve code variant (default: cholesky reference)",
    )
    parser.add_argument(
        "--workers", default=None, metavar="N",
        help="half-sweep parallelism: 'auto' = one worker per core, or a "
        "thread count (default: serial)",
    )
    parser.add_argument(
        "--batch", type=int, default=None,
        help="tune-solver: systems per batched solve (default: dataset rows)",
    )
    parser.add_argument(
        "--n", type=int, default=10,
        help="recommend/tune-serving: recommendations per user (default 10)",
    )
    parser.add_argument(
        "--users", type=int, default=5,
        help="recommend: how many users to print (default 5)",
    )
    parser.add_argument(
        "--tile-bytes", default=None, metavar="B",
        help="serving tile budget: bytes of score buffer per user block "
        "('auto' = measure; default 8 MB)",
    )
    parser.add_argument(
        "--serve-dtype", default=None, choices=("float32", "float64", "auto"),
        help="serving score precision (default: float64; 'auto' = measure)",
    )
    ns = parser.parse_args(argv)

    if ns.assembly or ns.tile_nnz or ns.assembly_dtype:
        from repro.linalg.normal_equations import configure_assembly

        configure_assembly(
            mode=ns.assembly, tile_nnz=ns.tile_nnz, compute_dtype=ns.assembly_dtype
        )
    if ns.solver:
        from repro.linalg.solvers import configure_solver

        configure_solver(ns.solver)
    if ns.tile_bytes or ns.serve_dtype:
        from repro.serving import configure_serving

        try:
            configure_serving(tile_bytes=ns.tile_bytes, dtype=ns.serve_dtype)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if ns.workers:
        from repro.parallel import configure_workers

        try:
            configure_workers(ns.workers)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    if ns.command == "summary":
        from repro.bench.summary import render_scorecard

        print(render_scorecard())
        return 0
    if ns.command == "list":
        print("\n".join(EXPERIMENTS))
        return 0
    if ns.command == "all":
        for name in EXPERIMENTS:
            print(f"\n===== {name} =====")
            _run_experiment(name)
        return 0
    if ns.command == "emit-cl":
        if len(ns.args) != 1:
            print("usage: repro-als emit-cl <device>", file=sys.stderr)
            return 2
        device = device_by_name(ns.args[0])
        variant = recommended_variant(device)
        print(generate_program(variant.flags, k=ns.k))
        return 0
    if ns.command == "tune":
        if len(ns.args) != 2:
            print("usage: repro-als tune <device> <dataset>", file=sys.stderr)
            return 2
        return _run_tune(ns.args[0], ns.args[1], ns.k)
    if ns.command == "tune-assembly":
        return _run_tune_assembly(ns)
    if ns.command == "tune-solver":
        return _run_tune_solver(ns)
    if ns.command == "tune-serving":
        return _run_tune_serving(ns)
    if ns.command == "recommend":
        return _run_recommend(ns)
    if ns.command == "profile":
        return _run_profile(ns)
    return _run_experiment(ns.command, metrics_path=ns.metrics)


def _entry() -> int:
    """Console-script entry: exit quietly when the pipe closes (| head)."""
    import os

    try:
        return main()
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(_entry())
