"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    repro-als list                 # available experiments
    repro-als fig7                 # reproduce Fig. 7
    repro-als fig7 --metrics m.json  # + machine-readable metrics dump
    repro-als all                  # everything, in paper order
    repro-als tune gpu NTFX        # exhaustive variant search (§III-D)
    repro-als tune-assembly ML1M   # measure scatter vs binned host assembly
    repro-als tune-solver ML1M     # measure the S3 solver variants
    repro-als tune-blocks ML1M --k 64
                                   # measure iALS++ subspace block widths
    repro-als tune-serving ML1M    # measure serving tile size x dtype
    repro-als tune-sharding NTFX   # measure out-of-core shard budgets
    repro-als train NTFX --out-of-core --scale 0.1 --save model
                                   # pack a shard store and train the
                                   # blocked out-of-core sweeps on it
    repro-als train /data/store --memmap-factors
                                   # train on a prebuilt shard store with
                                   # .npy-backed factor matrices
    repro-als recommend ML1M --n 10 --tile-bytes 8388608
                                   # train on a synthetic ML1M sample and
                                   # serve top-N through the tiled engine
    repro-als recommend ML1M --algorithm implicit --alpha 40
                                   # implicit-feedback (Hu-Koren) training
                                   # on the same binned/tiled substrate
    repro-als profile ML10M --device gpu --trace t.json --metrics m.json
                                   # instrumented real training run:
                                   # measured S1/S2/S3 hotspot table, top
                                   # spans, and a merged Perfetto trace of
                                   # host spans + simulated kernels
    repro-als perf-gate bench.json # compare fresh benchmark records
                                   # against the committed BENCH trajectory
                                   # (exit 1 on regression)
    repro-als grid run ci-quick --store grid.sqlite
                                   # run an experiment grid into a
                                   # resumable sqlite results store
                                   # (re-invoke after a crash: only the
                                   # cells still open execute)
    repro-als grid status          # per-grid cell counts + error detail
    repro-als grid export --out-dir exported
                                   # render done cells to gate-compatible
                                   # BENCH_grid_*.json + RESULTS.md
    repro-als grid reset-errors    # reopen errored cells for a re-run
    repro-als serve-metrics --metrics-port 9500
                                   # stand-alone Prometheus /metrics +
                                   # /healthz endpoint with the resource
                                   # sampler running
    repro-als serve ML1M --port 9600 --max-batch 32 --batch-window 0.002
                                   # long-lived recommendation service:
                                   # micro-batched /recommend with an LRU
                                   # result cache, plus /metrics (append
                                   # ?window=1 for per-interval latency
                                   # percentiles), /healthz and /stats
    repro-als serve model-ckpt/ --port 9600
                                   # serve a saved directory checkpoint
    repro-als recommend ML1M --metrics-port 9500
                                   # any command can expose its live
                                   # registry on an HTTP endpoint

The host S1/S2 assembly variant is selectable everywhere via
``--assembly {binned,scatter,auto}``, ``--tile-nnz N`` and
``--assembly-dtype {float32,float64}`` (or the ``REPRO_ASSEMBLY``,
``REPRO_TILE_NNZ``, ``REPRO_ASSEMBLY_DTYPE`` environment variables).
The S3 solve and the half-sweep parallelism are selectable the same
way: ``--solver {cholesky,gaussian,lapack,auto}`` (``REPRO_SOLVER``)
and ``--workers {auto,N}`` (``REPRO_WORKERS``).  Training can descend
on column subspaces instead of full k-wide rows:
``--block-size {d,auto}`` picks the iALS++ block width (``auto`` =
measure via :mod:`repro.autotune.blocks`) and ``--block-schedule
{paired,sweep}`` its visit order.  The serving engine's
tile budget and score precision follow the same pattern:
``--tile-bytes {B,auto}`` (``REPRO_SERVE_TILE_BYTES``) and
``--serve-dtype {float32,float64,auto}`` (``REPRO_SERVE_DTYPE``), as
does the out-of-core shard budget: ``--shard-bytes B``
(``REPRO_SHARD_BYTES``).
"""

from __future__ import annotations

import argparse
import sys

from repro.autotune.search import exhaustive_search
from repro.bench.experiments import EXPERIMENTS, run_with_metrics
from repro.clsim.device import device_by_name
from repro.datasets.catalog import dataset_by_name
from repro.datasets.synthetic import degree_sequences
from repro.kernels.opencl_source import generate_program
from repro.kernels.variants import recommended_variant

__all__ = ["main"]


def _run_experiment(name: str, metrics_path: str | None = None) -> int:
    runner = EXPERIMENTS.get(name)
    if runner is None:
        print(f"unknown experiment {name!r}; try: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if metrics_path is not None:
        result, _ = run_with_metrics(name, metrics_path)
        print(result.render())
        print(f"metrics written to {metrics_path}")
    else:
        print(runner().render())
    return 0


def _run_tune(device_name: str, dataset_name: str, k: int) -> int:
    device = device_by_name(device_name)
    spec = dataset_by_name(dataset_name)
    rows, cols = degree_sequences(spec)
    result = exhaustive_search(device, rows, cols, k=k)
    print(f"exhaustive search on {device} / {spec.abbr} (k={k}):")
    for name, ws, seconds in result.ranking()[:10]:
        print(f"  {name:28s} ws={ws:<4d} {seconds:9.3f} s")
    print(
        f"best: {result.best_variant.name} @ ws={result.best_ws} "
        f"({result.best_seconds:.3f} s, {result.speedup_over_worst():.2f}x over worst)"
    )
    return 0


def _run_tune_assembly(ns: argparse.Namespace) -> int:
    if len(ns.args) != 1:
        print("usage: repro-als tune-assembly <dataset> [--k K] [--scale S]",
              file=sys.stderr)
        return 2
    from repro.autotune.assembly import measure_assembly
    from repro.sparse.csr import CSRMatrix

    try:
        spec = dataset_by_name(ns.args[0])
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    scale = ns.scale if ns.scale is not None else min(1.0, 500_000 / spec.nnz)
    spec = spec.scaled(scale)
    from repro.datasets.synthetic import generate_ratings as _gen

    R = CSRMatrix.from_coo(_gen(spec, seed=ns.seed))
    decision = measure_assembly(R, k=ns.k)
    print(f"assembly variants on {spec.abbr} (scale={scale:g}, k={ns.k}), "
          f"measured on a {decision.sample_rows}-row / "
          f"{decision.sample_nnz}-nnz sample:")
    print(f"  binned  {decision.binned_seconds * 1e3:9.2f} ms")
    print(f"  scatter {decision.scatter_seconds * 1e3:9.2f} ms")
    print(f"best: {decision.mode} ({decision.speedup:.2f}x over the other)")
    return 0


def _run_tune_solver(ns: argparse.Namespace) -> int:
    if len(ns.args) > 1:
        print("usage: repro-als tune-solver [<dataset>] [--k K] [--batch N]",
              file=sys.stderr)
        return 2
    from repro.autotune.solver import measure_solvers

    batch = ns.batch
    label = f"batch={batch}" if batch is not None else None
    if ns.args:
        try:
            spec = dataset_by_name(ns.args[0])
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if batch is None:
            batch = spec.m  # one system per (occupied) row of the sweep
        label = f"{spec.abbr} (m={spec.m}, batch={batch})"
    elif batch is None:
        batch = 4096
        label = f"batch={batch}"
    decision = measure_solvers(k=ns.k, batch=batch, seed=ns.seed)
    print(f"S3 solver variants for {label}, k={ns.k}, "
          f"measured on a {decision.probe_batch}-system probe:")
    for name, seconds in sorted(decision.seconds.items(), key=lambda kv: kv[1]):
        per = seconds / decision.probe_batch * 1e6
        print(f"  {name:9s} {seconds * 1e3:9.2f} ms  ({per:8.2f} us/system)")
    print(f"best: {decision.solver} ({decision.speedup:.2f}x over the slowest); "
          f"cached for (k={decision.k}, batch<={decision.batch_bucket})")
    return 0


def _run_tune_blocks(ns: argparse.Namespace) -> int:
    if len(ns.args) > 1:
        print("usage: repro-als tune-blocks [<dataset>] [--k K]", file=sys.stderr)
        return 2
    from repro.autotune.blocks import measure_blocks

    if ns.args:
        try:
            spec = dataset_by_name(ns.args[0])
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        nnz_per_row = max(1, round(spec.nnz / spec.m))
        label = f"{spec.abbr} (~{nnz_per_row} ratings/row)"
    else:
        nnz_per_row, label = 64, "~64 ratings/row"
    decision = measure_blocks(ns.k, nnz_per_row, seed=ns.seed)
    print(f"iALS++ block widths for {label}, k={ns.k}, measured on a "
          f"synthetic convergence probe (time to shared target loss "
          f"{decision.target_loss:.4f}):")
    for d, seconds in sorted(decision.seconds_to_target.items()):
        tag = "full sweep" if d == decision.k else f"d={d}"
        marker = "  <- best" if d == decision.block_size else ""
        print(f"  {tag:12s} {seconds * 1e3:9.2f} ms{marker}")
    print(f"best: block_size={decision.block_size} "
          f"({decision.speedup:.2f}x over the full sweep); cached for "
          f"(k={decision.k}, nnz/row<={decision.nnz_bucket})")
    return 0


def _run_tune_serving(ns: argparse.Namespace) -> int:
    if len(ns.args) > 1:
        print("usage: repro-als tune-serving [<dataset>] [--k K]", file=sys.stderr)
        return 2
    from repro.autotune.serving import measure_serving

    if ns.args:
        try:
            spec = dataset_by_name(ns.args[0])
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        n_items, label = spec.n, f"{spec.abbr} (n={spec.n})"
    else:
        n_items, label = 4096, "n=4096"
    decision = measure_serving(n_items, ns.k, top_n=ns.n, seed=ns.seed)
    print(f"serving engine candidates for {label}, k={ns.k}, top-{ns.n}:")
    ranked = sorted(
        decision.users_per_sec.items(), key=lambda kv: kv[1], reverse=True
    )
    for (tile_bytes, dtype), ups in ranked:
        print(f"  tile={tile_bytes >> 20:3d} MB  {dtype:8s} {ups:12.0f} users/s")
    print(
        f"best: tile={decision.tile_bytes} bytes, {decision.dtype} "
        f"({decision.speedup:.2f}x over the slowest); cached for "
        f"(k={decision.k}, n<={decision.n_bucket})"
    )
    return 0


def _resolve_training_input(
    name_or_dir: str, ns: argparse.Namespace, *, out_of_core: bool
):
    """``(ratings_or_store, label)`` from a dataset name or a store dir.

    A path holding a shard store trains out of core directly; a dataset
    name generates a synthetic sample at ``--scale`` and, with
    ``--out-of-core``, packs it into a shard store first (``--store``
    names the directory, default a fresh temp dir).
    """
    import tempfile

    from repro.datasets.shardio import build_shard_store
    from repro.datasets.synthetic import generate_ratings
    from repro.sparse.shards import ShardStore, is_shard_store

    if is_shard_store(name_or_dir):
        store = ShardStore.open(name_or_dir)
        m, n = store.shape
        return store, f"{name_or_dir} (m={m}, n={n}, nnz={store.nnz})"
    spec = dataset_by_name(name_or_dir)
    scale = ns.scale if ns.scale is not None else min(1.0, 500_000 / spec.nnz)
    spec = spec.scaled(scale)
    ratings = generate_ratings(spec, seed=ns.seed)
    label = f"{spec.abbr} scale={scale:g} (m={spec.m}, n={spec.n}, nnz={ratings.nnz})"
    if not out_of_core:
        return ratings, label
    dest = ns.store or tempfile.mkdtemp(prefix="repro-store-")
    store = build_shard_store(dest, ratings, overwrite=ns.store is None)
    return store, f"{label} -> {dest}"


def _block_knobs(ns: argparse.Namespace) -> dict:
    """``--block-size``/``--block-schedule`` as Recommender kwargs."""
    knobs: dict = {}
    if ns.block_size is not None:
        raw = ns.block_size
        knobs["block_size"] = raw if raw == "auto" else int(raw)
    if ns.block_schedule is not None:
        knobs["block_schedule"] = ns.block_schedule
    return knobs


def _run_train(ns: argparse.Namespace) -> int:
    if len(ns.args) != 1:
        print("usage: repro-als train <dataset|store-dir> [--algorithm A]"
              " [--k K] [--iterations I] [--block-size D] [--out-of-core]"
              " [--memmap-factors] [--store DIR] [--save PATH] [--scale S]"
              " [--shard-bytes B]",
              file=sys.stderr)
        return 2
    from time import perf_counter

    from repro.api import Recommender
    from repro.sparse.shards import ShardStore

    try:
        source, label = _resolve_training_input(
            ns.args[0], ns, out_of_core=ns.out_of_core
        )
    except (KeyError, FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        rec = Recommender(
            k=ns.k, iterations=ns.iterations, seed=ns.seed,
            algorithm=ns.algorithm, alpha=ns.alpha, **_block_knobs(ns),
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if ns.memmap_factors:
        cfg = rec.config
        rec.config = type(cfg)(**{**_cfg_dict(cfg), "factors": "memmap"})
    mode = "out-of-core" if isinstance(source, ShardStore) else "in-RAM"
    print(f"training {ns.algorithm} on {label} [{mode}"
          f"{', memmap factors' if ns.memmap_factors else ''}]")
    t0 = perf_counter()
    if ns.metrics:
        from repro.obs import metrics as obs_metrics
        from repro.obs.export import metrics_payload
        from repro.obs.spans import capture

        import json
        from pathlib import Path

        obs_metrics.reset()
        with capture() as tracer:
            rec.fit(source)
        payload = metrics_payload(
            obs_metrics.get_registry(),
            tuple(tracer.records),
            meta={"command": "train", "dataset": label, "mode": mode},
        )
        Path(ns.metrics).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"metrics written to {ns.metrics}")
    else:
        rec.fit(source)
    seconds = perf_counter() - t0
    nnz = source.nnz
    print(f"{ns.iterations} iterations in {seconds:.2f} s "
          f"({nnz * ns.iterations / max(seconds, 1e-9):,.0f} ratings/s)")
    history = rec.model.history
    if history:
        last = history[-1]
        if hasattr(last, "train_rmse"):
            print(f"final train RMSE: {last.train_rmse:.4f}")
        else:
            print(f"final weighted loss: {last:.4f}")
    if ns.save:
        rec.save(ns.save)
        print(f"model saved to {ns.save}")
    return 0


def _cfg_dict(cfg) -> dict:
    from dataclasses import asdict

    return asdict(cfg)


def _run_tune_sharding(ns: argparse.Namespace) -> int:
    if len(ns.args) != 1:
        print("usage: repro-als tune-sharding <dataset|store-dir> [--k K]",
              file=sys.stderr)
        return 2
    from repro.autotune.sharding import measure_sharding
    from repro.sparse.shards import ShardStore

    try:
        source, label = _resolve_training_input(ns.args[0], ns, out_of_core=True)
    except (KeyError, FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    assert isinstance(source, ShardStore)
    decision = measure_sharding(source, k=ns.k)
    print(f"shard budgets on {label}, k={ns.k}:")
    for budget, seconds in sorted(decision.seconds.items()):
        print(f"  {budget >> 20:5d} MB  {decision.shards[budget]:3d} shards  "
              f"{seconds * 1e3:9.2f} ms/half-sweep")
    print(f"best: {decision.shard_bytes >> 20} MB "
          f"({decision.speedup:.2f}x over the slowest)")
    return 0


def _run_recommend(ns: argparse.Namespace) -> int:
    if len(ns.args) != 1:
        print("usage: repro-als recommend <dataset> [--n N] [--users U] [--k K]"
              " [--algorithm als|als-wr|implicit] [--alpha A]"
              " [--tile-bytes B] [--serve-dtype D] [--scale S] [--iterations I]",
              file=sys.stderr)
        return 2
    from time import perf_counter

    from repro.api import Recommender
    from repro.datasets.synthetic import generate_ratings
    from repro.obs import metrics as obs_metrics
    from repro.obs.spans import capture

    try:
        spec = dataset_by_name(ns.args[0])
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    scale = ns.scale if ns.scale is not None else min(1.0, 500_000 / spec.nnz)
    spec = spec.scaled(scale)
    ratings = generate_ratings(spec, seed=ns.seed)
    try:
        rec = Recommender(
            k=ns.k, iterations=ns.iterations, seed=ns.seed,
            algorithm=ns.algorithm, alpha=ns.alpha, **_block_knobs(ns),
        ).fit(ratings)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    engine = rec.engine()
    users = list(range(min(ns.users, spec.m)))
    # Serve each user as its own query under instrumentation: every
    # call lands one observation in the serve.topn.seconds sketch, so
    # the tail-latency report below is over real per-query samples.
    with capture():
        t0 = perf_counter()
        results = [rec.recommend_batch([user], n_items=ns.n) for user in users]
        seconds = perf_counter() - t0
    print(
        f"top-{ns.n} on {spec.abbr} scale={scale:g} (m={spec.m}, n={spec.n}), "
        f"k={ns.k}: tile={engine.tile_items()} items "
        f"({engine.tile_bytes} B budget, {engine.dtype_name})"
    )
    for user, result in zip(users, results):
        row = ", ".join(f"{i}:{s:.2f}" for i, s in result.row(0)[: ns.n])
        print(f"  user {user:>6d}: {row}")
    if seconds > 0:
        print(f"{len(users)} users in {seconds * 1e3:.1f} ms "
              f"({len(users) / seconds:,.0f} users/s, "
              f"peak tile {engine.peak_tile_bytes} B)")
    lat = obs_metrics.get_registry().quantile("serve.topn.seconds").summary()
    if lat["count"]:
        print(
            f"serve.topn latency over {lat['count']} queries: "
            f"p50={lat['p50'] * 1e3:.3f} ms  p95={lat['p95'] * 1e3:.3f} ms  "
            f"p99={lat['p99'] * 1e3:.3f} ms  max={lat['max'] * 1e3:.3f} ms"
        )
    return 0


def _run_profile(ns: argparse.Namespace) -> int:
    if len(ns.args) != 1:
        print("usage: repro-als profile <dataset> [--device D] [--trace T.json]"
              " [--metrics M.json] [--scale S] [--iterations N]", file=sys.stderr)
        return 2
    from repro.obs.profiler import profile_training, render_report

    try:
        report = profile_training(
            ns.args[0],
            device=ns.device,
            k=ns.k,
            iterations=ns.iterations,
            scale=ns.scale,
            seed=ns.seed,
            algorithm=ns.algorithm,
            solver=ns.solver,
            workers=ns.workers,
            alpha=ns.alpha,
        )
    except (KeyError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_report(report, top=ns.top))
    if ns.trace:
        report.write_trace(ns.trace)
        print(f"\ntrace written to {ns.trace} (open at https://ui.perfetto.dev)")
    if ns.metrics:
        report.write_metrics(ns.metrics)
        print(f"metrics written to {ns.metrics}")
    return 0


def _run_perf_gate(ns: argparse.Namespace) -> int:
    if not ns.args:
        print("usage: repro-als perf-gate <record.json> [...] [--baseline-dir D]"
              " [--tolerance T] [--host-slack S] [--strict]", file=sys.stderr)
        return 2
    from repro.obs.gate import render_checks, run_gate

    checks, ok = run_gate(
        ns.args,
        root=ns.baseline_dir,
        tolerance=ns.tolerance,
        host_slack=ns.host_slack,
        strict=ns.strict,
    )
    print(render_checks(checks))
    return 0 if ok else 1


def _run_grid(ns: argparse.Namespace) -> int:
    """The experiment-grid harness: run/status/export/reset-errors."""
    from repro.bench.grid import (
        GridError,
        export_markdown,
        export_records,
        load_config,
        render_status,
        run_grid,
    )
    from repro.bench.store import ResultsStore

    usage = (
        "usage: repro-als grid run [CONFIG] | status [GRID] | "
        "export [GRID] | reset-errors [GRID]  "
        "[--store grid.sqlite] [--max-cells N] [--out-dir DIR] [--markdown]"
    )
    if not ns.args:
        print(usage, file=sys.stderr)
        return 2
    action, rest = ns.args[0], ns.args[1:]
    store_path = ns.store or "grid.sqlite"

    if action == "run":
        try:
            config = load_config(rest[0] if rest else "ci-quick")
            with ResultsStore(store_path) as store:
                counts = run_grid(store, config, max_cells=ns.max_cells)
        except GridError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        # Open cells are fine under --max-cells (resume later); errored
        # cells fail the run so CI sees missed bars.
        return 1 if counts.get("error", 0) else 0

    if action == "status":
        which = rest[0] if rest else None
        with ResultsStore(store_path) as store:
            cells = store.cells(which)
            by_grid: dict[str, dict[str, int]] = {}
            for cell in cells:
                counts = by_grid.setdefault(cell.grid, {})
                counts[cell.status] = counts.get(cell.status, 0) + 1
            if not by_grid:
                print(f"no cells in {store_path}"
                      + (f" for grid {which!r}" if which else ""))
                return 0
            for name in sorted(by_grid):
                print(f"{name}: {render_status(by_grid[name])}")
            for cell in cells:
                if cell.status == "error" and cell.error:
                    first = cell.error.strip().splitlines()[0]
                    print(f"  [{cell.grid}] cell {cell.id} {cell.benchmark}: "
                          f"{first}")
        return 0

    if action == "export":
        which = rest[0] if rest else None
        out_dir = ns.out_dir or "grid-export"
        from pathlib import Path

        with ResultsStore(store_path) as store:
            written = export_records(store, out_dir, which)
            markdown = export_markdown(store, which)
        md_path = Path(out_dir) / "RESULTS.md"
        md_path.write_text(markdown)
        for path in written + [md_path]:
            print(f"wrote {path}")
        if ns.markdown:
            print()
            print(markdown, end="")
        return 0

    if action == "reset-errors":
        which = rest[0] if rest else None
        with ResultsStore(store_path) as store:
            reopened = store.reset_errors(which)
        print(f"reopened {reopened} errored cell(s)")
        return 0

    print(usage, file=sys.stderr)
    return 2


def _run_serve_metrics(ns: argparse.Namespace) -> int:
    """Stand-alone metrics endpoint: scrape target + resource gauges.

    Mostly a smoke/demo command — long-running commands expose the same
    endpoint in-process via ``--metrics-port``.
    """
    import time

    from repro.obs.endpoint import MetricsEndpoint
    from repro.obs.resource import ResourceSampler
    from repro.obs.spans import enable

    enable()  # gauge/counter helpers are no-ops otherwise
    port = ns.metrics_port if ns.metrics_port is not None else 0
    with MetricsEndpoint(port=port) as endpoint, ResourceSampler():
        print(f"serving {endpoint.url('/metrics')} and "
              f"{endpoint.url('/healthz')} (Ctrl-C to stop)", flush=True)
        try:
            if ns.duration is not None:
                time.sleep(ns.duration)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            pass
    return 0


def _run_serve(ns: argparse.Namespace) -> int:
    """Long-lived recommendation service over a dataset or checkpoint.

    Trains a synthetic sample (dataset name) or loads a saved model
    (checkpoint path), then serves ``/recommend`` through the
    micro-batching :class:`~repro.serving.service.RecommendService`
    with ``/metrics`` (windowed percentiles via ``?window=1``),
    ``/healthz`` and ``/stats`` mounted on the same port.
    """
    if len(ns.args) != 1:
        print("usage: repro-als serve <dataset|checkpoint> [--port P]"
              " [--max-batch B] [--batch-window S] [--cache-size N]"
              " [--serve-workers W] [--duration S] [--algorithm A] [--k K]"
              " [--iterations I] [--scale S] [--n N]", file=sys.stderr)
        return 2
    import time
    from pathlib import Path

    from repro.api import Recommender
    from repro.obs.resource import ResourceSampler
    from repro.obs.spans import enable
    from repro.serving.service import RecommendService, ServiceEndpoint

    source = ns.args[0]
    if Path(source).is_dir() or source.endswith(".npz"):
        try:
            rec = Recommender.load(source)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        label = f"checkpoint {source}"
    else:
        try:
            spec = dataset_by_name(source)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        scale = ns.scale if ns.scale is not None else min(1.0, 500_000 / spec.nnz)
        spec = spec.scaled(scale)
        from repro.datasets.synthetic import generate_ratings

        try:
            rec = Recommender(
                k=ns.k, iterations=ns.iterations, seed=ns.seed,
                algorithm=ns.algorithm, alpha=ns.alpha, **_block_knobs(ns),
            ).fit(generate_ratings(spec, seed=ns.seed))
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        label = f"{spec.abbr} scale={scale:g} (m={spec.m}, n={spec.n})"
    enable()  # service counters/sketches and /metrics need the registry live
    service = RecommendService(
        rec, max_batch=ns.max_batch, batch_window=ns.batch_window,
        cache_size=ns.cache_size, workers=ns.serve_workers,
    )
    port = ns.port if ns.port is not None else 0
    with service, ResourceSampler(), ServiceEndpoint(
        service, port=port, default_n=ns.n
    ) as endpoint:
        print(f"serving {label} on {endpoint.url('/recommend')} "
              f"(max_batch={ns.max_batch}, "
              f"window={ns.batch_window * 1e3:g} ms, cache={ns.cache_size}, "
              f"workers={ns.serve_workers}); /metrics, /healthz and /stats "
              f"mounted (Ctrl-C to stop)", flush=True)
        try:
            if ns.duration is not None:
                time.sleep(ns.duration)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            pass
    stats = service.stats.snapshot()
    print(f"served {stats['requests']:.0f} requests in "
          f"{stats['batches']:.0f} batches "
          f"(mean batch {stats['mean_batch_size']:.1f}, "
          f"{stats['cache_hits']:.0f} cache hits)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-als",
        description="Reproduce the IPDPSW'17 portable-ALS evaluation.",
    )
    parser.add_argument(
        "command",
        help="experiment id (table1, fig1, fig6..fig10, ksweep), 'all', 'list', "
        "'summary', 'tune', 'tune-assembly', 'tune-solver', 'tune-serving', "
        "'tune-sharding', 'tune-blocks', 'train', 'recommend', 'emit-cl', "
        "'profile', 'perf-gate', 'grid', 'serve-metrics' or 'serve'",
    )
    parser.add_argument(
        "args", nargs="*",
        help="for tune: <device> <dataset>; for profile/tune-assembly/"
        "tune-solver/tune-serving/recommend: <dataset>; for train/"
        "tune-sharding: <dataset> or a shard-store directory; for "
        "perf-gate: benchmark record JSON files; for grid: "
        "run|status|export|reset-errors plus an optional config "
        "(builtin name or JSON path) or grid name",
    )
    parser.add_argument("--k", type=int, default=10, help="latent factor (default 10)")
    parser.add_argument(
        "--device", default=None, help="profile: also simulate on this device (cpu/gpu/mic)"
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="profile: write the merged Perfetto/Chrome trace JSON here",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the run's metrics JSON here (profile and experiments)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="profile: dataset scale in (0,1]; default auto-shrinks to a fast run",
    )
    parser.add_argument(
        "--iterations", type=int, default=5, help="profile: ALS iterations (default 5)"
    )
    parser.add_argument(
        "--algorithm", default="als", choices=("als", "als-wr", "implicit"),
        help="profile/recommend: trainer (default als; 'implicit' = "
        "confidence-weighted implicit feedback)",
    )
    parser.add_argument(
        "--alpha", type=float, default=40.0,
        help="implicit: confidence slope c = 1 + alpha*r (default 40)",
    )
    parser.add_argument("--seed", type=int, default=7, help="profile: RNG seed")
    parser.add_argument(
        "--top", type=int, default=10, help="profile: top-N spans to print (default 10)"
    )
    parser.add_argument(
        "--assembly", default=None, choices=("binned", "scatter", "auto"),
        help="S1/S2 assembly code variant (default: binned)",
    )
    parser.add_argument(
        "--tile-nnz", type=int, default=None, metavar="N",
        help="assembly tile budget: max non-zeros gathered per tile",
    )
    parser.add_argument(
        "--assembly-dtype", default=None, choices=("float32", "float64"),
        help="assembly compute precision (accumulation stays float64)",
    )
    parser.add_argument(
        "--solver", default=None, choices=("cholesky", "gaussian", "lapack", "auto"),
        help="S3 batched-solve code variant (default: cholesky reference)",
    )
    parser.add_argument(
        "--workers", default=None, metavar="N",
        help="half-sweep parallelism: 'auto' = one worker per core, or a "
        "thread count (default: serial)",
    )
    parser.add_argument(
        "--batch", type=int, default=None,
        help="tune-solver: systems per batched solve (default: dataset rows)",
    )
    parser.add_argument(
        "--block-size", default=None, metavar="D",
        help="train/recommend: iALS++ subspace block width — an integer "
        "d < k descends on d-column blocks, 'auto' measures the best "
        "width (default: full k-wide sweeps)",
    )
    parser.add_argument(
        "--block-schedule", default=None, choices=("paired", "sweep"),
        help="train/recommend: subspace visit order — 'paired' interleaves "
        "user/item updates per block (iALS++), 'sweep' finishes all user "
        "blocks first (default: paired)",
    )
    parser.add_argument(
        "--n", type=int, default=10,
        help="recommend/tune-serving: recommendations per user (default 10)",
    )
    parser.add_argument(
        "--users", type=int, default=5,
        help="recommend: how many users to print (default 5)",
    )
    parser.add_argument(
        "--tile-bytes", default=None, metavar="B",
        help="serving tile budget: bytes of score buffer per user block "
        "('auto' = measure; default 8 MB)",
    )
    parser.add_argument(
        "--serve-dtype", default=None, choices=("float32", "float64", "auto"),
        help="serving score precision (default: float64; 'auto' = measure)",
    )
    parser.add_argument(
        "--shard-bytes", type=int, default=None, metavar="B",
        help="out-of-core shard byte budget per resident CSR shard "
        "(default 256 MB; REPRO_SHARD_BYTES)",
    )
    parser.add_argument(
        "--out-of-core", action="store_true",
        help="train: pack the dataset into a shard store and run the "
        "blocked out-of-core sweeps",
    )
    parser.add_argument(
        "--memmap-factors", action="store_true",
        help="train: back the factor matrices with .npy memory maps "
        "instead of heap arrays",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="train/tune-sharding: shard-store directory to build "
        "(default: a fresh temp dir); grid: sqlite results-store path "
        "(default: grid.sqlite)",
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="grid run: stop after N cells (the rest stay open; re-invoke "
        "to continue)",
    )
    parser.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="grid export: directory for BENCH_grid_*.json + RESULTS.md "
        "(default: grid-export)",
    )
    parser.add_argument(
        "--markdown", action="store_true",
        help="grid export: also print the markdown results tables",
    )
    parser.add_argument(
        "--save", default=None, metavar="PATH",
        help="train: persist the model here (directory checkpoint; a "
        ".npz suffix selects the legacy envelope)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="expose a Prometheus /metrics + /healthz HTTP endpoint on this "
        "port for the duration of the command (0 = ephemeral)",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve/serve-metrics: stop after this many seconds (default: "
        "run until Ctrl-C)",
    )
    parser.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="serve: HTTP port for the recommendation service "
        "(default 0 = ephemeral, printed at startup)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32, metavar="B",
        help="serve: max requests coalesced into one engine query "
        "(default 32; 1 disables micro-batching)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.002, metavar="SECONDS",
        help="serve: coalescing window — how long a worker waits for "
        "more requests before querying (default 0.002)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=4096, metavar="N",
        help="serve: LRU result-cache entries (default 4096; 0 disables)",
    )
    parser.add_argument(
        "--serve-workers", type=int, default=1, metavar="W",
        help="serve: service worker threads draining the request queue "
        "(default 1)",
    )
    parser.add_argument(
        "--baseline-dir", default=".", metavar="DIR",
        help="perf-gate: directory holding the committed BENCH_*.json "
        "trajectory (default: .)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="perf-gate: allowed fractional regression on a same-host "
        "comparison (default 0.2)",
    )
    parser.add_argument(
        "--host-slack", type=float, default=2.0,
        help="perf-gate: tolerance multiplier when the baseline came from "
        "a different host (default 2.0)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="perf-gate: fail records with no comparable baseline instead "
        "of skipping them",
    )
    ns = parser.parse_args(argv)

    if ns.assembly or ns.tile_nnz or ns.assembly_dtype:
        from repro.linalg.normal_equations import configure_assembly

        configure_assembly(
            mode=ns.assembly, tile_nnz=ns.tile_nnz, compute_dtype=ns.assembly_dtype
        )
    if ns.solver:
        from repro.linalg.solvers import configure_solver

        configure_solver(ns.solver)
    if ns.tile_bytes or ns.serve_dtype:
        from repro.serving import configure_serving

        try:
            configure_serving(tile_bytes=ns.tile_bytes, dtype=ns.serve_dtype)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if ns.workers:
        from repro.parallel import configure_workers

        try:
            configure_workers(ns.workers)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if ns.shard_bytes is not None:
        from repro.sparse.shards import configure_sharding

        try:
            configure_sharding(ns.shard_bytes)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    if ns.command == "serve-metrics":
        return _run_serve_metrics(ns)
    if ns.metrics_port is not None:
        # Any other command can expose its live registry while it runs:
        # scrape-able from outside for however long the work takes.
        from repro.obs.endpoint import MetricsEndpoint
        from repro.obs.resource import ResourceSampler
        from repro.obs.spans import enable

        enable()
        with MetricsEndpoint(port=ns.metrics_port) as endpoint, ResourceSampler():
            print(f"metrics endpoint: {endpoint.url('/metrics')}", flush=True)
            return _dispatch(ns)
    return _dispatch(ns)


def _dispatch(ns: argparse.Namespace) -> int:
    if ns.command == "summary":
        from repro.bench.summary import render_scorecard

        print(render_scorecard())
        return 0
    if ns.command == "list":
        print("\n".join(EXPERIMENTS))
        return 0
    if ns.command == "all":
        for name in EXPERIMENTS:
            print(f"\n===== {name} =====")
            _run_experiment(name)
        return 0
    if ns.command == "emit-cl":
        if len(ns.args) != 1:
            print("usage: repro-als emit-cl <device>", file=sys.stderr)
            return 2
        device = device_by_name(ns.args[0])
        variant = recommended_variant(device)
        print(generate_program(variant.flags, k=ns.k))
        return 0
    if ns.command == "tune":
        if len(ns.args) != 2:
            print("usage: repro-als tune <device> <dataset>", file=sys.stderr)
            return 2
        return _run_tune(ns.args[0], ns.args[1], ns.k)
    if ns.command == "tune-assembly":
        return _run_tune_assembly(ns)
    if ns.command == "tune-solver":
        return _run_tune_solver(ns)
    if ns.command == "tune-serving":
        return _run_tune_serving(ns)
    if ns.command == "tune-sharding":
        return _run_tune_sharding(ns)
    if ns.command == "tune-blocks":
        return _run_tune_blocks(ns)
    if ns.command == "train":
        return _run_train(ns)
    if ns.command == "recommend":
        return _run_recommend(ns)
    if ns.command == "profile":
        return _run_profile(ns)
    if ns.command == "perf-gate":
        return _run_perf_gate(ns)
    if ns.command == "grid":
        return _run_grid(ns)
    if ns.command == "serve":
        return _run_serve(ns)
    return _run_experiment(ns.command, metrics_path=ns.metrics)


def _entry() -> int:
    """Console-script entry: exit quietly when the pipe closes (| head)."""
    import os

    try:
        return main()
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(_entry())
