"""Load generators for :class:`repro.serving.service.RecommendService`.

Two standard harness shapes:

* **Closed loop** — ``concurrency`` client threads each issue requests
  back-to-back (a new request the instant the previous one returns).
  Offered load adapts to service speed; throughput is the honest
  "how fast can it go" number and is what the batched-vs-unbatched
  comparison in ``benchmarks/bench_serving.py`` uses.
* **Open loop** — requests arrive on a Poisson process at a fixed
  ``rate`` regardless of completions, which is how production traffic
  behaves and is the shape that exposes queueing delay: latency
  percentiles under open load include the time spent waiting behind
  the micro-batch window.

Both record **client-side** latency (submit → result) into a standalone
:class:`repro.obs.metrics.QuantileHistogram`, so percentiles work even
when the global obs registry is disabled, and return a
:class:`LoadReport` with throughput and p50/p95/p99.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.obs.metrics import QuantileHistogram

__all__ = ["LoadReport", "run_closed_loop", "run_open_loop"]


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str  # "closed" or "open"
    requests: int
    errors: int
    seconds: float  # loaded region (open loop: the dispatch window)
    throughput: float  # successful requests per second over `seconds`
    latency: dict[str, float]  # QuantileHistogram summary (p50/p95/p99...)
    concurrency: int = 0  # closed loop: client threads
    rate: float = 0.0  # open loop: offered arrivals per second
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "throughput": self.throughput,
            "latency": dict(self.latency),
            "concurrency": self.concurrency,
            "rate": self.rate,
            **self.extra,
        }


def run_closed_loop(
    service,
    users: np.ndarray,
    *,
    n: int = 10,
    concurrency: int = 4,
    requests_per_worker: int = 100,
    seed: int = 0,
    timeout: float = 60.0,
) -> LoadReport:
    """Closed-loop sweep: each of ``concurrency`` threads runs
    ``requests_per_worker`` back-to-back requests over ``users``.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    users = np.asarray(users, dtype=np.int64)
    if users.size == 0:
        raise ValueError("need at least one user to load-test")
    sketch = QuantileHistogram("loadgen.latency.seconds")
    errors = [0] * concurrency
    done = [0] * concurrency
    start_gate = threading.Barrier(concurrency + 1)

    def client(idx: int) -> None:
        rng = np.random.default_rng(seed + idx)
        picks = rng.choice(users, size=requests_per_worker)
        start_gate.wait()
        for user in picks:
            t0 = perf_counter()
            try:
                service.submit(int(user), n).result(timeout)
            except Exception:
                errors[idx] += 1
                continue
            sketch.observe(perf_counter() - t0)
            done[idx] += 1

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    start_gate.wait()  # all clients poised: time only the loaded region
    t_start = perf_counter()
    for t in threads:
        t.join()
    elapsed = perf_counter() - t_start
    ok = sum(done)
    return LoadReport(
        mode="closed",
        requests=ok + sum(errors),
        errors=sum(errors),
        seconds=elapsed,
        throughput=ok / elapsed if elapsed > 0 else 0.0,
        latency=sketch.summary(),
        concurrency=concurrency,
    )


def run_open_loop(
    service,
    users: np.ndarray,
    *,
    n: int = 10,
    rate: float = 200.0,
    duration: float = 2.0,
    seed: int = 0,
    timeout: float = 60.0,
) -> LoadReport:
    """Open-loop run: Poisson arrivals at ``rate``/s for ``duration`` s.

    Arrivals are driven by one dispatcher thread sleeping exponential
    inter-arrival gaps; completions land asynchronously via future
    callbacks, so slow service shows up as queueing delay in the
    latency percentiles instead of silently throttling the offered load.

    Rates are reported over the **dispatch window** (first arrival to
    the issuance deadline), not over dispatch plus the drain of
    still-pending futures: a single slow final response would otherwise
    deflate ``throughput`` and ``achieved_rate`` arbitrarily even
    though issuance held the offered rate the whole time.  The drain
    tail is reported separately as ``extra["drain_seconds"]``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    users = np.asarray(users, dtype=np.int64)
    if users.size == 0:
        raise ValueError("need at least one user to load-test")
    rng = np.random.default_rng(seed)
    sketch = QuantileHistogram("loadgen.latency.seconds")
    lock = threading.Lock()
    state = {"ok": 0, "errors": 0}
    pending: list = []

    def on_done(t0: float, future) -> None:
        dt = perf_counter() - t0
        with lock:
            if future.exception() is None:
                state["ok"] += 1
                sketch.observe(dt)
            else:
                state["errors"] += 1

    t_start = perf_counter()
    deadline = t_start + duration
    next_arrival = t_start
    issued = 0
    while True:
        now = perf_counter()
        if now >= deadline:
            break
        if now < next_arrival:
            time.sleep(min(next_arrival - now, deadline - now))
            continue
        user = int(users[rng.integers(users.size)])
        t0 = perf_counter()
        try:
            fut = service.submit(user, n)
        except Exception:
            with lock:
                state["errors"] += 1
        else:
            fut.add_done_callback(lambda f, t0=t0: on_done(t0, f))
            pending.append(fut)
        issued += 1
        next_arrival += rng.exponential(1.0 / rate)
    dispatch_seconds = perf_counter() - t_start
    for fut in pending:
        try:
            fut.result(timeout)
        except Exception:
            pass  # already counted by the callback
    drain_seconds = perf_counter() - t_start - dispatch_seconds
    with lock:
        ok, errors = state["ok"], state["errors"]
    return LoadReport(
        mode="open",
        requests=issued,
        errors=errors,
        seconds=dispatch_seconds,
        throughput=ok / dispatch_seconds if dispatch_seconds > 0 else 0.0,
        latency=sketch.summary(),
        rate=rate,
        extra={
            "offered_rate": rate,
            "achieved_rate": (
                issued / dispatch_seconds if dispatch_seconds > 0 else 0.0
            ),
            "drain_seconds": drain_seconds,
        },
    )
